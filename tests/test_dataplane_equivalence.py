"""Batched data-plane engines pinned against their scalar references.

Every hot loop the event-segmented data plane replaced stays alive as a
reference implementation; this module asserts the fast paths reproduce
them — bit-for-bit where the op sequence is preserved (downloads, BBR,
Prognos) and to fluid-model precision (1e-8) where closed forms replace
tick recurrences (CUBIC).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.abr.algorithms import RateBased
from repro.apps.abr.player import PlayJob, play_many, _play_job
from repro.core.evaluation import (
    PrognosConfig,
    configs_for_log,
    run_prognos_over_logs,
    run_prognos_over_logs_reference,
    _replay_plan,
)
from repro.core.report_predictor import ReportPredictor
from repro.core.rrs_predictor import RRSPredictor
from repro.core.smoothing import TriangularKernelSmoother
from repro.net.emulation import BandwidthTrace, TraceDrivenLink
from repro.net.segments import TraceSegment, segment_capacity
from repro.net.tcp import TcpBbr, TcpCubic, simulate_tcp, simulate_tcp_reference
from repro.perf import Timer
from repro.radio.bands import BandClass
from repro.ran import OPX
from repro.simulate.scenarios import city_walk_scenario

TICK_S = 0.04


def _outage_trace(seed: int, n: int = 12_000) -> np.ndarray:
    """A capacity series with handover-style zero-capacity stretches."""
    rng = np.random.default_rng(seed)
    caps = np.abs(rng.normal(120.0, 60.0, n))
    for start in rng.integers(0, n - 40, 12):
        caps[start : start + int(rng.integers(4, 30))] = 0.0
    return caps


# ---------------------------------------------------------------------------
# Capacity segmentation
# ---------------------------------------------------------------------------


class TestSegmentCapacity:
    def test_segments_tile_trace_and_flag_outages(self):
        caps = np.array([5.0, 3.0, 0.0, 0.0, 7.0, 0.0, 2.0])
        segments = segment_capacity(caps)
        assert segments == [
            TraceSegment(0, 2, False),
            TraceSegment(2, 4, True),
            TraceSegment(4, 5, False),
            TraceSegment(5, 6, True),
            TraceSegment(6, 7, False),
        ]
        assert sum(s.ticks for s in segments) == len(caps)

    def test_uniform_trace_is_one_segment(self):
        assert segment_capacity(np.full(5, 9.0)) == [TraceSegment(0, 5, False)]
        assert segment_capacity(np.zeros(3)) == [TraceSegment(0, 3, True)]

    def test_edge_cases(self):
        assert segment_capacity(np.empty(0)) == []
        with pytest.raises(ValueError):
            segment_capacity(np.zeros((2, 2)))


# ---------------------------------------------------------------------------
# Segmented TCP vs the tick-by-tick reference
# ---------------------------------------------------------------------------


class TestTcpEquivalence:
    @pytest.mark.parametrize("make_cc", [TcpCubic, TcpBbr], ids=["cubic", "bbr"])
    def test_segmented_matches_reference(self, make_cc):
        caps = _outage_trace(7)
        ref = simulate_tcp_reference(make_cc(), caps, TICK_S)
        fast = simulate_tcp(make_cc(), caps, TICK_S)
        # Exact fields: the segmented engines replay the same discrete
        # decisions (loss ticks, sample grid).
        assert np.array_equal(ref.times_s, fast.times_s)
        assert np.array_equal(ref.lost, fast.lost)
        # Fluid state: bitwise for BBR, 1e-8 covers CUBIC's closed form.
        for field in ("goodput_mbps", "rtt_ms", "queue_bytes", "delivered_bytes"):
            np.testing.assert_allclose(
                getattr(fast, field), getattr(ref, field), rtol=1e-8, atol=1e-6,
                err_msg=field,
            )
        assert fast.sent_bytes == pytest.approx(ref.sent_bytes, rel=1e-8)
        assert fast.dropped_bytes == pytest.approx(ref.dropped_bytes, rel=1e-8, abs=1e-3)

    @pytest.mark.parametrize("make_cc", [TcpCubic, TcpBbr], ids=["cubic", "bbr"])
    def test_per_segment_delivered_bytes_match(self, make_cc):
        """Segment-level integration equals the tick loop's byte count."""
        caps = _outage_trace(11)
        ref = simulate_tcp_reference(make_cc(), caps, TICK_S)
        fast = simulate_tcp(make_cc(), caps, TICK_S)
        for segment in segment_capacity(caps):
            ref_sum = float(np.sum(ref.delivered_bytes[segment.start : segment.stop]))
            fast_sum = float(np.sum(fast.delivered_bytes[segment.start : segment.stop]))
            assert fast_sum == pytest.approx(ref_sum, rel=1e-8, abs=1e-3)

    @pytest.mark.parametrize("make_cc", [TcpCubic, TcpBbr], ids=["cubic", "bbr"])
    def test_byte_conservation_through_outages(self, make_cc):
        """Post-HO queue drains must not mint or lose bytes.

        Every byte the sender put on the wire is either delivered,
        still queued at the bottleneck, or dropped on overflow.
        """
        caps = _outage_trace(13)
        trace = simulate_tcp(make_cc(), caps, TICK_S)
        accounted = (
            trace.delivered_total_bytes
            + float(trace.queue_bytes[-1])
            + trace.dropped_bytes
        )
        assert accounted == pytest.approx(trace.sent_bytes, rel=1e-9, abs=1.0)
        # The per-tick delivered series is what the total summarises.
        assert trace.delivered_total_bytes == pytest.approx(
            float(np.sum(trace.delivered_bytes)), rel=1e-12
        )

    def test_non_fluid_controller_falls_back_to_reference(self):
        caps = _outage_trace(17, n=500)

        class OtherCc(TcpCubic):
            pass

        ref = simulate_tcp_reference(OtherCc(), caps, TICK_S)
        fast = simulate_tcp(OtherCc(), caps, TICK_S)
        assert np.array_equal(ref.goodput_mbps, fast.goodput_mbps)


# ---------------------------------------------------------------------------
# Vectorized chunk downloads vs the tick loop
# ---------------------------------------------------------------------------


def _trace(seed: int, n: int = 600, zero_head: int = 0) -> BandwidthTrace:
    rng = np.random.default_rng(seed)
    caps = np.abs(rng.normal(40.0, 25.0, n))
    caps[rng.random(n) < 0.05] = 0.0
    if zero_head:
        caps[:zero_head] = 0.0
    return BandwidthTrace(times_s=np.arange(n) * 0.05, capacity_mbps=caps)


class TestDownloadEquivalence:
    def test_bitwise_identical_download_times(self):
        link = TraceDrivenLink(_trace(3), loop=True)
        rng = np.random.default_rng(4)
        for _ in range(60):
            size = float(rng.uniform(1e4, 5e7))
            start = float(rng.uniform(0.0, 80.0))
            assert link.download_time_s(size, start) == link.download_time_reference_s(
                size, start
            )

    def test_zero_size_and_unlooped_trace(self):
        link = TraceDrivenLink(_trace(5), loop=False)
        assert link.download_time_s(0.0, 1.0) == 0.0
        assert link.download_time_s(2e6, 3.0) == link.download_time_reference_s(2e6, 3.0)

    def test_stall_error_parity(self):
        dead = BandwidthTrace(
            times_s=np.arange(100) * 0.05, capacity_mbps=np.zeros(100)
        )
        link = TraceDrivenLink(dead, loop=True)
        for method in (link.download_time_s, link.download_time_reference_s):
            with pytest.raises(RuntimeError, match="stalled"):
                method(1e6, 0.0, 10.0)


# ---------------------------------------------------------------------------
# Parallel VoD playback vs serial
# ---------------------------------------------------------------------------


class TestPlayMany:
    def _jobs(self) -> list[PlayJob]:
        return [(RateBased, _trace(seed, n=2400), None, None) for seed in (21, 22, 23)]

    def test_parallel_matches_serial(self):
        serial = play_many(self._jobs(), workers=1)
        parallel = play_many(self._jobs(), workers=2)
        assert len(serial) == len(parallel) == 3
        for a, b in zip(serial, parallel):
            assert a.levels == b.levels
            assert a.stall_s == b.stall_s
            assert a.mean_bitrate_mbps == b.mean_bitrate_mbps
            assert a.prediction_errors == b.prediction_errors

    def test_workers_env_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_WORKERS", "2")
        jobs = self._jobs()[:2]
        assert [r.levels for r in play_many(jobs)] == [
            _play_job(job).levels for job in jobs
        ]


# ---------------------------------------------------------------------------
# Staged Prognos replay vs the tick-by-tick reference
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def walk_logs(mmwave_walk_log):
    """Two unrelated walks: exercises the per-log RRS reset."""
    second = city_walk_scenario(
        OPX, (BandClass.MMWAVE,), duration_min=4, seed=107
    ).run()
    return [mmwave_walk_log, second]


def _result_fields(result):
    return (
        result.times_s.tolist(),
        result.predictions,
        result.truths,
        result.events,
        result.lead_times_s,
    )


class TestPrognosEquivalence:
    def test_staged_matches_reference_bitwise(self, walk_logs):
        configs = configs_for_log(OPX, (BandClass.MMWAVE,))
        ref = run_prognos_over_logs_reference(walk_logs, configs, stride=4)
        fast = run_prognos_over_logs(walk_logs, configs, stride=4)
        assert _result_fields(fast) == _result_fields(ref)

    def test_worker_count_does_not_change_results(self, walk_logs):
        configs = configs_for_log(OPX, (BandClass.MMWAVE,))
        serial = run_prognos_over_logs(walk_logs, configs, stride=4)
        fanned = run_prognos_over_logs(walk_logs, configs, stride=4, workers=2)
        assert _result_fields(serial) == _result_fields(fanned)

    def test_batched_report_prediction_matches_scalar(self, mmwave_walk_log):
        config = PrognosConfig()
        plan = _replay_plan(mmwave_walk_log, 1.0, 8)

        def predictor():
            rrs = RRSPredictor(
                history_window_ticks=config.history_window_ticks,
                smoother_window=config.smoother_window,
            )
            return ReportPredictor(
                configs_for_log(OPX, (BandClass.MMWAVE,)),
                rrs,
                prediction_window_s=config.prediction_window_s,
            )

        scalar, batched = predictor(), predictor()
        fired = 0
        for now, (rsrp, serving, neighbours, scoped) in zip(
            plan.step_times, plan.step_inputs
        ):
            scalar.observe(now, rsrp)
            batched.observe(now, rsrp)
            a = scalar.predict_reports(serving, neighbours, scoped)
            b = batched.predict_reports_batched(serving, neighbours, scoped)
            assert [(r.label, r.fire_in_s, r.cell) for r in a] == [
                (r.label, r.fire_in_s, r.cell) for r in b
            ]
            fired += len(a)
        assert fired > 0  # the walk must actually produce forecasts


# ---------------------------------------------------------------------------
# Batched smoothing vs the per-call loop
# ---------------------------------------------------------------------------


class TestSmoothingEquivalence:
    @pytest.mark.parametrize("window", [1, 3, 8])
    def test_fast_series_is_bitwise_identical(self, window):
        smoother = TriangularKernelSmoother(window=window)
        values = np.random.default_rng(31).normal(-95.0, 7.0, 200)
        fast = smoother.smooth_series_fast(values)
        slow = smoother.smooth_series(values)
        assert np.array_equal(fast, slow)


# ---------------------------------------------------------------------------
# repro.perf.Timer
# ---------------------------------------------------------------------------


class TestTimer:
    def test_spans_accumulate(self):
        timer = Timer(echo=False)
        with timer.span("stage"):
            pass
        first = timer["stage"]
        with timer.span("stage"):
            pass
        assert timer["stage"] >= first
        assert timer.last_s >= 0.0

    def test_timed_returns_elapsed_and_result(self):
        timer = Timer(echo=False)
        elapsed, value = timer.timed("calc", lambda: 41 + 1)
        assert value == 42
        assert elapsed >= 0.0
        assert timer["calc"] == elapsed

    def test_echo_follows_env(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_PERF", "1")
        with Timer().span("loud"):
            pass
        assert "[perf] loud" in capsys.readouterr().out
        monkeypatch.setenv("REPRO_PERF", "0")
        with Timer().span("quiet"):
            pass
        assert capsys.readouterr().out == ""
