"""Wire-protocol edge cases: framing, codecs, malformed input."""

from __future__ import annotations

import struct

import pytest

from repro.core.evaluation import _tick_inputs, configs_for_log
from repro.radio.bands import BandClass
from repro.ran import OPX
from repro.rrc.events import EventConfig, EventType, MeasurementObject
from repro.rrc.taxonomy import HandoverType
from repro.serve import protocol
from repro.serve.protocol import FrameDecoder, FrameError, MAX_FRAME, frame


def _sample_tick():
    rsrp = {10: -81.5, 11: -95.25, 20: -90.0, 21: -101.0}
    serving = {MeasurementObject.LTE: 10, MeasurementObject.NR: 20}
    neighbours = {MeasurementObject.LTE: [11], MeasurementObject.NR: [21]}
    scoped = {MeasurementObject.LTE: [11], MeasurementObject.NR: []}
    return rsrp, serving, neighbours, scoped


class TestFraming:
    def test_roundtrip_arbitrary_split_points(self):
        payloads = [b"T" + bytes(range(40)), b"{}", b"R" + b"\x00" * 8 + b"NR-B1"]
        stream = b"".join(frame(p) for p in payloads)
        # Every split point, including mid-length-prefix and
        # mid-payload, must reassemble the same frame sequence.
        for cut in range(len(stream) + 1):
            decoder = FrameDecoder()
            got = decoder.feed(stream[:cut]) + decoder.feed(stream[cut:])
            assert got == payloads
            assert decoder.pending_bytes == 0

    def test_byte_at_a_time(self):
        payloads = [b"A" * 3, b"", b"Z"]
        stream = b"".join(frame(p) for p in payloads)
        decoder = FrameDecoder()
        got = []
        for i in range(len(stream)):
            got.extend(decoder.feed(stream[i : i + 1]))
        assert got == payloads

    def test_oversized_length_prefix_rejected(self):
        decoder = FrameDecoder()
        with pytest.raises(FrameError):
            decoder.feed(struct.pack(">I", MAX_FRAME + 1))

    def test_oversized_payload_rejected_on_encode(self):
        with pytest.raises(FrameError):
            frame(b"x" * (MAX_FRAME + 1))

    def test_truncated_stream_yields_nothing(self):
        decoder = FrameDecoder()
        framed = frame(b"hello")
        assert decoder.feed(framed[:-1]) == []
        assert decoder.pending_bytes == len(framed) - 1


class TestTickCodec:
    def test_roundtrip_preserves_tick_inputs_shape(self):
        rsrp, serving, neighbours, scoped = _sample_tick()
        payload = protocol.encode_tick(
            12.5,
            rsrp,
            serving,
            neighbours,
            scoped,
            wants_abr=True,
            observed_mbps=42.25,
            buffer_s=7.5,
            last_level=3,
        )
        decoded = protocol.decode_tick(payload)
        assert decoded[0] == 12.5
        assert decoded[1] == rsrp
        assert list(decoded[1]) == list(rsrp)  # insertion order preserved
        assert decoded[2] == serving
        assert decoded[3] == neighbours
        assert decoded[4] == scoped
        assert decoded[5] is True
        assert decoded[6:] == (42.25, 7.5, 3)

    def test_roundtrip_matches_simulated_tick_inputs(self, freeway_low_log):
        for tick in freeway_low_log.ticks[:50]:
            rsrp, serving, neighbours, scoped = _tick_inputs(tick)
            decoded = protocol.decode_tick(
                protocol.encode_tick(tick.time_s, rsrp, serving, neighbours, scoped)
            )
            assert decoded[1] == rsrp and list(decoded[1]) == list(rsrp)
            assert decoded[2] == serving
            assert decoded[3] == neighbours
            assert decoded[4] == scoped

    def test_detached_serving_encodes_as_none(self):
        rsrp = {11: -90.0}
        serving = {MeasurementObject.LTE: None, MeasurementObject.NR: None}
        neighbours = {MeasurementObject.LTE: [11], MeasurementObject.NR: []}
        scoped = {MeasurementObject.LTE: [], MeasurementObject.NR: []}
        decoded = protocol.decode_tick(
            protocol.encode_tick(0.0, rsrp, serving, neighbours, scoped)
        )
        assert decoded[2] == serving

    def test_aliasing_rejected(self):
        rsrp, serving, neighbours, scoped = _sample_tick()
        bad = dict(neighbours)
        bad[MeasurementObject.NR] = [10]  # serving LTE cell as NR neighbour
        with pytest.raises(FrameError):
            protocol.encode_tick(0.0, rsrp, serving, bad, scoped)
        with pytest.raises(FrameError):
            protocol.encode_tick(
                0.0,
                rsrp,
                serving,
                neighbours,
                {MeasurementObject.LTE: [99], MeasurementObject.NR: []},
            )
        with pytest.raises(FrameError):
            # Neighbour missing from the rsrp dict.
            protocol.encode_tick(
                0.0, {10: -81.5}, serving, neighbours, scoped
            )

    def test_truncated_tick_rejected(self):
        rsrp, serving, neighbours, scoped = _sample_tick()
        payload = protocol.encode_tick(1.0, rsrp, serving, neighbours, scoped)
        with pytest.raises(FrameError):
            protocol.decode_tick(payload[:-3])
        with pytest.raises(FrameError):
            protocol.decode_tick(payload[:5])
        with pytest.raises(FrameError):
            protocol.decode_tick(payload + b"\x00")

    def test_abr_patch_offsets_hit_the_header_fields(self):
        rsrp, serving, neighbours, scoped = _sample_tick()
        framed = bytearray(
            frame(
                protocol.encode_tick(
                    3.0,
                    rsrp,
                    serving,
                    neighbours,
                    scoped,
                    wants_abr=True,
                    observed_mbps=1.0,
                    buffer_s=2.0,
                    last_level=0,
                )
            )
        )
        protocol.ABR_PATCH.pack_into(
            framed, protocol.ABR_PATCH_OFFSET, 55.5, 11.25, 4
        )
        decoded = protocol.decode_tick(bytes(framed[4:]))
        assert decoded[6:] == (55.5, 11.25, 4)
        assert decoded[0] == 3.0 and decoded[1] == rsrp  # rest untouched


class TestEventAndControlCodecs:
    def test_report_roundtrip(self):
        label, time_s = protocol.decode_report(protocol.encode_report("NR-A3", 9.25))
        assert (label, time_s) == ("NR-A3", 9.25)

    def test_command_roundtrip_and_bad_index(self):
        for ho_type in HandoverType:
            got, t = protocol.decode_command(protocol.encode_command(ho_type, 1.5))
            assert got is ho_type and t == 1.5
        bad = b"C" + struct.pack("<dB", 0.0, 250)
        with pytest.raises(FrameError):
            protocol.decode_command(bad)
        with pytest.raises(FrameError):
            protocol.decode_command(b"C\x00\x01")

    def test_prediction_roundtrip_nan_lead(self):
        payload = protocol.encode_prediction(
            8.0, HandoverType.SCGC, 0.86, 0.5, None, -1, 7, seq=9
        )
        time_s, ho_type, score, sim, lead, level, dropped, seq = (
            protocol.decode_prediction(payload)
        )
        assert (time_s, ho_type, score, sim) == (8.0, HandoverType.SCGC, 0.86, 0.5)
        assert lead is None and level == -1 and dropped == 7 and seq == 9
        with_lead = protocol.decode_prediction(
            protocol.encode_prediction(8.0, HandoverType.LTEH, 1.0, 0.0, 0.75, 2, 0)
        )
        assert with_lead[4] == 0.75 and with_lead[5] == 2
        assert with_lead[7] == 0  # seq defaults to 0 and rides last

    def test_event_config_roundtrip(self):
        configs = configs_for_log(OPX, (BandClass.LOW,))
        decoded = protocol.decode_event_configs(
            protocol.encode_event_configs(configs)
        )
        assert decoded == list(configs)

    def test_event_config_junk_rejected(self):
        with pytest.raises(FrameError):
            protocol.decode_event_configs([])
        with pytest.raises(FrameError):
            protocol.decode_event_configs("not a list")
        with pytest.raises(FrameError):
            protocol.decode_event_configs(["not a dict"])
        with pytest.raises(FrameError):
            protocol.decode_event_configs([{"event": "NO_SUCH", "measurement": "LTE"}])
        with pytest.raises(FrameError):
            protocol.decode_event_configs([{"event": "A3"}])  # no measurement

    def test_json_frames(self):
        message = {"type": "hello", "version": 1}
        assert protocol.decode_json(protocol.encode_json(message)) == message
        with pytest.raises(FrameError):
            protocol.decode_json(b"\xff\xfe")
        with pytest.raises(FrameError):
            protocol.decode_json(b"[1,2]")
        with pytest.raises(FrameError):
            protocol.encode_json([1, 2])  # only objects on the wire


class TestSequenceNumbers:
    """Protocol-v2 sequence plumbing: every resumable frame carries one."""

    def test_frame_seq_reads_every_sequenced_tag(self):
        rsrp, serving, neighbours, scoped = _sample_tick()
        framed = {
            b"T": protocol.encode_tick(
                1.0, rsrp, serving, neighbours, scoped, seq=41
            ),
            b"R": protocol.encode_report("NR-A3", 2.0, seq=42),
            b"C": protocol.encode_command(HandoverType.LTEH, 3.0, seq=43),
            b"S": protocol.encode_boundary(seq=44),
        }
        for expect, (tag, payload) in zip((41, 42, 43, 44), framed.items()):
            assert payload[:1] == tag
            assert tag in protocol.SEQUENCED_TAGS
            assert protocol.frame_seq(payload) == expect

    def test_frame_seq_rejects_truncation(self):
        with pytest.raises(FrameError):
            protocol.frame_seq(b"T\x01\x02")

    def test_seq_does_not_disturb_payload_decode(self):
        label, time_s = protocol.decode_report(
            protocol.encode_report("LTE-A5", 6.5, seq=1000)
        )
        assert (label, time_s) == ("LTE-A5", 6.5)
        ho, t = protocol.decode_command(
            protocol.encode_command(HandoverType.SCGC, 7.5, seq=2000)
        )
        assert ho is HandoverType.SCGC and t == 7.5

    def test_abr_patch_offset_lands_after_seq(self):
        # The loadgen patches frames pre-encoded with seqs; the offset
        # must account for the 8 seq bytes after the tag.
        assert (
            protocol.ABR_PATCH_OFFSET
            == 4 + 1 + 8 + struct.calcsize("<dBqq")
        )


class TestAdversarialFrames:
    """Seeded corruption sweeps: one bad peer must not poison others.

    The sweeps reuse the fault family's sha256 draw
    (:func:`repro.robust.faults._draw`) so a failing case reproduces
    from its (seed, index) alone.
    """

    def _tick_payload(self, seq: int = 1) -> bytes:
        rsrp, serving, neighbours, scoped = _sample_tick()
        return protocol.encode_tick(
            5.0, rsrp, serving, neighbours, scoped, seq=seq
        )

    def test_seeded_byte_corruption_never_hangs_or_leaks(self):
        from repro.robust.faults import FaultSpec, _draw

        payload = self._tick_payload()
        spec = FaultSpec("byte_corrupt", seed=7)
        for case in range(200):
            pos = int(_draw(spec, f"pos@{case}", 0) * len(payload))
            flip = 1 + int(_draw(spec, f"bit@{case}", 0) * 255)
            corrupt = bytearray(payload)
            corrupt[min(pos, len(payload) - 1)] ^= flip
            decoder = FrameDecoder()
            # Framing is length-prefixed, so a payload-byte flip still
            # frames; the codec must either decode or raise FrameError,
            # never hang, loop, or raise anything else.
            frames = decoder.feed(frame(bytes(corrupt)))
            assert len(frames) == 1
            try:
                tag = frames[0][:1]
                if tag == b"T":
                    protocol.decode_tick(frames[0])
                elif tag in protocol.SEQUENCED_TAGS:
                    protocol.frame_seq(frames[0])
            except FrameError:
                pass
            assert decoder.pending_bytes == 0

    def test_seeded_truncation_sweep_rejects_or_starves(self):
        from repro.robust.faults import FaultSpec, _draw

        payload = self._tick_payload()
        framed = frame(payload)
        spec = FaultSpec("frame_truncate", seed=11)
        for case in range(100):
            cut = int(_draw(spec, case, 0) * len(framed))
            decoder = FrameDecoder()
            got = decoder.feed(framed[:cut])
            # A truncated frame either yields nothing (decoder starves
            # on the missing tail) or nothing valid ever escapes.
            assert got == []
            if cut >= 4:
                assert decoder.pending_bytes == cut
        full = FrameDecoder()
        assert full.feed(framed) == [payload]

    def test_corrupt_connection_does_not_poison_siblings(self):
        # Per-connection decoders: garbage fed to one decoder leaves a
        # sibling decoder's stream byte-exact.
        good, bad = FrameDecoder(), FrameDecoder()
        payload = self._tick_payload()
        with pytest.raises(FrameError):
            bad.feed(struct.pack(">I", MAX_FRAME + 1) + b"junk")
        assert good.feed(frame(payload)) == [payload]
