"""Columnar analysis ports: bit-identity with the per-record oracles,
and input-shape equivalence (DriveLogs vs memmap corpus slices)."""

from __future__ import annotations

import pytest

from repro.analysis.bandwidth import ho_score_table, phase_throughput
from repro.analysis.colocation import (
    colocated_tick_fraction,
    colocation_summary,
    verify_colocation_by_hulls,
)
from repro.analysis.coverage import (
    coverage_summary,
    nr_coverage_segments_m,
    nr_coverage_segments_m_reference,
)
from repro.analysis.duration import (
    duration_breakdown,
    stage_durations_ms,
    stage_durations_ms_reference,
)
from repro.analysis.energy import (
    energy_breakdown,
    energy_breakdown_reference,
    hourly_energy_budget,
)
from repro.analysis.frequency import (
    FIVE_G_NSA_TYPES,
    FOUR_G_TYPES,
    SA_TYPES,
    frequency_breakdown,
    frequency_breakdown_reference,
    handover_rate_per_km,
    handover_rate_per_km_reference,
    signaling_breakdown,
    signaling_breakdown_reference,
    signaling_per_km,
    signaling_per_km_reference,
)
from repro.radio.bands import BandClass
from repro.rrc.taxonomy import HandoverType
from repro.simulate.columnar import as_columnar
from repro.simulate.corpus import CorpusStore, CorpusView
from repro.simulate.records import DriveLog


@pytest.fixture(scope="module")
def drive_logs(freeway_low_log, mmwave_walk_log, coverage_log):
    """A mixed corpus: NSA freeway, mmWave walk, rural coverage."""
    return [freeway_low_log, mmwave_walk_log, coverage_log]


@pytest.fixture(scope="module")
def store_view(drive_logs, tmp_path_factory):
    """The same corpus behind memmap-backed store slices."""
    root = tmp_path_factory.mktemp("corpus")
    store = CorpusStore(root, enabled=True)
    ids = []
    for i, log in enumerate(drive_logs):
        drive_id = f"drive-{i}"
        assert store.append(drive_id, as_columnar(log))
        ids.append(drive_id)
    return CorpusView(root, ids)


# ----------------------------------------------------------------------
# Coverage
# ----------------------------------------------------------------------


@pytest.mark.parametrize("merge", [False, True])
def test_coverage_segments_match_reference(drive_logs, store_view, merge):
    expected = nr_coverage_segments_m_reference(
        drive_logs, merge_interruptions=merge
    )
    assert expected  # the corpus exercises the path
    assert nr_coverage_segments_m(drive_logs, merge_interruptions=merge) == expected
    assert nr_coverage_segments_m(store_view, merge_interruptions=merge) == expected


def test_coverage_trailing_gap_not_flushed(coverage_log):
    """A log that ends detached leaves its merge-mode segment open; the
    vectorized port must drop it exactly like the state machine does."""
    ticks = coverage_log.ticks
    seen_attached = False
    cut = None
    for i, tick in enumerate(ticks):
        if tick.nr_serving_pci is not None:
            seen_attached = True
        elif seen_attached:
            cut = i + 1  # inside a detached gap, after NR coverage
    assert cut is not None, "fixture drive must have a detached gap"
    truncated = DriveLog(
        coverage_log.carrier,
        coverage_log.bearer,
        ticks[:cut],
        [],
        [],
        scenario=coverage_log.scenario,
    )
    assert nr_coverage_segments_m(
        [truncated], merge_interruptions=True
    ) == nr_coverage_segments_m_reference([truncated], merge_interruptions=True)


def test_coverage_summary_accepts_store_slices(drive_logs, store_view):
    assert coverage_summary(store_view) == coverage_summary(drive_logs)


# ----------------------------------------------------------------------
# Durations
# ----------------------------------------------------------------------

_FILTERS = [
    {},
    {"types": (HandoverType.SCGA, HandoverType.SCGC)},
    {"band_class": BandClass.LOW},
    {"band_class": BandClass.MID},  # absent from this corpus: empty, not error
    {"types": (HandoverType.LTEH,), "nsa_context": True},
    {"types": (HandoverType.LTEH,), "nsa_context": False},
]


@pytest.mark.parametrize("stage", ["t1", "t2", "total"])
@pytest.mark.parametrize("filters", _FILTERS)
def test_stage_durations_match_reference(drive_logs, store_view, stage, filters):
    expected = stage_durations_ms_reference(drive_logs, stage, **filters)
    assert stage_durations_ms(drive_logs, stage, **filters) == expected
    assert stage_durations_ms(store_view, stage, **filters) == expected


def test_stage_durations_rejects_unknown_stage(drive_logs):
    with pytest.raises(ValueError):
        stage_durations_ms(drive_logs, "t3")


def test_duration_breakdown_accepts_store_slices(drive_logs, store_view):
    assert duration_breakdown(store_view) == duration_breakdown(drive_logs)


# ----------------------------------------------------------------------
# Colocation and bandwidth: store slices vs fresh logs
# ----------------------------------------------------------------------


def test_colocation_matches_across_input_shapes(drive_logs, store_view):
    assert colocated_tick_fraction(store_view) == colocated_tick_fraction(drive_logs)
    assert colocation_summary(store_view) == colocation_summary(drive_logs)
    assert verify_colocation_by_hulls(store_view) == verify_colocation_by_hulls(
        drive_logs
    )


def test_phase_throughput_matches_across_input_shapes(drive_logs, store_view):
    compared = 0
    for ho_type in HandoverType:
        from_logs = phase_throughput(drive_logs, ho_type)
        from_store = phase_throughput(store_view, ho_type)
        assert from_logs == from_store
        compared += from_logs is not None
    assert compared  # at least one procedure has usable windows


def test_ho_score_table_matches_across_input_shapes(drive_logs, store_view):
    from_logs = ho_score_table(drive_logs)
    assert from_logs
    assert ho_score_table(store_view) == from_logs


# ----------------------------------------------------------------------
# Frequency, signaling, and energy (§5.1/§5.3): the last list-scan
# consumers, now normalised through analysis.inputs.columnar_logs
# ----------------------------------------------------------------------


@pytest.mark.parametrize("types", [FOUR_G_TYPES, FIVE_G_NSA_TYPES, SA_TYPES])
def test_handover_rate_matches_reference(drive_logs, store_view, types):
    expected = handover_rate_per_km_reference(drive_logs, types)
    assert handover_rate_per_km(drive_logs, types) == expected
    assert handover_rate_per_km(store_view, types) == expected


def test_frequency_breakdown_matches_reference(drive_logs, store_view):
    expected = frequency_breakdown_reference(drive_logs)
    assert expected.count_by_type  # the corpus exercises the path
    assert frequency_breakdown(drive_logs) == expected
    assert frequency_breakdown(store_view) == expected


def test_signaling_per_km_matches_reference(drive_logs, store_view):
    expected = signaling_per_km_reference(drive_logs)
    assert expected.total_per_km > 0
    assert signaling_per_km(drive_logs) == expected
    assert signaling_per_km(store_view) == expected


def test_signaling_breakdown_matches_reference(drive_logs, store_view):
    expected = signaling_breakdown_reference(drive_logs)
    assert len(expected) > 1  # more than one procedure type in the corpus
    assert signaling_breakdown(drive_logs) == expected
    assert signaling_breakdown(store_view) == expected


def test_signaling_breakdown_sums_to_totals(drive_logs):
    """The per-type decomposition accounts for every tallied message."""
    per_type = signaling_breakdown(drive_logs)
    rates = signaling_per_km(drive_logs)
    distance = frequency_breakdown(drive_logs).distance_km
    total = sum(t.total for t in per_type.values())
    assert total == pytest.approx(rates.total_per_km * distance)


@pytest.mark.parametrize("types", [FOUR_G_TYPES, FIVE_G_NSA_TYPES])
def test_energy_breakdown_matches_reference(drive_logs, store_view, types):
    expected = energy_breakdown_reference(drive_logs, types)
    assert energy_breakdown(drive_logs, types) == expected
    assert energy_breakdown(store_view, types) == expected


def test_hourly_budget_accepts_store_slices(drive_logs, store_view):
    assert hourly_energy_budget(store_view, FIVE_G_NSA_TYPES) == hourly_energy_budget(
        drive_logs, FIVE_G_NSA_TYPES
    )
