"""Handover taxonomy (Table 2), timing model (§5.2), signaling (§5.1)."""

import numpy as np
import pytest

from repro.radio.bands import BandClass
from repro.rrc.handover import (
    HandoverTimingModel,
    MMWAVE_T2_MULTIPLIER,
    NON_COLOCATION_T1_PENALTY_MS,
    StageDistribution,
)
from repro.rrc.signaling import SignalingModel, SignalingTally
from repro.rrc.taxonomy import HandoverCategory, HandoverType, TechChange


class TestTaxonomy:
    def test_table2_tech_changes(self):
        assert HandoverType.SCGA.tech_change is TechChange.FOUR_TO_FIVE
        assert HandoverType.SCGR.tech_change is TechChange.FIVE_TO_FOUR
        assert HandoverType.SCGM.tech_change is TechChange.FIVE_TO_FIVE
        assert HandoverType.SCGC.tech_change is TechChange.FIVE_TO_FOUR_TO_FIVE
        assert HandoverType.LTEH.tech_change is TechChange.FOUR_TO_FOUR

    def test_table2_categories(self):
        assert HandoverType.SCGA.category is HandoverCategory.FIVE_G
        assert HandoverType.MNBH.category is HandoverCategory.FOUR_G
        assert HandoverType.LTEH.category is HandoverCategory.FOUR_G
        assert HandoverType.MCGH.category is HandoverCategory.FIVE_G

    def test_scg_procedures(self):
        scg = {t for t in HandoverType if t.is_scg_procedure}
        assert scg == {
            HandoverType.SCGA,
            HandoverType.SCGR,
            HandoverType.SCGM,
            HandoverType.SCGC,
        }

    def test_interruption_footnote(self):
        # 5G HOs do not interrupt the 4G user plane; 4G HOs interrupt both.
        assert not HandoverType.SCGM.interrupts_lte_data
        assert HandoverType.SCGM.interrupts_nr_data
        assert HandoverType.LTEH.interrupts_lte_data
        assert HandoverType.LTEH.interrupts_nr_data
        assert HandoverType.MNBH.interrupts_lte_data
        assert not HandoverType.NONE.interrupts_nr_data


class TestTimingModel:
    def _samples(self, ho_type, n=300, **kwargs):
        model = HandoverTimingModel(np.random.default_rng(0))
        return [model.sample(ho_type, **kwargs) for _ in range(n)]

    def test_nsa_total_near_167ms(self):
        # NSA average across SCG procedures is calibrated near 167 ms.
        samples = []
        for ho_type in (HandoverType.SCGA, HandoverType.SCGM, HandoverType.SCGC):
            samples += self._samples(ho_type, n=200)
        mean_total = np.mean([s.total_ms for s in samples])
        assert 140 <= mean_total <= 195

    def test_lte_total_near_76ms(self):
        samples = self._samples(HandoverType.LTEH, n=400)
        assert np.mean([s.total_ms for s in samples]) == pytest.approx(76.0, rel=0.12)

    def test_nsa_lteh_slower_than_plain(self):
        plain = np.mean([s.total_ms for s in self._samples(HandoverType.LTEH)])
        nsa = np.mean(
            [s.total_ms for s in self._samples(HandoverType.LTEH, nsa_attached=True)]
        )
        assert nsa > plain * 1.5

    def test_mmwave_t2_multiplier(self):
        low = np.mean(
            [
                s.t2_ms
                for s in self._samples(HandoverType.SCGC, band_class=BandClass.LOW)
            ]
        )
        mmwave = np.mean(
            [
                s.t2_ms
                for s in self._samples(HandoverType.SCGC, band_class=BandClass.MMWAVE)
            ]
        )
        assert mmwave / low == pytest.approx(MMWAVE_T2_MULTIPLIER, rel=0.1)

    def test_non_colocation_penalty(self):
        colocated = np.mean(
            [s.t1_ms for s in self._samples(HandoverType.SCGA, colocated=True)]
        )
        separate = np.mean(
            [s.t1_ms for s in self._samples(HandoverType.SCGA, colocated=False)]
        )
        assert separate - colocated == pytest.approx(
            NON_COLOCATION_T1_PENALTY_MS, abs=5.0
        )

    def test_sa_has_high_t1_variance(self):
        sa = self._samples(HandoverType.MCGH, standalone=True)
        lte = self._samples(HandoverType.LTEH)
        assert np.std([s.t1_ms for s in sa]) > np.std([s.t1_ms for s in lte])

    def test_none_rejected(self):
        model = HandoverTimingModel(np.random.default_rng(1))
        with pytest.raises(ValueError):
            model.sample(HandoverType.NONE)

    def test_unknown_context_rejected(self):
        model = HandoverTimingModel(np.random.default_rng(2))
        with pytest.raises(ValueError):
            model.sample(HandoverType.MCGH, standalone=False)

    def test_stage_distribution_validation(self):
        with pytest.raises(ValueError):
            StageDistribution(0.0, 5.0)

    def test_scales(self):
        base = HandoverTimingModel(np.random.default_rng(3))
        scaled = HandoverTimingModel(np.random.default_rng(3), t2_scale=2.0)
        b = np.mean([base.sample(HandoverType.LTEH).t2_ms for _ in range(200)])
        s = np.mean([scaled.sample(HandoverType.LTEH).t2_ms for _ in range(200)])
        assert s == pytest.approx(2.0 * b, rel=0.15)


class TestSignaling:
    def _model(self):
        return SignalingModel(np.random.default_rng(4))

    def test_scgc_doubles_reconfiguration(self):
        tally = self._model().for_handover(
            HandoverType.SCGC, reports_observed=2, band_class=BandClass.LOW
        )
        assert tally.rrc_reconfigurations == 2
        assert tally.rrc_measurement_reports == 2

    def test_scgr_skips_rach(self):
        tally = self._model().for_handover(
            HandoverType.SCGR, reports_observed=1, band_class=BandClass.LOW
        )
        assert tally.rach_procedures in (0, 1)  # occasional retry jitter

    def test_mmwave_phy_explosion(self):
        model = self._model()
        low = model.for_handover(
            HandoverType.SCGM, reports_observed=1, band_class=BandClass.LOW
        )
        mmwave = model.for_handover(
            HandoverType.SCGM, reports_observed=1, band_class=BandClass.MMWAVE
        )
        assert mmwave.phy_ssb_measurements >= 5 * low.phy_ssb_measurements

    def test_totals(self):
        tally = SignalingTally(1, 1, 1, 1, 8)
        assert tally.rrc_total == 3
        assert tally.total == 12

    def test_add(self):
        total = SignalingTally()
        total.add(SignalingTally(1, 1, 1, 1, 8))
        total.add(SignalingTally(2, 1, 1, 0, 4))
        assert total.rrc_measurement_reports == 3
        assert total.phy_ssb_measurements == 12

    def test_none_rejected(self):
        with pytest.raises(ValueError):
            self._model().for_handover(
                HandoverType.NONE, reports_observed=1, band_class=None
            )


class TestSignalingBreakdownConsistency:
    """The columnar §5.1 per-type decomposition reflects the model's
    structural rules when scanned off a simulated drive's packed arrays."""

    def test_per_type_tallies_respect_model_structure(self, freeway_low_log):
        from repro.analysis.frequency import signaling_breakdown

        per_type = signaling_breakdown([freeway_low_log])
        counts = freeway_low_log.count_by_type()
        assert set(per_type) == set(counts)
        for ho_type, tally in per_type.items():
            n = counts[ho_type]
            # SCG Change is release + addition: two reconfiguration
            # exchanges per handover; everything else has one.
            reconf = (2 if ho_type is HandoverType.SCGC else 1) * n
            assert tally.rrc_reconfigurations == reconf
            assert tally.rrc_reconfiguration_completes == reconf
            assert tally.rrc_measurement_reports >= n
        if HandoverType.SCGR in per_type:
            # SCG release needs no random access; only retry jitter shows.
            n = counts[HandoverType.SCGR]
            assert per_type[HandoverType.SCGR].rach_procedures <= n
