"""Mobility models and UE state/energy."""

import numpy as np
import pytest

from repro.geo.polyline import Polyline
from repro.mobility import (
    CityDriveModel,
    ConstantSpeedModel,
    FreewayDriveModel,
    WalkingLoopModel,
)
from repro.radio.bands import BandClass, band_by_name
from repro.ran.cells import Cell
from repro.geo.point import Point
from repro.rrc.signaling import SignalingTally
from repro.rrc.taxonomy import HandoverType
from repro.ue import EnergyModel, RadioMode, UEState
from repro.ue.energy import joules_to_mah


def lte_cell(gci=0, pci=7, tower=0):
    return Cell(gci, pci, band_by_name("B2"), 0, tower, Point(0, 0), 60.0, "OpX")


def nr_cell(gci=1, pci=7, tower=0):
    return Cell(gci, pci, band_by_name("n5"), 1, tower, Point(0, 0), 58.0, "OpX")


class TestMobility:
    def test_constant_speed_distance(self):
        route = Polyline.straight(1000.0)
        traj = ConstantSpeedModel(10.0).generate(route)
        assert traj.distance_m == pytest.approx(1000.0, abs=1.0)
        assert traj.mean_speed_mps == pytest.approx(10.0, rel=0.01)

    def test_arc_monotonic(self):
        rng = np.random.default_rng(0)
        route = Polyline.straight(2000.0)
        traj = FreewayDriveModel(rng).generate(route)
        arcs = [s.arc_m for s in traj]
        assert all(b >= a for a, b in zip(arcs, arcs[1:]))

    def test_freeway_speed_stays_positive(self):
        rng = np.random.default_rng(1)
        traj = FreewayDriveModel(rng).generate(Polyline.straight(3000.0))
        assert min(s.speed_mps for s in traj) >= 15.0

    def test_city_model_stops(self):
        rng = np.random.default_rng(2)
        route = Polyline.rectangle(600.0, 400.0)
        traj = CityDriveModel(rng, stop_probability=1.0).generate(route, loops=1)
        assert any(s.speed_mps == 0.0 for s in traj)

    def test_walking_loop_wraps(self):
        rng = np.random.default_rng(3)
        route = Polyline.rectangle(100.0, 50.0)
        traj = WalkingLoopModel(rng).generate(route, duration_s=600.0)
        assert traj.duration_s == pytest.approx(600.0, abs=1.0)
        assert traj.distance_m > route.length  # looped at least once

    def test_tick_interval(self):
        rng = np.random.default_rng(4)
        traj = FreewayDriveModel(rng, tick_s=0.05).generate(Polyline.straight(500.0))
        assert traj.tick_interval_s == pytest.approx(0.05)

    def test_validation(self):
        rng = np.random.default_rng(5)
        with pytest.raises(ValueError):
            ConstantSpeedModel(0.0)
        with pytest.raises(ValueError):
            FreewayDriveModel(rng, mean_speed_mps=-1.0)
        with pytest.raises(ValueError):
            WalkingLoopModel(rng).generate(Polyline.rectangle(10, 10), duration_s=0.0)
        with pytest.raises(ValueError):
            CityDriveModel(rng).generate(Polyline.rectangle(10, 10), loops=0)


class TestUEState:
    def test_modes(self):
        assert UEState().mode is RadioMode.LTE
        assert UEState(lte_serving=lte_cell()).mode is RadioMode.LTE
        assert UEState(lte_serving=lte_cell(), nr_serving=nr_cell()).mode is RadioMode.NSA
        assert UEState(standalone=True, nr_serving=nr_cell()).mode is RadioMode.SA

    def test_validation(self):
        with pytest.raises(ValueError):
            UEState(lte_serving=nr_cell())
        with pytest.raises(ValueError):
            UEState(nr_serving=lte_cell())
        with pytest.raises(ValueError):
            UEState(standalone=True, lte_serving=lte_cell())

    def test_same_pci_heuristic(self):
        state = UEState(lte_serving=lte_cell(pci=7), nr_serving=nr_cell(pci=7))
        assert state.same_pci_legs() is True
        state = UEState(lte_serving=lte_cell(pci=7), nr_serving=nr_cell(pci=8))
        assert state.same_pci_legs() is False
        assert UEState(lte_serving=lte_cell()).same_pci_legs() is None

    def test_colocated_legs(self):
        state = UEState(lte_serving=lte_cell(tower=3), nr_serving=nr_cell(tower=3))
        assert state.colocated_legs() is True
        state = UEState(lte_serving=lte_cell(tower=3), nr_serving=nr_cell(tower=4))
        assert state.colocated_legs() is False


class TestEnergyModel:
    def _energy(self, mode, band_class, n=400):
        model = EnergyModel(np.random.default_rng(6))
        ho = HandoverType.SCGM if mode is RadioMode.NSA else HandoverType.LTEH
        return np.mean(
            [model.for_handover(ho, mode, band_class).energy_j for _ in range(n)]
        )

    def test_nsa_low_calibration(self):
        # 553 HOs at this energy should drain ~34.7 mAh (§5.3).
        per_ho = self._energy(RadioMode.NSA, BandClass.LOW)
        assert 553 * joules_to_mah(per_ho) == pytest.approx(34.7, rel=0.1)

    def test_mmwave_calibration(self):
        per_ho = self._energy(RadioMode.NSA, BandClass.MMWAVE)
        assert 998 * joules_to_mah(per_ho) == pytest.approx(81.7, rel=0.1)

    def test_lte_calibration(self):
        per_ho = self._energy(RadioMode.LTE, None)
        assert 217 * joules_to_mah(per_ho) == pytest.approx(3.4, rel=0.12)

    def test_nsa_power_exceeds_lte(self):
        # Fig 10: NSA per-HO power is 1.2-2.3x LTE.
        nsa = EnergyModel.per_handover_mean_j(RadioMode.NSA, BandClass.LOW) / 0.62
        model = EnergyModel(np.random.default_rng(7))
        nsa_p = model.for_handover(HandoverType.SCGM, RadioMode.NSA, BandClass.LOW).power_w
        lte_p = model.for_handover(HandoverType.LTEH, RadioMode.LTE, None).power_w
        assert 1.2 <= nsa_p / lte_p <= 2.4

    def test_mmwave_ho_power_below_low_band(self):
        # Fig 10: a single mmWave HO runs at ~54% lower power.
        model = EnergyModel(np.random.default_rng(8))
        low = model.for_handover(HandoverType.SCGM, RadioMode.NSA, BandClass.LOW).power_w
        mm = model.for_handover(HandoverType.SCGM, RadioMode.NSA, BandClass.MMWAVE).power_w
        assert mm / low == pytest.approx(0.46, abs=0.1)

    def test_signaling_correlation(self):
        model = EnergyModel(np.random.default_rng(9), jitter=0.0)
        quiet = SignalingTally(1, 1, 1, 1, 4)
        busy = SignalingTally(4, 2, 2, 3, 64)
        e_quiet = model.for_handover(
            HandoverType.SCGM, RadioMode.NSA, BandClass.LOW, quiet
        ).energy_j
        e_busy = model.for_handover(
            HandoverType.SCGM, RadioMode.NSA, BandClass.LOW, busy
        ).energy_j
        assert e_busy > e_quiet

    def test_none_rejected(self):
        model = EnergyModel(np.random.default_rng(10))
        with pytest.raises(ValueError):
            model.for_handover(HandoverType.NONE, RadioMode.LTE, None)

    def test_joules_to_mah(self):
        # 3.85 V x 3.6 C = 13.86 J per mAh.
        assert joules_to_mah(13.86) == pytest.approx(1.0, rel=0.001)
