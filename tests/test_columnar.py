"""ColumnarLog: lossless packing, the .npz codec, views, and digests."""

from __future__ import annotations

import io
import json

import numpy as np
import pytest

from repro.net.bearer import BearerMode
from repro.radio.bands import BandClass
from repro.simulate.columnar import (
    ARRAY_KEYS,
    ColumnarLog,
    load_columnar,
    save_columnar,
)
from repro.simulate.serialization import log_to_dict
from tests.conftest import make_optional_field_log


def _assert_identical(rebuilt, original):
    assert rebuilt.carrier == original.carrier
    assert rebuilt.bearer == original.bearer
    assert rebuilt.scenario == original.scenario
    assert rebuilt.ticks == original.ticks
    assert rebuilt.reports == original.reports
    assert rebuilt.handovers == original.handovers
    # Byte-for-byte on the artifact format too, and JSON-compatible
    # (native Python scalars, not numpy types).
    payload = log_to_dict(rebuilt)
    assert payload == log_to_dict(original)
    json.dumps(payload)


class TestRoundTrip:
    def test_simulated_log_bit_identical(self, freeway_low_log):
        rebuilt = ColumnarLog.from_drive_log(freeway_low_log).to_drive_log()
        _assert_identical(rebuilt, freeway_low_log)

    @pytest.mark.parametrize("bearer", [None, *BearerMode])
    @pytest.mark.parametrize("band", [None, *BandClass])
    def test_optional_fields_none_vs_present(self, bearer, band):
        log = make_optional_field_log(bearer=bearer, band=band)
        rebuilt = ColumnarLog.from_drive_log(log).to_drive_log()
        _assert_identical(rebuilt, log)
        # The specific optional enums survive exactly.
        assert rebuilt.ticks[0].nr_band_class is band
        assert rebuilt.ticks[1].nr_band_class is None
        assert rebuilt.handovers[0].band_class is band
        assert rebuilt.handovers[1].band_class is None
        assert rebuilt.bearer is bearer

    def test_npz_roundtrip(self, freeway_low_log, tmp_path):
        clog = freeway_low_log.columnar()
        path = tmp_path / "drive.npz"
        with open(path, "wb") as fh:
            save_columnar(clog, fh)
        loaded = load_columnar(path)
        _assert_identical(loaded.to_drive_log(), freeway_low_log)

    def test_npz_smaller_than_json(self, freeway_low_log, tmp_path):
        from repro.simulate.serialization import save_log

        npz = tmp_path / "drive.npz"
        with open(npz, "wb") as fh:
            save_columnar(freeway_low_log.columnar(), fh)
        plain = save_log(freeway_low_log, tmp_path / "drive.json")
        assert npz.stat().st_size < plain.stat().st_size / 2

    def test_negative_identifier_rejected(self):
        log = make_optional_field_log()
        bad = log.ticks[0].__class__(
            **{
                **{
                    name: getattr(log.ticks[0], name)
                    for name in log.ticks[0].__dataclass_fields__
                },
                "lte_serving_gci": -5,
            }
        )
        log.ticks[0] = bad  # type: ignore[index]
        log.ticks = [bad, log.ticks[1]]
        with pytest.raises(ValueError, match="sentinel"):
            ColumnarLog.from_drive_log(log)


class TestBacking:
    def test_memoized_series_are_views(self, freeway_low_log):
        clog = ColumnarLog.from_drive_log(freeway_low_log)
        rebuilt = clog.to_drive_log()
        times, caps = rebuilt.capacity_series()
        assert np.shares_memory(times, clog.arrays["tick_time_s"])
        assert np.shares_memory(caps, clog.arrays["tick_total_capacity_mbps"])
        assert not times.flags.writeable and not caps.flags.writeable
        lte, nr = rebuilt.serving_pci_series()
        assert np.shares_memory(lte, clog.arrays["tick_lte_pci"])
        assert np.shares_memory(nr, clog.arrays["tick_nr_pci"])
        # And the views match what a fresh (unbacked) log computes.
        fresh_lte, fresh_nr = freeway_low_log.serving_pci_series()
        np.testing.assert_array_equal(lte, fresh_lte)
        np.testing.assert_array_equal(nr, fresh_nr)
        np.testing.assert_array_equal(times, freeway_low_log.capacity_series()[0])

    def test_columnar_accessor_memoizes(self, freeway_low_log):
        clog = freeway_low_log.columnar()
        assert freeway_low_log.columnar() is clog
        rebuilt = clog.to_drive_log()
        # Cache hits carry their backing store: no repack.
        assert rebuilt.columnar() is clog


class TestDigest:
    def test_digest_stable_across_codec(self, freeway_low_log):
        clog = freeway_low_log.columnar()
        buffer = io.BytesIO()
        save_columnar(clog, buffer)
        buffer.seek(0)
        assert load_columnar(buffer).content_digest() == clog.content_digest()

    def test_digest_tracks_content(self):
        a = make_optional_field_log(band=BandClass.LOW)
        b = make_optional_field_log(band=BandClass.MID)
        same = make_optional_field_log(band=BandClass.LOW)
        assert a.columnar().content_digest() != b.columnar().content_digest()
        assert a.columnar().content_digest() == same.columnar().content_digest()

    def test_dataset_cache_digest_uses_packed_arrays(self, freeway_low_log):
        from repro.ml.dataset_cache import log_content_digest

        token = log_content_digest(freeway_low_log)
        assert token == freeway_low_log.columnar().content_digest()
        # Memoized on the instance.
        assert log_content_digest(freeway_low_log) == token


class TestFormat:
    def test_version_gate(self, tmp_path, monkeypatch):
        log = make_optional_field_log()
        path = tmp_path / "drive.npz"
        monkeypatch.setattr("repro.simulate.columnar.FORMAT_VERSION", 999)
        with open(path, "wb") as fh:
            save_columnar(log.columnar(), fh)
        monkeypatch.undo()
        with pytest.raises(ValueError, match="format version"):
            load_columnar(path)

    def test_archive_holds_exactly_the_canonical_arrays(self, tmp_path):
        log = make_optional_field_log(bearer=BearerMode.FIVE_G_ONLY)
        path = tmp_path / "drive.npz"
        with open(path, "wb") as fh:
            save_columnar(log.columnar(), fh)
        with np.load(path, allow_pickle=False) as archive:
            names = set(archive.files)
        assert names == set(ARRAY_KEYS) | {
            "format_version",
            "carrier",
            "bearer",
            "scenario",
        }
