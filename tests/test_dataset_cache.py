"""The derived-dataset cache: round trips, knobs, and invalidation.

Complements test_runner_cache.py (drive logs) for the dataset layer:
feature matrices must round-trip losslessly, honour the shared
``REPRO_*`` knobs, and — the part that silently corrupts results when
missing — invalidate when either the input logs or the feature-
extraction code change.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.simulate.cache as simulate_cache
from repro.ml.dataset_cache import (
    DatasetCache,
    build_cached,
    log_content_digest,
)
from repro.ml.features import LabeledDataset, build_radio_feature_dataset
from repro.radio.bands import BandClass
from repro.ran import OPX
from repro.simulate.scenarios import freeway_scenario


@pytest.fixture(scope="module")
def logs():
    return [freeway_scenario(OPX, BandClass.LOW, length_km=1.5, seed=41).run()]


@pytest.fixture(scope="module")
def dataset(logs):
    return build_radio_feature_dataset(logs, stride=10)


def _cache(tmp_path) -> DatasetCache:
    return DatasetCache(tmp_path, enabled=True)


def test_round_trip_is_lossless(tmp_path, logs, dataset):
    cache = _cache(tmp_path)
    key = cache.key_for("radio", logs, {"stride": 10})
    assert cache.get("radio", key) is None
    cache.put("radio", key, dataset)
    assert cache.stats == {
        "hits": 0,
        "misses": 1,
        "stores": 1,
        "put_failures": 0,
        "corrupt": 0,
    }

    warm = _cache(tmp_path)
    loaded = warm.get("radio", key)
    assert loaded is not None
    assert np.array_equal(loaded.x, dataset.x)
    assert np.array_equal(loaded.times_s, dataset.times_s)
    assert loaded.labels == dataset.labels
    assert warm.stats == {
        "hits": 1,
        "misses": 0,
        "stores": 0,
        "put_failures": 0,
        "corrupt": 0,
    }


def test_build_cached_skips_builder_on_hit(tmp_path, logs, dataset):
    cache = _cache(tmp_path)
    calls = []

    def builder():
        calls.append(1)
        return dataset

    first = build_cached("radio", builder, logs, {"stride": 10}, cache=cache)
    second = build_cached("radio", builder, logs, {"stride": 10}, cache=cache)
    assert len(calls) == 1
    assert np.array_equal(first.x, second.x)
    assert cache.stats == {
        "hits": 1,
        "misses": 1,
        "stores": 1,
        "put_failures": 0,
        "corrupt": 0,
    }


def test_key_tracks_params_logs_and_kind(tmp_path, logs):
    cache = _cache(tmp_path)
    base = cache.key_for("radio", logs, {"stride": 10})
    assert cache.key_for("radio", logs, {"stride": 5}) != base
    assert cache.key_for("location-seq", logs, {"stride": 10}) != base
    other = [freeway_scenario(OPX, BandClass.LOW, length_km=1.5, seed=42).run()]
    assert cache.key_for("radio", other, {"stride": 10}) != base
    # Same content, fresh object: the digest is content-addressed.
    replay = [freeway_scenario(OPX, BandClass.LOW, length_km=1.5, seed=41).run()]
    assert cache.key_for("radio", replay, {"stride": 10}) == base
    assert log_content_digest(replay[0]) == log_content_digest(logs[0])


def test_code_version_invalidates_entries(tmp_path, logs, dataset, monkeypatch):
    """Editing a feature-extraction constant must change the digest.

    The key embeds the package-wide code-version token; simulating a
    source edit by repointing the memoized token must route the next
    lookup to a different entry (a miss), never serve the stale matrix.
    """
    cache = _cache(tmp_path)
    old_key = cache.key_for("radio", logs, {"stride": 10})
    cache.put("radio", old_key, dataset)

    monkeypatch.setattr(simulate_cache, "_code_version_token", "post-edit-token")
    new_key = cache.key_for("radio", logs, {"stride": 10})
    assert new_key != old_key
    assert cache.get("radio", new_key) is None

    built = []
    build_cached(
        "radio", lambda: built.append(1) or dataset, logs, {"stride": 10}, cache=cache
    )
    assert built  # rebuilt, not served stale


def test_no_cache_env_disables(tmp_path, monkeypatch, logs, dataset):
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    cache = DatasetCache()
    assert not cache.enabled
    key = cache.key_for("radio", logs, {"stride": 10})
    cache.put("radio", key, dataset)
    assert not (tmp_path / "datasets").exists()
    assert cache.get("radio", key) is None
    assert cache.stats == {
        "hits": 0,
        "misses": 1,
        "stores": 0,
        "put_failures": 0,
        "corrupt": 0,
    }


def test_cache_dir_env_relocates(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
    cache = DatasetCache()
    assert cache.root == tmp_path / "elsewhere" / "datasets"
    assert cache.enabled


def test_corrupt_entry_is_a_miss(tmp_path, logs, dataset):
    cache = _cache(tmp_path)
    key = cache.key_for("radio", logs, {"stride": 10})
    cache.put("radio", key, dataset)
    path = cache._path("radio", key)
    path.write_bytes(b"not an npz archive")
    assert cache.get("radio", key) is None
    assert cache.stats["misses"] == 1
