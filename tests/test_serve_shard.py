"""Sharded serving layer: fd handoff, routing, crash resync, knobs.

The end-to-end tests run the controller in-process (``async with
ShardedPrognosServer(...)``) so they can reach into shard bookkeeping
— pids, pending handoffs, restart counters — while real forked engine
processes serve real TCP clients.
"""

from __future__ import annotations

import asyncio
import os
import signal
import socket
import time
import warnings

import pytest

from repro.core.evaluation import configs_for_log, run_prognos_over_logs
from repro.radio.bands import BandClass
from repro.ran import OPX
from repro.serve import protocol
from repro.serve.loadgen import build_script, run_load, spawn_server, stop_server
from repro.serve.server import ServerConfig
from repro.serve.shard import (
    ShardedPrognosServer,
    make_server,
    recv_handoff,
    resolve_routing,
    resolve_shards,
    send_handoff,
    serve_shards,
    shard_for_session,
)
from repro.simulate.runner import run_drives
from repro.simulate.scenarios import freeway_scenario

EVENT_CONFIGS = configs_for_log(OPX, (BandClass.LOW,))


@pytest.fixture(scope="module")
def serve_logs():
    """Two short freeway drives shared by the end-to-end tests."""
    return run_drives(
        [
            freeway_scenario(OPX, BandClass.LOW, length_km=0.8, seed=81),
            freeway_scenario(OPX, BandClass.LOW, length_km=0.8, seed=82),
        ]
    )


@pytest.fixture(scope="module")
def offline(serve_logs):
    """The oracle prediction stream per drive."""
    streams = []
    for log in serve_logs:
        result = run_prognos_over_logs([log], EVENT_CONFIGS)
        streams.append(
            [(float(t), p) for t, p in zip(result.times_s, result.predictions)]
        )
    return streams


def _scripts(serve_logs, session_ids):
    return [
        build_script(serve_logs[i % 2], sid, EVENT_CONFIGS)
        for i, sid in enumerate(session_ids)
    ]


def _assert_bit_identity(result, scripts, offline):
    assert result.failed == 0 and result.completed == len(scripts)
    for i, script in enumerate(scripts):
        bye = result.byes[script.session_id]
        assert bye["answered"] == bye["ticks"] == script.n_ticks
        assert bye["dropped"] == 0 and bye["lost"] == 0
        expected = offline[i % 2]
        got = result.predictions[script.session_id]
        assert len(got) == len(expected)
        for (t, ho, _s, _sim, _lead, _lvl), (rt, rho) in zip(got, expected):
            assert t == rt and ho is rho


# ----------------------------------------------------------------------
# Units: hashing, fd handoff wire, knob resolution
# ----------------------------------------------------------------------


def test_shard_hash_stable_and_in_range():
    for n in (1, 2, 4, 7):
        for sid in ("", "ue-0001", "α-session", "x" * 300):
            shard = shard_for_session(sid, n)
            assert 0 <= shard < n
            assert shard == shard_for_session(sid, n)  # stable
    hits = {shard_for_session(f"ue-{i:04d}", 4) for i in range(64)}
    assert hits == {0, 1, 2, 3}  # spreads across all shards


def test_handoff_roundtrip_carries_fd_and_payload():
    """send_handoff/recv_handoff round-trip the sequence number, the
    handshake payload, and a *working* duplicate of the socket."""
    chan_a, chan_b = socket.socketpair(socket.AF_UNIX, socket.SOCK_DGRAM)
    client, server_side = socket.socketpair()
    try:
        payload = b'{"type":"hello","session":"rt"}'
        send_handoff(chan_a, 42, payload, server_side.fileno())
        seq, got, fd = recv_handoff(chan_b)
        assert (seq, got) == (42, payload)
        adopted = socket.socket(fileno=fd)
        server_side.close()  # the original duplicate is gone...
        client.sendall(b"ping")
        assert adopted.recv(16) == b"ping"  # ...the adopted copy works
        adopted.sendall(b"pong")
        assert client.recv(16) == b"pong"
        adopted.close()
    finally:
        chan_a.close()
        chan_b.close()
        client.close()


def test_handoff_recv_on_drained_socket_raises_blocking():
    chan_a, chan_b = socket.socketpair(socket.AF_UNIX, socket.SOCK_DGRAM)
    chan_b.setblocking(False)
    try:
        with pytest.raises(BlockingIOError):
            recv_handoff(chan_b)
    finally:
        chan_a.close()
        chan_b.close()


def test_shards_env_knob_validated(monkeypatch):
    monkeypatch.setenv("REPRO_SERVE_SHARDS", "3")
    assert serve_shards() == 3
    assert resolve_shards(ServerConfig()) == 3
    assert resolve_shards(ServerConfig(shards=5)) == 5  # explicit wins
    default = max(1, (os.cpu_count() or 2) - 1)
    for bad in ("lots", "0", "-2", "2.5"):
        monkeypatch.setenv("REPRO_SERVE_SHARDS", bad)
        with pytest.warns(RuntimeWarning, match="REPRO_SERVE_SHARDS"):
            assert serve_shards() == default
        # Warn-once: the same broken value stays silent afterwards.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert serve_shards() == default


def test_routing_env_knob_validated(monkeypatch):
    monkeypatch.setenv("REPRO_SERVE_ROUTING", "sideways")
    with pytest.warns(RuntimeWarning, match="REPRO_SERVE_ROUTING"):
        resolve_routing(ServerConfig(routing="auto"))
    monkeypatch.setenv("REPRO_SERVE_ROUTING", "handoff")
    assert resolve_routing(ServerConfig(routing="auto")) == "handoff"
    with pytest.raises(ValueError):
        resolve_routing(ServerConfig(routing="multicast"))


def test_reuseport_unavailable_falls_back_to_handoff(monkeypatch):
    import repro.serve.shard as shard_mod

    monkeypatch.setattr(shard_mod, "reuseport_available", lambda: False)
    assert resolve_routing(ServerConfig(routing="auto")) == "handoff"
    assert resolve_routing(ServerConfig(routing="reuseport")) == "handoff"


def test_make_server_dispatch():
    from repro.serve.server import PrognosServer

    assert isinstance(make_server(ServerConfig(shards=1)), PrognosServer)
    assert isinstance(make_server(ServerConfig(shards=2)), ShardedPrognosServer)


# ----------------------------------------------------------------------
# End-to-end: both routing modes, bit-identical to the offline oracle
# ----------------------------------------------------------------------


@pytest.mark.parametrize("routing", ["handoff", "reuseport"])
def test_sharded_end_to_end_bit_identity(serve_logs, offline, routing):
    if routing == "reuseport" and not hasattr(socket, "SO_REUSEPORT"):
        pytest.skip("no SO_REUSEPORT on this platform")
    scripts = _scripts(serve_logs, [f"ue-{i:02d}" for i in range(6)])
    config = ServerConfig(batched=True, shards=2, routing=routing)
    pid, port = spawn_server(config)
    try:
        result = run_load(port, scripts, collect=True)
    finally:
        exit_code = stop_server(pid)
    assert exit_code == 0, f"{routing} controller did not shut down cleanly"
    _assert_bit_identity(result, scripts, offline)
    shards_seen = {result.byes[s.session_id].get("shard") for s in scripts}
    assert shards_seen <= {0, 1} and None not in shards_seen
    if routing == "handoff":
        # Consistent hashing pins each session to its computed shard.
        for script in scripts:
            assert result.byes[script.session_id]["shard"] == shard_for_session(
                script.session_id, 2
            )


def test_uneven_distribution_still_completes(serve_logs, offline):
    """Every session hashed onto one shard of two: the hot shard serves
    them all, the idle one stays healthy, nothing stalls."""
    skewed = [f"skew-{i}" for i in range(40) if shard_for_session(f"skew-{i}", 2) == 0]
    assert len(skewed) >= 4
    scripts = _scripts(serve_logs, skewed[:5])
    config = ServerConfig(batched=True, shards=2, routing="handoff")
    pid, port = spawn_server(config)
    try:
        result = run_load(port, scripts, collect=True)
    finally:
        exit_code = stop_server(pid)
    assert exit_code == 0
    _assert_bit_identity(result, scripts, offline)
    assert {result.byes[s.session_id]["shard"] for s in scripts} == {0}


# ----------------------------------------------------------------------
# Crash ladder: respawn, inbox resync, sibling isolation, degradation
# ----------------------------------------------------------------------


async def _poll(predicate, timeout_s=20.0, interval_s=0.05):
    deadline = time.monotonic() + timeout_s
    while True:
        if predicate():
            return
        assert time.monotonic() < deadline, "condition not reached in time"
        await asyncio.sleep(interval_s)


async def _run_session(port, script, *, pause_after=None, resume=None):
    """Drive one scripted session over asyncio; returns (predictions, bye)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(protocol.frame(protocol.encode_json(script.hello)))
    await writer.drain()
    welcome = protocol.decode_json(await protocol.read_frame(reader))
    assert welcome["type"] == "welcome"
    predictions = []
    for step, (buf, _off) in enumerate(script.steps):
        if pause_after is not None and step == pause_after:
            await resume()
        writer.write(bytes(buf))
        await writer.drain()
        payload = await protocol.read_frame(reader)
        assert payload is not None and payload[:1] == b"P"
        t, ho, *_rest = protocol.decode_prediction(payload)
        predictions.append((t, ho))
    writer.write(protocol.frame(b"B"))
    await writer.drain()
    bye = protocol.decode_json(await protocol.read_frame(reader))
    assert bye["type"] == "bye"
    writer.close()
    return predictions, bye, welcome


def test_killed_shard_respawns_and_siblings_stay_bit_identical(
    serve_logs, offline
):
    """SIGKILL one shard mid-run: the controller reaps and respawns it,
    a sibling session in flight on the other shard is untouched (its
    stream stays byte-identical to the oracle), and new sessions for
    the dead shard land on the successor with the restart surfaced in
    their bye."""

    async def main():
        survivor_sid = next(
            f"live-{i}" for i in range(100) if shard_for_session(f"live-{i}", 2) == 0
        )
        victim_sid = next(
            f"dead-{i}" for i in range(100) if shard_for_session(f"dead-{i}", 2) == 1
        )
        survivor = build_script(serve_logs[0], survivor_sid, EVENT_CONFIGS)
        replacement = build_script(serve_logs[1], victim_sid, EVENT_CONFIGS)
        config = ServerConfig(batched=True, shards=2, routing="handoff")
        async with ShardedPrognosServer(config) as server:
            victim_shard = server._shards[1]
            old_pid = victim_shard.pid

            async def kill_victim():
                os.kill(old_pid, signal.SIGKILL)
                await _poll(
                    lambda: victim_shard.restarts == 1
                    and victim_shard.ready.is_set()
                    and victim_shard.pid != old_pid
                )

            # The survivor session crosses the kill mid-stream.
            predictions, bye, welcome = await _run_session(
                server.port,
                survivor,
                pause_after=survivor.n_ticks // 2,
                resume=kill_victim,
            )
            assert welcome["shard"] == 0 and bye["shard"] == 0
            assert bye["lost"] == 0 and bye["dropped"] == 0
            assert predictions == offline[0]

            # A new session for the killed shard runs on the successor.
            predictions, bye, _welcome = await _run_session(
                server.port, replacement
            )
            assert bye["shard"] == 1 and bye["shard_restarts"] == 1
            assert predictions == offline[1]

            stats = await server.stats()
            assert stats["restarts"] == 1
            per_shard = {s["shard"]: s for s in stats["per_shard"]}
            assert per_shard[1]["restarts"] == 1 and not per_shard[1]["degraded"]
            assert per_shard[0]["restarts"] == 0
            assert per_shard[0]["engine"]["sessions_total"] == 1
            assert per_shard[1]["engine"]["sessions_total"] == 1  # post-respawn

    asyncio.run(main())


def test_handoff_resync_after_stopped_shard_killed(serve_logs):
    """A client whose handshake was routed to a SIGSTOPped shard is not
    lost when that shard is killed: the controller still holds the fd
    (unacknowledged handoff) and resyncs it to the respawned shard."""

    async def main():
        sid = next(
            f"sync-{i}" for i in range(100) if shard_for_session(f"sync-{i}", 2) == 1
        )
        script = build_script(serve_logs[0], sid, EVENT_CONFIGS)
        config = ServerConfig(batched=True, shards=2, routing="handoff")
        async with ShardedPrognosServer(config) as server:
            shard = server._shards[1]
            os.kill(shard.pid, signal.SIGSTOP)
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            writer.write(protocol.frame(protocol.encode_json(script.hello)))
            await writer.drain()
            # The handshake is routed but cannot be adopted: it parks in
            # the controller's pending set.
            await _poll(lambda: len(shard.pending) == 1, timeout_s=10.0)
            os.kill(shard.pid, signal.SIGKILL)
            welcome = protocol.decode_json(
                await asyncio.wait_for(protocol.read_frame(reader), timeout=30.0)
            )
            assert welcome["type"] == "welcome" and welcome["shard"] == 1
            # The successor adopted it; the controller released its dup.
            await _poll(lambda: len(shard.pending) == 0, timeout_s=10.0)
            assert shard.restarts == 1
            writer.write(protocol.frame(b"B"))
            await writer.drain()
            bye = protocol.decode_json(await protocol.read_frame(reader))
            assert bye["type"] == "bye" and bye["shard_restarts"] == 1
            writer.close()

    asyncio.run(main())


def test_shard_degrades_alone_past_restart_budget(serve_logs, offline):
    """Past the restart budget the shard respawns inline-sequential —
    that shard alone; the sibling keeps its micro-batch engine."""

    async def main():
        config = ServerConfig(
            batched=True, shards=2, routing="handoff", shard_restarts=0
        )
        async with ShardedPrognosServer(config) as server:
            shard = server._shards[1]
            old_pid = shard.pid
            os.kill(old_pid, signal.SIGKILL)
            await _poll(
                lambda: shard.restarts == 1
                and shard.ready.is_set()
                and shard.pid != old_pid
            )
            assert shard.degraded and not server._shards[0].degraded
            stats = await server.stats()
            per_shard = {s["shard"]: s for s in stats["per_shard"]}
            assert per_shard[1]["degraded"]
            assert per_shard[1]["engine"]["batched"] is False
            assert per_shard[0]["engine"]["batched"] is True
            # Degraded still serves correctly.
            sid = next(
                f"deg-{i}"
                for i in range(100)
                if shard_for_session(f"deg-{i}", 2) == 1
            )
            script = build_script(serve_logs[0], sid, EVENT_CONFIGS)
            predictions, bye, _welcome = await _run_session(server.port, script)
            assert bye["shard"] == 1 and bye["shard_restarts"] == 1
            assert predictions == offline[0]

    asyncio.run(main())


# ----------------------------------------------------------------------
# Daemon teardown: a wedged or orphaned server can never leak
# ----------------------------------------------------------------------


def test_stop_server_escalates_to_sigkill():
    """A daemon that ignores SIGTERM is killed and reaped on expiry."""
    # The child confirms over a pipe that SIG_IGN is installed before the
    # parent fires SIGTERM — otherwise the signal can land first and the
    # child dies with -SIGTERM instead of proving the SIGKILL escalation.
    read_fd, write_fd = os.pipe()
    pid = os.fork()
    if pid == 0:
        os.close(read_fd)
        signal.signal(signal.SIGTERM, signal.SIG_IGN)
        os.write(write_fd, b"x")
        os.close(write_fd)
        time.sleep(600)
        os._exit(0)
    os.close(write_fd)
    assert os.read(read_fd, 1) == b"x"
    os.close(read_fd)
    t0 = time.monotonic()
    exit_code = stop_server(pid, timeout_s=0.5)
    assert exit_code == -signal.SIGKILL
    assert time.monotonic() - t0 < 5.0
    with pytest.raises(ChildProcessError):
        os.waitpid(pid, 0)  # really reaped: nothing left to wait for


def test_client_death_mid_handshake_leaves_no_orphans():
    """A client that connects, half-sends a hello, and vanishes must not
    wedge teardown: stop_server reaps the whole daemon tree."""
    config = ServerConfig(batched=True, shards=2, routing="handoff")
    pid, port = spawn_server(config)
    try:
        sock = socket.create_connection(("127.0.0.1", port))
        sock.sendall(b"\x00\x00")  # truncated length prefix, then die
        sock.close()
        # And one that stays connected but silent (parked in the
        # controller's handshake read) while we tear down.
        parked = socket.create_connection(("127.0.0.1", port))
    finally:
        exit_code = stop_server(pid, timeout_s=10.0)
    parked.close()
    assert exit_code == 0
    with pytest.raises(ChildProcessError):
        os.waitpid(pid, 0)
