"""Cross-session MPC batching: mpc_select_many vs scalar select."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.abr.algorithms import (
    FastMpc,
    RateBased,
    RobustMpc,
    mpc_select_many,
)

LADDER_A = [3.0, 7.5, 12.0, 18.5, 28.5, 43.0]
LADDER_B = [0.3, 0.75, 1.2, 1.85, 2.85, 4.3]


def _algo_with_errors(cls, errors):
    algo = cls()
    for predicted, actual in errors:
        algo.observe_error(predicted, actual)
    return algo


def test_matches_scalar_select_across_state_and_ladders():
    rng = np.random.default_rng(42)
    entries = []
    scalars = []
    for i in range(60):
        cls = (RobustMpc, FastMpc)[i % 2]
        errors = [
            (float(rng.uniform(1, 50)), float(rng.uniform(1, 50)))
            for _ in range(int(rng.integers(0, 8)))
        ]
        algo = _algo_with_errors(cls, errors)
        twin = _algo_with_errors(cls, errors)
        levels = (LADDER_A, LADDER_B)[i % 3 == 0]
        buffer_s = float(rng.uniform(0.0, 30.0))
        last_level = int(rng.integers(0, len(levels)))
        predicted = float(rng.uniform(0.2, 60.0))
        chunk_s = (4.0, 2.0)[i % 5 == 0]
        entries.append((algo, levels, buffer_s, last_level, predicted, chunk_s))
        scalars.append(twin.select(levels, buffer_s, last_level, predicted, chunk_s))
    assert mpc_select_many(entries) == scalars


def test_empty_and_single_entry():
    assert mpc_select_many([]) == []
    algo = RobustMpc()
    entry = (algo, LADDER_A, 8.0, 2, 20.0, 4.0)
    assert mpc_select_many([entry]) == [
        RobustMpc().select(LADDER_A, 8.0, 2, 20.0, 4.0)
    ]


def test_mixed_groups_keep_result_order():
    """Entries from different ladders/chunk sizes interleave; results
    must come back in input order, each equal to its scalar twin."""
    entries, scalars = [], []
    for i in range(12):
        levels = LADDER_A if i % 2 else LADDER_B
        chunk_s = 4.0 if i % 3 else 2.0
        algo, twin = RobustMpc(), RobustMpc()
        if i % 4 == 0:
            algo.observe_error(10.0, 5.0)
            twin.observe_error(10.0, 5.0)
        entries.append((algo, levels, float(i), i % len(levels), 5.0 + i, chunk_s))
        scalars.append(twin.select(levels, float(i), i % len(levels), 5.0 + i, chunk_s))
    assert mpc_select_many(entries) == scalars


def test_rejects_non_mpc_algorithms():
    with pytest.raises(TypeError):
        mpc_select_many([(RateBased(), LADDER_A, 8.0, 0, 10.0, 4.0)])


def test_select_many_advances_no_state():
    """Selection is pure: running it must not change the error window,
    so batched and sequential servers stay in lockstep."""
    algo = RobustMpc()
    algo.observe_error(10.0, 8.0)
    before = list(algo._recent_errors)
    mpc_select_many([(algo, LADDER_A, 4.0, 1, 12.0, 4.0)] * 3)
    assert list(algo._recent_errors) == before
