"""Data plane: capacity, latency/bearers, TCP, trace emulation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.net import (
    BandwidthTrace,
    BearerMode,
    CapacityModel,
    LatencyModel,
    TcpBbr,
    TcpConnection,
    TcpCubic,
    TraceDrivenLink,
)
from repro.radio.bands import band_by_name
from repro.radio.rrs import RRSSample


def sample(sinr):
    return RRSSample(rsrp_dbm=-90.0, rsrq_db=-8.0, sinr_db=sinr)


class TestCapacity:
    def setup_method(self):
        self.model = CapacityModel()

    def test_monotonic_in_sinr(self):
        band = band_by_name("n41")
        caps = [self.model.capacity_mbps(band, s) for s in (-5, 0, 10, 20, 30)]
        assert caps == sorted(caps)

    def test_mmwave_reaches_multi_gbps(self):
        band = band_by_name("n260")
        assert self.model.capacity_mbps(band, 30.0) > 2000.0

    def test_lte_capped(self):
        band = band_by_name("B2")
        # Past the efficiency cap more SINR adds nothing.
        assert self.model.capacity_mbps(band, 40.0) == self.model.capacity_mbps(band, 60.0)

    def test_transient_reduces_fresh_attach(self):
        band = band_by_name("n260")
        settled = self.model.leg_capacity(band, sample(15.0), time_since_attach_s=60.0)
        fresh = self.model.leg_capacity(
            band, sample(15.0), time_since_attach_s=0.0, cross_gnb_attach=True
        )
        assert fresh.capacity_mbps < settled.capacity_mbps

    def test_cross_gnb_transient_is_larger(self):
        band = band_by_name("n260")
        same = self.model.leg_capacity(band, sample(15.0), time_since_attach_s=0.0)
        cross = self.model.leg_capacity(
            band, sample(15.0), time_since_attach_s=0.0, cross_gnb_attach=True
        )
        assert cross.capacity_mbps < same.capacity_mbps

    def test_validation(self):
        with pytest.raises(ValueError):
            CapacityModel(utilization=0.0)

    @given(st.floats(min_value=-20, max_value=40))
    def test_nonnegative(self, sinr):
        assert self.model.capacity_mbps(band_by_name("n71"), sinr) >= 0.0


class TestLatency:
    def setup_method(self):
        self.model = LatencyModel(np.random.default_rng(0), jitter_ms=0.0)

    def test_dual_baseline_above_5g_only(self):
        dual = self.model.rtt_ms(BearerMode.DUAL, nr_attached=True)
        five = self.model.rtt_ms(BearerMode.FIVE_G_ONLY, nr_attached=True)
        assert dual > five

    def test_dual_direct_matches_5g_only_closely(self):
        direct = self.model.rtt_ms(BearerMode.DUAL_DIRECT, nr_attached=True)
        five = self.model.rtt_ms(BearerMode.FIVE_G_ONLY, nr_attached=True)
        assert abs(direct - five) < 3.0

    def test_5g_only_stalls_on_nr_interruption(self):
        rtt = self.model.rtt_ms(
            BearerMode.FIVE_G_ONLY, nr_attached=True, nr_interrupted_remaining_s=0.1
        )
        assert rtt > 100.0

    def test_dual_survives_nr_interruption(self):
        rtt = self.model.rtt_ms(
            BearerMode.DUAL, nr_attached=True, nr_interrupted_remaining_s=0.1
        )
        base = self.model.rtt_ms(BearerMode.DUAL, nr_attached=True)
        assert rtt - base < 5.0  # just the survivor bump

    def test_lte_interruption_freezes_both_modes(self):
        for bearer in (BearerMode.DUAL, BearerMode.FIVE_G_ONLY):
            rtt = self.model.rtt_ms(
                bearer,
                nr_attached=True,
                nr_interrupted_remaining_s=0.1,
                lte_interrupted_remaining_s=0.1,
            )
            assert rtt > 100.0

    def test_bearer_semantics(self):
        assert BearerMode.DUAL.uses_lte_leg
        assert not BearerMode.FIVE_G_ONLY.uses_lte_leg
        assert BearerMode.DUAL.routes_via_enb
        assert not BearerMode.DUAL_DIRECT.routes_via_enb


class TestTcp:
    def test_cubic_backs_off_on_loss(self):
        cubic = TcpCubic(initial_cwnd_pkts=100.0)
        before = cubic.cwnd_pkts
        cubic.on_loss()
        assert cubic.cwnd_pkts == pytest.approx(before * 0.7)

    def test_cubic_goodput_tracks_capacity(self):
        conn = TcpConnection(TcpCubic(), base_rtt_s=0.03)
        rates = [conn.step(100.0).goodput_mbps for _ in range(600)]
        assert np.mean(rates[300:]) == pytest.approx(100.0, rel=0.15)

    def test_bbr_tracks_capacity_with_low_queue(self):
        conn = TcpConnection(TcpBbr(initial_rate_mbps=20.0), base_rtt_s=0.03)
        samples = [conn.step(80.0) for _ in range(600)]
        assert np.mean([s.goodput_mbps for s in samples[300:]]) == pytest.approx(
            80.0, rel=0.2
        )
        cubic_conn = TcpConnection(TcpCubic(), base_rtt_s=0.03)
        cubic_samples = [cubic_conn.step(80.0) for _ in range(600)]
        assert np.mean([s.queue_bytes for s in samples[300:]]) < np.mean(
            [s.queue_bytes for s in cubic_samples[300:]]
        )

    def test_interruption_builds_queue_and_rtt(self):
        conn = TcpConnection(TcpBbr(initial_rate_mbps=50.0), base_rtt_s=0.03)
        for _ in range(200):
            conn.step(50.0)
        baseline = conn.step(50.0).rtt_ms
        stalled = [conn.step(0.0) for _ in range(4)]
        # The outage builds a queue the sender cannot see for an RTT.
        assert stalled[-1].rtt_ms > baseline * 1.2
        assert stalled[-1].queue_bytes > 0
        recovered = [conn.step(50.0) for _ in range(200)]
        assert recovered[-1].rtt_ms < stalled[-1].rtt_ms

    def test_goodput_never_exceeds_capacity(self):
        conn = TcpConnection(TcpCubic(), base_rtt_s=0.03)
        for _ in range(300):
            assert conn.step(40.0).goodput_mbps <= 40.0 + 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            TcpConnection(TcpCubic(), base_rtt_s=0.0)
        with pytest.raises(ValueError):
            TcpCubic(initial_cwnd_pkts=0.0)
        with pytest.raises(ValueError):
            TcpBbr(initial_rate_mbps=0.0)


class TestEmulation:
    def _trace(self, caps):
        times = np.arange(len(caps)) * 0.5
        return BandwidthTrace(times_s=times, capacity_mbps=np.array(caps, dtype=float))

    def test_validation(self):
        with pytest.raises(ValueError):
            BandwidthTrace(np.array([0.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            BandwidthTrace(np.array([0.0, 0.0]), np.array([1.0, 1.0]))
        with pytest.raises(ValueError):
            BandwidthTrace(np.array([0.0, 1.0]), np.array([1.0, -1.0]))

    def test_capacity_at_holds_previous_sample(self):
        trace = self._trace([10.0, 20.0, 30.0])
        assert trace.capacity_at(0.4) == 10.0
        assert trace.capacity_at(0.5) == 20.0

    def test_mean_between(self):
        trace = self._trace([10.0, 20.0, 30.0, 40.0])
        assert trace.mean_between(0.0, 1.0) == pytest.approx(15.0)

    def test_download_time_exact_constant_rate(self):
        trace = self._trace([8.0] * 20)  # 8 Mbps = 1 MB/s
        link = TraceDrivenLink(trace)
        assert link.download_time_s(1_000_000, 0.0) == pytest.approx(1.0, rel=0.01)

    def test_download_spans_rate_change(self):
        trace = self._trace([8.0, 8.0, 16.0, 16.0, 16.0, 16.0])
        link = TraceDrivenLink(trace)
        # 1 s at 1 MB/s (1 MB) + 0.5 s at 2 MB/s (1 MB) = 2 MB in 1.5 s.
        assert link.download_time_s(2_000_000, 0.0) == pytest.approx(1.5, rel=0.02)

    def test_download_stall_raises(self):
        trace = self._trace([0.0] * 10)
        link = TraceDrivenLink(trace, loop=True)
        with pytest.raises(RuntimeError, match="stalled"):
            link.download_time_s(1e6, 0.0, max_s=5.0)

    def test_window_slicing(self):
        trace = self._trace([10.0] * 20)
        window = trace.window(2.0, 3.0)
        assert window.times_s[0] == pytest.approx(0.0)
        assert window.duration_s <= 3.0 + 0.5

    @settings(max_examples=25)
    @given(st.floats(min_value=1.0, max_value=100.0), st.floats(min_value=2.0, max_value=50.0))
    def test_download_time_scales_inversely(self, rate, factor):
        trace = self._trace([rate] * 400)
        link = TraceDrivenLink(trace)
        t1 = link.download_time_s(1e6, 0.0)
        trace2 = self._trace([rate * factor] * 400)
        t2 = TraceDrivenLink(trace2).download_time_s(1e6, 0.0)
        assert t1 / t2 == pytest.approx(factor, rel=0.05)
