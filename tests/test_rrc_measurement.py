"""Event monitor: TTT, latching, re-reporting, scoping, L3 filtering."""

import pytest

from repro.radio.rrs import RRSSample
from repro.rrc.events import EventConfig, EventType, MeasurementObject
from repro.rrc.measurement import EventMonitor, L3Filter


def sample(rsrp: float) -> RRSSample:
    return RRSSample(rsrp_dbm=rsrp, rsrq_db=-8.0, sinr_db=12.0)


class FakeCell:
    """Duck-typed cell with the attributes scoping inspects."""

    def __init__(self, name, node_id=0, band_name="B2"):
        self.name = name
        self.node_id = node_id
        self.band = type("B", (), {"name": band_name})()

    def __repr__(self):
        return self.name


SERVING = FakeCell("serving", node_id=1)
NEIGHBOUR = FakeCell("neighbour", node_id=1)
OTHER_NODE = FakeCell("other", node_id=2)


def observe(monitor, t, serving_rsrp, neighbour_rsrp, neighbour=NEIGHBOUR):
    return monitor.observe(
        t,
        {
            MeasurementObject.LTE: (SERVING, sample(serving_rsrp)),
            MeasurementObject.NR: None,
        },
        {MeasurementObject.LTE: {neighbour: sample(neighbour_rsrp)}, MeasurementObject.NR: {}},
    )


class TestTimeToTrigger:
    def _monitor(self, ttt=0.2):
        return EventMonitor(
            [EventConfig(EventType.A3, MeasurementObject.LTE, offset_db=3.0, time_to_trigger_s=ttt)]
        )

    def test_fires_only_after_ttt(self):
        monitor = self._monitor(ttt=0.2)
        assert observe(monitor, 0.0, -100, -95) == []
        assert observe(monitor, 0.1, -100, -95) == []
        fired = observe(monitor, 0.2, -100, -95)
        assert len(fired) == 1
        assert fired[0].label == "A3"
        assert fired[0].neighbour_cell is NEIGHBOUR

    def test_condition_lapse_resets_ttt(self):
        monitor = self._monitor(ttt=0.2)
        observe(monitor, 0.0, -100, -95)
        observe(monitor, 0.1, -100, -110)  # condition lapses
        assert observe(monitor, 0.2, -100, -95) == []
        assert observe(monitor, 0.4, -100, -95) != []

    def test_zero_ttt_fires_immediately(self):
        monitor = self._monitor(ttt=0.0)
        assert observe(monitor, 0.0, -100, -95) != []

    def test_latched_event_rereports_periodically(self):
        monitor = EventMonitor(
            [EventConfig(EventType.A3, MeasurementObject.LTE, offset_db=3.0)],
            report_interval_s=0.5,
        )
        assert observe(monitor, 0.0, -100, -95) != []
        assert observe(monitor, 0.2, -100, -95) == []
        assert observe(monitor, 0.5, -100, -95) != []

    def test_reset_clears_latch(self):
        monitor = self._monitor(ttt=0.0)
        assert observe(monitor, 0.0, -100, -95) != []
        monitor.reset()
        assert observe(monitor, 0.05, -100, -95) != []

    def test_reset_event_targets_one_object(self):
        configs = [
            EventConfig(EventType.A3, MeasurementObject.LTE, offset_db=3.0),
            EventConfig(EventType.B1, MeasurementObject.NR, threshold_dbm=-110.0),
        ]
        monitor = EventMonitor(configs)
        nr_cell = FakeCell("nr", node_id=3)
        serving = {
            MeasurementObject.LTE: (SERVING, sample(-100)),
            MeasurementObject.NR: None,
        }
        neighbours = {
            MeasurementObject.LTE: {NEIGHBOUR: sample(-95)},
            MeasurementObject.NR: {nr_cell: sample(-100)},
        }
        fired = monitor.observe(0.0, serving, neighbours)
        assert {r.label for r in fired} == {"A3", "NR-B1"}
        monitor.reset_event(MeasurementObject.NR)
        fired = monitor.observe(0.05, serving, neighbours)
        assert {r.label for r in fired} == {"NR-B1"}


class TestConfigurationGating:
    def test_serving_based_event_needs_serving(self):
        monitor = EventMonitor(
            [EventConfig(EventType.A2, MeasurementObject.NR, threshold_dbm=-100.0)]
        )
        fired = monitor.observe(
            0.0,
            {MeasurementObject.LTE: None, MeasurementObject.NR: None},
            {MeasurementObject.LTE: {}, MeasurementObject.NR: {}},
        )
        assert fired == []

    def test_b1_deconfigured_while_attached(self):
        monitor = EventMonitor(
            [
                EventConfig(
                    EventType.B1,
                    MeasurementObject.NR,
                    threshold_dbm=-110.0,
                    only_when_detached=True,
                )
            ]
        )
        nr_cell = FakeCell("nr")
        attached = {
            MeasurementObject.LTE: None,
            MeasurementObject.NR: (SERVING, sample(-90)),
        }
        detached = {MeasurementObject.LTE: None, MeasurementObject.NR: None}
        neighbours = {MeasurementObject.LTE: {}, MeasurementObject.NR: {nr_cell: sample(-100)}}
        assert monitor.observe(0.0, attached, neighbours) == []
        assert monitor.observe(0.1, detached, neighbours) != []

    def test_intra_node_scoping(self):
        monitor = EventMonitor(
            [
                EventConfig(
                    EventType.A3,
                    MeasurementObject.LTE,
                    offset_db=3.0,
                    intra_node_only=True,
                )
            ]
        )
        fired = observe(monitor, 0.0, -100, -90, neighbour=OTHER_NODE)
        assert fired == []
        fired = observe(monitor, 0.1, -100, -90, neighbour=NEIGHBOUR)
        assert fired != []

    def test_intra_frequency_scoping(self):
        monitor = EventMonitor(
            [
                EventConfig(
                    EventType.A3,
                    MeasurementObject.LTE,
                    offset_db=3.0,
                    intra_frequency_only=True,
                )
            ]
        )
        other_band = FakeCell("ob", node_id=1, band_name="B66")
        assert observe(monitor, 0.0, -100, -90, neighbour=other_band) == []
        assert observe(monitor, 0.1, -100, -90, neighbour=NEIGHBOUR) != []

    def test_monitor_requires_configs(self):
        with pytest.raises(ValueError):
            EventMonitor([])


class TestL3Filter:
    def test_first_sample_passthrough(self):
        filt = L3Filter(alpha=0.2)
        out = filt.update(0.0, {"c": sample(-100.0)})
        assert out["c"].rsrp_dbm == pytest.approx(-100.0)

    def test_smooths_towards_new_values(self):
        filt = L3Filter(alpha=0.2)
        filt.update(0.0, {"c": sample(-100.0)})
        out = filt.update(0.05, {"c": sample(-80.0)})
        assert -100.0 < out["c"].rsrp_dbm < -80.0
        assert out["c"].rsrp_dbm == pytest.approx(-96.0)

    def test_variance_reduction(self):
        import numpy as np

        rng = np.random.default_rng(0)
        filt = L3Filter(alpha=0.2)
        raw, smooth = [], []
        for i in range(500):
            value = -100.0 + rng.normal(0, 5)
            raw.append(value)
            smooth.append(filt.update(i * 0.05, {"c": sample(value)})["c"].rsrp_dbm)
        assert np.std(smooth[50:]) < np.std(raw[50:]) * 0.7

    def test_forgets_stale_cells(self):
        filt = L3Filter(alpha=0.2, forget_s=1.0)
        filt.update(0.0, {"c": sample(-100.0)})
        out = filt.update(5.0, {"c": sample(-80.0)})
        assert out["c"].rsrp_dbm == pytest.approx(-80.0)  # restarted

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            L3Filter(alpha=0.0)
