"""End-to-end smoke under live fault injection.

Unlike the other ``test_robust_*`` modules this one does NOT clear
``REPRO_FAULTS``: the CI fault-injection job exports a crash spec and
runs this file to prove the real pipelines — drive simulation, VoD
playback, Prognos evaluation — come back bit-identical anyway. With no
faults exported it doubles as a plain supervised-path equivalence
smoke, so it is meaningful in every matrix leg.

The fault-free references are the ``workers=1`` serial paths: serial
execution never enters a worker process, so the worker fault hooks
cannot touch it.
"""

from __future__ import annotations

import numpy as np

import pytest

from repro.apps.abr.algorithms import RateBased
from repro.apps.abr.player import play_many
from repro.core.evaluation import configs_for_log, run_prognos_over_logs
from repro.net.emulation import BandwidthTrace
from repro.radio.bands import BandClass
from repro.ran import OPX
from repro.simulate.cache import DriveCache
from repro.simulate.runner import run_drives
from repro.simulate.scenarios import freeway_scenario
from repro.simulate.serialization import log_to_dict


def _scenarios():
    return [
        freeway_scenario(OPX, BandClass.LOW, length_km=1.0, seed=71),
        freeway_scenario(OPX, None, length_km=1.0, seed=72),
        freeway_scenario(OPX, BandClass.LOW, length_km=1.0, seed=73),
    ]


@pytest.fixture(scope="module")
def serial_logs():
    return run_drives(_scenarios(), workers=1, use_cache=False)


def test_run_drives_matches_serial_under_faults(serial_logs):
    parallel = run_drives(_scenarios(), workers=2, use_cache=False)
    assert len(parallel) == len(serial_logs)
    for a, b in zip(serial_logs, parallel):
        assert log_to_dict(a) == log_to_dict(b)


def test_play_many_matches_serial_under_faults():
    def trace(seed):
        rng = np.random.default_rng(seed)
        caps = np.abs(rng.normal(40.0, 25.0, 1200))
        caps[rng.random(1200) < 0.05] = 0.0
        return BandwidthTrace(times_s=np.arange(1200) * 0.05, capacity_mbps=caps)

    jobs = [(RateBased, trace(seed), None, None) for seed in (81, 82, 83)]
    serial = play_many(jobs, workers=1)
    parallel = play_many(jobs, workers=2)
    for a, b in zip(serial, parallel):
        assert a.levels == b.levels
        assert a.stall_s == b.stall_s
        assert a.mean_bitrate_mbps == b.mean_bitrate_mbps


def test_prognos_matches_serial_under_faults(mmwave_walk_log):
    configs = configs_for_log(OPX, (BandClass.MMWAVE,))
    serial = run_prognos_over_logs([mmwave_walk_log], configs, stride=8, workers=1)
    fanned = run_prognos_over_logs([mmwave_walk_log], configs, stride=8, workers=2)
    assert serial.times_s.tolist() == fanned.times_s.tolist()
    assert serial.predictions == fanned.predictions
    assert serial.truths == fanned.truths
    assert serial.events == fanned.events
    assert serial.lead_times_s == fanned.lead_times_s


def test_crash_mid_corpus_still_populates_cache(
    monkeypatch, tmp_path, serial_logs
):
    """A worker crash on one drive loses nothing: the run completes,
    every log is bit-identical to the serial reference, and every drive
    — including the crashed-and-retried one — lands in the cache."""
    monkeypatch.setenv("REPRO_FAULTS", "worker_crash:key=1:attempts=1")
    scenarios = _scenarios()
    cache = DriveCache(tmp_path)
    logs = run_drives(scenarios, workers=2, cache=cache)
    for a, b in zip(serial_logs, logs):
        assert log_to_dict(a) == log_to_dict(b)
    assert cache.stats["stores"] == len(scenarios)
    assert cache.stats["put_failures"] == 0

    monkeypatch.delenv("REPRO_FAULTS")
    warm = DriveCache(tmp_path)
    again = run_drives(scenarios, workers=2, cache=warm)
    assert warm.stats["hits"] == len(scenarios)
    for a, b in zip(serial_logs, again):
        assert log_to_dict(a) == log_to_dict(b)
