"""Streaming forecaster equivalence: bit-identity with the per-session
report predictor, across staggered multi-session cohorts and resets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.evaluation import _replay_plan, configs_for_log
from repro.core.prognos import PrognosConfig
from repro.core.report_predictor import ReportPredictor
from repro.core.rrs_predictor import RRSPredictor
from repro.radio.bands import BandClass
from repro.ran import OPX
from repro.serve.forecast import StreamingForecaster, forecast_batch


def _reference_predictor(configs, config: PrognosConfig):
    rrs = RRSPredictor(
        history_window_ticks=config.history_window_ticks,
        smoother_window=config.smoother_window,
    )
    return ReportPredictor(
        configs, rrs, prediction_window_s=config.prediction_window_s
    )


def _forecasts(predictor, inputs):
    _, serving, neighbours, scoped = inputs
    return [
        (r.label, r.fire_in_s)
        for r in predictor.predict_reports_batched(serving, neighbours, scoped)
    ]


def test_single_session_bit_identity(freeway_low_log):
    config = PrognosConfig()
    configs = configs_for_log(OPX, (BandClass.LOW,))
    plan = _replay_plan(freeway_low_log, 1.0, 1)
    reference = _reference_predictor(configs, config)
    streaming = StreamingForecaster(configs, config=config)
    for now, inputs in zip(plan.step_times, plan.step_inputs):
        rsrp = inputs[0]
        reference.observe(now, rsrp)
        streaming.observe(now, rsrp)
        expected = _forecasts(reference, inputs)
        tick_plan = streaming.prepare(inputs[1], inputs[2], inputs[3])
        (got,) = forecast_batch([(streaming, tick_plan)])
        assert got == expected


def test_mmwave_session_bit_identity(mmwave_walk_log):
    config = PrognosConfig()
    configs = configs_for_log(OPX, (BandClass.MMWAVE,))
    plan = _replay_plan(mmwave_walk_log, 1.0, 1)
    reference = _reference_predictor(configs, config)
    streaming = StreamingForecaster(configs, config=config)
    for now, inputs in zip(plan.step_times, plan.step_inputs):
        rsrp = inputs[0]
        reference.observe(now, rsrp)
        streaming.observe(now, rsrp)
        expected = _forecasts(reference, inputs)
        tick_plan = streaming.prepare(inputs[1], inputs[2], inputs[3])
        (got,) = forecast_batch([(streaming, tick_plan)])
        assert got == expected


def test_staggered_cohort_with_midstream_reset(freeway_low_log):
    """Three sessions offset in time, one reset mid-run, batched
    together every tick — each must still match its own per-session
    reference exactly."""
    config = PrognosConfig()
    configs = configs_for_log(OPX, (BandClass.LOW,))
    plan = _replay_plan(freeway_low_log, 1.0, 1)
    n = len(plan.step_times)
    offsets = [0, 7, 31]
    reset_at = {1: n // 3}  # session 1 resets a third of the way in
    references = [_reference_predictor(configs, config) for _ in offsets]
    streamings = [StreamingForecaster(configs, config=config) for _ in offsets]
    compared = 0
    for pos in range(n):
        jobs, expected = [], []
        for k, offset in enumerate(offsets):
            idx = pos - offset
            if idx < 0 or idx >= n:
                continue
            if reset_at.get(k) == idx:
                references[k] = _reference_predictor(configs, config)
                streamings[k].reset()
            now, inputs = plan.step_times[idx], plan.step_inputs[idx]
            references[k].observe(now, inputs[0])
            streamings[k].observe(now, inputs[0])
            expected.append(_forecasts(references[k], inputs))
            jobs.append(
                (streamings[k], streamings[k].prepare(inputs[1], inputs[2], inputs[3]))
            )
        got = forecast_batch(jobs)
        assert got == expected
        compared += len(jobs)
    assert compared > 2 * n  # the cohort really overlapped


def test_row_sum_matches_1d_sum():
    """Pin the BLAS assumption _fit_group leans on: a C-contiguous
    row-wise ``.sum(axis=1)`` must equal each row's 1-D ``.sum()``
    bitwise. If a BLAS/numpy upgrade breaks this, the batched fit must
    go back to per-row sums."""
    rng = np.random.default_rng(7)
    for rows, cols in ((3, 5), (17, 16), (64, 20)):
        matrix = np.ascontiguousarray(rng.normal(-90.0, 7.0, size=(rows, cols)))
        batched = matrix.sum(axis=1)
        singly = np.array([matrix[r].sum() for r in range(rows)])
        assert all(
            batched[r] == singly[r] for r in range(rows)
        ), "row-wise sum is no longer bitwise-identical to 1-D sum"


def test_forecast_batch_warmup_returns_none():
    configs = configs_for_log(OPX, (BandClass.LOW,))
    streaming = StreamingForecaster(configs)
    # Fewer than 4 observed ticks: no forecast yet (matches the
    # reference predictor's minimum-history behaviour downstream).
    for t in (0.0, 1.0):
        streaming.observe(t, {10: -85.0})
    from repro.rrc.events import MeasurementObject

    serving = {MeasurementObject.LTE: 10, MeasurementObject.NR: None}
    neighbours = {MeasurementObject.LTE: [], MeasurementObject.NR: []}
    plan = streaming.prepare(serving, neighbours, neighbours)
    (got,) = forecast_batch([(streaming, plan)])
    assert got == []
