"""Shared fixtures: small simulated drives reused across test modules.

Simulation is the expensive part of this suite, so canonical small
drives are session-scoped: one NSA low-band freeway drive, one mmWave
city walk, and one rural coverage drive cover most integration needs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.radio.bands import BandClass
from repro.ran import OPX, OPY
from repro.simulate.scenarios import (
    city_walk_scenario,
    coverage_scenario,
    freeway_scenario,
)


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def freeway_low_log():
    """A 6 km NSA low-band freeway drive on OpX."""
    return freeway_scenario(OPX, BandClass.LOW, length_km=6.0, seed=101).run()


@pytest.fixture(scope="session")
def mmwave_walk_log():
    """A 10-minute mmWave city walk on OpX (D1-style)."""
    return city_walk_scenario(OPX, (BandClass.MMWAVE,), duration_min=10, seed=102).run()


@pytest.fixture(scope="session")
def sa_freeway_log():
    """A 6 km SA low-band freeway drive on OpY."""
    return freeway_scenario(
        OPY, BandClass.LOW, standalone=True, length_km=6.0, seed=103
    ).run()


@pytest.fixture(scope="session")
def coverage_log():
    """A 12 km rural low-band coverage drive on OpX."""
    return coverage_scenario(OPX, BandClass.LOW, length_km=12.0, seed=104).run()
