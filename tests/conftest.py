"""Shared fixtures: small simulated drives reused across test modules.

Simulation is the expensive part of this suite, so canonical small
drives are session-scoped: one NSA low-band freeway drive, one mmWave
city walk, and one rural coverage drive cover most integration needs.

The suite also arms a per-test wall-clock alarm (SIGALRM,
``REPRO_TEST_TIMEOUT_S``, default 300 s): with fault injection in the
tree, a regression that reintroduces an unrecovered hang must fail the
test quickly instead of stalling the whole run. When the
``pytest-timeout`` plugin is installed (CI) it owns the job and the
local alarm stands down.
"""

from __future__ import annotations

import os
import signal
import threading

import numpy as np
import pytest

_TEST_TIMEOUT_S = float(os.environ.get("REPRO_TEST_TIMEOUT_S", "300") or 0)


@pytest.hookimpl(wrapper=True)
def pytest_runtest_call(item):
    use_alarm = (
        _TEST_TIMEOUT_S > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
        and not item.config.pluginmanager.hasplugin("timeout")
    )
    if not use_alarm:
        return (yield)

    def on_alarm(signum, frame):
        raise TimeoutError(
            f"test exceeded the REPRO_TEST_TIMEOUT_S={_TEST_TIMEOUT_S:.0f}s "
            "wall-clock alarm (likely an unrecovered hang)"
        )

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.setitimer(signal.ITIMER_REAL, _TEST_TIMEOUT_S)
    try:
        return (yield)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)

from repro.radio.bands import BandClass
from repro.ran import OPX, OPY
from repro.simulate.scenarios import (
    city_walk_scenario,
    coverage_scenario,
    freeway_scenario,
)


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def freeway_low_log():
    """A 6 km NSA low-band freeway drive on OpX."""
    return freeway_scenario(OPX, BandClass.LOW, length_km=6.0, seed=101).run()


@pytest.fixture(scope="session")
def mmwave_walk_log():
    """A 10-minute mmWave city walk on OpX (D1-style)."""
    return city_walk_scenario(OPX, (BandClass.MMWAVE,), duration_min=10, seed=102).run()


@pytest.fixture(scope="session")
def sa_freeway_log():
    """A 6 km SA low-band freeway drive on OpY."""
    return freeway_scenario(
        OPY, BandClass.LOW, standalone=True, length_km=6.0, seed=103
    ).run()


@pytest.fixture(scope="session")
def coverage_log():
    """A 12 km rural low-band coverage drive on OpX."""
    return coverage_scenario(OPX, BandClass.LOW, length_km=12.0, seed=104).run()


def make_optional_field_log(bearer=None, band=None):
    """A tiny hand-built DriveLog covering every optional-field shape.

    Exercises None *and* present values for each optional enum/id slot
    (including falsy-but-present identifiers like ``gci=0``), so codec
    tests can pin that truthiness is never used where ``is not None``
    is meant.
    """
    from repro.net.bearer import BearerMode  # noqa: F401 (symmetry)
    from repro.radio.rrs import RRSSample
    from repro.rrc.signaling import SignalingTally
    from repro.rrc.taxonomy import HandoverType
    from repro.simulate.records import (
        DriveLog,
        HandoverRecord,
        NeighbourObservation,
        ReportRecord,
        TickRecord,
    )
    from repro.ue.state import RadioMode

    rrs = RRSSample(rsrp_dbm=-81.5, rsrq_db=-10.25, sinr_db=12.125)
    ticks = [
        TickRecord(
            time_s=0.0,
            arc_m=0.0,
            x_m=1.0,
            y_m=2.0,
            speed_mps=3.0,
            mode=RadioMode.NSA,
            lte_serving_gci=0,
            lte_serving_pci=0,
            nr_serving_gci=7,
            nr_serving_pci=3,
            nr_band_class=band,
            lte_rrs=rrs,
            nr_rrs=None,
            lte_neighbours=(
                NeighbourObservation(gci=5, pci=2, rrs=rrs, in_a3_scope=True),
                NeighbourObservation(gci=0, pci=0, rrs=rrs, in_a3_scope=False),
            ),
            nr_neighbours=(),
            lte_capacity_mbps=10.0,
            nr_capacity_mbps=0.0,
            total_capacity_mbps=10.0,
            lte_interrupted=False,
            nr_interrupted=True,
        ),
        TickRecord(
            time_s=0.05,
            arc_m=1.0,
            x_m=1.5,
            y_m=2.5,
            speed_mps=3.0,
            mode=RadioMode.LTE,
            lte_serving_gci=None,
            lte_serving_pci=None,
            nr_serving_gci=None,
            nr_serving_pci=None,
            nr_band_class=None,
            lte_rrs=None,
            nr_rrs=rrs,
            lte_neighbours=(),
            nr_neighbours=(
                NeighbourObservation(gci=9, pci=4, rrs=rrs, in_a3_scope=False),
            ),
            lte_capacity_mbps=0.0,
            nr_capacity_mbps=0.0,
            total_capacity_mbps=0.0,
            lte_interrupted=True,
            nr_interrupted=False,
        ),
    ]
    reports = [
        ReportRecord(
            time_s=0.02,
            label="A3",
            serving_gci=None,
            neighbour_gci=0,
            serving_rrs=None,
            neighbour_rrs=rrs,
        ),
        ReportRecord(
            time_s=0.04,
            label="B1-NR",
            serving_gci=7,
            neighbour_gci=None,
            serving_rrs=rrs,
            neighbour_rrs=None,
        ),
    ]
    handovers = [
        HandoverRecord(
            ho_type=HandoverType.SCGA,
            decision_time_s=0.02,
            exec_start_s=0.03,
            complete_s=0.04,
            t1_ms=10.0,
            t2_ms=20.0,
            mode_before=RadioMode.LTE,
            mode_after=RadioMode.NSA,
            source_gci=0,
            target_gci=7,
            source_pci=None,
            target_pci=3,
            band_class=band,
            arc_m=0.5,
            colocated=True,
            same_pci_legs=None,
            trigger_labels=("A3", "B1-NR"),
            signaling=SignalingTally(1, 2, 3, 4, 5),
            energy_j=0.5,
        ),
        HandoverRecord(
            ho_type=HandoverType.SCGR,
            decision_time_s=0.04,
            exec_start_s=0.045,
            complete_s=0.05,
            t1_ms=5.0,
            t2_ms=7.5,
            mode_before=RadioMode.NSA,
            mode_after=RadioMode.LTE,
            source_gci=7,
            target_gci=None,
            source_pci=3,
            target_pci=None,
            band_class=None,
            arc_m=0.9,
            colocated=False,
            same_pci_legs=True,
            trigger_labels=(),
            signaling=SignalingTally(),
            energy_j=0.25,
        ),
    ]
    return DriveLog("OpX", bearer, ticks, reports, handovers, scenario="synthetic")
