"""CorpusStore: sharded memmap slices, resumable appends, failure modes."""

from __future__ import annotations

import json
import os
import pickle

import numpy as np
import pytest

from repro.net.bearer import BearerMode
from repro.radio.bands import BandClass
from repro.ran import OPX
from repro.simulate import fanout
from repro.simulate.cache import DriveCache
from repro.simulate.columnar import ARRAY_KEYS
from repro.simulate.corpus import CorpusStore, CorpusView, DriveRef
from repro.simulate.runner import run_drives, run_drives_to_store
from repro.simulate.scenarios import freeway_scenario
from repro.simulate.serialization import log_to_dict
from tests.conftest import make_optional_field_log


def _sample_logs():
    return {
        "d1": make_optional_field_log(bearer=BearerMode.FIVE_G_ONLY, band=BandClass.MMWAVE),
        "d2": make_optional_field_log(),
        "d3": make_optional_field_log(band=BandClass.LOW),
    }


def _filled_store(root, **kwargs):
    store = CorpusStore(root, enabled=True, **kwargs)
    logs = _sample_logs()
    for drive_id, log in logs.items():
        assert store.append(drive_id, log.columnar())
    return store, logs


def _scenarios():
    return [
        freeway_scenario(OPX, BandClass.LOW, length_km=1.5, seed=41),
        freeway_scenario(OPX, None, length_km=1.5, seed=42),
        freeway_scenario(OPX, BandClass.LOW, length_km=1.5, seed=43),
    ]


class TestRoundTrip:
    def test_slices_bit_identical(self, tmp_path):
        store, logs = _filled_store(tmp_path)
        for drive_id, log in logs.items():
            clog = store.open_slice(drive_id)
            assert clog.content_digest() == log.columnar().content_digest()
            assert log_to_dict(clog.to_drive_log()) == log_to_dict(log)

    def test_simulated_drive_matches_npz_roundtrip(self, tmp_path, freeway_low_log):
        """Memmap-backed logs stay bit-identical to the .npz codec."""
        from repro.simulate.columnar import load_columnar, save_columnar

        npz = tmp_path / "drive.npz"
        with open(npz, "wb") as fh:
            save_columnar(freeway_low_log.columnar(), fh)
        store = CorpusStore(tmp_path / "corpus", enabled=True)
        store.append("drive", freeway_low_log.columnar())
        mapped = store.open_slice("drive")
        via_npz = load_columnar(npz)
        assert mapped.content_digest() == via_npz.content_digest()
        assert log_to_dict(mapped.to_drive_log()) == log_to_dict(
            via_npz.to_drive_log()
        )

    def test_views_read_only_and_survive_reopen(self, tmp_path):
        store, logs = _filled_store(tmp_path)
        clog = CorpusStore(tmp_path, enabled=True).open_slice("d1")
        for key in ARRAY_KEYS:
            assert not clog.arrays[key].flags.writeable
        with pytest.raises((ValueError, RuntimeError)):
            clog.arrays["tick_time_s"][0] = 99.0
        # The views outlive every store handle: drop both stores, the
        # arrays still read (they hold the mapping themselves).
        digest = clog.content_digest()
        del store
        assert clog.content_digest() == digest
        # And a fresh handle over the same files serves identical bytes.
        again = CorpusStore(tmp_path, enabled=True).open_slice("d1")
        assert again.content_digest() == digest

    def test_exactly_once_append(self, tmp_path):
        store, logs = _filled_store(tmp_path)
        assert not store.append("d1", logs["d1"].columnar())
        assert store.stats["appends"] == 3
        assert store.stats["duplicates"] == 1
        # Duplicate appends in a *fresh* handle are no-ops too.
        reopened = CorpusStore(tmp_path, enabled=True)
        assert not reopened.append("d2", logs["d2"].columnar())
        assert reopened.stats["duplicates"] == 1

    def test_shard_rollover(self, tmp_path):
        store, _ = _filled_store(tmp_path, shard_mb=1e-6)
        assert store.stats["shards"] == 3
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == [
            "shard-000000.bin",
            "shard-000000.json",
            "shard-000001.bin",
            "shard-000001.json",
            "shard-000002.bin",
            "shard-000002.json",
        ]
        reopened = CorpusStore(tmp_path, enabled=True)
        assert sorted(reopened.drive_ids()) == ["d1", "d2", "d3"]

    def test_disabled_store_is_inert(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        store = CorpusStore(tmp_path)
        assert not store.enabled
        assert not store.append("d1", make_optional_field_log().columnar())
        assert store.open_slice("d1") is None
        assert not tmp_path.exists() or not list(tmp_path.iterdir())

    def test_env_knobs(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CORPUS_DIR", str(tmp_path / "corpus"))
        monkeypatch.setenv("REPRO_CORPUS_SHARD_MB", "7")
        store = CorpusStore.from_env()
        assert store.root == tmp_path / "corpus"
        assert store.shard_limit == 7 * 1024 * 1024
        monkeypatch.delenv("REPRO_CORPUS_DIR")
        assert CorpusStore.from_env() is None
        # Explicit construction without the env var lands next to the
        # drive cache.
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert CorpusStore().root == tmp_path / "cache" / "corpus"


class TestFailureModes:
    def test_truncated_shard_quarantined_as_miss(self, tmp_path):
        _filled_store(tmp_path)
        blob = tmp_path / "shard-000000.bin"
        blob.write_bytes(blob.read_bytes()[:100])
        store = CorpusStore(tmp_path, enabled=True)
        assert store.stats["quarantined"] == 1
        assert store.open_slice("d1") is None
        assert store.stats["misses"] == 1
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["shard-000000.bin.corrupt", "shard-000000.json.corrupt"]

    def test_index_shard_mismatch_detected(self, tmp_path):
        _filled_store(tmp_path)
        index_path = tmp_path / "shard-000000.json"
        meta = json.loads(index_path.read_text())
        # An entry that points past the committed extent is a lying
        # index, not a short blob.
        drive = next(iter(meta["drives"]))
        meta["drives"][drive]["offset"] = meta["committed_bytes"]
        index_path.write_text(json.dumps(meta))
        store = CorpusStore(tmp_path, enabled=True)
        assert store.stats["quarantined"] == 1
        assert len(store) == 0

    def test_corrupt_index_json_quarantined(self, tmp_path):
        _filled_store(tmp_path)
        (tmp_path / "shard-000000.json").write_text("{not json")
        store = CorpusStore(tmp_path, enabled=True)
        assert store.stats["quarantined"] == 1
        assert store.open_slice("d2") is None

    def test_stale_format_version_skipped_not_quarantined(self, tmp_path):
        _filled_store(tmp_path)
        index_path = tmp_path / "shard-000000.json"
        meta = json.loads(index_path.read_text())
        meta["format_version"] = 999
        index_path.write_text(json.dumps(meta))
        store = CorpusStore(tmp_path, enabled=True)
        assert store.stats["stale_shards"] == 1
        assert store.stats["quarantined"] == 0
        assert store.open_slice("d1") is None
        # The stale shard stays on disk untouched, and its number is
        # never reused by new appends.
        assert (tmp_path / "shard-000000.json").exists()
        store.append("d9", make_optional_field_log().columnar())
        assert (tmp_path / "shard-000001.json").exists()

    def test_uncommitted_tail_reclaimed(self, tmp_path):
        """Bytes past the committed extent (a crashed append) are reused."""
        store, logs = _filled_store(tmp_path)
        blob = tmp_path / "shard-000000.bin"
        committed = blob.stat().st_size
        with open(blob, "ab") as handle:
            handle.write(b"\xff" * 4096)  # crash leftovers, no index commit
        reopened = CorpusStore(tmp_path, enabled=True)
        assert reopened.stats["quarantined"] == 0  # longer blob is fine
        reopened.append("d4", make_optional_field_log().columnar())
        assert reopened.open_slice("d4") is not None
        # The leftover bytes were truncated away before the new payload.
        meta = json.loads((tmp_path / "shard-000000.json").read_text())
        assert meta["drives"]["d4"]["offset"] == committed

    def test_failed_append_counts_and_stays_missing(self, tmp_path, monkeypatch):
        from repro.robust import faults

        store, _ = _filled_store(tmp_path)
        monkeypatch.setenv("REPRO_FAULTS", "cache_write_oserror")
        faults.reset()
        try:
            assert not store.append("d5", make_optional_field_log().columnar())
        finally:
            monkeypatch.delenv("REPRO_FAULTS")
            faults.reset()
        assert store.stats["put_failures"] == 1
        assert "d5" not in store
        # The injected failure hit the index commit *after* the blob
        # write — the canonical crash window. A reopen sees no corruption
        # and the next append reclaims the orphaned tail bytes.
        reopened = CorpusStore(tmp_path, enabled=True)
        assert reopened.stats["quarantined"] == 0
        assert reopened.append("d5", make_optional_field_log().columnar())
        assert reopened.open_slice("d5") is not None


class TestResume:
    def test_resume_after_kill_regenerates_only_missing(self, tmp_path):
        """Kill generation mid-corpus; the rerun simulates only the rest."""
        ctx = fanout.fork_context()
        if ctx is None:
            pytest.skip("fork start method unavailable")
        scenarios = _scenarios()
        root = tmp_path / "corpus"

        def die_after_two():
            store = CorpusStore(root, enabled=True)
            original = CorpusStore.append

            def mortal_append(self, drive_id, clog):
                stored = original(self, drive_id, clog)
                if self.appends >= 2:
                    os._exit(17)  # hard kill: no cleanup, no flushes
                return stored

            CorpusStore.append = mortal_append
            try:
                run_drives_to_store(scenarios, workers=1, store=store, use_cache=False)
            finally:
                CorpusStore.append = original
            os._exit(0)  # not reached

        child = ctx.Process(target=die_after_two)
        child.start()
        child.join(timeout=240)
        assert child.exitcode == 17

        survivor = CorpusStore(root, enabled=True)
        assert len(survivor) == 2  # two committed drives survived the kill
        view = run_drives_to_store(
            scenarios, workers=1, store=survivor, use_cache=False
        )
        assert survivor.stats["appends"] == 1  # only the missing drive ran
        assert len(survivor) == 3
        reference = run_drives(scenarios, workers=1, use_cache=False)
        for a, b in zip(view, reference):
            assert log_to_dict(a) == log_to_dict(b)

    def test_second_build_simulates_nothing(self, tmp_path):
        scenarios = _scenarios()[:2]
        store = CorpusStore(tmp_path / "corpus", enabled=True)
        run_drives_to_store(scenarios, workers=1, store=store, use_cache=False)
        assert store.stats["appends"] == 2
        resumed = CorpusStore(tmp_path / "corpus", enabled=True)
        view = run_drives_to_store(
            scenarios, workers=1, store=resumed, use_cache=False
        )
        assert resumed.stats["appends"] == 0
        reference = run_drives(scenarios, workers=1, use_cache=False)
        for a, b in zip(view, reference):
            assert log_to_dict(a) == log_to_dict(b)

    def test_npz_cache_hits_migrate_instead_of_simulating(self, tmp_path):
        scenarios = _scenarios()[:2]
        npz_cache = DriveCache(tmp_path / "cache", store=None)
        run_drives(scenarios, workers=1, cache=npz_cache)
        assert npz_cache.stats["stores"] == 2

        store = CorpusStore(tmp_path / "corpus", enabled=True)
        cache = DriveCache(tmp_path / "cache", store=store)
        view = run_drives_to_store(scenarios, workers=1, store=store, cache=cache)
        # Both drives came out of the .npz entries, not the simulator:
        # migration appends happen inside get_columnar.
        assert store.stats["appends"] == 2
        assert cache.stats["hits"] == 2
        reference = run_drives(scenarios, workers=1, use_cache=False)
        for a, b in zip(view, reference):
            assert log_to_dict(a) == log_to_dict(b)


class TestDriveCacheDelegation:
    def test_put_appends_to_store_not_npz(self, tmp_path, freeway_low_log):
        scenario = freeway_scenario(OPX, BandClass.LOW, length_km=1.5, seed=44)
        log = scenario.run()
        store = CorpusStore(tmp_path / "corpus", enabled=True)
        cache = DriveCache(tmp_path / "cache", store=store)
        cache.put(scenario, log)
        assert cache.stats["stores"] == 1
        assert store.stats["appends"] == 1
        assert not (tmp_path / "cache").exists()  # no .npz written
        hit = cache.get(scenario)
        assert cache.stats["hits"] == 1
        assert log_to_dict(hit) == log_to_dict(log)

    def test_get_columnar_skips_rebuild(self, tmp_path):
        scenario = freeway_scenario(OPX, BandClass.LOW, length_km=1.5, seed=45)
        log = scenario.run()
        cache = DriveCache(tmp_path, store=None)
        cache.put(scenario, log)
        clog = cache.get_columnar(scenario)
        assert clog is not None
        assert cache.stats["hits"] == 1
        assert clog.content_digest() == log.columnar().content_digest()
        assert cache.get_columnar(
            freeway_scenario(OPX, BandClass.LOW, length_km=1.5, seed=46)
        ) is None
        assert cache.stats["misses"] == 1

    def test_npz_hit_migrates_into_store(self, tmp_path):
        scenario = freeway_scenario(OPX, BandClass.LOW, length_km=1.5, seed=47)
        log = scenario.run()
        DriveCache(tmp_path / "cache", store=None).put(scenario, log)
        store = CorpusStore(tmp_path / "corpus", enabled=True)
        cache = DriveCache(tmp_path / "cache", store=store)
        first = cache.get_columnar(scenario)
        assert first is not None and store.stats["appends"] == 1
        # Second lookup serves the memory-mapped corpus slice.
        second = cache.get_columnar(scenario)
        assert store.stats["hits"] == 1
        assert second.content_digest() == first.content_digest()

    def test_env_attaches_store_to_default_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CORPUS_DIR", str(tmp_path / "corpus"))
        cache = DriveCache(tmp_path / "cache")
        assert isinstance(cache.store, CorpusStore)
        assert cache.store.root == tmp_path / "corpus"
        monkeypatch.delenv("REPRO_CORPUS_DIR")
        assert DriveCache(tmp_path / "cache").store is None


class TestViews:
    def test_ref_and_view_pickle_small(self, tmp_path):
        store, logs = _filled_store(tmp_path)
        ref = DriveRef(str(tmp_path), "d1")
        assert len(pickle.dumps(ref)) < 200
        view = CorpusView(tmp_path, ["d1", "d2", "d3"])
        assert len(pickle.dumps(view)) < 400
        clone = pickle.loads(pickle.dumps(view))
        for i, drive_id in enumerate(["d1", "d2", "d3"]):
            assert log_to_dict(clone[i]) == log_to_dict(logs[drive_id])
        assert log_to_dict(ref.load()) == log_to_dict(logs["d1"])

    def test_view_memoizes_but_does_not_pickle_logs(self, tmp_path):
        store, _ = _filled_store(tmp_path)
        view = CorpusView(tmp_path, ["d1", "d2"])
        assert view[0] is view[0]
        assert len(pickle.dumps(view)) < 400  # memo dropped from state

    def test_missing_drive_raises_keyerror(self, tmp_path):
        _filled_store(tmp_path)
        with pytest.raises(KeyError, match="ghost"):
            DriveRef(str(tmp_path), "ghost").columnar()

    def test_view_slicing_and_events(self, tmp_path):
        from repro.ml.features import handover_events

        store, logs = _filled_store(tmp_path)
        view = CorpusView(tmp_path, ["d1", "d2", "d3"])
        sliced = view[1:]
        assert isinstance(sliced, CorpusView) and len(sliced) == 2
        materialised = [logs["d1"], logs["d2"], logs["d3"]]
        assert view.handover_events() == handover_events(materialised)


class TestPrognosOverView:
    def test_view_matches_list_replay(self, tmp_path):
        from repro.core.evaluation import configs_for_log, run_prognos_over_logs

        scenarios = _scenarios()[:2]
        logs = run_drives(scenarios, workers=1, use_cache=False)
        store = CorpusStore(tmp_path / "corpus", enabled=True)
        view = run_drives_to_store(
            scenarios, workers=1, store=store, use_cache=False
        )
        configs = configs_for_log(OPX, (BandClass.LOW,))
        from_list = run_prognos_over_logs(logs, configs, stride=64)
        from_view = run_prognos_over_logs(view, configs, stride=64)
        np.testing.assert_array_equal(from_list.times_s, from_view.times_s)
        assert from_list.predictions == from_view.predictions
        assert from_list.truths == from_view.truths
        assert from_list.events == from_view.events
        assert from_list.lead_times_s == from_view.lead_times_s
