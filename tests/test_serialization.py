"""DriveLog artifact round-trips."""

import json

import pytest

from repro.net.bearer import BearerMode
from repro.radio.bands import BandClass
from repro.simulate.serialization import (
    FORMAT_VERSION,
    load_log,
    log_from_dict,
    log_to_dict,
    save_log,
)
from tests.conftest import make_optional_field_log


class TestRoundTrip:
    def test_dict_roundtrip_preserves_everything(self, freeway_low_log):
        rebuilt = log_from_dict(log_to_dict(freeway_low_log))
        assert rebuilt.carrier == freeway_low_log.carrier
        assert rebuilt.bearer == freeway_low_log.bearer
        assert len(rebuilt.ticks) == len(freeway_low_log.ticks)
        assert len(rebuilt.reports) == len(freeway_low_log.reports)
        assert len(rebuilt.handovers) == len(freeway_low_log.handovers)
        a, b = freeway_low_log.ticks[100], rebuilt.ticks[100]
        assert a == b
        assert freeway_low_log.handovers[0] == rebuilt.handovers[0]
        assert freeway_low_log.reports[0] == rebuilt.reports[0]

    def test_analysis_invariant_under_roundtrip(self, freeway_low_log):
        from repro.analysis import frequency_breakdown

        original = frequency_breakdown([freeway_low_log])
        rebuilt = frequency_breakdown([log_from_dict(log_to_dict(freeway_low_log))])
        assert original.spacing_4g_km == rebuilt.spacing_4g_km
        assert original.count_by_type == rebuilt.count_by_type

    def test_file_roundtrip_plain_and_gzip(self, freeway_low_log, tmp_path):
        for name in ("log.json", "log.json.gz"):
            path = save_log(freeway_low_log, tmp_path / name)
            rebuilt = load_log(path)
            assert len(rebuilt.ticks) == len(freeway_low_log.ticks)
        plain = (tmp_path / "log.json").stat().st_size
        gz = (tmp_path / "log.json.gz").stat().st_size
        assert gz < plain / 2

    def test_version_check(self, freeway_low_log):
        payload = log_to_dict(freeway_low_log)
        payload["format_version"] = FORMAT_VERSION + 1
        with pytest.raises(ValueError, match="format version"):
            log_from_dict(payload)

    def test_payload_is_json_serialisable(self, freeway_low_log):
        json.dumps(log_to_dict(freeway_low_log))


class TestOptionalEnums:
    """None vs. present must survive for every optional enum field.

    Regression tests for the truthiness bugs: the encoder/decoder used
    ``if value`` on optional enums, so a falsy-but-present value (or a
    falsy raw value in the payload) silently decoded as ``None``.
    """

    @pytest.mark.parametrize("bearer", [None, *BearerMode])
    @pytest.mark.parametrize("band", [None, *BandClass])
    def test_every_record_type_roundtrips(self, bearer, band):
        log = make_optional_field_log(bearer=bearer, band=band)
        rebuilt = log_from_dict(log_to_dict(log))
        assert rebuilt.bearer is bearer
        # TickRecord: nr_band_class present on tick 0, None on tick 1.
        assert rebuilt.ticks[0].nr_band_class is band
        assert rebuilt.ticks[1].nr_band_class is None
        # HandoverRecord: band_class present on HO 0, None on HO 1.
        assert rebuilt.handovers[0].band_class is band
        assert rebuilt.handovers[1].band_class is None
        # Full structural equality across every record type.
        assert rebuilt.ticks == log.ticks
        assert rebuilt.reports == log.reports
        assert rebuilt.handovers == log.handovers

    def test_falsy_but_present_scalars_survive(self):
        log = make_optional_field_log(bearer=BearerMode.DUAL)
        rebuilt = log_from_dict(log_to_dict(log))
        # gci=0 / pci=0 are real identifiers, not "absent".
        assert rebuilt.ticks[0].lte_serving_gci == log.ticks[0].lte_serving_gci
        assert rebuilt.ticks[0].lte_serving_pci == log.ticks[0].lte_serving_pci
        # rrs triples: present in one slot, None in the other.
        assert rebuilt.ticks[0].lte_rrs == log.ticks[0].lte_rrs
        assert rebuilt.ticks[0].nr_rrs == log.ticks[0].nr_rrs
        assert rebuilt.ticks[1].nr_rrs == log.ticks[1].nr_rrs

    def test_json_payload_roundtrip_through_disk(self, tmp_path):
        log = make_optional_field_log(bearer=None, band=BandClass.MMWAVE)
        path = save_log(log, tmp_path / "optional.json.gz")
        rebuilt = load_log(path)
        assert rebuilt.bearer is None
        assert rebuilt.handovers[0].band_class is BandClass.MMWAVE
        assert log_to_dict(rebuilt) == log_to_dict(log)
