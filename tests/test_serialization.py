"""DriveLog artifact round-trips."""

import json

import pytest

from repro.simulate.serialization import (
    FORMAT_VERSION,
    load_log,
    log_from_dict,
    log_to_dict,
    save_log,
)


class TestRoundTrip:
    def test_dict_roundtrip_preserves_everything(self, freeway_low_log):
        rebuilt = log_from_dict(log_to_dict(freeway_low_log))
        assert rebuilt.carrier == freeway_low_log.carrier
        assert rebuilt.bearer == freeway_low_log.bearer
        assert len(rebuilt.ticks) == len(freeway_low_log.ticks)
        assert len(rebuilt.reports) == len(freeway_low_log.reports)
        assert len(rebuilt.handovers) == len(freeway_low_log.handovers)
        a, b = freeway_low_log.ticks[100], rebuilt.ticks[100]
        assert a == b
        assert freeway_low_log.handovers[0] == rebuilt.handovers[0]
        assert freeway_low_log.reports[0] == rebuilt.reports[0]

    def test_analysis_invariant_under_roundtrip(self, freeway_low_log):
        from repro.analysis import frequency_breakdown

        original = frequency_breakdown([freeway_low_log])
        rebuilt = frequency_breakdown([log_from_dict(log_to_dict(freeway_low_log))])
        assert original.spacing_4g_km == rebuilt.spacing_4g_km
        assert original.count_by_type == rebuilt.count_by_type

    def test_file_roundtrip_plain_and_gzip(self, freeway_low_log, tmp_path):
        for name in ("log.json", "log.json.gz"):
            path = save_log(freeway_low_log, tmp_path / name)
            rebuilt = load_log(path)
            assert len(rebuilt.ticks) == len(freeway_low_log.ticks)
        plain = (tmp_path / "log.json").stat().st_size
        gz = (tmp_path / "log.json.gz").stat().st_size
        assert gz < plain / 2

    def test_version_check(self, freeway_low_log):
        payload = log_to_dict(freeway_low_log)
        payload["format_version"] = FORMAT_VERSION + 1
        with pytest.raises(ValueError, match="format version"):
            log_from_dict(payload)

    def test_payload_is_json_serialisable(self, freeway_low_log):
        json.dumps(log_to_dict(freeway_low_log))
