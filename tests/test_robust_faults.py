"""The fault-injection harness: spec parsing and deterministic firing."""

from __future__ import annotations

import warnings

import pytest

from repro.robust import faults
from repro.robust.faults import FaultSpec, parse_spec


@pytest.fixture(autouse=True)
def _isolated_faults(monkeypatch):
    # Each test owns the spec: clear any externally set REPRO_FAULTS
    # (the CI fault-smoke job exports one) and the per-process tallies.
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    faults.reset()
    yield
    faults.reset()


class TestParsing:
    def test_full_spec(self):
        specs = parse_spec("worker_crash:p=0.2:seed=7,worker_hang:hang_s=5")
        assert specs == (
            FaultSpec("worker_crash", p=0.2, seed=7),
            FaultSpec("worker_hang", hang_s=5.0),
        )

    def test_bare_names_and_whitespace(self):
        specs = parse_spec(" cache_write_oserror , cache_truncate:times=1 ")
        assert [s.name for s in specs] == ["cache_write_oserror", "cache_truncate"]
        assert specs[1].times == 1

    def test_key_attempts_params(self):
        (spec,) = parse_spec("worker_crash:key=3:attempts=1")
        assert spec.key == "3" and spec.attempts == 1

    def test_unknown_fault_warns_and_drops(self):
        with pytest.warns(RuntimeWarning, match="unknown fault"):
            specs = parse_spec("worker_crush:p=1,worker_hang")
        assert [s.name for s in specs] == ["worker_hang"]

    def test_malformed_param_warns_and_drops_entry(self):
        with pytest.warns(RuntimeWarning, match="bad parameter"):
            specs = parse_spec("worker_crash:p=often,cache_truncate")
        assert [s.name for s in specs] == ["cache_truncate"]

    def test_empty_spec_is_inert(self):
        assert parse_spec("") == ()
        assert faults.active_faults() == ()

    def test_env_reparse_on_change(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "worker_hang")
        assert [s.name for s in faults.active_faults()] == ["worker_hang"]
        monkeypatch.setenv("REPRO_FAULTS", "worker_crash")
        assert [s.name for s in faults.active_faults()] == ["worker_crash"]


class TestFiring:
    def test_draw_is_deterministic_per_key_and_attempt(self):
        spec = FaultSpec("worker_crash", p=0.5, seed=7)
        draws = [faults._draw(spec, key, 0) for key in range(64)]
        assert draws == [faults._draw(spec, key, 0) for key in range(64)]
        # Attempts re-draw: a retry is not doomed to the same outcome.
        assert draws != [faults._draw(spec, key, 1) for key in range(64)]
        # p is a real probability, not all-or-nothing.
        fired = sum(d < 0.5 for d in draws)
        assert 16 <= fired <= 48

    def test_key_restriction(self):
        spec = FaultSpec("worker_crash", key="3")
        assert faults._fires(spec, 3, 0)
        assert not faults._fires(spec, 2, 0)

    def test_attempts_window(self):
        spec = FaultSpec("worker_hang", attempts=1)
        assert faults._fires(spec, 0, 0)
        assert not faults._fires(spec, 0, 1)

    def test_times_cap_counts_per_process(self):
        spec = FaultSpec("cache_truncate", times=2)
        fired = [faults._fires(spec, f"entry-{i}", 0) for i in range(5)]
        assert fired == [True, True, False, False, False]

    def test_cache_write_hook_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "cache_write_oserror")
        with pytest.raises(OSError, match="injected"):
            faults.maybe_raise_cache_write("some-entry.npz")
        assert faults.fired_counts["cache_write_oserror"] == 1

    def test_truncate_hook_halves_file(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_FAULTS", "cache_truncate")
        path = tmp_path / "entry.npz"
        path.write_bytes(b"0123456789")
        faults.maybe_truncate(path)
        assert path.read_bytes() == b"01234"

    def test_hooks_inert_without_spec(self, tmp_path):
        path = tmp_path / "entry.npz"
        path.write_bytes(b"0123456789")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            faults.maybe_fail_job(0, 0)
            faults.maybe_raise_cache_write("entry.npz")
            faults.maybe_truncate(path)
        assert path.read_bytes() == b"0123456789"
        assert not faults.fired_counts


class TestWarnOnce:
    """S1: a broken entry warns once per (entry, reason), not per parse."""

    def test_repeated_parse_warns_once(self):
        with pytest.warns(RuntimeWarning, match="unknown fault"):
            parse_spec("worker_crush")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            # Same broken entry again: silent skip, valid clauses kept.
            specs = parse_spec("worker_crush,worker_hang")
        assert [s.name for s in specs] == ["worker_hang"]

    def test_distinct_reasons_each_warn(self):
        with pytest.warns(RuntimeWarning, match="unknown fault"):
            parse_spec("worker_crush")
        with pytest.warns(RuntimeWarning, match="bad parameter"):
            parse_spec("worker_crash:p=often")

    def test_reset_clears_the_dedup(self):
        with pytest.warns(RuntimeWarning):
            parse_spec("worker_crush")
        faults.reset()
        with pytest.warns(RuntimeWarning):
            parse_spec("worker_crush")

    def test_out_of_range_p_warns_and_drops(self):
        with pytest.warns(RuntimeWarning, match="outside"):
            specs = parse_spec("conn_reset:p=1.5,worker_hang")
        assert [s.name for s in specs] == ["worker_hang"]

    def test_negative_hang_warns_and_drops(self):
        with pytest.warns(RuntimeWarning, match="negative"):
            specs = parse_spec("stall_s:hang_s=-1,conn_reset")
        assert [s.name for s in specs] == ["conn_reset"]


class TestNetworkFamily:
    def test_network_names_parse(self):
        specs = parse_spec(
            "conn_reset:p=0.5,frame_truncate,byte_corrupt,"
            "stall_s:hang_s=2,reconnect_storm"
        )
        assert [s.name for s in specs] == [
            "conn_reset",
            "frame_truncate",
            "byte_corrupt",
            "stall_s",
            "reconnect_storm",
        ]
        assert all(s.name in faults.NETWORK_FAULTS for s in specs)

    def test_stall_defaults_to_short_hang(self):
        (spec,) = parse_spec("stall_s")
        assert spec.hang_s == 0.5  # not the worker_hang 60 s default

    def test_maybe_network_fault_draw_matches_fires(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "conn_reset:p=0.5:seed=3")
        (spec,) = faults.active_faults()
        hits = [
            key
            for key in (f"s-{i}@{j}" for i in range(4) for j in range(25))
            if faults._draw(spec, key, 0) < spec.p
        ]
        faults.reset()
        monkeypatch.setenv("REPRO_FAULTS", "conn_reset:p=0.5:seed=3")
        fired = [
            key
            for key in (f"s-{i}@{j}" for i in range(4) for j in range(25))
            if faults.maybe_network_fault(key) is not None
        ]
        assert fired == hits and 0 < len(fired) < 100

    def test_attempt_changes_the_draw(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "conn_reset:p=0.5:seed=1")
        by_attempt = [
            {
                key
                for key in (f"ue@{i}" for i in range(50))
                if faults.maybe_network_fault(key, attempt=a) is not None
            }
            for a in range(2)
        ]
        assert by_attempt[0] != by_attempt[1]

    def test_non_network_faults_do_not_fire_here(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "worker_crash:p=1")
        assert faults.maybe_network_fault("any@0") is None

    def test_returned_spec_carries_action_parameters(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "stall_s:p=1:hang_s=3")
        spec = faults.maybe_network_fault("ue@0")
        assert spec is not None and spec.name == "stall_s" and spec.hang_s == 3.0
