"""The fault-injection harness: spec parsing and deterministic firing."""

from __future__ import annotations

import warnings

import pytest

from repro.robust import faults
from repro.robust.faults import FaultSpec, parse_spec


@pytest.fixture(autouse=True)
def _isolated_faults(monkeypatch):
    # Each test owns the spec: clear any externally set REPRO_FAULTS
    # (the CI fault-smoke job exports one) and the per-process tallies.
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    faults.reset()
    yield
    faults.reset()


class TestParsing:
    def test_full_spec(self):
        specs = parse_spec("worker_crash:p=0.2:seed=7,worker_hang:hang_s=5")
        assert specs == (
            FaultSpec("worker_crash", p=0.2, seed=7),
            FaultSpec("worker_hang", hang_s=5.0),
        )

    def test_bare_names_and_whitespace(self):
        specs = parse_spec(" cache_write_oserror , cache_truncate:times=1 ")
        assert [s.name for s in specs] == ["cache_write_oserror", "cache_truncate"]
        assert specs[1].times == 1

    def test_key_attempts_params(self):
        (spec,) = parse_spec("worker_crash:key=3:attempts=1")
        assert spec.key == "3" and spec.attempts == 1

    def test_unknown_fault_warns_and_drops(self):
        with pytest.warns(RuntimeWarning, match="unknown fault"):
            specs = parse_spec("worker_crush:p=1,worker_hang")
        assert [s.name for s in specs] == ["worker_hang"]

    def test_malformed_param_warns_and_drops_entry(self):
        with pytest.warns(RuntimeWarning, match="bad parameter"):
            specs = parse_spec("worker_crash:p=often,cache_truncate")
        assert [s.name for s in specs] == ["cache_truncate"]

    def test_empty_spec_is_inert(self):
        assert parse_spec("") == ()
        assert faults.active_faults() == ()

    def test_env_reparse_on_change(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "worker_hang")
        assert [s.name for s in faults.active_faults()] == ["worker_hang"]
        monkeypatch.setenv("REPRO_FAULTS", "worker_crash")
        assert [s.name for s in faults.active_faults()] == ["worker_crash"]


class TestFiring:
    def test_draw_is_deterministic_per_key_and_attempt(self):
        spec = FaultSpec("worker_crash", p=0.5, seed=7)
        draws = [faults._draw(spec, key, 0) for key in range(64)]
        assert draws == [faults._draw(spec, key, 0) for key in range(64)]
        # Attempts re-draw: a retry is not doomed to the same outcome.
        assert draws != [faults._draw(spec, key, 1) for key in range(64)]
        # p is a real probability, not all-or-nothing.
        fired = sum(d < 0.5 for d in draws)
        assert 16 <= fired <= 48

    def test_key_restriction(self):
        spec = FaultSpec("worker_crash", key="3")
        assert faults._fires(spec, 3, 0)
        assert not faults._fires(spec, 2, 0)

    def test_attempts_window(self):
        spec = FaultSpec("worker_hang", attempts=1)
        assert faults._fires(spec, 0, 0)
        assert not faults._fires(spec, 0, 1)

    def test_times_cap_counts_per_process(self):
        spec = FaultSpec("cache_truncate", times=2)
        fired = [faults._fires(spec, f"entry-{i}", 0) for i in range(5)]
        assert fired == [True, True, False, False, False]

    def test_cache_write_hook_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "cache_write_oserror")
        with pytest.raises(OSError, match="injected"):
            faults.maybe_raise_cache_write("some-entry.npz")
        assert faults.fired_counts["cache_write_oserror"] == 1

    def test_truncate_hook_halves_file(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_FAULTS", "cache_truncate")
        path = tmp_path / "entry.npz"
        path.write_bytes(b"0123456789")
        faults.maybe_truncate(path)
        assert path.read_bytes() == b"01234"

    def test_hooks_inert_without_spec(self, tmp_path):
        path = tmp_path / "entry.npz"
        path.write_bytes(b"0123456789")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            faults.maybe_fail_job(0, 0)
            faults.maybe_raise_cache_write("entry.npz")
            faults.maybe_truncate(path)
        assert path.read_bytes() == b"0123456789"
        assert not faults.fired_counts
