"""Measurement events (Table 4) and their trigger evaluation."""

import pytest
from hypothesis import given, strategies as st

from repro.radio.rrs import RRSSample
from repro.rrc.events import (
    EventConfig,
    EventType,
    MeasurementObject,
    evaluate_event,
)


def sample(rsrp: float) -> RRSSample:
    return RRSSample(rsrp_dbm=rsrp, rsrq_db=-8.0, sinr_db=15.0)


def config(event: EventType, **kwargs) -> EventConfig:
    return EventConfig(event, MeasurementObject.LTE, **kwargs)


class TestTriggerConditions:
    def test_a1_serving_better_than_threshold(self):
        cfg = config(EventType.A1, threshold_dbm=-100.0)
        assert evaluate_event(cfg, sample(-90.0), None)
        assert not evaluate_event(cfg, sample(-110.0), None)

    def test_a2_serving_worse_than_threshold(self):
        cfg = config(EventType.A2, threshold_dbm=-100.0)
        assert evaluate_event(cfg, sample(-110.0), None)
        assert not evaluate_event(cfg, sample(-90.0), None)

    def test_a3_neighbour_offset_better(self):
        cfg = config(EventType.A3, offset_db=3.0)
        assert evaluate_event(cfg, sample(-100.0), sample(-95.0))
        assert not evaluate_event(cfg, sample(-100.0), sample(-99.0))

    def test_a4_b1_neighbour_above_threshold(self):
        for event in (EventType.A4, EventType.B1):
            cfg = config(event, threshold_dbm=-105.0)
            assert evaluate_event(cfg, None, sample(-100.0))
            assert not evaluate_event(cfg, None, sample(-110.0))

    def test_a5_dual_condition(self):
        cfg = config(EventType.A5, threshold_dbm=-105.0, threshold2_dbm=-100.0)
        assert evaluate_event(cfg, sample(-110.0), sample(-95.0))
        assert not evaluate_event(cfg, sample(-95.0), sample(-95.0))  # serving too good
        assert not evaluate_event(cfg, sample(-110.0), sample(-104.0))  # nbr too weak

    def test_periodic_always_true(self):
        cfg = config(EventType.PERIODIC)
        assert evaluate_event(cfg, None, None)

    def test_hysteresis_delays_entry(self):
        cfg = config(EventType.A2, threshold_dbm=-100.0, hysteresis_db=3.0)
        assert not evaluate_event(cfg, sample(-101.0), None)
        assert evaluate_event(cfg, sample(-104.0), None)

    def test_missing_serving_counts_as_weak(self):
        cfg = config(EventType.A2, threshold_dbm=-100.0)
        assert evaluate_event(cfg, None, None)

    def test_missing_neighbour_never_triggers(self):
        cfg = config(EventType.A3, offset_db=3.0)
        assert not evaluate_event(cfg, sample(-100.0), None)

    @given(st.floats(min_value=-140, max_value=-40), st.floats(min_value=-140, max_value=-40))
    def test_a3_antisymmetry(self, s, n):
        cfg = config(EventType.A3, offset_db=0.0, hysteresis_db=0.0)
        forward = evaluate_event(cfg, sample(s), sample(n))
        backward = evaluate_event(cfg, sample(n), sample(s))
        assert not (forward and backward)


class TestEventConfig:
    def test_label_carries_nr_prefix(self):
        lte = EventConfig(EventType.A3, MeasurementObject.LTE)
        nr = EventConfig(EventType.A3, MeasurementObject.NR)
        assert lte.label == "A3"
        assert nr.label == "NR-A3"

    def test_needs_neighbour(self):
        assert EventConfig(EventType.A3, MeasurementObject.LTE).event.needs_neighbour
        assert not EventConfig(EventType.A2, MeasurementObject.LTE).event.needs_neighbour

    def test_needs_serving(self):
        assert EventConfig(EventType.A2, MeasurementObject.NR).needs_serving
        assert EventConfig(EventType.A5, MeasurementObject.LTE).needs_serving
        assert not EventConfig(EventType.B1, MeasurementObject.NR).needs_serving

    def test_validation(self):
        with pytest.raises(ValueError):
            EventConfig(EventType.A2, MeasurementObject.LTE, time_to_trigger_s=-1.0)
        with pytest.raises(ValueError):
            EventConfig(EventType.A2, MeasurementObject.LTE, hysteresis_db=-1.0)
