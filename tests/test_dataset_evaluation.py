"""Dataset builders, bootstrap mining, and the evaluation drivers."""

import numpy as np
import pytest

from repro.core.bootstrap import frequent_patterns_from_logs, phases_from_log
from repro.core.evaluation import (
    configs_for_log,
    evaluate_gbc,
    evaluate_prognos,
    run_prognos_over_logs,
)
from repro.core.patterns import Pattern
from repro.ml.features import (
    build_location_sequence_dataset,
    build_radio_feature_dataset,
    handover_events,
    label_for_tick,
    train_test_split_by_time,
)
from repro.radio.bands import BandClass
from repro.ran import OPX
from repro.rrc.taxonomy import HandoverType
from repro.simulate.dataset import build_abr_traces
from repro.simulate.scenarios import city_walk_scenario


class TestFeatures:
    def test_label_windows(self, freeway_low_log):
        record = freeway_low_log.handovers[0]
        just_before = record.decision_time_s - 0.5
        assert label_for_tick(freeway_low_log, just_before, 1.0) is record.ho_type
        long_before = record.decision_time_s - 10.0
        label = label_for_tick(freeway_low_log, long_before, 1.0)
        assert label is HandoverType.NONE or label is not record.ho_type

    def test_radio_dataset_shapes(self, freeway_low_log):
        dataset = build_radio_feature_dataset([freeway_low_log], stride=10)
        assert dataset.x.ndim == 2
        assert dataset.x.shape[0] == len(dataset.labels)
        assert dataset.positives > 0

    def test_sequence_dataset_shapes(self, freeway_low_log):
        dataset = build_location_sequence_dataset(
            [freeway_low_log], stride=10, history_ticks=10
        )
        assert dataset.x.ndim == 3
        assert dataset.x.shape[1] == 10

    def test_split_chronological(self, freeway_low_log):
        dataset = build_radio_feature_dataset([freeway_low_log], stride=10)
        train, test = train_test_split_by_time(dataset, 0.6)
        assert train.times_s[-1] <= test.times_s[0]
        with pytest.raises(ValueError):
            train_test_split_by_time(dataset, 1.5)

    def test_handover_events_offsets(self, freeway_low_log):
        single = handover_events([freeway_low_log])
        double = handover_events([freeway_low_log, freeway_low_log])
        assert len(double) == 2 * len(single)
        assert double[len(single)][0] > single[-1][0]


class TestBootstrap:
    def test_phases_cover_all_handovers(self, freeway_low_log):
        phases = phases_from_log(freeway_low_log)
        assert len(phases) == len(freeway_low_log.handovers)

    def test_frequent_patterns_per_type(self, freeway_low_log):
        patterns = frequent_patterns_from_logs([freeway_low_log], per_type=1)
        types = {p.ho_type for p in patterns}
        observed = {h.ho_type for h in freeway_low_log.handovers}
        assert types == observed
        assert all(isinstance(p, Pattern) for p in patterns)
        assert all(s >= 1 for s in patterns.values())


class TestEvaluation:
    def test_prognos_run_structure(self, mmwave_walk_log):
        configs = configs_for_log(OPX, (BandClass.MMWAVE,))
        result = run_prognos_over_logs([mmwave_walk_log], configs, stride=4)
        assert len(result.predictions) == len(result.truths) == len(result.times_s)
        assert result.events

    def test_prognos_beats_chance(self, mmwave_walk_log):
        report, result = evaluate_prognos(
            [mmwave_walk_log], OPX, (BandClass.MMWAVE,), stride=4
        )
        assert report.f1 > 0.2
        assert 0.0 <= report.accuracy <= 1.0

    def test_bootstrap_improves_early_f1(self, mmwave_walk_log):
        configs = configs_for_log(OPX, (BandClass.MMWAVE,))
        seeds = frequent_patterns_from_logs([mmwave_walk_log])
        cold = run_prognos_over_logs([mmwave_walk_log], configs, stride=4)
        warm = run_prognos_over_logs(
            [mmwave_walk_log], configs, stride=4, bootstrap=seeds
        )
        early = mmwave_walk_log.duration_s * 0.3
        cold_report = _early_report(cold, early)
        warm_report = _early_report(warm, early)
        assert warm_report.f1 >= cold_report.f1 - 0.05

    def test_gbc_evaluation_runs(self, mmwave_walk_log):
        report = evaluate_gbc([mmwave_walk_log], stride=8)
        assert 0.0 <= report.f1 <= 1.0

    def test_lead_times_positive(self, mmwave_walk_log):
        configs = configs_for_log(OPX, (BandClass.MMWAVE,))
        result = run_prognos_over_logs([mmwave_walk_log], configs, stride=4)
        assert all(l >= 0 for l in result.lead_times_s)


def _early_report(result, until_s):
    mask = result.times_s <= until_s
    from repro.ml.metrics import event_level_report

    return event_level_report(
        result.times_s[mask],
        [p for p, m in zip(result.predictions, mask) if m],
        [t for t, m in zip(result.truths, mask) if m],
        [(t, c) for t, c in result.events if t <= until_s],
        negative_class=HandoverType.NONE,
    )


class TestAbrTraces:
    def test_filtering(self, mmwave_walk_log):
        traces = build_abr_traces(
            [mmwave_walk_log], window_s=120.0, stride_s=60.0, max_avg_mbps=400.0
        )
        for trace in traces:
            assert trace.mean_mbps <= 400.0
            assert trace.min_mbps >= 2.0

    def test_minimum_guard(self, mmwave_walk_log):
        with pytest.raises(RuntimeError):
            build_abr_traces(
                [mmwave_walk_log],
                window_s=120.0,
                max_avg_mbps=0.001,
                minimum=1,
            )
