"""Self-healing caches: counted write failures and quarantined entries."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.dataset_cache import DatasetCache
from repro.ml.features import LabeledDataset
from repro.ml.model_cache import ModelCache
from repro.radio.bands import BandClass
from repro.ran import OPX
from repro.robust import faults
from repro.rrc.taxonomy import HandoverType
from repro.simulate.cache import DriveCache
from repro.simulate.runner import run_drives
from repro.simulate.scenarios import freeway_scenario
from repro.simulate.serialization import log_to_dict


@pytest.fixture(autouse=True)
def _isolated_faults(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    faults.reset()
    yield
    faults.reset()


@pytest.fixture(scope="module")
def scenario():
    return freeway_scenario(OPX, BandClass.LOW, length_km=1.0, seed=61)


@pytest.fixture(scope="module")
def drive_log(scenario):
    return scenario.run()


def _truncate(path):
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 2])


class TestDriveCache:
    def test_write_fault_degrades_to_counted_noop(
        self, monkeypatch, tmp_path, scenario, drive_log
    ):
        monkeypatch.setenv("REPRO_FAULTS", "cache_write_oserror")
        cache = DriveCache(tmp_path)
        cache.put(scenario, drive_log)
        assert cache.stats["put_failures"] == 1
        assert cache.stats["stores"] == 0
        assert not any(tmp_path.iterdir())
        assert cache.get(scenario) is None

    def test_run_drives_survives_write_faults(
        self, monkeypatch, tmp_path, scenario, drive_log
    ):
        monkeypatch.setenv("REPRO_FAULTS", "cache_write_oserror")
        cache = DriveCache(tmp_path)
        (log,) = run_drives([scenario], workers=1, cache=cache)
        assert log_to_dict(log) == log_to_dict(drive_log)
        assert cache.stats["put_failures"] == 1
        assert cache.stats["stores"] == 0

    def test_truncated_entry_quarantined_exactly_once(
        self, tmp_path, scenario, drive_log
    ):
        cache = DriveCache(tmp_path)
        cache.put(scenario, drive_log)
        path = cache._path(cache.key_for(scenario))
        _truncate(path)

        assert cache.get(scenario) is None
        assert cache.stats["corrupt"] == 1
        assert not path.exists()
        assert path.with_name(path.name + ".corrupt").exists()

        # The quarantined entry is now a cheap ordinary miss, not a
        # second decode failure.
        assert cache.get(scenario) is None
        assert cache.stats["corrupt"] == 1
        assert cache.stats["misses"] == 2

        # Re-simulating and re-storing heals the slot.
        cache.put(scenario, drive_log)
        healed = cache.get(scenario)
        assert healed is not None
        assert log_to_dict(healed) == log_to_dict(drive_log)

    def test_injected_truncate_heals_on_rewrite(
        self, monkeypatch, tmp_path, scenario, drive_log
    ):
        monkeypatch.setenv("REPRO_FAULTS", "cache_truncate:times=1")
        cache = DriveCache(tmp_path)
        cache.put(scenario, drive_log)  # published, then corrupted
        assert cache.stats["stores"] == 1
        assert cache.get(scenario) is None
        assert cache.stats["corrupt"] == 1

        cache.put(scenario, drive_log)  # times=1 exhausted: clean write
        healed = cache.get(scenario)
        assert healed is not None
        assert log_to_dict(healed) == log_to_dict(drive_log)


@pytest.fixture(scope="module")
def dataset():
    return LabeledDataset(
        np.arange(12, dtype=float).reshape(4, 3),
        [HandoverType.SCGA, HandoverType.SCGR, HandoverType.SCGA, HandoverType.SCGR],
        np.linspace(0.0, 1.5, 4),
    )


class TestDatasetCache:
    def test_write_fault_degrades_to_counted_noop(self, monkeypatch, tmp_path, dataset):
        monkeypatch.setenv("REPRO_FAULTS", "cache_write_oserror")
        cache = DatasetCache(tmp_path, enabled=True)
        cache.put("radio", "k" * 8, dataset)
        assert cache.stats["put_failures"] == 1
        assert cache.stats["stores"] == 0
        assert cache.get("radio", "k" * 8) is None

    def test_truncated_entry_quarantined_then_healed(self, tmp_path, dataset):
        cache = DatasetCache(tmp_path, enabled=True)
        cache.put("radio", "k" * 8, dataset)
        path = cache._path("radio", "k" * 8)
        _truncate(path)

        assert cache.get("radio", "k" * 8) is None
        assert cache.stats["corrupt"] == 1
        assert path.with_name(path.name + ".corrupt").exists()

        cache.put("radio", "k" * 8, dataset)
        healed = cache.get("radio", "k" * 8)
        assert healed is not None
        assert np.array_equal(healed.x, dataset.x)
        assert healed.labels == dataset.labels


class TestModelCache:
    def test_write_fault_degrades_to_counted_noop(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_FAULTS", "cache_write_oserror")
        cache = ModelCache(tmp_path, enabled=True)
        cache.put("gbc", "k" * 8, {"weights": [1, 2, 3]})
        assert cache.stats["put_failures"] == 1
        assert cache.stats["stores"] == 0
        assert cache.get("gbc", "k" * 8) is None

    def test_garbage_entry_quarantined_then_healed(self, tmp_path):
        cache = ModelCache(tmp_path, enabled=True)
        model = {"weights": np.arange(4)}
        cache.put("gbc", "k" * 8, model)
        path = cache._path("gbc", "k" * 8)
        path.write_bytes(b"not a gzip stream")  # BadGzipFile, an OSError subclass

        assert cache.get("gbc", "k" * 8) is None
        assert cache.stats["corrupt"] == 1
        assert path.with_name(path.name + ".corrupt").exists()

        cache.put("gbc", "k" * 8, model)
        healed = cache.get("gbc", "k" * 8)
        assert healed is not None
        assert np.array_equal(healed["weights"], model["weights"])

    def test_truncated_gzip_is_quarantined(self, tmp_path):
        cache = ModelCache(tmp_path, enabled=True)
        cache.put("gbc", "k" * 8, {"weights": list(range(64))})
        path = cache._path("gbc", "k" * 8)
        _truncate(path)
        assert cache.get("gbc", "k" * 8) is None
        assert cache.stats["corrupt"] == 1
