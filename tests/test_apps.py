"""Application models: QoE windows, conferencing, gaming, streaming, ABR."""

import numpy as np
import pytest

from repro.apps import (
    CloudGamingModel,
    ConferencingModel,
    FastMpc,
    Festive,
    HarmonicMeanPredictor,
    HoAwareCorrector,
    PredictionFeed,
    RateBased,
    RobustMpc,
    VIDEO_LEVELS_MBPS,
    VodPlayer,
    VolumetricStream,
    compare_ho_windows,
)
from repro.apps.abr.prediction import effective_score
from repro.apps.qoe import ho_window_mask
from repro.net.emulation import BandwidthTrace
from repro.rrc.taxonomy import HandoverType


def flat_trace(mbps: float, duration_s: float = 300.0, tick: float = 0.25):
    times = np.arange(0.0, duration_s, tick)
    return BandwidthTrace(times_s=times, capacity_mbps=np.full(len(times), mbps))


def step_trace(levels, seg_s=30.0, tick=0.25):
    times = np.arange(0.0, seg_s * len(levels), tick)
    caps = np.concatenate([np.full(int(seg_s / tick), l) for l in levels])
    return BandwidthTrace(times_s=times, capacity_mbps=caps.astype(float))


class TestQoeWindows:
    def test_mask_and_comparison(self, freeway_low_log):
        times, caps = freeway_low_log.capacity_series()
        mask = ho_window_mask(times, freeway_low_log.handovers)
        assert mask.any() and not mask.all()
        comparison = compare_ho_windows(times, caps, freeway_low_log.handovers)
        assert comparison.samples_with + comparison.samples_without == len(times)

    def test_mismatched_lengths_rejected(self, freeway_low_log):
        times, caps = freeway_low_log.capacity_series()
        with pytest.raises(ValueError):
            compare_ho_windows(times[:-1], caps, freeway_low_log.handovers)


class TestConferencing:
    def test_handovers_degrade_call(self, freeway_low_log):
        result = ConferencingModel().run(freeway_low_log)
        assert result.latency_comparison.mean_ratio > 1.0
        assert result.loss_comparison.mean_ratio > 1.0

    def test_latency_positive_everywhere(self, freeway_low_log):
        result = ConferencingModel().run(freeway_low_log)
        assert (result.latency_ms > 0).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            ConferencingModel(bitrate_mbps=0.0)


class TestGaming:
    def test_handovers_drop_frames(self, freeway_low_log):
        result = CloudGamingModel().run(freeway_low_log)
        assert result.drops_comparison.mean_ratio > 1.0
        assert result.latency_comparison.mean_ratio > 1.0

    def test_per_type_breakdown_nonempty(self, freeway_low_log):
        result = CloudGamingModel().run(freeway_low_log)
        assert result.per_type

    def test_validation(self):
        with pytest.raises(ValueError):
            CloudGamingModel(fps=0.0)


class TestAbrAlgorithms:
    def test_rate_based_respects_budget(self):
        algo = RateBased(safety=1.0)
        level = algo.select([5.0, 10.0, 20.0], 10.0, 0, predicted_mbps=12.0, chunk_s=2.0)
        assert level == 1

    def test_rate_based_floors_at_zero(self):
        algo = RateBased()
        assert algo.select([5.0, 10.0], 0.0, 1, predicted_mbps=1.0, chunk_s=2.0) == 0

    def test_mpc_prefers_high_when_buffer_rich(self):
        algo = FastMpc()
        level = algo.select([5.0, 10.0, 20.0], 30.0, 2, predicted_mbps=40.0, chunk_s=2.0)
        assert level == 2

    def test_mpc_backs_off_when_starved(self):
        algo = FastMpc()
        level = algo.select([5.0, 10.0, 20.0], 0.5, 2, predicted_mbps=6.0, chunk_s=2.0)
        assert level <= 1

    def test_robust_mpc_discounts_after_errors(self):
        algo = RobustMpc()
        algo.observe_error(predicted_mbps=100.0, actual_mbps=50.0)
        discounted = algo._discounted(100.0)
        assert discounted < 100.0

    def test_festive_moves_one_level(self):
        algo = Festive(up_patience=1)
        assert algo.select([5.0, 10.0, 20.0], 5.0, 0, predicted_mbps=100.0, chunk_s=1.0) == 1
        assert algo.select([5.0, 10.0, 20.0], 5.0, 2, predicted_mbps=1.0, chunk_s=1.0) == 1

    def test_festive_up_patience(self):
        algo = Festive(up_patience=2)
        assert algo.select([5.0, 10.0], 5.0, 0, predicted_mbps=100.0, chunk_s=1.0) == 0
        assert algo.select([5.0, 10.0], 5.0, 0, predicted_mbps=100.0, chunk_s=1.0) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            RateBased(safety=0.0)
        with pytest.raises(ValueError):
            Festive(up_patience=0)


class TestPrediction:
    def test_harmonic_mean(self):
        predictor = HarmonicMeanPredictor(history=3)
        for r in (10.0, 20.0, 40.0):
            predictor.observe(r)
        expected = 3.0 / (1 / 10 + 1 / 20 + 1 / 40)
        assert predictor.predict_mbps() == pytest.approx(expected)

    def test_default_before_observations(self):
        assert HarmonicMeanPredictor().predict_mbps(default=7.0) == 7.0

    def test_feed_lookup(self):
        feed = PredictionFeed(np.array([10.0]), np.array([0.14]))
        assert feed.score_at(10.2) == pytest.approx(0.14)
        assert feed.score_at(15.0) == 1.0
        assert feed.score_at(5.0) == 1.0

    def test_gt_feed_lookahead(self):
        feed = PredictionFeed.from_ground_truth(
            [(10.0, HandoverType.SCGR)], lookahead_s=2.0
        )
        assert feed.score_at(8.5) < 1.0  # within lookahead
        assert feed.score_at(4.0) == 1.0

    def test_effective_score_blend(self):
        assert effective_score(0.14) == pytest.approx(0.14)
        assert effective_score(1.0) == 1.0
        assert effective_score(17.0) == pytest.approx(1.5)  # capped

    def test_corrector(self):
        base = HarmonicMeanPredictor()
        base.observe(100.0)
        feed = PredictionFeed.from_ground_truth([(5.0, HandoverType.SCGR)])
        corrector = HoAwareCorrector(base, feed)
        assert corrector.predict_mbps(4.5) < 100.0 * 0.2

    def test_prognos_feed_keeps_positives_only(self):
        feed = PredictionFeed.from_prognos(
            np.array([1.0, 2.0, 3.0]),
            [HandoverType.NONE, HandoverType.SCGR, HandoverType.NONE],
        )
        assert len(feed.times_s) == 1


class TestVodPlayer:
    def test_no_stall_on_ample_bandwidth(self):
        result = VodPlayer(RateBased()).play(flat_trace(300.0))
        assert result.stall_s == pytest.approx(0.0)
        assert result.normalized_bitrate > 0.5

    def test_capacity_drop_causes_stall_without_feed(self):
        trace = step_trace([200.0, 8.0, 200.0, 8.0], seg_s=25.0)
        result = VodPlayer(FastMpc()).play(trace)
        assert result.stall_s > 0.0

    def test_feed_reduces_stall_on_drops(self):
        trace = step_trace([200.0, 8.0, 200.0, 8.0], seg_s=25.0)
        events = [(25.0, HandoverType.SCGR), (75.0, HandoverType.SCGR)]
        plain = VodPlayer(FastMpc()).play(trace, events)
        aided = VodPlayer(
            FastMpc(), feed=PredictionFeed.from_ground_truth(events)
        ).play(trace, events)
        assert aided.stall_s <= plain.stall_s

    def test_prediction_errors_tagged(self):
        trace = flat_trace(100.0)
        events = [(1.0, HandoverType.SCGM)]
        result = VodPlayer(RateBased()).play(trace, events)
        assert any(tag for _, _, tag in result.prediction_errors) or True
        assert len(result.prediction_errors) == len(result.levels)

    def test_stall_pct_formula(self):
        result = VodPlayer(RateBased()).play(flat_trace(300.0))
        assert result.stall_pct == pytest.approx(
            100.0 * result.stall_s / (result.video_s + result.stall_s)
        )


class TestVolumetric:
    def test_high_capacity_reaches_top_levels(self):
        result = VolumetricStream(RateBased()).run(flat_trace(400.0), duration_s=60.0)
        assert result.mean_bitrate_mbps > 100.0
        assert result.stall_s == pytest.approx(0.0, abs=0.5)

    def test_low_capacity_stays_low(self):
        result = VolumetricStream(RateBased()).run(flat_trace(50.0), duration_s=60.0)
        assert result.mean_bitrate_mbps == pytest.approx(43.0, rel=0.15)

    def test_feed_improves_quality_after_additions(self):
        # Capacity jumps (an SCGA): the corrected predictor should climb
        # at least as fast as the lagging harmonic mean.
        trace = step_trace([50.0, 400.0], seg_s=30.0)
        events = [(30.0, HandoverType.SCGA)]
        plain = VolumetricStream(Festive()).run(trace, duration_s=60.0)
        aided = VolumetricStream(
            Festive(), feed=PredictionFeed.from_ground_truth(events)
        ).run(trace, duration_s=60.0)
        assert aided.mean_bitrate_mbps >= plain.mean_bitrate_mbps
