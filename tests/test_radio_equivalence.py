"""Vectorized radio pipeline vs the scalar reference.

The vectorized path must be a pure optimisation: identical generator
stream consumption, RRS values within float tolerance, and bit-identical
discrete outcomes (serving cells, reports, handovers) for the same seed.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.radio.bands import BandClass
from repro.radio.rrs import RadioEnvironment, ScalarRadioEnvironment
from repro.ran import OPX
from repro.simulate.scenarios import freeway_scenario
from repro.simulate.simulator import DriveSimulator

TOL_DB = 1e-9


def _run(scenario, vectorized: bool):
    config = dataclasses.replace(scenario.config, vectorized_radio=vectorized)
    rng = np.random.default_rng(scenario.seed + 0x5EED)
    return DriveSimulator(
        scenario.deployment, scenario.trajectory, rng, config
    ).run()


@pytest.fixture(scope="module")
def paired_logs():
    scenario = freeway_scenario(OPX, BandClass.LOW, length_km=3.0, seed=77)
    return _run(scenario, False), _run(scenario, True)


def _rrs_close(a, b):
    if a is None or b is None:
        return a is None and b is None
    return (
        abs(a.rsrp_dbm - b.rsrp_dbm) < TOL_DB
        and abs(a.rsrq_db - b.rsrq_db) < TOL_DB
        and abs(a.sinr_db - b.sinr_db) < TOL_DB
    )


def test_ticks_match(paired_logs):
    scalar, vector = paired_logs
    assert len(scalar.ticks) == len(vector.ticks)
    for a, b in zip(scalar.ticks, vector.ticks):
        assert a.lte_serving_gci == b.lte_serving_gci
        assert a.nr_serving_gci == b.nr_serving_gci
        assert _rrs_close(a.lte_rrs, b.lte_rrs)
        assert _rrs_close(a.nr_rrs, b.nr_rrs)
        assert abs(a.total_capacity_mbps - b.total_capacity_mbps) < 1e-6
        assert (a.lte_interrupted, a.nr_interrupted) == (
            b.lte_interrupted,
            b.nr_interrupted,
        )


def test_neighbour_lists_match(paired_logs):
    scalar, vector = paired_logs
    for a, b in zip(scalar.ticks, vector.ticks):
        for na, nb in ((a.lte_neighbours, b.lte_neighbours),
                       (a.nr_neighbours, b.nr_neighbours)):
            assert [(n.gci, n.in_a3_scope) for n in na] == [
                (n.gci, n.in_a3_scope) for n in nb
            ]
            for x, y in zip(na, nb):
                assert _rrs_close(x.rrs, y.rrs)


def test_reports_and_handovers_match(paired_logs):
    scalar, vector = paired_logs
    assert [(r.time_s, r.label, r.serving_gci, r.neighbour_gci) for r in scalar.reports] == [
        (r.time_s, r.label, r.serving_gci, r.neighbour_gci) for r in vector.reports
    ]
    key = lambda h: (
        h.ho_type, h.decision_time_s, h.exec_start_s, h.complete_s,
        h.t1_ms, h.t2_ms, h.source_gci, h.target_gci,
    )
    assert [key(h) for h in scalar.handovers] == [key(h) for h in vector.handovers]


def _tiny_deployment():
    scenario = freeway_scenario(OPX, BandClass.LOW, length_km=2.0, seed=5)
    return scenario.deployment.cells[:6]


def test_environment_matches_scalar_reference_per_tick():
    """Tick-by-tick, the vectorized environment reproduces the scalar one
    and consumes the generator stream in the same order."""
    cells = _tiny_deployment()
    rng_a = np.random.default_rng(42)
    rng_b = np.random.default_rng(42)
    vec = RadioEnvironment(rng_a)
    ref = ScalarRadioEnvironment(rng_b)
    for env in (vec, ref):
        for cell in cells:
            env.register(cell, cell.band, cell.eirp_dbm)
    for step in range(20):
        travelled = 12.5 * step
        distances = {
            c: float(np.hypot(c.position.x - travelled, c.position.y))
            for c in cells
        }
        got = vec.measure(distances, travelled)
        want = ref.measure(distances, travelled)
        assert list(got) == list(want)
        for cell in want:
            assert _rrs_close(got[cell], want[cell])
    # Same stream position afterwards: the next draw must agree.
    assert rng_a.standard_normal() == rng_b.standard_normal()


def test_block_measure_matches_sequential_ticks():
    """One measure_block over a window equals per-tick measure calls."""
    cells = _tiny_deployment()
    rng_a = np.random.default_rng(7)
    rng_b = np.random.default_rng(7)
    block_env = RadioEnvironment(rng_a)
    tick_env = RadioEnvironment(rng_b)
    for env in (block_env, tick_env):
        for cell in cells:
            env.register(cell, cell.band, cell.eirp_dbm)
    ticks = 16
    travelled = np.arange(ticks) * 10.0
    distances = np.hypot(
        np.array([c.position.x for c in cells])[None, :] - travelled[:, None],
        np.array([c.position.y for c in cells])[None, :],
    )
    block = block_env.measure_block(list(cells), distances, travelled)
    for t in range(ticks):
        batch = tick_env.measure_batch(list(cells), distances[t], float(travelled[t]))
        per_tick = batch.samples()
        for i, cell in enumerate(cells):
            if not block.audible[t, i]:
                assert cell not in per_tick
                continue
            sample = per_tick[cell]
            assert abs(block.rsrp[t, i] - sample.rsrp_dbm) < TOL_DB
            assert abs(block.rsrq[t, i] - sample.rsrq_db) < TOL_DB
            assert abs(block.sinr[t, i] - sample.sinr_db) < TOL_DB
    assert rng_a.standard_normal() == rng_b.standard_normal()
