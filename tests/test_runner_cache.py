"""run_drives determinism and the on-disk corpus cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.radio.bands import BandClass
from repro.radio.rrs import RadioEnvironment
from repro.ran import OPX
from repro.simulate import fanout
from repro.simulate.cache import DriveCache, atomic_publish, scenario_fingerprint
from repro.simulate.runner import run_drives
from repro.simulate.scenarios import freeway_scenario
from repro.simulate.serialization import log_to_dict


def _scenarios():
    return [
        freeway_scenario(OPX, BandClass.LOW, length_km=1.5, seed=31),
        freeway_scenario(OPX, None, length_km=1.5, seed=32),
    ]


@pytest.fixture(scope="module")
def serial_logs():
    return run_drives(_scenarios(), workers=1, use_cache=False)


def test_parallel_matches_serial(serial_logs):
    parallel = run_drives(_scenarios(), workers=4, use_cache=False)
    assert len(parallel) == len(serial_logs)
    for a, b in zip(serial_logs, parallel):
        assert log_to_dict(a) == log_to_dict(b)


def test_cache_round_trip(tmp_path, serial_logs):
    scenarios = _scenarios()
    cache = DriveCache(tmp_path)
    first = run_drives(scenarios, workers=1, cache=cache)
    assert cache.stats == {
        "hits": 0,
        "misses": 2,
        "stores": 2,
        "put_failures": 0,
        "corrupt": 0,
    }
    assert sorted(p.name for p in tmp_path.iterdir()) == sorted(
        f"{DriveCache.key_for(s)}.npz" for s in scenarios
    )

    warm = DriveCache(tmp_path)
    second = run_drives(scenarios, workers=1, cache=warm)
    assert warm.stats == {
        "hits": 2,
        "misses": 0,
        "stores": 0,
        "put_failures": 0,
        "corrupt": 0,
    }
    for a, b, c in zip(serial_logs, first, second):
        assert log_to_dict(a) == log_to_dict(b) == log_to_dict(c)


def test_cache_dir_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "relocated"))
    cache = DriveCache()
    assert cache.root == tmp_path / "relocated"
    assert cache.enabled


def test_no_cache_env(tmp_path, monkeypatch, serial_logs):
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    cache = DriveCache()
    assert not cache.enabled
    scenario = _scenarios()[0]
    cache.put(scenario, serial_logs[0])
    assert not tmp_path.exists() or not list(tmp_path.iterdir())
    assert cache.get(scenario) is None
    assert cache.stats["misses"] == 1


def _hammer_put(root, repeats):
    # Child-process body for the concurrent-writer stress test. Rebuilds
    # the scenario/log locally so nothing large crosses the fork.
    scenario = _scenarios()[0]
    log = scenario.run()
    cache = DriveCache(root)
    for _ in range(repeats):
        cache.put(scenario, log)


def test_concurrent_writers_same_key(tmp_path, serial_logs):
    """Two processes hammer ``put`` on one key; the loser's entry loads."""
    ctx = fanout.fork_context()
    if ctx is None:
        pytest.skip("fork start method unavailable")
    children = [
        ctx.Process(target=_hammer_put, args=(tmp_path, 5)) for _ in range(2)
    ]
    for child in children:
        child.start()
    for child in children:
        child.join(timeout=120)
        assert child.exitcode == 0
    scenario = _scenarios()[0]
    leftovers = [p.name for p in tmp_path.iterdir() if p.name.endswith(".tmp")]
    assert leftovers == []
    assert [p.name for p in tmp_path.iterdir()] == [
        f"{DriveCache.key_for(scenario)}.npz"
    ]
    survivor = DriveCache(tmp_path).get(scenario)
    assert survivor is not None
    assert log_to_dict(survivor) == log_to_dict(serial_logs[0])


def test_atomic_publish_cleans_up_on_failure(tmp_path):
    target = tmp_path / "entry.npz"
    with pytest.raises(RuntimeError):
        with atomic_publish(target) as tmp:
            tmp.write_bytes(b"partial")
            raise RuntimeError("writer died")
    assert not target.exists()
    assert list(tmp_path.iterdir()) == []


def test_atomic_publish_temp_names_unique(tmp_path):
    target = tmp_path / "entry.npz"
    seen = set()
    for _ in range(8):
        with atomic_publish(target) as tmp:
            seen.add(tmp.name)
            tmp.write_bytes(b"payload")
    assert len(seen) == 8
    assert target.read_bytes() == b"payload"


def test_fingerprint_tracks_inputs():
    a, b = _scenarios()
    assert DriveCache.key_for(a) != DriveCache.key_for(b)
    same = freeway_scenario(OPX, BandClass.LOW, length_km=1.5, seed=31)
    assert DriveCache.key_for(a) == DriveCache.key_for(same)
    fp = scenario_fingerprint(a)
    assert fp["seed"] == 31 and fp["code_version"]


def test_eviction_bounds_tracked_cells():
    cells = freeway_scenario(OPX, BandClass.LOW, length_km=4.0, seed=9).deployment.cells
    assert len(cells) >= 8
    env = RadioEnvironment(np.random.default_rng(3), evict_after_measures=4)
    for cell in cells:
        env.register(cell, cell.band, cell.eirp_dbm)
    assert env.tracked_cells == len(cells)
    near = cells[:2]
    distances = np.full((1, len(near)), 200.0)
    for step in range(64):
        env.measure_block(near, distances, np.array([float(step)]))
    assert env.tracked_cells == len(near)
