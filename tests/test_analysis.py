"""The §4-§6 analysis pipelines over simulated and synthetic logs."""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.analysis import (
    coverage_summary,
    colocation_summary,
    duration_breakdown,
    energy_breakdown,
    frequency_breakdown,
    handover_spacing_km,
    ho_score_table,
    hourly_energy_budget,
    phase_throughput,
    signaling_per_km,
    summarize,
)
from repro.analysis.colocation import verify_colocation_by_hulls
from repro.analysis.coverage import nr_coverage_segments_m
from repro.analysis.duration import NSA_5G_TYPES
from repro.analysis.frequency import FIVE_G_NSA_TYPES, FOUR_G_TYPES
from repro.analysis.stats import empirical_cdf, ratio
from repro.rrc.taxonomy import HandoverType


class TestStats:
    def test_summarize_basic(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.mean == pytest.approx(2.5)
        assert s.median == pytest.approx(2.5)
        assert s.count == 4

    def test_summarize_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_cdf(self):
        xs, ps = empirical_cdf([3.0, 1.0, 2.0])
        assert list(xs) == [1.0, 2.0, 3.0]
        assert ps[-1] == pytest.approx(1.0)

    def test_ratio_guard(self):
        with pytest.raises(ZeroDivisionError):
            ratio(1.0, 0.0)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
    def test_summary_invariants(self, values):
        s = summarize(values)
        assert s.minimum <= s.p25 <= s.median <= s.p75 <= s.maximum
        eps = 1e-9 * (1.0 + abs(s.mean))
        assert s.minimum - eps <= s.mean <= s.maximum + eps


class TestFrequency:
    def test_breakdown_on_simulated_drive(self, freeway_low_log):
        breakdown = frequency_breakdown([freeway_low_log])
        assert breakdown.distance_km == pytest.approx(6.0, abs=0.3)
        assert 0.2 < breakdown.spacing_4g_km < 2.0
        assert 0.15 < breakdown.spacing_5g_nsa_km < 1.5

    def test_sa_spacing_uses_mcgh(self, sa_freeway_log):
        breakdown = frequency_breakdown([sa_freeway_log])
        assert breakdown.spacing_sa_km < float("inf")
        assert breakdown.spacing_5g_nsa_km == float("inf")

    def test_signaling_rates_positive(self, freeway_low_log):
        rates = signaling_per_km([freeway_low_log])
        assert rates.rrc_per_km > 0
        assert rates.phy_per_km > 0
        assert rates.total_per_km >= rates.rrc_per_km

    def test_empty_logs_rejected(self):
        with pytest.raises(ValueError):
            handover_spacing_km([], FOUR_G_TYPES)


class TestDuration:
    def test_nsa_breakdown(self, freeway_low_log):
        breakdown = duration_breakdown([freeway_low_log], types=NSA_5G_TYPES)
        assert 100 < breakdown.total.mean < 260
        assert 0.25 < breakdown.t1_share < 0.6

    def test_nsa_lteh_is_slow_flavour(self, freeway_low_log):
        # LTEH executed while NSA-attached carries the eNB<->gNB
        # coordination overhead (Figs. 8-9 plot it separately).
        nsa_lteh = duration_breakdown(
            [freeway_low_log], types=(HandoverType.LTEH,), nsa_context=True
        )
        assert nsa_lteh.total.mean > 110.0

    def test_filter_without_matches_raises(self, sa_freeway_log):
        with pytest.raises(ValueError):
            duration_breakdown([sa_freeway_log], types=(HandoverType.SCGM,))

    def test_stage_name_validation(self, freeway_low_log):
        from repro.analysis.duration import stage_durations_ms

        with pytest.raises(ValueError):
            stage_durations_ms([freeway_low_log], "t3")


class TestEnergy:
    def test_breakdown(self, freeway_low_log):
        breakdown = energy_breakdown([freeway_low_log], FIVE_G_NSA_TYPES)
        assert breakdown.handover_count > 0
        assert breakdown.mean_energy_per_ho_j > 0
        assert breakdown.energy_per_km_mah > 0

    def test_hourly_budget_scales_with_speed(self, freeway_low_log):
        slow = hourly_energy_budget([freeway_low_log], FIVE_G_NSA_TYPES, speed_kmh=65.0)
        fast = hourly_energy_budget([freeway_low_log], FIVE_G_NSA_TYPES, speed_kmh=130.0)
        assert fast.handovers_per_hour == pytest.approx(2 * slow.handovers_per_hour)
        assert fast.energy_mah_per_hour == pytest.approx(2 * slow.energy_mah_per_hour)


class TestCoverage:
    def test_merged_at_least_actual(self, coverage_log):
        summary = coverage_summary([coverage_log])
        assert summary.merged.mean >= summary.actual.mean * 0.95
        assert summary.nsa_reduction_factor >= 0.95

    def test_segments_positive(self, coverage_log):
        segments = nr_coverage_segments_m([coverage_log])
        assert segments and all(s > 0 for s in segments)

    def test_rural_low_band_footprint(self, coverage_log):
        summary = coverage_summary([coverage_log])
        # NR ISD is 2.2 km; merged footprint should be in that region.
        assert 1200 < summary.merged.mean < 4200


class TestBandwidthPhases:
    def test_phase_throughput_on_walk(self, mmwave_walk_log):
        phases = phase_throughput(mmwave_walk_log and [mmwave_walk_log], HandoverType.SCGM)
        if phases is not None:
            assert phases.pre.count > 0
            assert phases.post.count > 0

    def test_scga_boosts_throughput(self, freeway_low_log):
        phases = phase_throughput([freeway_low_log], HandoverType.SCGA)
        assert phases is not None
        # SCG addition brings the NR leg up: post capacity must beat pre.
        assert phases.mean_post_over_pre > 1.2

    def test_ho_score_table_contains_observed_types(self, freeway_low_log):
        table = ho_score_table([freeway_low_log])
        assert HandoverType.SCGA in table
        assert all(score > 0 for score in table.values())


class TestColocation:
    def test_summary_over_many_drives(self, freeway_low_log, coverage_log):
        try:
            summary = colocation_summary([freeway_low_log, coverage_log])
        except ValueError:
            pytest.skip("not enough same-PCI handovers in the small fixture")
        assert summary.same_pci.count > 0
        assert 0.0 <= summary.colocated_sample_fraction <= 1.0

    def test_hull_verification(self, freeway_low_log):
        overlaps = verify_colocation_by_hulls([freeway_low_log])
        # Attached 4G/5G PCI pairs were observed simultaneously, so their
        # observation hulls must overlap.
        assert overlaps
        assert all(overlaps.values())


class TestColumnarEquivalence:
    """The §5.1/§5.3 columnar ports are bit-identical to the list scans.

    Each analysis runs three ways — reference list scan over DriveLogs,
    columnar over the same DriveLogs (memoized packing), and columnar
    over ColumnarLog inputs directly — and every float must match
    exactly: same values, same op order, no tolerance.
    """

    @pytest.fixture()
    def corpus(self, freeway_low_log, sa_freeway_log, coverage_log):
        return [freeway_low_log, sa_freeway_log, coverage_log]

    def test_rate_and_spacing(self, corpus):
        from repro.analysis.frequency import (
            handover_rate_per_km,
            handover_rate_per_km_reference,
            handover_spacing_km_reference,
        )

        clogs = [log.columnar() for log in corpus]
        for types in (FOUR_G_TYPES, FIVE_G_NSA_TYPES, (HandoverType.MCGH,)):
            expected = handover_rate_per_km_reference(corpus, types)
            assert handover_rate_per_km(corpus, types) == expected
            assert handover_rate_per_km(clogs, types) == expected
            assert handover_spacing_km(corpus, types) == (
                handover_spacing_km_reference(corpus, types)
            )

    def test_frequency_breakdown(self, corpus):
        from repro.analysis.frequency import frequency_breakdown_reference

        expected = frequency_breakdown_reference(corpus)
        for logs in (corpus, [log.columnar() for log in corpus]):
            got = frequency_breakdown(logs)
            assert got.distance_km == expected.distance_km
            assert got.spacing_4g_km == expected.spacing_4g_km
            assert got.spacing_5g_nsa_km == expected.spacing_5g_nsa_km
            assert got.spacing_sa_km == expected.spacing_sa_km
            assert got.count_by_type == expected.count_by_type

    def test_signaling_rates(self, corpus):
        from repro.analysis.frequency import signaling_per_km_reference

        expected = signaling_per_km_reference(corpus)
        for logs in (corpus, [log.columnar() for log in corpus]):
            got = signaling_per_km(logs)
            assert got.rrc_per_km == expected.rrc_per_km
            assert got.rach_per_km == expected.rach_per_km
            assert got.phy_per_km == expected.phy_per_km

    def test_energy_breakdown(self, corpus):
        from repro.analysis.energy import energy_breakdown_reference

        for types in (FOUR_G_TYPES, FIVE_G_NSA_TYPES):
            expected = energy_breakdown_reference(corpus, types)
            for logs in (corpus, [log.columnar() for log in corpus]):
                got = energy_breakdown(logs, types)
                assert got.handover_count == expected.handover_count
                assert got.distance_km == expected.distance_km
                assert got.mean_power_w == expected.mean_power_w
                assert got.mean_energy_per_ho_j == expected.mean_energy_per_ho_j
                assert got.energy_per_km_j == expected.energy_per_km_j

    def test_hourly_budget(self, corpus):
        from repro.analysis.energy import hourly_energy_budget_reference

        expected = hourly_energy_budget_reference(corpus, FIVE_G_NSA_TYPES)
        got = hourly_energy_budget(corpus, FIVE_G_NSA_TYPES)
        assert got == expected

    def test_no_matching_handovers_still_raises(self, freeway_low_log):
        from repro.analysis.energy import energy_breakdown_reference

        with pytest.raises(ValueError, match="no handovers"):
            energy_breakdown([freeway_low_log], (HandoverType.MCGH,))
        with pytest.raises(ValueError, match="no handovers"):
            energy_breakdown_reference([freeway_low_log], (HandoverType.MCGH,))

    def test_memmap_slices_match_reference(self, tmp_path, corpus):
        """The analyses run straight off corpus-store slices, identically."""
        from repro.analysis.frequency import (
            frequency_breakdown_reference,
            signaling_per_km_reference,
        )
        from repro.analysis.energy import energy_breakdown_reference
        from repro.simulate.corpus import CorpusStore

        store = CorpusStore(tmp_path, enabled=True)
        for i, log in enumerate(corpus):
            store.append(f"d{i}", log.columnar())
        slices = [store.open_slice(f"d{i}") for i in range(len(corpus))]
        assert all(clog is not None for clog in slices)

        expected = frequency_breakdown_reference(corpus)
        got = frequency_breakdown(slices)
        assert got.distance_km == expected.distance_km
        assert got.count_by_type == expected.count_by_type
        assert signaling_per_km(slices) == signaling_per_km_reference(corpus)
        assert energy_breakdown(slices, FIVE_G_NSA_TYPES) == (
            energy_breakdown_reference(corpus, FIVE_G_NSA_TYPES)
        )
