"""End-to-end drive simulator invariants (uses session fixtures)."""

import numpy as np
import pytest

from repro.net.bearer import BearerMode
from repro.radio.bands import BandClass
from repro.ran import OPX
from repro.rrc.taxonomy import HandoverType
from repro.simulate.scenarios import freeway_scenario
from repro.ue.state import RadioMode


class TestDriveLogStructure:
    def test_ticks_are_regular(self, freeway_low_log):
        times = [t.time_s for t in freeway_low_log.ticks]
        deltas = np.diff(times)
        assert np.allclose(deltas, deltas[0], atol=1e-6)

    def test_handovers_ordered_and_staged(self, freeway_low_log):
        for record in freeway_low_log.handovers:
            assert record.decision_time_s < record.exec_start_s < record.complete_s
            assert record.t1_ms > 0 and record.t2_ms > 0
            assert record.total_ms == pytest.approx(record.t1_ms + record.t2_ms)

    def test_reports_sorted(self, freeway_low_log):
        times = [r.time_s for r in freeway_low_log.reports]
        assert times == sorted(times)

    def test_nsa_drive_sees_nsa_mode(self, freeway_low_log):
        modes = {t.mode for t in freeway_low_log.ticks}
        assert RadioMode.NSA in modes

    def test_handover_targets_change_serving(self, freeway_low_log):
        for record in freeway_low_log.handovers:
            if record.ho_type in (HandoverType.SCGM, HandoverType.SCGC):
                assert record.source_gci != record.target_gci

    def test_scg_procedures_have_band_class(self, freeway_low_log):
        for record in freeway_low_log.handovers:
            if record.ho_type.is_scg_procedure:
                assert record.band_class is BandClass.LOW

    def test_signaling_attached_to_every_handover(self, freeway_low_log):
        for record in freeway_low_log.handovers:
            assert record.signaling.total > 0
            assert record.energy_j > 0

    def test_trigger_labels_present(self, freeway_low_log):
        labelled = [h for h in freeway_low_log.handovers if h.trigger_labels]
        assert len(labelled) == len(freeway_low_log.handovers)

    def test_interruption_zeroes_capacity(self, freeway_low_log):
        for tick in freeway_low_log.ticks:
            if tick.nr_interrupted:
                assert tick.nr_capacity_mbps == 0.0
            if tick.lte_interrupted:
                assert tick.lte_capacity_mbps == 0.0

    def test_dual_bearer_sums_legs(self, freeway_low_log):
        assert freeway_low_log.bearer is BearerMode.DUAL
        for tick in freeway_low_log.ticks[::50]:
            assert tick.total_capacity_mbps == pytest.approx(
                tick.lte_capacity_mbps + tick.nr_capacity_mbps
                if tick.nr_serving_gci is not None
                else tick.lte_capacity_mbps
            )


class TestSaDrive:
    def test_sa_only_mcgh(self, sa_freeway_log):
        types = {h.ho_type for h in sa_freeway_log.handovers}
        assert types <= {HandoverType.MCGH}

    def test_sa_mode(self, sa_freeway_log):
        modes = {t.mode for t in sa_freeway_log.ticks}
        assert modes <= {RadioMode.SA}

    def test_sa_has_no_lte_leg(self, sa_freeway_log):
        assert all(t.lte_serving_gci is None for t in sa_freeway_log.ticks)


class TestWalkDrive:
    def test_walk_covers_loop(self, mmwave_walk_log):
        assert mmwave_walk_log.distance_km > 0.5

    def test_walk_has_scg_procedures(self, mmwave_walk_log):
        counts = mmwave_walk_log.count_by_type()
        scg = sum(
            counts.get(t, 0)
            for t in (HandoverType.SCGA, HandoverType.SCGM, HandoverType.SCGC)
        )
        assert scg > 0

    def test_neighbours_include_scope_flags(self, mmwave_walk_log):
        flagged = [
            obs
            for tick in mmwave_walk_log.ticks
            for obs in tick.nr_neighbours
            if obs.in_a3_scope
        ]
        assert flagged  # same-gNB beams must be visible to Prognos


class TestLogAggregates:
    def test_count_by_type_sums(self, freeway_low_log):
        counts = freeway_low_log.count_by_type()
        assert sum(counts.values()) == len(freeway_low_log.handovers)

    def test_unique_cells(self, freeway_low_log):
        cells = freeway_low_log.unique_cells_seen()
        assert len(cells) >= 5

    def test_capacity_series_alignment(self, freeway_low_log):
        times, caps = freeway_low_log.capacity_series()
        assert len(times) == len(caps) == len(freeway_low_log.ticks)

    def test_merge_rebases(self, freeway_low_log):
        merged = freeway_low_log.merge(freeway_low_log)
        assert len(merged.ticks) == 2 * len(freeway_low_log.ticks)
        assert merged.duration_s == pytest.approx(
            2 * freeway_low_log.duration_s, abs=1.0
        )
        times = [t.time_s for t in merged.ticks]
        assert times == sorted(times)

    def test_mixed_sa_nsa_segments_rejected(self):
        import numpy as np

        from repro.geo.polyline import Polyline
        from repro.mobility import ConstantSpeedModel
        from repro.ran import DeploymentBuilder, OPY, SegmentConfig
        from repro.simulate.simulator import DriveSimulator

        rng = np.random.default_rng(0)
        route = Polyline.straight(4000.0)
        deployment = (
            DeploymentBuilder(route, OPY, rng)
            .add_segment(
                SegmentConfig(0, 2000, nr_band_class=BandClass.LOW, standalone=True)
            )
            .add_segment(SegmentConfig(2000, 4000, nr_band_class=BandClass.LOW))
            .build()
        )
        trajectory = ConstantSpeedModel(30.0).generate(route)
        with pytest.raises(ValueError, match="mixed SA/NSA"):
            DriveSimulator(deployment, trajectory, rng)
