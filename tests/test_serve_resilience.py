"""Serving-tier resilience: the replay journal, session resumption,
heartbeat/dead-peer liveness, admission shedding, and graceful drain."""

from __future__ import annotations

import asyncio
import pickle

import pytest

from repro.core.evaluation import configs_for_log
from repro.radio.bands import BandClass
from repro.ran import OPX
from repro.rrc.events import MeasurementObject
from repro.serve import protocol
from repro.serve.protocol import frame, read_frame
from repro.serve.server import PrognosServer, ServerConfig
from repro.serve.session import SessionState

EVENT_CONFIGS = configs_for_log(OPX, (BandClass.LOW,))


# ----------------------------------------------------------------------
# Replay journal unit semantics
# ----------------------------------------------------------------------


def test_journal_replays_exact_tail():
    state = SessionState("u", None, token="t", replay_limit=4)
    for i in range(1, 7):
        state.record(b"p%d" % i)
    assert state.out_seq == 6
    assert state.overflow == 2  # p1, p2 aged out
    assert state.replay_from(6) == []  # caught up
    assert state.replay_from(4) == [b"p5", b"p6"]
    assert state.replay_from(2) == [b"p3", b"p4", b"p5", b"p6"]
    # The cursor fell off the back of the journal: unreplayable.
    assert state.replay_from(1) is None


def test_journal_disabled_counts_overflow():
    state = SessionState("u", None, token="t", replay_limit=0)
    for i in range(3):
        state.record(b"p")
    assert state.out_seq == 3 and state.overflow == 3
    assert not state.journal
    assert state.replay_from(0) is None
    assert state.replay_from(3) == []  # nothing missed, nothing needed


def test_state_pickle_drops_connection():
    state = SessionState("u", None, token="tok", policy="disconnect", replay_limit=8)
    state.record(b"p1")
    state.conn = object()  # unpicklable on purpose
    state.dropped = 3
    clone = pickle.loads(pickle.dumps(state))
    assert clone.conn is None
    assert clone.token == "tok" and clone.policy == "disconnect"
    assert clone.out_seq == 1 and clone.dropped == 3
    assert list(clone.journal) == [b"p1"]


# ----------------------------------------------------------------------
# Raw-socket helpers (sequenced protocol v2)
# ----------------------------------------------------------------------


def _hello(session_id):
    return {
        "type": "hello",
        "version": protocol.PROTOCOL_VERSION,
        "session": session_id,
        "standalone": False,
        "policy": "drop",
        "events": protocol.encode_event_configs(EVENT_CONFIGS),
    }


def _resume(session_id, token, last_seq):
    return {
        "type": "resume",
        "version": protocol.PROTOCOL_VERSION,
        "session": session_id,
        "token": token,
        "seq": last_seq,
    }


async def _connect(port, handshake):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(frame(protocol.encode_json(handshake)))
    await writer.drain()
    reply = await read_frame(reader)
    return reader, writer, protocol.decode_json(reply)


def _tick_frame(i):
    rsrp = {10: -80.0 - 0.01 * i, 11: -92.0 + 0.02 * i}
    serving = {MeasurementObject.LTE: 10, MeasurementObject.NR: None}
    neighbours = {MeasurementObject.LTE: [11], MeasurementObject.NR: []}
    scoped = {MeasurementObject.LTE: [11], MeasurementObject.NR: []}
    return frame(
        protocol.encode_tick(
            0.25 * i, rsrp, serving, neighbours, scoped, seq=i + 1
        )
    )


_QUIET = dict(batched=True, heartbeat_s=0.0)  # no sweeper in raw-frame tests


# ----------------------------------------------------------------------
# Resumption end to end
# ----------------------------------------------------------------------


def test_resume_replays_missed_tail_bit_identically():
    async def main():
        async with PrognosServer(ServerConfig(**_QUIET)) as server:
            reader, writer, welcome = await _connect(server.port, _hello("res"))
            assert welcome["seq"] == 0 and welcome["resume"]
            token = welcome["resume"]
            for i in range(6):
                writer.write(_tick_frame(i))
            await writer.drain()
            originals = []
            for _ in range(6):
                payload = await read_frame(reader)
                assert payload[:1] == b"P"
                originals.append(payload)
            # The client "saw" only 3 predictions before the line died.
            writer.transport.abort()
            reader, writer, welcome = await _connect(
                server.port, _resume("res", token, 3)
            )
            assert welcome["type"] == "welcome" and welcome["resumed"]
            assert welcome["seq"] == 6
            for expected in originals[3:]:
                assert await read_frame(reader) == expected
            writer.write(frame(b"B"))
            await writer.drain()
            bye = protocol.decode_json(await read_frame(reader))
            assert bye["type"] == "bye"
            assert bye["answered"] == 6 and bye["lost"] == 0
            stats = server.stats()
            assert stats["resumed"] == 1 and stats["replayed"] == 3
            writer.close()

    asyncio.run(main())


def test_resume_resends_are_deduplicated():
    async def main():
        async with PrognosServer(ServerConfig(**_QUIET)) as server:
            reader, writer, welcome = await _connect(server.port, _hello("dup"))
            token = welcome["resume"]
            for i in range(4):
                writer.write(_tick_frame(i))
            await writer.drain()
            for _ in range(4):
                assert (await read_frame(reader))[:1] == b"P"
            writer.transport.abort()
            reader, writer, welcome = await _connect(
                server.port, _resume("dup", token, 4)
            )
            assert welcome["resumed"] and welcome["seq"] == 4
            # A client that cannot tell what the server applied resends
            # its last frames; seqs <= in_seq must be swallowed.
            for i in range(2, 5):
                writer.write(_tick_frame(i))
            await writer.drain()
            payload = await read_frame(reader)
            # Only the genuinely new tick (seq 5) produced a prediction.
            assert payload[:1] == b"P"
            assert protocol.decode_prediction(payload)[7] == 5
            writer.write(frame(b"B"))
            await writer.drain()
            bye = protocol.decode_json(await read_frame(reader))
            assert bye["ticks"] == 5 and bye["answered"] == 5
            writer.close()

    asyncio.run(main())


def test_resume_wrong_token_and_unknown_session_refused():
    async def main():
        async with PrognosServer(ServerConfig(**_QUIET)) as server:
            _r, w, welcome = await _connect(server.port, _hello("guard"))
            for bad in (
                _resume("guard", "0" * 32, 0),  # forged token
                _resume("nobody", "0" * 32, 0),  # no such session
            ):
                _r2, w2, reply = await _connect(server.port, bad)
                assert reply["type"] == "error"
                assert reply["code"] == "resume-miss"
                w2.close()
            assert server.stats()["resume_misses"] == 2
            w.close()

    asyncio.run(main())


def test_replay_overflow_refuses_resume_and_retires():
    async def main():
        config = ServerConfig(replay=2, **_QUIET)
        async with PrognosServer(config) as server:
            reader, writer, welcome = await _connect(server.port, _hello("ovf"))
            token = welcome["resume"]
            for i in range(6):
                writer.write(_tick_frame(i))
            await writer.drain()
            for _ in range(6):
                assert (await read_frame(reader))[:1] == b"P"
            writer.transport.abort()
            # Journal holds seqs 5..6 only; a cursor at 1 is unservable.
            _r, w, reply = await _connect(server.port, _resume("ovf", token, 1))
            assert reply["type"] == "error" and reply["code"] == "replay-overflow"
            w.close()
            assert server.stats()["replay_overflow"] >= 4
            # The refusal retired the state: same token now misses.
            _r, w, reply = await _connect(server.port, _resume("ovf", token, 6))
            assert reply["code"] == "resume-miss"
            w.close()
            # A fresh hello under the same id starts over cleanly.
            _r, w, welcome = await _connect(server.port, _hello("ovf"))
            assert welcome["type"] == "welcome" and welcome["seq"] == 0
            w.close()

    asyncio.run(main())


def test_sequence_gap_rejected():
    async def main():
        async with PrognosServer(ServerConfig(**_QUIET)) as server:
            reader, writer, _ = await _connect(server.port, _hello("gap"))
            writer.write(_tick_frame(0))
            writer.write(_tick_frame(2))  # seq 3 after seq 1
            await writer.drain()
            # The tick's prediction (flusher) and the gap error (reader
            # teardown) race onto the wire; order is not guaranteed.
            frames = []
            while True:
                payload = await asyncio.wait_for(read_frame(reader), timeout=5.0)
                if payload is None:
                    break
                frames.append(payload)
            errors = [
                protocol.decode_json(p) for p in frames if p[:1] == b"{"
            ]
            assert any(
                e["type"] == "error" and "sequence gap" in e["error"]
                for e in errors
            )
            writer.close()

    asyncio.run(main())


def test_newest_connection_wins_while_zombie_still_attached():
    """A resume that arrives before the server notices the old
    connection died (no RST seen yet) must still take the session
    over — the token proves ownership."""

    async def main():
        async with PrognosServer(ServerConfig(**_QUIET)) as server:
            reader, writer, welcome = await _connect(server.port, _hello("zomb"))
            token = welcome["resume"]
            for i in range(3):
                writer.write(_tick_frame(i))
            await writer.drain()
            for _ in range(3):
                assert (await read_frame(reader))[:1] == b"P"
            # Do NOT close the old socket: resume while it looks alive.
            r2, w2, welcome = await _connect(server.port, _resume("zomb", token, 3))
            assert welcome["resumed"] and welcome["seq"] == 3
            for i in range(3, 5):
                w2.write(_tick_frame(i))
            await w2.drain()
            for _ in range(2):
                assert (await read_frame(r2))[:1] == b"P"
            w2.write(frame(b"B"))
            await w2.drain()
            bye = protocol.decode_json(await read_frame(r2))
            assert bye["answered"] == 5 and bye["lost"] == 0
            writer.close()
            w2.close()

    asyncio.run(main())


# ----------------------------------------------------------------------
# Liveness: heartbeats, dead peers, parked expiry
# ----------------------------------------------------------------------


def test_heartbeat_ping_then_dead_peer_eviction_then_resume():
    async def main():
        config = ServerConfig(batched=True, heartbeat_s=0.3)
        async with PrognosServer(config) as server:
            reader, writer, welcome = await _connect(server.port, _hello("mute"))
            token = welcome["resume"]
            writer.write(_tick_frame(0))
            await writer.drain()
            assert (await read_frame(reader))[:1] == b"P"
            # Going silent: first a ping, then the dead-peer bye.
            payload = await asyncio.wait_for(read_frame(reader), timeout=2.0)
            assert payload == b"H"
            payload = await asyncio.wait_for(read_frame(reader), timeout=2.0)
            bye = protocol.decode_json(payload)
            assert bye["type"] == "bye" and bye["reason"] == "dead_peer"
            assert bye["resume"] == token and bye["seq"] == 1
            stats = server.stats()
            assert stats["evicted_dead"] == 1
            assert stats["detached"] == 1  # parked, not destroyed
            # The "dead" peer was only stalled: resumption still works.
            r2, w2, welcome = await _connect(server.port, _resume("mute", token, 1))
            assert welcome["resumed"] and welcome["seq"] == 1
            w2.close()
            writer.close()

    asyncio.run(main())


def test_heartbeat_echo_keeps_session_alive():
    async def main():
        config = ServerConfig(batched=True, heartbeat_s=0.3)
        async with PrognosServer(config) as server:
            reader, writer, _ = await _connect(server.port, _hello("alive"))
            loop = asyncio.get_running_loop()
            deadline = loop.time() + 1.5  # 5x heartbeat
            while loop.time() < deadline:
                payload = await asyncio.wait_for(read_frame(reader), timeout=2.0)
                assert payload == b"H", "session must only ever see pings"
                writer.write(frame(b"H"))
                await writer.drain()
            assert server.stats()["evicted_dead"] == 0
            writer.close()

    asyncio.run(main())


def test_parked_session_expires_after_idle_budget():
    async def main():
        config = ServerConfig(batched=True, heartbeat_s=0.2)
        async with PrognosServer(config) as server:
            reader, writer, welcome = await _connect(server.port, _hello("gone"))
            token = welcome["resume"]
            writer.write(_tick_frame(0))
            await writer.drain()
            assert (await read_frame(reader))[:1] == b"P"
            writer.transport.abort()
            loop = asyncio.get_running_loop()
            deadline = loop.time() + 5.0
            while server.stats()["evicted_idle"] == 0:
                assert loop.time() < deadline, "parked session never expired"
                await asyncio.sleep(0.05)
            _r, w, reply = await _connect(server.port, _resume("gone", token, 1))
            assert reply["type"] == "error" and reply["code"] == "resume-miss"
            w.close()

    asyncio.run(main())


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------


def test_admission_sheds_past_max_sessions():
    async def main():
        config = ServerConfig(max_sessions=1, **_QUIET)
        async with PrognosServer(config) as server:
            r1, w1, welcome = await _connect(server.port, _hello("first"))
            assert welcome["type"] == "welcome"
            _r2, w2, reply = await _connect(server.port, _hello("second"))
            assert reply["type"] == "busy"
            assert reply["retry_after"] > 0
            w2.close()
            assert server.stats()["shed"] == 1
            # Resumes are exempt: the session is already accounted.
            w1.transport.abort()
            r3, w3, resumed = await _connect(
                server.port, _resume("first", welcome["resume"], 0)
            )
            assert resumed["type"] == "welcome" and resumed["resumed"]
            w3.close()
            w1.close()

    asyncio.run(main())


def test_admission_recovers_after_session_finishes():
    async def main():
        config = ServerConfig(max_sessions=1, **_QUIET)
        async with PrognosServer(config) as server:
            reader, writer, _ = await _connect(server.port, _hello("a"))
            writer.write(frame(b"B"))
            await writer.drain()
            assert protocol.decode_json(await read_frame(reader))["type"] == "bye"
            writer.close()
            loop = asyncio.get_running_loop()
            deadline = loop.time() + 5.0
            while True:
                _r, w, reply = await _connect(server.port, _hello("b"))
                if reply["type"] == "welcome":
                    w.close()
                    break
                assert reply["type"] == "busy"
                w.close()
                assert loop.time() < deadline, "finished session never released"
                await asyncio.sleep(reply["retry_after"])

    asyncio.run(main())


# ----------------------------------------------------------------------
# Graceful drain
# ----------------------------------------------------------------------


def test_drain_flushes_then_byes_with_resume_token():
    async def main():
        async with PrognosServer(ServerConfig(**_QUIET)) as server:
            reader, writer, welcome = await _connect(server.port, _hello("dr"))
            token = welcome["resume"]
            for i in range(3):
                writer.write(_tick_frame(i))
            await writer.drain()
            state = server._sessions["dr"]
            while state.ticks_in < 3:  # accepted server-side = in flight
                await asyncio.sleep(0.005)
            predictions = 0
            await server.drain(2.0)
            # Every in-flight tick was served before the goodbye; the
            # bye names the reason and carries the resume credentials.
            while True:
                payload = await read_frame(reader)
                assert payload is not None
                if payload[:1] == b"P":
                    predictions += 1
                    continue
                bye = protocol.decode_json(payload)
                break
            assert predictions == 3
            assert bye["type"] == "bye" and bye["reason"] == "drain"
            assert bye["resume"] == token and bye["seq"] == 3
            assert bye["answered"] == 3 and bye["lost"] == 0
            assert await read_frame(reader) is None  # FIN, not RST
            writer.close()

    asyncio.run(main())


def test_drain_refuses_new_work_but_keeps_states():
    async def main():
        server = PrognosServer(ServerConfig(**_QUIET))
        await server.start()
        port = server.port
        reader, writer, welcome = await _connect(port, _hello("keep"))
        writer.write(_tick_frame(0))
        await writer.drain()
        assert (await read_frame(reader))[:1] == b"P"
        await server.drain(1.0)
        with pytest.raises((ConnectionError, OSError)):
            await _connect(port, _hello("late"))
        states = server.extract_states()
        assert [s.session_id for s in states] == ["keep"]
        assert states[0].out_seq == 1 and states[0].conn is None
        writer.close()
        await server.shutdown()

    asyncio.run(main())


def test_drained_state_adopted_by_successor():
    """The drain→export→adopt path a shard controller drives, end to
    end on two plain servers: the successor serves the resume."""

    async def main():
        old = PrognosServer(ServerConfig(**_QUIET))
        await old.start()
        reader, writer, welcome = await _connect(old.port, _hello("mig"))
        token = welcome["resume"]
        for i in range(4):
            writer.write(_tick_frame(i))
        await writer.drain()
        originals = [await read_frame(reader) for _ in range(4)]
        await old.drain(1.0)
        bye = protocol.decode_json(await read_frame(reader))
        assert bye["reason"] == "drain"
        states = old.extract_states()
        await old.shutdown()
        writer.close()

        async with PrognosServer(ServerConfig(**_QUIET)) as new:
            for state in states:
                new._adopt_state(state)
            r2, w2, welcome = await _connect(new.port, _resume("mig", token, 2))
            assert welcome["resumed"] and welcome["seq"] == 4
            for expected in originals[2:]:
                assert await read_frame(r2) == expected
            for i in range(4, 6):
                w2.write(_tick_frame(i))
            await w2.drain()
            for _ in range(2):
                assert (await read_frame(r2))[:1] == b"P"
            w2.write(frame(b"B"))
            await w2.drain()
            final = protocol.decode_json(await read_frame(r2))
            assert final["answered"] == 6 and final["lost"] == 0
            w2.close()

    asyncio.run(main())
