"""Radio substrate: bands, propagation, fading, RRS synthesis."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.radio import (
    BAND_CATALOG,
    Band,
    BandClass,
    FastFading,
    PathLossModel,
    RadioAccessTechnology,
    RadioEnvironment,
    ShadowingField,
    band_by_name,
)
from repro.radio.rrs import AUDIBILITY_FLOOR_DBM, noise_power_dbm


class TestBands:
    def test_catalog_is_consistent(self):
        for name, band in BAND_CATALOG.items():
            assert band.name == name
            assert band.frequency_mhz > 0
            assert band.bandwidth_mhz > 0

    def test_lookup(self):
        band = band_by_name("n260")
        assert band.band_class is BandClass.MMWAVE
        assert band.rat is RadioAccessTechnology.NR

    def test_unknown_band_raises(self):
        with pytest.raises(KeyError, match="unknown band"):
            band_by_name("n999")

    def test_mmwave_flag(self):
        assert band_by_name("n260").is_mmwave
        assert not band_by_name("n71").is_mmwave

    def test_wavelength(self):
        assert band_by_name("n71").wavelength_m == pytest.approx(0.473, rel=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            Band("bad", RadioAccessTechnology.NR, BandClass.LOW, -1.0, 20.0)
        with pytest.raises(ValueError):
            Band("bad", RadioAccessTechnology.NR, BandClass.LOW, 600.0, 0.0)

    def test_mmwave_scs_is_wide(self):
        assert band_by_name("n260").scs_khz == pytest.approx(120.0)
        assert band_by_name("B2").scs_khz == pytest.approx(15.0)


class TestPathLoss:
    def setup_method(self):
        self.model = PathLossModel()
        self.low = band_by_name("n71")
        self.mmwave = band_by_name("n260")

    def test_monotonic_in_distance(self):
        losses = [self.model.path_loss_db(self.low, d) for d in (10, 100, 1000, 5000)]
        assert losses == sorted(losses)

    def test_higher_band_attenuates_more(self):
        assert self.model.path_loss_db(self.mmwave, 200.0) > self.model.path_loss_db(
            self.low, 200.0
        )

    def test_clamps_below_reference(self):
        assert self.model.path_loss_db(self.low, 0.0) == self.model.path_loss_db(
            self.low, 1.0
        )

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            self.model.path_loss_db(self.low, -1.0)

    def test_vectorised_matches_scalar(self):
        distances = np.array([5.0, 50.0, 500.0])
        vector = self.model.path_loss_db_array(self.low, distances)
        scalar = [self.model.path_loss_db(self.low, d) for d in distances]
        assert np.allclose(vector, scalar)

    @given(st.floats(min_value=1.0, max_value=1e4), st.floats(min_value=1.0, max_value=1e4))
    def test_distance_ordering_property(self, d1, d2):
        l1 = self.model.path_loss_db(self.low, d1)
        l2 = self.model.path_loss_db(self.low, d2)
        assert (d1 <= d2) == (l1 <= l2) or math.isclose(l1, l2)


class TestShadowing:
    def test_zero_sigma_is_flat(self):
        field = ShadowingField(0.0, 50.0, np.random.default_rng(1))
        assert field.sample(0.0) == 0.0
        assert field.sample(100.0) == 0.0

    def test_correlation_decays(self):
        rng = np.random.default_rng(2)
        # Estimate lag correlation empirically over many fields.
        short_gap, long_gap = [], []
        for _ in range(400):
            field = ShadowingField(6.0, 50.0, rng)
            v0 = field.sample(0.0)
            v1 = field.sample(10.0)
            field2 = ShadowingField(6.0, 50.0, rng)
            w0 = field2.sample(0.0)
            w1 = field2.sample(500.0)
            short_gap.append(v0 * v1)
            long_gap.append(w0 * w1)
        assert np.mean(short_gap) > np.mean(long_gap) + 5.0

    def test_backwards_sampling_raises(self):
        field = ShadowingField(6.0, 50.0, np.random.default_rng(3))
        field.sample(100.0)
        with pytest.raises(ValueError):
            field.sample(50.0)

    def test_stationary_variance(self):
        rng = np.random.default_rng(4)
        values = []
        for _ in range(300):
            field = ShadowingField(6.0, 50.0, rng)
            field.sample(0.0)
            values.append(field.sample(1000.0))
        assert np.std(values) == pytest.approx(6.0, rel=0.25)

    def test_sigma_scale(self):
        field = ShadowingField.for_band(
            band_by_name("n71"), np.random.default_rng(5), sigma_scale=0.5
        )
        assert field.sigma_db == pytest.approx(3.0)

    def test_invalid_parameters(self):
        rng = np.random.default_rng(6)
        with pytest.raises(ValueError):
            ShadowingField(-1.0, 50.0, rng)
        with pytest.raises(ValueError):
            ShadowingField(6.0, 0.0, rng)


class TestFastFading:
    def test_mean_power_near_unity(self):
        fading = FastFading(1.0, 10.0, 0.05, np.random.default_rng(7))
        samples = fading.sample_series_db(4000)
        mean_power = np.mean(10 ** (samples / 10.0))
        assert mean_power == pytest.approx(1.0, rel=0.15)

    def test_large_k_reduces_variance(self):
        rng = np.random.default_rng(8)
        weak = FastFading(0.5, 10.0, 0.05, rng).sample_series_db(2000)
        strong = FastFading(20.0, 10.0, 0.05, rng).sample_series_db(2000)
        assert np.std(strong) < np.std(weak)

    def test_doppler_formula(self):
        # 30 m/s at 600 MHz: wavelength ~0.5 m -> ~60 Hz.
        assert FastFading.doppler_hz(30.0, 600.0) == pytest.approx(60.0, rel=0.01)

    def test_invalid_parameters(self):
        rng = np.random.default_rng(9)
        with pytest.raises(ValueError):
            FastFading(-1.0, 10.0, 0.05, rng)
        with pytest.raises(ValueError):
            FastFading(1.0, -5.0, 0.05, rng)
        with pytest.raises(ValueError):
            FastFading(1.0, 10.0, 0.0, rng)
        with pytest.raises(ValueError):
            FastFading.doppler_hz(-1.0, 600.0)


class TestRadioEnvironment:
    def _environment(self, **kwargs):
        return RadioEnvironment(np.random.default_rng(10), **kwargs)

    def test_measures_registered_cells(self):
        env = self._environment()
        band = band_by_name("n71")
        env.register("cell", band, 58.0)
        samples = env.measure({"cell": 500.0}, travelled_m=0.0)
        assert "cell" in samples
        assert samples["cell"].rsrp_dbm > AUDIBILITY_FLOOR_DBM

    def test_unregistered_cell_raises(self):
        env = self._environment()
        with pytest.raises(KeyError):
            env.measure({"ghost": 100.0}, travelled_m=0.0)

    def test_inaudible_cells_filtered(self):
        env = self._environment()
        band = band_by_name("n260")
        env.register("far", band, 78.0)
        samples = env.measure({"far": 50_000.0}, travelled_m=0.0)
        assert samples == {}

    def test_interference_reduces_sinr(self):
        band = band_by_name("n41")
        quiet = self._environment(interference_load=0.0)
        noisy = self._environment(interference_load=0.5)
        for env in (quiet, noisy):
            env.register("a", band, 66.0)
            env.register("b", band, 66.0)
        sq = quiet.measure({"a": 300.0, "b": 400.0}, 0.0)
        sn = noisy.measure({"a": 300.0, "b": 400.0}, 0.0)
        assert sn["a"].sinr_db < sq["a"].sinr_db

    def test_rsrq_bounded_above_by_zero(self):
        env = self._environment()
        band = band_by_name("n71")
        env.register("cell", band, 58.0)
        sample = env.measure({"cell": 200.0}, 0.0)["cell"]
        assert sample.rsrq_db < 0.0

    def test_stronger_than(self):
        env = self._environment()
        band = band_by_name("n71")
        env.register("near", band, 58.0)
        env.register("far", band, 58.0)
        samples = env.measure({"near": 100.0, "far": 3000.0}, 0.0)
        assert samples["near"].stronger_than(samples["far"], offset_db=3.0)

    def test_noise_power_scaling(self):
        # Wider subcarriers collect more noise.
        assert noise_power_dbm(120.0) > noise_power_dbm(15.0)
        with pytest.raises(ValueError):
            noise_power_dbm(0.0)

    def test_invalid_interference_load(self):
        with pytest.raises(ValueError):
            RadioEnvironment(np.random.default_rng(0), interference_load=1.5)
