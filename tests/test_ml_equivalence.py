"""Equivalence suite for the batched/vectorized prediction pipeline.

Every fast path keeps its scalar reference in the tree (same
discipline as the radio pipeline's ``test_radio_equivalence``); these
tests pin the pairs together:

* batched LSTM gradients/loss vs the per-sample path,
* vectorized sort-based tree splits vs the per-row scalar search,
* the MPC plan-matrix evaluation vs the itertools enumeration,
* searchsorted handover labelling vs the per-tick linear scan,
* deterministic upsampling, and the trained-model cache round-trip.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.abr.algorithms import FastMpc, RobustMpc, _plan_matrix
from repro.ml.features import (
    build_location_sequence_dataset,
    build_radio_feature_dataset,
    _tick_radio_features,
    label_for_tick,
    labels_for_times,
    upsample_positives,
)
from repro.ml.gbc import GradientBoostingClassifier
from repro.ml.lstm import StackedLstmClassifier
from repro.ml.model_cache import ModelCache, fit_cached
from repro.ml.tree import (
    RegressionTree,
    best_split,
    best_split_reference,
    presort_columns,
)
from repro.rrc.taxonomy import HandoverType


class TestLstmBatchEquivalence:
    @pytest.fixture()
    def fitted(self):
        rng = np.random.default_rng(7)
        x = rng.normal(size=(10, 6, 3))
        y = ["a", "b", "a", "c", "b", "a", "c", "b", "a", "b"]
        model = StackedLstmClassifier(hidden_dim=5, epochs=1, batch_size=4)
        model.fit(x, y)
        normalized = (x - model._mu) / model._sigma
        labels = np.array([model.classes_.index(v) for v in y])
        return model, normalized, labels

    def test_batch_grads_equal_summed_per_sample(self, fitted):
        model, normalized, labels = fitted
        weights = np.linspace(0.5, 2.0, labels.size)
        batch_loss, batch_grads = model._batch_grads(normalized, labels, weights)
        loss = 0.0
        summed = None
        for i in range(labels.size):
            sample_loss, grads = model._sample_grads(
                normalized[i], int(labels[i]), float(weights[i])
            )
            loss += sample_loss
            if summed is None:
                summed = grads
            else:
                summed = [a + b for a, b in zip(summed, grads)]
        assert batch_loss == pytest.approx(loss, abs=1e-8)
        for got, want in zip(batch_grads, summed):
            assert np.max(np.abs(got - want)) < 1e-8

    def test_forward_batch_matches_per_sample(self, fitted):
        model, normalized, _ = fitted
        layer = model._layers[0]
        batched = layer.forward_batch(normalized)
        for i in range(normalized.shape[0]):
            single = layer.forward(normalized[i])
            assert np.max(np.abs(batched[i] - single)) < 1e-12

    def test_batch_size_one_matches_per_sample_training(self):
        rng = np.random.default_rng(8)
        x = rng.normal(size=(20, 5, 2))
        y = ["a"] * 10 + ["b"] * 10
        a = StackedLstmClassifier(hidden_dim=4, epochs=2, batch_size=1).fit(x, y)
        b = StackedLstmClassifier(hidden_dim=4, epochs=2, batch_size=1).fit(x, y)
        assert np.array_equal(a._w_out, b._w_out)
        probs = a.predict_proba(x)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_pickle_drops_bptt_cache(self):
        import pickle

        rng = np.random.default_rng(9)
        x = rng.normal(size=(8, 4, 2))
        y = ["a", "b"] * 4
        model = StackedLstmClassifier(hidden_dim=3, epochs=1).fit(x, y)
        clone = pickle.loads(pickle.dumps(model))
        assert clone._layers[0]._cache == []
        assert np.allclose(clone.predict_proba(x), model.predict_proba(x))


class TestTreeSplitEquivalence:
    def test_vectorized_matches_scalar_reference(self):
        rng = np.random.default_rng(11)
        for _ in range(25):
            n = int(rng.integers(12, 90))
            d = int(rng.integers(1, 5))
            # Rounded values stress duplicate-threshold handling.
            x = np.round(rng.normal(size=(n, d)), 1)
            y = rng.normal(size=n)
            got = best_split(x, y, presort_columns(x), min_samples_leaf=5)
            want = best_split_reference(x, y, min_samples_leaf=5)
            if want is None:
                assert got is None
            else:
                assert got is not None
                assert got[0] == want[0]
                assert got[1] == pytest.approx(want[1], abs=1e-12)

    def test_filtered_orders_match_fresh_sorts(self):
        rng = np.random.default_rng(12)
        x = np.round(rng.normal(size=(300, 3)), 1)
        y = rng.normal(size=300)
        with_presort = RegressionTree(max_depth=4).fit(
            x, y, presorted=presort_columns(x)
        )
        without = RegressionTree(max_depth=4).fit(x, y)
        assert np.array_equal(with_presort.predict(x), without.predict(x))

    def test_gbc_shared_presort_learns(self):
        rng = np.random.default_rng(13)
        x = rng.normal(size=(400, 3))
        y = ["pos" if r[0] + r[1] > 0 else "neg" for r in x]
        model = GradientBoostingClassifier(n_estimators=15, max_depth=2).fit(x, y)
        accuracy = np.mean([p == t for p, t in zip(model.predict(x), y)])
        assert accuracy > 0.9

    def test_presorted_shape_validated(self):
        x = np.zeros((10, 2))
        with pytest.raises(ValueError):
            RegressionTree().fit(x, np.zeros(10), presorted=np.zeros((5, 2), dtype=int))


class TestMpcPlanMatrixEquivalence:
    LADDER = [0.35, 0.75, 1.2, 1.85, 2.85, 4.3]

    def test_plan_matrix_is_product_order(self):
        import itertools

        plans = _plan_matrix(4, 3)
        assert plans.shape == (64, 3)
        assert [tuple(row) for row in plans] == list(
            itertools.product(range(4), repeat=3)
        )

    @pytest.mark.parametrize("algo_cls", [FastMpc, RobustMpc])
    def test_select_matches_itertools_reference(self, algo_cls):
        rng = np.random.default_rng(21)
        algo = algo_cls()
        for _ in range(200):
            algo.observe_error(float(rng.uniform(0.5, 4)), float(rng.uniform(0.5, 4)))
            buffer_s = float(rng.uniform(0.0, 25.0))
            last = int(rng.integers(0, len(self.LADDER)))
            predicted = float(rng.uniform(0.05, 8.0))
            got = algo.select(self.LADDER, buffer_s, last, predicted, 4.0)
            want = algo.select_reference(self.LADDER, buffer_s, last, predicted, 4.0)
            assert got == want


class TestLabelEquivalence:
    def test_searchsorted_matches_linear_scan(self, freeway_low_log):
        times = np.array([t.time_s for t in freeway_low_log.ticks[::7]])
        fast = labels_for_times(freeway_low_log, times, window_s=1.0)
        slow = [label_for_tick(freeway_low_log, t, 1.0) for t in times]
        assert fast == slow
        assert any(l is not HandoverType.NONE for l in fast)

    def test_radio_rows_match_scalar_extraction(self, freeway_low_log):
        dataset = build_radio_feature_dataset([freeway_low_log], stride=9)
        slope_ticks = max(
            int(1.0 / max(freeway_low_log.tick_interval_s, 1e-3)), 1
        )
        for row_i, tick_i in enumerate(range(0, len(freeway_low_log.ticks), 9)):
            want = _tick_radio_features(freeway_low_log.ticks, tick_i, slope_ticks)
            assert np.allclose(dataset.x[row_i], want, atol=0.0), tick_i

    def test_sequence_windows_match_slicing(self, freeway_low_log):
        dataset = build_location_sequence_dataset(
            [freeway_low_log], stride=11, history_ticks=8
        )
        track = np.array(
            [[t.x_m, t.y_m, t.speed_mps, t.arc_m] for t in freeway_low_log.ticks]
        )
        for row_i, tick_i in enumerate(range(8, len(freeway_low_log.ticks), 11)):
            assert np.array_equal(dataset.x[row_i], track[tick_i - 8 : tick_i])


class TestUpsampleDeterminism:
    def _toy(self):
        rng = np.random.default_rng(31)
        x = rng.normal(size=(120, 4))
        labels = [HandoverType.NONE] * 110 + (
            [HandoverType.SCGA, HandoverType.LTEH] * 5
        )
        return x, labels

    def test_resampled_set_is_deterministic(self):
        x, labels = self._toy()
        x1, y1 = upsample_positives(x, labels)
        x2, y2 = upsample_positives(x, labels)
        assert np.array_equal(x1, x2)
        assert y1 == y2

    def test_class_blocks_in_name_order(self):
        x, labels = self._toy()
        _, y = upsample_positives(x, labels)
        appended = [l for l in y[len(labels) :]]
        # Appended replication blocks follow Enum.name order: LTEH < SCGA.
        names = [l.name for l in appended]
        assert names == sorted(names)

    def test_share_reached(self):
        x, labels = self._toy()
        _, y = upsample_positives(x, labels, target_share=0.10)
        # want = max(int(110 * 0.10), 5) = 11 -> repeats = 11 // 5 = 2.
        for cls in (HandoverType.SCGA, HandoverType.LTEH):
            count = sum(1 for l in y if l is cls)
            assert count == 10


class TestModelCache:
    def test_round_trip_skips_refit(self, tmp_path):
        rng = np.random.default_rng(41)
        x = rng.normal(size=(200, 3))
        y = ["a" if r[0] > 0 else "b" for r in x]
        cache = ModelCache(tmp_path, enabled=True)
        calls = []

        def factory():
            calls.append(1)
            return GradientBoostingClassifier(n_estimators=5, max_depth=2)

        params = {"n_estimators": 5, "max_depth": 2}
        first = fit_cached("gbc", factory, x, y, params, cache=cache)
        second = fit_cached("gbc", factory, x, y, params, cache=cache)
        assert len(calls) == 1
        assert cache.stats == {
            "hits": 1,
            "misses": 1,
            "stores": 1,
            "put_failures": 0,
            "corrupt": 0,
        }
        assert first.predict(x) == second.predict(x)

    def test_key_sensitive_to_data_and_params(self, tmp_path):
        rng = np.random.default_rng(42)
        x = rng.normal(size=(50, 2))
        y = ["a"] * 25 + ["b"] * 25
        cache = ModelCache(tmp_path, enabled=True)
        from repro.ml.model_cache import dataset_digest

        base = cache.key_for("gbc", dataset_digest(x, y), {"d": 1})
        assert cache.key_for("gbc", dataset_digest(x, y), {"d": 2}) != base
        x2 = x.copy()
        x2[0, 0] += 1e-9
        assert cache.key_for("gbc", dataset_digest(x2, y), {"d": 1}) != base
        assert cache.key_for("lstm", dataset_digest(x, y), {"d": 1}) != base

    def test_disabled_cache_always_misses(self, tmp_path):
        rng = np.random.default_rng(43)
        x = rng.normal(size=(60, 2))
        y = ["a"] * 30 + ["b"] * 30
        cache = ModelCache(tmp_path, enabled=False)
        params = {"n_estimators": 3, "max_depth": 1}

        def factory():
            return GradientBoostingClassifier(n_estimators=3, max_depth=1)

        fit_cached("gbc", factory, x, y, params, cache=cache)
        fit_cached("gbc", factory, x, y, params, cache=cache)
        assert cache.stats["hits"] == 0
        assert cache.stats["stores"] == 0
        assert not any(tmp_path.rglob("*.pkl.gz"))

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        rng = np.random.default_rng(44)
        x = rng.normal(size=(60, 2))
        y = ["a"] * 30 + ["b"] * 30
        cache = ModelCache(tmp_path, enabled=True)
        params = {"n_estimators": 3, "max_depth": 1}

        def factory():
            return GradientBoostingClassifier(n_estimators=3, max_depth=1)

        fit_cached("gbc", factory, x, y, params, cache=cache)
        (entry,) = list((tmp_path / "models").glob("gbc-*.pkl.gz"))
        entry.write_bytes(b"not a gzip")
        model = fit_cached("gbc", factory, x, y, params, cache=cache)
        assert model.predict(x)  # refit transparently
        assert cache.stats["misses"] >= 2
