"""Geometry primitives: points, polylines, convex hulls."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geo import (
    Point,
    Polyline,
    convex_hull,
    distance,
    heading,
    hulls_overlap,
    interpolate,
    polygon_area,
)

coords = st.floats(min_value=-1e5, max_value=1e5, allow_nan=False)
points = st.builds(Point, coords, coords)


class TestPoint:
    def test_distance_symmetry(self):
        a, b = Point(0, 0), Point(3, 4)
        assert distance(a, b) == pytest.approx(5.0)
        assert a.distance_to(b) == b.distance_to(a)

    def test_add_sub(self):
        assert Point(1, 2) + Point(3, 4) == Point(4, 6)
        assert Point(3, 4) - Point(1, 2) == Point(2, 2)

    def test_scaled_and_norm(self):
        assert Point(3, 4).scaled(2).norm() == pytest.approx(10.0)

    def test_heading_east_and_north(self):
        assert heading(Point(0, 0), Point(1, 0)) == pytest.approx(0.0)
        assert heading(Point(0, 0), Point(0, 1)) == pytest.approx(math.pi / 2)

    def test_interpolate_endpoints(self):
        a, b = Point(0, 0), Point(10, 20)
        assert interpolate(a, b, 0.0) == a
        assert interpolate(a, b, 1.0) == b
        assert interpolate(a, b, 0.5) == Point(5, 10)

    def test_interpolate_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            interpolate(Point(0, 0), Point(1, 1), 1.5)

    @given(points, points, st.floats(min_value=0, max_value=1))
    def test_interpolate_between(self, a, b, f):
        p = interpolate(a, b, f)
        assert p.distance_to(a) + p.distance_to(b) == pytest.approx(
            a.distance_to(b), abs=1e-6 * (1 + a.distance_to(b))
        )


class TestPolyline:
    def test_straight_length(self):
        line = Polyline.straight(1000.0)
        assert line.length == pytest.approx(1000.0)

    def test_point_at_midpoint(self):
        line = Polyline.straight(100.0)
        assert line.point_at(50.0) == Point(50.0, 0.0)

    def test_point_at_clamps(self):
        line = Polyline.straight(100.0)
        assert line.point_at(-5.0) == Point(0.0, 0.0)
        assert line.point_at(500.0) == Point(100.0, 0.0)

    def test_rectangle_perimeter(self):
        rect = Polyline.rectangle(30.0, 20.0)
        assert rect.length == pytest.approx(100.0)

    def test_rectangle_wraps_to_start(self):
        rect = Polyline.rectangle(30.0, 20.0)
        assert rect.point_at(rect.length) == Point(0.0, 0.0)

    def test_offset_point_is_lateral(self):
        line = Polyline.straight(100.0)
        p = line.offset_point(50.0, 10.0)
        assert p.y == pytest.approx(10.0)
        assert p.x == pytest.approx(50.0)

    def test_heading_follows_segments(self):
        rect = Polyline.rectangle(10.0, 10.0)
        assert rect.heading_at(5.0) == pytest.approx(0.0)
        assert rect.heading_at(15.0) == pytest.approx(math.pi / 2)

    def test_needs_two_waypoints(self):
        with pytest.raises(ValueError):
            Polyline([Point(0, 0)])

    def test_rejects_nonpositive_dimensions(self):
        with pytest.raises(ValueError):
            Polyline.straight(0.0)
        with pytest.raises(ValueError):
            Polyline.rectangle(-1.0, 5.0)

    @given(st.floats(min_value=0, max_value=100))
    def test_arc_length_roundtrip(self, s):
        line = Polyline.straight(100.0)
        assert line.point_at(s).x == pytest.approx(s)


class TestConvexHull:
    def test_square_hull(self):
        pts = [Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1), Point(0.5, 0.5)]
        hull = convex_hull(pts)
        assert len(hull) == 4
        assert Point(0.5, 0.5) not in hull

    def test_area_of_unit_square(self):
        hull = convex_hull([Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1)])
        assert polygon_area(hull) == pytest.approx(1.0)

    def test_collinear_degenerates(self):
        hull = convex_hull([Point(0, 0), Point(1, 1), Point(2, 2)])
        assert len(hull) <= 3
        assert polygon_area(hull) == pytest.approx(0.0)

    def test_overlap_detection(self):
        a = convex_hull([Point(0, 0), Point(2, 0), Point(2, 2), Point(0, 2)])
        b = convex_hull([Point(1, 1), Point(3, 1), Point(3, 3), Point(1, 3)])
        c = convex_hull([Point(5, 5), Point(6, 5), Point(6, 6), Point(5, 6)])
        assert hulls_overlap(a, b)
        assert not hulls_overlap(a, c)

    def test_overlap_symmetry(self):
        a = convex_hull([Point(0, 0), Point(2, 0), Point(1, 2)])
        b = convex_hull([Point(1, 1), Point(3, 1), Point(2, 3)])
        assert hulls_overlap(a, b) == hulls_overlap(b, a)

    def test_point_inside_hull_overlaps(self):
        square = convex_hull([Point(0, 0), Point(2, 0), Point(2, 2), Point(0, 2)])
        assert hulls_overlap(square, [Point(1, 1)])
        assert not hulls_overlap(square, [Point(5, 5)])

    def test_empty_inputs_do_not_overlap(self):
        assert not hulls_overlap([], [Point(0, 0)])

    @given(st.lists(points, min_size=3, max_size=30))
    def test_hull_contains_all_points(self, pts):
        hull = convex_hull(pts)
        # Every original point must overlap the hull (inside or on edge).
        for p in pts:
            assert hulls_overlap(hull, [p])
