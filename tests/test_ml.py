"""From-scratch ML: linreg, trees, GBC, LSTM, metrics, features."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml import (
    GradientBoostingClassifier,
    LinearRegressor,
    RegressionTree,
    StackedLstmClassifier,
    classification_report,
    confusion_matrix,
)
from repro.ml.linreg import extrapolate_series
from repro.ml.metrics import event_level_report, prediction_episodes


class TestLinearRegressor:
    def test_exact_fit_on_line(self):
        x = np.arange(10.0)
        y = 3.0 * x + 2.0
        model = LinearRegressor().fit(x, y)
        assert model.coefficients[0] == pytest.approx(2.0, abs=1e-8)
        assert model.coefficients[1] == pytest.approx(3.0, abs=1e-8)
        assert model.predict(np.array([20.0]))[0] == pytest.approx(62.0)

    def test_multidimensional(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(100, 3))
        y = x @ np.array([1.0, -2.0, 0.5]) + 4.0
        model = LinearRegressor().fit(x, y)
        assert np.allclose(model.predict(x), y, atol=1e-8)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            LinearRegressor().predict(np.array([1.0]))

    def test_extrapolate_series(self):
        values = np.array([0.0, 1.0, 2.0, 3.0])
        future = extrapolate_series(values, 2)
        assert np.allclose(future, [4.0, 5.0])

    def test_extrapolate_validation(self):
        with pytest.raises(ValueError):
            extrapolate_series(np.array([1.0]), 2)
        with pytest.raises(ValueError):
            extrapolate_series(np.array([1.0, 2.0]), 0)

    @given(
        st.floats(min_value=-10, max_value=10),
        st.floats(min_value=-100, max_value=100),
    )
    @settings(max_examples=30)
    def test_recovers_arbitrary_lines(self, slope, intercept):
        x = np.linspace(0, 9, 10)
        model = LinearRegressor().fit(x, slope * x + intercept)
        assert model.coefficients[1] == pytest.approx(slope, abs=1e-6)


class TestRegressionTree:
    def test_fits_step_function(self):
        x = np.linspace(0, 1, 200)[:, None]
        y = (x[:, 0] > 0.5).astype(float)
        tree = RegressionTree(max_depth=2).fit(x, y)
        assert tree.predict(np.array([[0.2]]))[0] == pytest.approx(0.0, abs=0.05)
        assert tree.predict(np.array([[0.8]]))[0] == pytest.approx(1.0, abs=0.05)

    def test_respects_max_depth_one(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(100, 2))
        y = x[:, 0] + x[:, 1]
        tree = RegressionTree(max_depth=1).fit(x, y)
        # Depth 1 means at most 2 distinct leaf values.
        assert len(set(np.round(tree.predict(x), 9))) <= 2

    def test_constant_target_single_leaf(self):
        x = np.linspace(0, 1, 50)[:, None]
        tree = RegressionTree().fit(x, np.full(50, 7.0))
        assert np.allclose(tree.predict(x), 7.0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            RegressionTree().predict(np.zeros((1, 2)))

    def test_validation(self):
        with pytest.raises(ValueError):
            RegressionTree(max_depth=0)
        with pytest.raises(ValueError):
            RegressionTree().fit(np.zeros(5), np.zeros(5))


class TestGradientBoosting:
    def test_learns_linear_boundary(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(400, 2))
        y = ["a" if r[0] + r[1] > 0 else "b" for r in x]
        model = GradientBoostingClassifier(n_estimators=25, max_depth=2).fit(x, y)
        predictions = model.predict(x)
        accuracy = np.mean([p == t for p, t in zip(predictions, y)])
        assert accuracy > 0.9

    def test_probabilities_sum_to_one(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(100, 2))
        y = ["a" if r[0] > 0 else ("b" if r[1] > 0 else "c") for r in x]
        model = GradientBoostingClassifier(n_estimators=10).fit(x, y)
        probs = model.predict_proba(x)
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert probs.shape[1] == len(set(y))

    def test_multiclass(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(600, 2))
        y = []
        for r in x:
            if r[0] > 0.5:
                y.append("right")
            elif r[0] < -0.5:
                y.append("left")
            else:
                y.append("mid")
        model = GradientBoostingClassifier(n_estimators=30, max_depth=2).fit(x, y)
        accuracy = np.mean([p == t for p, t in zip(model.predict(x), y)])
        assert accuracy > 0.85

    def test_validation(self):
        with pytest.raises(ValueError):
            GradientBoostingClassifier(n_estimators=0)
        with pytest.raises(ValueError):
            GradientBoostingClassifier(learning_rate=0.0)
        with pytest.raises(RuntimeError):
            GradientBoostingClassifier().predict_proba(np.zeros((1, 2)))


class TestStackedLstm:
    def test_learns_trend_direction(self):
        rng = np.random.default_rng(5)
        sequences, labels = [], []
        for _ in range(160):
            up = rng.random() < 0.5
            base = np.linspace(0, 1, 10) if up else np.linspace(1, 0, 10)
            seq = base[:, None] + rng.normal(0, 0.05, size=(10, 1))
            sequences.append(seq)
            labels.append("up" if up else "down")
        model = StackedLstmClassifier(hidden_dim=8, epochs=6, learning_rate=6e-3)
        model.fit(np.array(sequences), labels)
        predictions = model.predict(np.array(sequences))
        accuracy = np.mean([p == t for p, t in zip(predictions, labels)])
        assert accuracy > 0.85

    def test_proba_shape_and_sum(self):
        rng = np.random.default_rng(6)
        x = rng.normal(size=(20, 5, 2))
        y = ["a"] * 10 + ["b"] * 10
        model = StackedLstmClassifier(hidden_dim=4, epochs=1).fit(x, y)
        probs = model.predict_proba(x)
        assert probs.shape == (20, 2)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            StackedLstmClassifier(hidden_dim=0)
        model = StackedLstmClassifier(hidden_dim=4, epochs=1)
        with pytest.raises(ValueError):
            model.fit(np.zeros((3, 4)), ["a", "b", "c"])
        with pytest.raises(RuntimeError):
            StackedLstmClassifier().predict_proba(np.zeros((1, 4, 2)))


class TestMetrics:
    def test_confusion(self):
        counts = confusion_matrix(["a", "a", "b"], ["a", "b", "b"])
        assert counts[("a", "a")] == 1
        assert counts[("a", "b")] == 1
        assert counts[("b", "b")] == 1

    def test_report_excludes_negative_class(self):
        truth = ["none"] * 90 + ["ho"] * 10
        preds = ["none"] * 90 + ["ho"] * 5 + ["none"] * 5
        report = classification_report(truth, preds, negative_class="none")
        assert report.accuracy == pytest.approx(0.95)
        assert report.recall == pytest.approx(0.5)
        assert report.precision == pytest.approx(1.0)

    def test_perfect_report(self):
        report = classification_report(["a", "b"], ["a", "b"], negative_class=None)
        assert report.f1 == pytest.approx(1.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            classification_report(["a"], ["a", "b"])

    def test_episodes_merge_flicker(self):
        times = np.arange(0, 5, 0.1)
        preds = ["none"] * len(times)
        for i in (10, 12, 14, 30, 31):
            preds[i] = "ho"
        episodes = prediction_episodes(times, preds, negative_class="none")
        assert len(episodes) == 2

    def test_episodes_debounce_single_tick(self):
        times = np.arange(0, 5, 0.1)
        preds = ["none"] * len(times)
        preds[10] = "ho"
        episodes = prediction_episodes(times, preds, negative_class="none")
        assert episodes == []

    def test_event_level_coverage(self):
        times = np.arange(0, 10, 0.1)
        preds = ["none"] * len(times)
        for i in range(20, 26):
            preds[i] = "ho"  # episode at 2.0-2.5 s
        truths = ["none"] * len(times)
        events = [(2.8, "ho"), (7.0, "ho")]
        report = event_level_report(times, preds, truths, events, negative_class="none")
        # One episode covers the 2.8 s event; the 7.0 s one is missed.
        assert report.per_class["ho"][0] == pytest.approx(1.0)  # precision
        assert report.per_class["ho"][1] == pytest.approx(0.5)  # recall

    def test_event_level_false_positive(self):
        times = np.arange(0, 10, 0.1)
        preds = ["none"] * len(times)
        for i in range(20, 26):
            preds[i] = "ho"
        report = event_level_report(
            times, preds, ["none"] * len(times), [], negative_class="none"
        )
        assert report.f1 == 0.0
