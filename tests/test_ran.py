"""RAN substrate: cells, towers, carriers, deployment generation."""

import numpy as np
import pytest

from repro.geo.point import Point
from repro.geo.polyline import Polyline
from repro.radio.bands import BandClass, RadioAccessTechnology, band_by_name
from repro.ran import (
    CARRIERS,
    DeploymentBuilder,
    OPX,
    OPY,
    OPZ,
    SegmentConfig,
    carrier_by_name,
)
from repro.ran.cells import Cell, NodeKind, Tower


def nr_cell(gci=0, pci=None, band="n71", node=0, tower=0):
    return Cell(
        gci=gci,
        pci=pci if pci is not None else gci,
        band=band_by_name(band),
        node_id=node,
        tower_id=tower,
        position=Point(0, 0),
        eirp_dbm=58.0,
        carrier="OpX",
    )


class TestCells:
    def test_pci_range_validation(self):
        with pytest.raises(ValueError):
            nr_cell(pci=1008)
        with pytest.raises(ValueError):
            Cell(0, 504, band_by_name("B2"), 0, 0, Point(0, 0), 60.0, "OpX")

    def test_node_kind(self):
        assert nr_cell().node_kind is NodeKind.GNB
        lte = Cell(0, 100, band_by_name("B2"), 0, 0, Point(0, 0), 60.0, "OpX")
        assert lte.node_kind is NodeKind.ENB

    def test_tower_colocation_flags(self):
        tower = Tower(0, Point(0, 0), "OpX")
        tower.cells.append(nr_cell())
        assert tower.has_gnb and not tower.has_enb
        tower.cells.append(Cell(1, 10, band_by_name("B2"), 1, 0, Point(0, 0), 60.0, "OpX"))
        assert tower.is_colocated_site


class TestCarriers:
    def test_three_carriers(self):
        assert set(CARRIERS) == {"OpX", "OpY", "OpZ"}

    def test_lookup(self):
        assert carrier_by_name("OpY") is OPY
        with pytest.raises(KeyError):
            carrier_by_name("OpQ")

    def test_only_opy_supports_sa(self):
        assert OPY.supports_sa
        assert not OPX.supports_sa and not OPZ.supports_sa

    def test_band_counts_match_table1(self):
        # Table 1: OpX 5 LTE bands, OpY 9, OpZ 6.
        assert len(OPX.lte_bands) == 5
        assert len(OPY.lte_bands) == 9
        assert len(OPZ.lte_bands) == 6

    def test_coloc_fractions_in_paper_range(self):
        for carrier in CARRIERS.values():
            assert 0.05 <= carrier.coloc_fraction <= 0.36

    def test_event_configs_standalone(self):
        configs = OPY.event_configs(BandClass.LOW, standalone=True)
        assert all(c.measurement.value == "nr" for c in configs)

    def test_event_configs_nsa_has_both_objects(self):
        configs = OPX.event_configs(BandClass.MMWAVE)
        objects = {c.measurement.value for c in configs}
        assert objects == {"lte", "nr"}

    def test_unsupported_nr_layer_raises(self):
        with pytest.raises(ValueError):
            OPX.nr_band_name(BandClass.MID)

    def test_nr_a3_is_intra_node(self):
        configs = OPX.nr_event_configs(BandClass.LOW)
        a3 = next(c for c in configs if c.event.value == "A3")
        assert a3.intra_node_only

    def test_b1_is_discovery_only(self):
        configs = OPX.nr_event_configs(BandClass.LOW)
        b1 = next(c for c in configs if c.event.value == "B1")
        assert b1.only_when_detached


class TestDeployment:
    def _build(self, carrier=OPX, band=BandClass.LOW, length=6000.0, seed=5, **seg):
        rng = np.random.default_rng(seed)
        route = Polyline.straight(length)
        segment = SegmentConfig(
            0.0, length, lte_isd_m=600.0, nr_band_class=band, nr_isd_m=1400.0, **seg
        )
        return DeploymentBuilder(route, carrier, rng).add_segment(segment).build()

    def test_builds_both_layers(self):
        deployment = self._build()
        rats = {c.rat for c in deployment.cells}
        assert rats == {RadioAccessTechnology.LTE, RadioAccessTechnology.NR}

    def test_cell_counts_scale_with_isd(self):
        deployment = self._build()
        lte = [c for c in deployment.cells if c.rat is RadioAccessTechnology.LTE]
        assert len(lte) == pytest.approx(10, abs=2)  # 6 km / 600 m

    def test_audible_matches_brute_force(self):
        deployment = self._build()
        for x in (0.0, 1500.0, 4000.0):
            point = Point(x, 0.0)
            fast = {c.gci for c in deployment.audible_cells(point)}
            brute = {
                c.gci
                for c in deployment.cells
                if c.distance_to(point) <= c.audible_radius_m
            }
            assert fast == brute

    def test_adjacent_cells_have_distinct_pcis(self):
        deployment = self._build()
        for cell in deployment.cells:
            nearby = [
                o
                for o in deployment.cells
                if o is not cell
                and o.rat is cell.rat
                and o.distance_to(cell.position) < 3000.0
            ]
            assert all(o.pci != cell.pci or o.tower_id == cell.tower_id for o in nearby)

    def test_colocated_share_pci(self):
        deployment = self._build(carrier=OPX, seed=11, length=20000.0)
        for tower in deployment.towers:
            if tower.is_colocated_site:
                enb_pcis = {c.pci for c in tower.cells if c.node_kind is NodeKind.ENB}
                gnb_first = [c for c in tower.cells if c.node_kind is NodeKind.GNB]
                assert any(c.pci in enb_pcis for c in gnb_first)

    def test_segment_lookup(self):
        deployment = self._build()
        assert deployment.segment_at(100.0) is deployment.segments[0]
        assert deployment.segment_at(1e7) is None

    def test_sa_segment_has_no_lte(self):
        rng = np.random.default_rng(6)
        route = Polyline.straight(5000.0)
        segment = SegmentConfig(
            0.0, 5000.0, nr_band_class=BandClass.LOW, nr_isd_m=900.0, standalone=True
        )
        deployment = DeploymentBuilder(route, OPY, rng).add_segment(segment).build()
        assert all(c.rat is RadioAccessTechnology.NR for c in deployment.cells)

    def test_sa_requires_carrier_support(self):
        rng = np.random.default_rng(7)
        route = Polyline.straight(5000.0)
        segment = SegmentConfig(
            0.0, 5000.0, nr_band_class=BandClass.LOW, standalone=True
        )
        with pytest.raises(ValueError, match="does not support SA"):
            DeploymentBuilder(route, OPX, rng).add_segment(segment)

    def test_segment_beyond_route_rejected(self):
        rng = np.random.default_rng(8)
        route = Polyline.straight(1000.0)
        with pytest.raises(ValueError, match="exceeds route"):
            DeploymentBuilder(route, OPX, rng).add_segment(SegmentConfig(0.0, 2000.0))

    def test_empty_build_rejected(self):
        rng = np.random.default_rng(9)
        with pytest.raises(ValueError):
            DeploymentBuilder(Polyline.straight(1000.0), OPX, rng).build()

    def test_cells_per_gnb_override(self):
        deployment = self._build(cells_per_gnb=1)
        nr_nodes = {}
        for cell in deployment.cells:
            if cell.rat is RadioAccessTechnology.NR:
                nr_nodes.setdefault(cell.node_id, 0)
                nr_nodes[cell.node_id] += 1
        assert all(count == 1 for count in nr_nodes.values())

    def test_eirp_bonus_applied(self):
        boosted = self._build(eirp_bonus_db=12.0)
        plain = self._build(eirp_bonus_db=0.0)
        b = max(c.eirp_dbm for c in boosted.cells)
        p = max(c.eirp_dbm for c in plain.cells)
        assert b == pytest.approx(p + 12.0)

    def test_segment_validation(self):
        with pytest.raises(ValueError):
            SegmentConfig(10.0, 5.0)
        with pytest.raises(ValueError):
            SegmentConfig(0.0, 100.0, lte_isd_m=0.0)
        with pytest.raises(ValueError):
            SegmentConfig(0.0, 100.0, jitter=0.9)
        with pytest.raises(ValueError):
            SegmentConfig(0.0, 100.0, cells_per_gnb=0)
