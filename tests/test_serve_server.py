"""Serving daemon end-to-end: offline bit-identity, backpressure
policies, fault injection, and the supervision ladder."""

from __future__ import annotations

import asyncio

import pytest

from repro.core.evaluation import configs_for_log, run_prognos_over_logs
from repro.radio.bands import BandClass
from repro.ran import OPX
from repro.rrc.events import MeasurementObject
from repro.serve import protocol
from repro.serve.loadgen import (
    build_script,
    run_load,
    spawn_server,
    stop_server,
)
from repro.serve.protocol import frame, read_frame
from repro.serve.server import PrognosServer, ServerConfig, _Connection
from repro.serve.session import SessionState
from repro.simulate.runner import run_drives
from repro.simulate.scenarios import freeway_scenario

EVENT_CONFIGS = configs_for_log(OPX, (BandClass.LOW,))


@pytest.fixture(scope="module")
def serve_logs():
    """Two short freeway drives shared by the end-to-end tests."""
    return run_drives(
        [
            freeway_scenario(OPX, BandClass.LOW, length_km=1.0, seed=71),
            freeway_scenario(OPX, BandClass.LOW, length_km=1.0, seed=72),
        ]
    )


# ----------------------------------------------------------------------
# End-to-end: both modes vs the offline evaluator
# ----------------------------------------------------------------------


def test_end_to_end_bit_identity_both_modes(serve_logs):
    """Sequential AND micro-batched servers must reproduce the offline
    ``run_prognos_over_logs`` prediction stream exactly, and agree with
    each other on every field including the ABR level."""
    offline = []
    for log in serve_logs:
        result = run_prognos_over_logs([log], EVENT_CONFIGS)
        offline.append(
            [(float(t), p) for t, p in zip(result.times_s, result.predictions)]
        )
    scripts = [
        build_script(serve_logs[i % 2], f"ue-{i:02d}", EVENT_CONFIGS)
        for i in range(6)
    ]
    by_mode = {}
    for mode in ("sequential", "batched"):
        pid, port = spawn_server(ServerConfig(batched=(mode == "batched")))
        try:
            result = run_load(port, scripts, collect=True)
        finally:
            exit_code = stop_server(pid)
        assert exit_code == 0, f"{mode} server did not shut down cleanly"
        assert result.failed == 0 and result.completed == len(scripts)
        for i, script in enumerate(scripts):
            bye = result.byes[script.session_id]
            assert bye["answered"] == bye["ticks"] == script.n_ticks
            assert bye["dropped"] == 0 and bye["lost"] == 0
            expected = offline[i % 2]
            got = result.predictions[script.session_id]
            assert len(got) == len(expected)
            for (t, ho, _s, _sim, _lead, _lvl), (rt, rho) in zip(got, expected):
                assert t == rt and ho is rho
        by_mode[mode] = result.predictions
    assert by_mode["batched"] == by_mode["sequential"]


def test_midstream_disconnect_leaves_others_unharmed(serve_logs):
    scripts = [
        build_script(serve_logs[0], f"ue-{i}", EVENT_CONFIGS) for i in range(3)
    ]
    pid, port = spawn_server(ServerConfig(batched=True))
    try:
        result = run_load(port, scripts, abort_after={"ue-1": 5})
    finally:
        exit_code = stop_server(pid)
    assert exit_code == 0
    assert result.aborted == 1 and result.failed == 0
    assert result.completed == 2
    for sid in ("ue-0", "ue-2"):
        assert result.byes[sid]["answered"] == scripts[0].n_ticks


# ----------------------------------------------------------------------
# Protocol violations at the session layer
# ----------------------------------------------------------------------


def _hello(session_id, policy="drop", version=protocol.PROTOCOL_VERSION):
    return {
        "type": "hello",
        "version": version,
        "session": session_id,
        "standalone": False,
        "policy": policy,
        "events": protocol.encode_event_configs(EVENT_CONFIGS),
    }


async def _connect(port, hello):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(frame(protocol.encode_json(hello)))
    await writer.drain()
    reply = await read_frame(reader)
    return reader, writer, protocol.decode_json(reply)


def _tick_frame(i, time_s=None):
    rsrp = {10: -80.0 - 0.01 * i, 11: -92.0 + 0.02 * i}
    serving = {MeasurementObject.LTE: 10, MeasurementObject.NR: None}
    neighbours = {MeasurementObject.LTE: [11], MeasurementObject.NR: []}
    scoped = {MeasurementObject.LTE: [11], MeasurementObject.NR: []}
    return frame(
        protocol.encode_tick(
            0.25 * i if time_s is None else time_s,
            rsrp,
            serving,
            neighbours,
            scoped,
            seq=i + 1,
        )
    )


def test_duplicate_session_id_rejected():
    async def main():
        async with PrognosServer(ServerConfig()) as server:
            r1, w1, welcome = await _connect(server.port, _hello("dup"))
            assert welcome["type"] == "welcome"
            r2, w2, reply = await _connect(server.port, _hello("dup"))
            assert reply["type"] == "error"
            assert "duplicate" in reply["error"]
            w1.close()
            w2.close()

    asyncio.run(main())


def test_malformed_handshakes_rejected():
    async def main():
        async with PrognosServer(ServerConfig()) as server:
            for hello in (
                _hello("v", version=99),
                {"type": "nonsense", "version": protocol.PROTOCOL_VERSION},
                _hello("p", policy="blockhard"),
                {**_hello("e"), "events": []},
                {**_hello(""), "session": ""},
            ):
                _r, w, reply = await _connect(server.port, hello)
                assert reply["type"] == "error", hello
                w.close()
            # The server must still accept a well-formed session after
            # rejecting the garbage.
            _r, w, welcome = await _connect(server.port, _hello("ok"))
            assert welcome["type"] == "welcome"
            w.close()

    asyncio.run(main())


def test_unknown_tag_and_midstream_json_rejected():
    async def main():
        async with PrognosServer(ServerConfig()) as server:
            for junk in (b"X" + b"\x00" * 8, protocol.encode_json({"type": "hello"})):
                reader, writer, welcome = await _connect(
                    server.port, _hello(f"junk-{junk[:1]!r}")
                )
                assert welcome["type"] == "welcome"
                writer.write(frame(junk))
                await writer.drain()
                reply = await read_frame(reader)
                assert reply is not None and reply[:1] == b"{"
                assert protocol.decode_json(reply)["type"] == "error"
                writer.close()

    asyncio.run(main())


# ----------------------------------------------------------------------
# Backpressure policies
# ----------------------------------------------------------------------


class _AbortRecorder:
    def __init__(self):
        self.aborted = False
        self.transport = self

    def abort(self):
        self.aborted = True


def test_drop_policy_unit_semantics():
    state = SessionState("u", None, token="t", policy="drop")
    conn = _Connection(state, None, _AbortRecorder(), "drop", 4)
    for i in range(10):
        conn.deliver(b"%d" % i)
    assert state.dropped == 6
    assert list(conn.outbox) == [b"6", b"7", b"8", b"9"]
    assert not conn.closed


def test_disconnect_policy_unit_semantics():
    writer = _AbortRecorder()
    state = SessionState("u", None, token="t", policy="disconnect")
    conn = _Connection(state, None, writer, "disconnect", 4)
    for i in range(10):
        conn.deliver(b"%d" % i)
    assert conn.closed and writer.aborted
    assert len(conn.outbox) == 4  # nothing evicted, nothing beyond the kill


def test_slow_client_drop_policy_end_to_end():
    """A consumer whose flusher is wedged loses oldest predictions but
    keeps its session: eviction counted, surfaced in frames and bye."""

    async def main():
        config = ServerConfig(batched=True, outbox_limit=4)
        async with PrognosServer(config) as server:
            reader, writer, _ = await _connect(server.port, _hello("slow"))
            state = server._sessions["slow"]
            conn = state.conn
            conn.flusher.cancel()  # wedge the consumer side
            for i in range(10):
                writer.write(_tick_frame(i))
            await writer.drain()
            while state.session.ticks < 10:  # all answered, not yet read
                await asyncio.sleep(0.01)
            assert state.pending == 0
            assert state.dropped == 6
            # Un-wedge: restart the flusher, drain what survived.
            conn.flusher = asyncio.create_task(server._flush_loop(conn))
            conn.out_event.set()
            survivors = []
            for _ in range(4):
                payload = await read_frame(reader)
                assert payload[:1] == b"P"
                survivors.append(protocol.decode_prediction(payload))
            assert survivors[-1][6] == 5  # evictions before it was encoded
            writer.write(frame(b"B"))
            await writer.drain()
            bye = protocol.decode_json(await read_frame(reader))
            assert bye["type"] == "bye"
            assert bye["ticks"] == 10 and bye["answered"] == 10
            assert bye["dropped"] == 6 and bye["lost"] == 0
            writer.close()

    asyncio.run(main())


def test_slow_client_disconnect_policy_end_to_end():
    async def main():
        config = ServerConfig(batched=True, outbox_limit=3)
        async with PrognosServer(config) as server:
            reader, writer, _ = await _connect(
                server.port, _hello("strict", policy="disconnect")
            )
            conn = server._sessions["strict"].conn
            conn.flusher.cancel()
            for i in range(10):
                writer.write(_tick_frame(i))
            await writer.drain()
            deadline = asyncio.get_running_loop().time() + 10.0
            while not conn.closed:
                assert asyncio.get_running_loop().time() < deadline
                await asyncio.sleep(0.01)
            try:
                assert await read_frame(reader) is None  # connection aborted
            except ConnectionError:
                pass  # an RST is an equally valid way to learn the news
            writer.close()

    asyncio.run(main())


# ----------------------------------------------------------------------
# Engine supervision ladder
# ----------------------------------------------------------------------


def test_engine_crash_restarts_and_resyncs():
    async def main():
        async with PrognosServer(ServerConfig(batched=True)) as server:
            reader, writer, _ = await _connect(server.port, _hello("crashy"))
            server._inject_engine_fault = RuntimeError("injected engine fault")
            for i in range(8):
                writer.write(_tick_frame(i))
            await writer.drain()
            for _ in range(8):
                payload = await read_frame(reader)
                assert payload is not None and payload[:1] == b"P"
            writer.write(frame(b"B"))
            await writer.drain()
            bye = protocol.decode_json(await read_frame(reader))
            assert bye["answered"] == 8 and bye["lost"] == 0
            stats = server.stats()
            assert stats["engine_restarts"] == 1
            assert not stats["degraded"]
            writer.close()

    asyncio.run(main())


def test_engine_degrades_after_crash_budget():
    async def main():
        config = ServerConfig(batched=True, engine_restarts=0)
        async with PrognosServer(config) as server:
            reader, writer, _ = await _connect(server.port, _hello("victim"))
            server._inject_engine_fault = RuntimeError("injected engine fault")
            for i in range(5):
                writer.write(_tick_frame(i))
            await writer.drain()
            for _ in range(5):
                payload = await read_frame(reader)
                assert payload is not None and payload[:1] == b"P"
            # Degraded mode keeps serving: new ticks go inline.
            for i in range(5, 8):
                writer.write(_tick_frame(i))
            await writer.drain()
            for _ in range(3):
                payload = await read_frame(reader)
                assert payload is not None and payload[:1] == b"P"
            writer.write(frame(b"B"))
            await writer.drain()
            bye = protocol.decode_json(await read_frame(reader))
            assert bye["answered"] == 8 and bye["lost"] == 0
            stats = server.stats()
            assert stats["degraded"] and stats["engine_restarts"] == 1
            writer.close()

    asyncio.run(main())


# ----------------------------------------------------------------------
# Bootstrap model cache
# ----------------------------------------------------------------------


def test_cached_bootstrap_patterns_warm_hit(serve_logs, tmp_path, monkeypatch):
    import repro.serve.models as models
    from repro.ml.model_cache import ModelCache

    cache = ModelCache(tmp_path, enabled=True)
    mined = models.cached_bootstrap_patterns(serve_logs, cache=cache)
    assert mined  # the drives produce at least one pattern

    def _must_not_mine(*args, **kwargs):
        raise AssertionError("cache should have served the patterns")

    monkeypatch.setattr(models, "frequent_patterns_from_logs", _must_not_mine)
    again = models.cached_bootstrap_patterns(serve_logs, cache=cache)
    assert again == mined
    # A different per_type misses and re-mines (and here, trips).
    monkeypatch.setattr(
        models, "frequent_patterns_from_logs", lambda *a, **k: {"fresh": 1}
    )
    assert models.cached_bootstrap_patterns(serve_logs, per_type=2, cache=cache) == {
        "fresh": 1
    }
