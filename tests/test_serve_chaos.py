"""Network chaos end to end: the ``REPRO_FAULTS`` network family fired
by the load generator against live servers, with every session's merged
prediction stream held bit-identical to the offline oracle — including
across a SIGKILLed shard and a rolling drain in the same run."""

from __future__ import annotations

import asyncio
import os
import signal
from functools import partial

import pytest

from repro.core.evaluation import configs_for_log, run_prognos_over_logs
from repro.radio.bands import BandClass
from repro.ran import OPX
from repro.robust import faults
from repro.serve.loadgen import build_script, run_load, spawn_server, stop_server
from repro.serve.server import ServerConfig
from repro.serve.shard import ShardedPrognosServer, reuseport_available
from repro.simulate.runner import run_drives
from repro.simulate.scenarios import freeway_scenario

EVENT_CONFIGS = configs_for_log(OPX, (BandClass.LOW,))

#: Every network fault family at once; probabilities tuned so a short
#: cohort still sees a handful of each (draws are sha256-deterministic,
#: so the exact event set reproduces run to run).
CHAOS_SPEC = (
    "conn_reset:p=0.03,"
    "frame_truncate:p=0.015,"
    "byte_corrupt:p=0.015,"
    "stall_s:p=0.01:hang_s=0.3,"
    "reconnect_storm:p=0.01"
)


@pytest.fixture(scope="module")
def chaos_logs():
    return run_drives(
        [
            freeway_scenario(OPX, BandClass.LOW, length_km=1.0, seed=171),
            freeway_scenario(OPX, BandClass.LOW, length_km=1.0, seed=172),
        ]
    )


@pytest.fixture
def chaos_spec(monkeypatch):
    monkeypatch.setenv(faults.ENV_VAR, CHAOS_SPEC)
    faults.reset()
    yield CHAOS_SPEC
    faults.reset()


def _scripts(chaos_logs, n):
    return [
        build_script(chaos_logs[i % len(chaos_logs)], f"ue-{i:02d}", EVENT_CONFIGS)
        for i in range(n)
    ]


def _assert_streams_match_oracle(chaos_logs, scripts, result):
    oracle = []
    for log in chaos_logs:
        run = run_prognos_over_logs([log], EVENT_CONFIGS)
        oracle.append([(float(t), p) for t, p in zip(run.times_s, run.predictions)])
    for i, script in enumerate(scripts):
        expected = oracle[i % len(chaos_logs)][: script.n_ticks]
        got = result.predictions[script.session_id]
        assert len(got) == len(expected), (
            f"{script.session_id}: {len(got)} predictions vs oracle "
            f"{len(expected)}"
        )
        for (t, ho, _sc, _sim, _lead, _lvl), (rt, rho) in zip(got, expected):
            assert t == rt and ho is rho, (
                f"{script.session_id} diverged from the offline oracle at t={t}"
            )


def test_chaos_stream_invariant_single_server(chaos_logs, chaos_spec):
    """Disconnects, truncations, corruption, stalls and storms against
    one server process: every session completes and its merged stream
    equals the offline replay."""
    scripts = _scripts(chaos_logs, 4)
    pid, port = spawn_server(ServerConfig(batched=True, shards=1, heartbeat_s=0.5))
    try:
        result = run_load(port, scripts, collect=True, chaos=True)
    finally:
        exit_code = stop_server(pid)
    assert exit_code == 0
    assert result.failed == 0 and result.completed == len(scripts)
    # The spec must actually have bitten; the counters are
    # deterministic for a fixed (spec, cohort) pair.
    assert result.resets > 0 and result.resumes > 0
    assert result.restarts == 0, "no session should have lost its journal"
    assert result.resume_p50_ms is not None
    _assert_streams_match_oracle(chaos_logs, scripts, result)


def test_chaos_determinism_same_spec_same_counters(chaos_logs, chaos_spec):
    """Two identical chaos runs draw identical fault sequences: same
    resets, same resumes, same replayed streams."""
    scripts = _scripts(chaos_logs, 3)
    outcomes = []
    for _ in range(2):
        faults.reset()
        pid, port = spawn_server(
            ServerConfig(batched=True, shards=1, heartbeat_s=0.5)
        )
        try:
            result = run_load(port, scripts, collect=True, chaos=True)
        finally:
            assert stop_server(pid) == 0
        assert result.failed == 0 and result.completed == len(scripts)
        outcomes.append(
            (result.resets, result.resumes, result.restarts, result.predictions)
        )
    assert outcomes[0] == outcomes[1]


@pytest.mark.parametrize(
    "routing",
    [
        pytest.param(
            "reuseport",
            marks=pytest.mark.skipif(
                not reuseport_available(), reason="SO_REUSEPORT unavailable"
            ),
        ),
        "handoff",
    ],
)
def test_chaos_sharded_kill_and_rolling_drain(chaos_logs, chaos_spec, routing):
    """The acceptance run: injected network faults + one SIGKILLed
    shard + a rolling drain, in a single drive-through, with every
    merged stream bit-identical to the oracle."""
    scripts = _scripts(chaos_logs, 6)
    config = ServerConfig(
        batched=True,
        shards=2,
        routing=routing,
        heartbeat_s=1.0,
        drain_s=2.0,
    )

    async def main():
        async with ShardedPrognosServer(config) as server:
            loop = asyncio.get_running_loop()
            future = loop.run_in_executor(
                None,
                partial(run_load, server.port, scripts, collect=True, chaos=True),
            )
            await asyncio.sleep(0.6)
            victim = server._shards[0].pid
            os.kill(victim, signal.SIGKILL)  # unplanned shard loss
            await asyncio.sleep(0.6)
            await server.rolling_drain(1.0)  # planned, one slot at a time
            result = await future
            stats = await server.stats()
            pids = [shard.pid for shard in server._shards]
        return result, stats, pids

    result, stats, pids = asyncio.run(main())
    assert result.failed == 0 and result.completed == len(scripts)
    assert result.resumes > 0
    _assert_streams_match_oracle(chaos_logs, scripts, result)
    # The controller respawned the killed slot (the rolling-drain
    # reforks are planned and skip the crash tally); nothing may
    # outlive the daemon.
    assert stats["restarts"] >= 1
    for pid in pids:
        with pytest.raises(ProcessLookupError):
            os.kill(pid, 0)
