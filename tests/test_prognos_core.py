"""Prognos components: smoothing, RRS prediction, patterns, learner,
predictor, and the streaming facade."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    DecisionLearner,
    HandoverPredictor,
    Pattern,
    Prognos,
    PrognosConfig,
    RRSPredictor,
    ReportPredictor,
    TriangularKernelSmoother,
)
from repro.core.patterns import (
    MAX_PATTERN_LENGTH,
    PatternStats,
    dedup_labels,
    subsequences_for_phase,
)
from repro.core.predictor import RadioContext
from repro.core.ho_score import DEFAULT_HO_SCORES, ho_score_for
from repro.rrc.events import EventConfig, EventType, MeasurementObject
from repro.rrc.taxonomy import HandoverType


class TestSmoothing:
    def test_constant_series_invariant(self):
        smoother = TriangularKernelSmoother(window=5)
        series = np.full(20, -100.0)
        assert np.allclose(smoother.smooth_series(series), -100.0)

    def test_reduces_noise_variance(self):
        rng = np.random.default_rng(0)
        smoother = TriangularKernelSmoother(window=8)
        noisy = -100.0 + rng.normal(0, 4, size=200)
        smooth = smoother.smooth_series(noisy)
        assert np.std(smooth[10:]) < np.std(noisy[10:]) * 0.7

    def test_weights_favour_recent(self):
        smoother = TriangularKernelSmoother(window=4)
        # Step change: the smoothed tail should sit closer to the new level.
        series = np.array([0.0] * 10 + [10.0] * 2)
        assert smoother.smooth_last(series) > 5.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TriangularKernelSmoother().smooth_last(np.array([]))
        with pytest.raises(ValueError):
            TriangularKernelSmoother(window=0)


class TestRRSPredictor:
    def test_predicts_linear_trend(self):
        predictor = RRSPredictor(history_window_ticks=10, slope_shrinkage=1.0)
        for i in range(10):
            predictor.observe(i * 0.05, {"cell": -100.0 + i})
        forecast = predictor.predict("cell", horizon_s=0.25, steps=5)
        assert forecast is not None
        # Trend is +20 dB/s; the triangular smoother lags a little, so
        # check the forecast rises and lands near the trend.
        assert forecast[-1] > forecast[0]
        assert forecast[-1] > -92.0

    def test_insufficient_history(self):
        predictor = RRSPredictor()
        predictor.observe(0.0, {"cell": -100.0})
        assert predictor.predict("cell", 1.0) is None

    def test_stale_cells_forgotten(self):
        predictor = RRSPredictor(stale_after_s=1.0)
        for i in range(10):
            predictor.observe(i * 0.05, {"cell": -100.0})
        predictor.observe(10.0, {"other": -90.0})
        assert "cell" not in predictor.known_cells()

    def test_shrinkage_dampens(self):
        full = RRSPredictor(history_window_ticks=10, slope_shrinkage=1.0)
        damped = RRSPredictor(history_window_ticks=10, slope_shrinkage=0.5)
        for i in range(10):
            for p in (full, damped):
                p.observe(i * 0.05, {"cell": -100.0 + i})
        f = full.predict("cell", 1.0)[-1]
        d = damped.predict("cell", 1.0)[-1]
        assert d < f

    def test_validation(self):
        with pytest.raises(ValueError):
            RRSPredictor(history_window_ticks=2)
        with pytest.raises(ValueError):
            RRSPredictor(slope_shrinkage=0.0)


class TestReportPredictor:
    def _predictor(self, configs):
        return ReportPredictor(configs, RRSPredictor(history_window_ticks=10))

    def test_forecasts_approaching_a2(self):
        config = EventConfig(EventType.A2, MeasurementObject.NR, threshold_dbm=-110.0)
        predictor = self._predictor([config])
        # Serving decaying 8 dB/s from -105: crosses -110 in ~0.6 s.
        for i in range(10):
            predictor.observe(i * 0.05, {"s": -105.0 - i * 0.4})
        reports = predictor.predict_reports(
            {MeasurementObject.NR: "s", MeasurementObject.LTE: None},
            {MeasurementObject.NR: [], MeasurementObject.LTE: []},
        )
        assert any(r.label == "NR-A2" for r in reports)

    def test_no_forecast_for_stable_signal(self):
        config = EventConfig(EventType.A2, MeasurementObject.NR, threshold_dbm=-110.0)
        predictor = self._predictor([config])
        for i in range(10):
            predictor.observe(i * 0.05, {"s": -100.0})
        reports = predictor.predict_reports(
            {MeasurementObject.NR: "s", MeasurementObject.LTE: None},
            {MeasurementObject.NR: [], MeasurementObject.LTE: []},
        )
        assert reports == []

    def test_gating_mirrors_ue(self):
        config = EventConfig(
            EventType.B1, MeasurementObject.NR, threshold_dbm=-110.0, only_when_detached=True
        )
        predictor = self._predictor([config])
        for i in range(10):
            predictor.observe(i * 0.05, {"s": -90.0, "n": -90.0})
        attached = predictor.predict_reports(
            {MeasurementObject.NR: "s", MeasurementObject.LTE: None},
            {MeasurementObject.NR: ["n"], MeasurementObject.LTE: []},
        )
        assert attached == []
        detached = predictor.predict_reports(
            {MeasurementObject.NR: None, MeasurementObject.LTE: None},
            {MeasurementObject.NR: ["n"], MeasurementObject.LTE: []},
        )
        assert any(r.label == "NR-B1" for r in detached)

    def test_scoped_candidates(self):
        config = EventConfig(
            EventType.A3, MeasurementObject.NR, offset_db=3.0, intra_node_only=True
        )
        predictor = self._predictor([config])
        for i in range(10):
            predictor.observe(i * 0.05, {"s": -100.0 - i, "n": -95.0})
        unscoped = predictor.predict_reports(
            {MeasurementObject.NR: "s", MeasurementObject.LTE: None},
            {MeasurementObject.NR: ["n"], MeasurementObject.LTE: []},
            scoped_neighbours={MeasurementObject.NR: [], MeasurementObject.LTE: []},
        )
        assert unscoped == []


class TestPatterns:
    def test_dedup(self):
        assert dedup_labels(["A2", "A2", "A5", "A5", "A2"]) == ("A2", "A5", "A2")

    def test_subsequences_are_suffixes(self):
        subs = subsequences_for_phase(("A1", "A2", "A5"))
        assert ("A5",) in subs
        assert ("A2", "A5") in subs
        assert ("A1", "A2", "A5") in subs
        assert ("A1",) not in subs

    def test_length_cap(self):
        labels = tuple(f"L{i}" for i in range(10))
        subs = subsequences_for_phase(labels)
        assert max(len(s) for s in subs) == MAX_PATTERN_LENGTH

    def test_pattern_suffix_match(self):
        pattern = Pattern(("A2", "A5"), HandoverType.LTEH)
        assert pattern.matches_suffix(("B1", "A2", "A5"))
        assert not pattern.matches_suffix(("A5", "A2"))
        assert not pattern.matches_suffix(("A5",))

    def test_pattern_validation(self):
        with pytest.raises(ValueError):
            Pattern((), HandoverType.LTEH)
        with pytest.raises(ValueError):
            Pattern(tuple("abcde"), HandoverType.LTEH)

    @given(st.integers(min_value=0, max_value=200))
    def test_freshness_monotone(self, age):
        stats = PatternStats(support=3, last_seen_phase=100)
        f_now = stats.freshness(100 + age, horizon_phases=120)
        f_later = stats.freshness(100 + age + 10, horizon_phases=120)
        assert 0.0 <= f_later <= f_now <= 1.0


class TestDecisionLearner:
    def test_support_counting(self):
        learner = DecisionLearner()
        for _ in range(3):
            learner.observe_report("A2")
            learner.observe_report("A5")
            learner.observe_handover(HandoverType.LTEH, 0.0)
        patterns = learner.live_patterns()
        key = Pattern(("A2", "A5"), HandoverType.LTEH)
        assert patterns[key].support == 3

    def test_eviction_by_freshness(self):
        learner = DecisionLearner(freshness_horizon_phases=2)
        learner.observe_report("A3")
        learner.observe_handover(HandoverType.LTEH, 0.0)
        for i in range(5):
            learner.observe_report("NR-B1")
            learner.observe_handover(HandoverType.SCGA, float(i + 1))
        assert Pattern(("A3",), HandoverType.LTEH) not in learner.live_patterns()
        stats = learner.stats()
        assert stats.patterns_evicted > 0

    def test_bootstrap_seeds_support(self):
        learner = DecisionLearner()
        learner.bootstrap({Pattern(("NR-A3",), HandoverType.SCGM): 10})
        assert learner.live_patterns()[Pattern(("NR-A3",), HandoverType.SCGM)].support == 10

    def test_empty_phase_gets_sentinel(self):
        learner = DecisionLearner()
        phase = learner.observe_handover(HandoverType.SCGR, 1.0)
        assert phase.labels == ("<none>",)

    def test_capacity_guard(self):
        learner = DecisionLearner(max_patterns=8)
        for i in range(40):
            learner.observe_report(f"L{i}")
            learner.observe_handover(HandoverType.LTEH, float(i))
        assert len(learner.live_patterns()) <= 8

    def test_validation(self):
        with pytest.raises(ValueError):
            DecisionLearner(freshness_horizon_phases=0)
        learner = DecisionLearner()
        with pytest.raises(ValueError):
            learner.bootstrap({Pattern(("A3",), HandoverType.LTEH): 0})


class TestHandoverPredictor:
    def _trained_learner(self):
        learner = DecisionLearner()
        for _ in range(4):
            learner.observe_report("NR-A3")
            learner.observe_handover(HandoverType.SCGM, 0.0)
        return learner

    def _context(self, **kwargs):
        defaults = dict(standalone=False, nr_attached=True, lte_attached=True)
        defaults.update(kwargs)
        return RadioContext(**defaults)

    def test_predicts_on_imminent_predicted_label(self):
        predictor = HandoverPredictor(self._trained_learner(), min_similarity=0.0)
        prediction = predictor.predict([], [("NR-A3", 0.5)], self._context())
        assert prediction.ho_type is HandoverType.SCGM
        assert prediction.lead_time_s == pytest.approx(0.5)

    def test_predicts_on_fresh_actual_label(self):
        predictor = HandoverPredictor(self._trained_learner(), min_similarity=0.0)
        prediction = predictor.predict([("NR-A3", 0.1)], [], self._context())
        assert prediction.ho_type is HandoverType.SCGM

    def test_stale_actual_does_not_fire(self):
        predictor = HandoverPredictor(self._trained_learner(), min_similarity=0.0)
        prediction = predictor.predict([("NR-A3", 5.0)], [], self._context())
        assert prediction.ho_type is HandoverType.NONE

    def test_sanity_check_blocks_impossible_type(self):
        predictor = HandoverPredictor(self._trained_learner(), min_similarity=0.0)
        prediction = predictor.predict(
            [], [("NR-A3", 0.5)], self._context(nr_attached=False)
        )
        assert prediction.ho_type is HandoverType.NONE

    def test_min_support_filter(self):
        learner = DecisionLearner()
        learner.observe_report("NR-A3")
        learner.observe_handover(HandoverType.SCGM, 0.0)
        predictor = HandoverPredictor(learner, min_support=3, min_similarity=0.0)
        prediction = predictor.predict([], [("NR-A3", 0.5)], self._context())
        assert prediction.ho_type is HandoverType.NONE

    def test_higher_support_wins(self):
        learner = DecisionLearner()
        for _ in range(10):
            learner.observe_report("NR-A3")
            learner.observe_handover(HandoverType.SCGM, 0.0)
        learner.observe_report("NR-A3")
        learner.observe_handover(HandoverType.SCGC, 0.0)
        predictor = HandoverPredictor(learner, min_similarity=0.0)
        prediction = predictor.predict([], [("NR-A3", 0.5)], self._context())
        assert prediction.ho_type is HandoverType.SCGM

    def test_ho_score_attached(self):
        predictor = HandoverPredictor(self._trained_learner(), min_similarity=0.0)
        prediction = predictor.predict([], [("NR-A3", 0.5)], self._context())
        assert prediction.ho_score == pytest.approx(DEFAULT_HO_SCORES[HandoverType.SCGM])


class TestHoScore:
    def test_default_lookup(self):
        assert ho_score_for(HandoverType.NONE) == 1.0
        assert ho_score_for(HandoverType.SCGA) > 1.0
        assert ho_score_for(HandoverType.SCGR) < 1.0

    def test_custom_table(self):
        assert ho_score_for(HandoverType.SCGM, {HandoverType.SCGM: 2.0}) == 2.0

    def test_invalid_score_rejected(self):
        with pytest.raises(ValueError):
            ho_score_for(HandoverType.SCGM, {HandoverType.SCGM: 0.0})


class TestPrognosFacade:
    def _synthetic_stream(self, prognos):
        """Feed a repeating SCGM pattern with decaying serving RRS."""
        t = 0.0
        for episode in range(6):
            # Serving beam decays while its same-gNB sibling rises.
            for i in range(40):
                rsrp = {
                    "serving": -90.0 - i * 0.5,
                    "sibling": -110.0 + i * 0.5,
                }
                prognos.step(
                    t,
                    rsrp,
                    {MeasurementObject.NR: "serving", MeasurementObject.LTE: "anchor"},
                    {MeasurementObject.NR: ["sibling"], MeasurementObject.LTE: []},
                    scoped_neighbours={
                        MeasurementObject.NR: ["sibling"],
                        MeasurementObject.LTE: [],
                    },
                )
                t += 0.05
            prognos.observe_report("NR-A3", t)
            prognos.observe_command(HandoverType.SCGM, t + 0.06)
            t += 0.5

    def test_learns_and_predicts_stream(self):
        configs = [
            EventConfig(
                EventType.A3,
                MeasurementObject.NR,
                offset_db=3.0,
                intra_node_only=True,
            )
        ]
        prognos = Prognos(configs, PrognosConfig(min_similarity=0.0))
        self._synthetic_stream(prognos)
        # After several episodes the pattern must be live.
        patterns = prognos.learner.live_patterns()
        assert Pattern(("NR-A3",), HandoverType.SCGM) in patterns
        # And a fresh crossing must be predicted ahead of the report.
        prediction = prognos.step(
            1000.0,
            {"serving": -104.0, "sibling": -104.5},
            {MeasurementObject.NR: "serving", MeasurementObject.LTE: "anchor"},
            {MeasurementObject.NR: ["sibling"], MeasurementObject.LTE: []},
            scoped_neighbours={
                MeasurementObject.NR: ["sibling"],
                MeasurementObject.LTE: [],
            },
        )
        for i in range(1, 15):
            prediction = prognos.step(
                1000.0 + i * 0.05,
                {"serving": -104.0 - i * 0.6, "sibling": -104.5 + i * 0.6},
                {MeasurementObject.NR: "serving", MeasurementObject.LTE: "anchor"},
                {MeasurementObject.NR: ["sibling"], MeasurementObject.LTE: []},
                scoped_neighbours={
                    MeasurementObject.NR: ["sibling"],
                    MeasurementObject.LTE: [],
                },
            )
            if prediction.predicts_handover:
                break
        assert prediction.ho_type is HandoverType.SCGM

    def test_ablation_flags(self):
        configs = [EventConfig(EventType.A3, MeasurementObject.NR, offset_db=3.0)]
        off = Prognos(configs, PrognosConfig(use_report_predictor=False))
        assert off.config.use_report_predictor is False
        no_evict = Prognos(configs, PrognosConfig(use_eviction=False))
        assert no_evict.learner._horizon > 10**6  # effectively never
