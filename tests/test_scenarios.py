"""Named scenarios: construction, validation, determinism."""

import pytest

from repro.net.bearer import BearerMode
from repro.radio.bands import BandClass, RadioAccessTechnology
from repro.ran import OPX, OPY
from repro.simulate.scenarios import (
    FREEWAY_NR_ISD_M,
    city_drive_scenario,
    city_walk_scenario,
    coverage_scenario,
    energy_loop_scenario,
    freeway_scenario,
)


class TestScenarioConstruction:
    def test_freeway_names_carry_context(self):
        scenario = freeway_scenario(OPX, BandClass.LOW, length_km=3, seed=1)
        assert "OpX" in scenario.name and "NSA" in scenario.name

    def test_freeway_isd_defaults_by_band(self):
        assert FREEWAY_NR_ISD_M[BandClass.MMWAVE] < FREEWAY_NR_ISD_M[BandClass.MID]
        assert FREEWAY_NR_ISD_M[BandClass.MID] < FREEWAY_NR_ISD_M[BandClass.LOW]

    def test_sa_freeway_has_no_lte_cells(self):
        scenario = freeway_scenario(
            OPY, BandClass.LOW, standalone=True, length_km=3, seed=2
        )
        rats = {c.rat for c in scenario.deployment.cells}
        assert rats == {RadioAccessTechnology.NR}

    def test_lte_only_freeway(self):
        scenario = freeway_scenario(OPX, None, length_km=3, seed=3)
        rats = {c.rat for c in scenario.deployment.cells}
        assert rats == {RadioAccessTechnology.LTE}

    def test_city_walk_multi_band_segments(self):
        scenario = city_walk_scenario(
            OPX, (BandClass.MMWAVE, BandClass.LOW), duration_min=3, seed=4
        )
        classes = {s.nr_band_class for s in scenario.deployment.segments}
        assert classes == {BandClass.MMWAVE, BandClass.LOW}

    def test_city_walk_requires_bands(self):
        with pytest.raises(ValueError):
            city_walk_scenario(OPX, (), duration_min=3)

    def test_city_walk_disables_mnbh(self):
        scenario = city_walk_scenario(OPX, (BandClass.MMWAVE,), duration_min=3, seed=5)
        assert scenario.config.anchor_keeps_scg_probability == 0.0

    def test_bearer_propagates(self):
        scenario = freeway_scenario(
            OPX, BandClass.LOW, length_km=3, seed=6, bearer=BearerMode.FIVE_G_ONLY
        )
        assert scenario.config.bearer is BearerMode.FIVE_G_ONLY

    def test_coverage_rural_low_band_is_single_cell_gnbs(self):
        scenario = coverage_scenario(OPX, BandClass.LOW, length_km=10, seed=7)
        segment = scenario.deployment.segments[0]
        assert segment.cells_per_gnb == 1
        assert segment.eirp_bonus_db > 0

    def test_energy_loops_denser_than_freeway(self):
        energy = energy_loop_scenario(OPX, BandClass.LOW, length_km=5, seed=8)
        freeway = freeway_scenario(OPX, BandClass.LOW, length_km=5, seed=8)
        assert len(energy.deployment.cells) > len(freeway.deployment.cells)

    def test_city_drive_loop_route(self):
        scenario = city_drive_scenario(OPX, BandClass.LOW, distance_km=3, seed=9)
        route = scenario.trajectory.route
        assert route.point_at(route.length) == route.point_at(0.0)


class TestScenarioDeterminism:
    def test_same_seed_same_log(self):
        a = freeway_scenario(OPX, BandClass.LOW, length_km=2, seed=11).run()
        b = freeway_scenario(OPX, BandClass.LOW, length_km=2, seed=11).run()
        assert len(a.ticks) == len(b.ticks)
        assert [h.ho_type for h in a.handovers] == [h.ho_type for h in b.handovers]
        assert a.handovers[0].t1_ms == b.handovers[0].t1_ms if a.handovers else True

    def test_different_seed_differs(self):
        a = freeway_scenario(OPX, BandClass.LOW, length_km=2, seed=12).run()
        b = freeway_scenario(OPX, BandClass.LOW, length_km=2, seed=13).run()
        # Tower jitter and fading differ; logs should not be identical.
        assert [t.nr_serving_gci for t in a.ticks] != [t.nr_serving_gci for t in b.ticks] or len(
            a.handovers
        ) != len(b.handovers)
