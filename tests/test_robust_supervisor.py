"""supervised_map: equivalence, recovery ladder, and incremental publish."""

from __future__ import annotations

import time

import pytest

from repro.robust import faults, supervisor
from repro.robust.supervisor import (
    backoff_s,
    job_retries,
    job_timeout_s,
    last_run_stats,
    supervised_map,
)
from repro.simulate import fanout


@pytest.fixture(autouse=True)
def _isolated_faults(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_FORCE_SPAWN", raising=False)
    monkeypatch.delenv("REPRO_JOB_TIMEOUT_S", raising=False)
    monkeypatch.delenv("REPRO_JOB_RETRIES", raising=False)
    faults.reset()
    yield
    faults.reset()


def _square_indexed(job):
    token, i = job
    return fanout.payload(token)[i] ** 2


def _square(x):
    return x * x


def _raise_on_three_indexed(job):
    token, i = job
    if i == 3:
        raise ValueError("job 3 is genuinely broken")
    return fanout.payload(token)[i] ** 2


def _values(n=12):
    return [10 + i for i in range(n)]


def _map_squares(workers, n=12, **kwargs):
    values = _values(n)
    return fanout.fanout_map(
        _square_indexed,
        values,
        len(values),
        workers,
        fallback_fn=_square,
        fallback_jobs=values,
        **kwargs,
    )


class TestEquivalence:
    def test_matches_unsupervised_fork(self):
        if fanout.fork_context() is None:
            pytest.skip("fork start method unavailable")
        values = _values()
        expected = fanout.fanout_map_unsupervised(
            _square_indexed,
            values,
            len(values),
            3,
            fallback_fn=_square,
            fallback_jobs=values,
        )
        assert _map_squares(3) == expected == [v**2 for v in values]
        stats = last_run_stats()
        assert stats.start_method == "fork"
        assert stats.published == len(values)
        assert stats.pool_rebuilds == stats.timeouts == stats.serial_jobs == 0

    def test_force_spawn_matches_and_keeps_order(self, monkeypatch):
        monkeypatch.setenv("REPRO_FORCE_SPAWN", "1")
        values = _values()
        expected = fanout.fanout_map_unsupervised(
            _square_indexed,
            values,
            len(values),
            2,
            fallback_fn=_square,
            fallback_jobs=values,
        )
        assert _map_squares(2) == expected == [v**2 for v in values]
        assert last_run_stats().start_method == "spawn"

    def test_workers_one_runs_serial_in_process(self):
        assert _map_squares(1) == [v**2 for v in _values()]
        stats = last_run_stats()
        assert stats.serial_jobs == stats.jobs == 12
        assert stats.pool_rebuilds == 0

    def test_single_job_runs_serial(self):
        assert _map_squares(8, n=1) == [100]
        assert last_run_stats().serial_jobs == 1


class TestIncrementalPublish:
    def test_on_result_fires_per_job_in_parent(self):
        published = []
        out = _map_squares(2, on_result=lambda i, r: published.append((i, r)))
        assert sorted(published) == [(i, v**2) for i, v in enumerate(_values())]
        assert out == [v**2 for v in _values()]

    def test_completed_jobs_publish_before_a_bad_job_raises(self):
        if fanout.fork_context() is None:
            pytest.skip("fork start method unavailable")
        published = []
        values = _values(8)
        with pytest.raises(ValueError, match="genuinely broken"):
            supervised_map(
                _raise_on_three_indexed,
                values,
                len(values),
                2,
                fallback_fn=_square,
                fallback_jobs=values,
                on_result=lambda i, r: published.append(i),
                retries=0,
            )
        # Every healthy job finished its round and was published before
        # the serial rerun of the broken one surfaced the real error.
        assert sorted(published) == [i for i in range(8) if i != 3]


class TestRecovery:
    def test_crash_everywhere_degrades_to_serial(self, monkeypatch):
        if fanout.fork_context() is None:
            pytest.skip("fork start method unavailable")
        monkeypatch.setenv("REPRO_FAULTS", "worker_crash:p=1:seed=5")
        published = []
        out = _map_squares(2, n=8, on_result=lambda i, r: published.append(i))
        assert out == [v**2 for v in _values(8)]
        stats = last_run_stats()
        assert stats.pool_rebuilds == supervisor.MAX_POOL_REBUILDS
        assert stats.serial_jobs == 8
        assert sorted(published) == list(range(8))

    def test_targeted_crash_recovers_via_retry(self, monkeypatch):
        if fanout.fork_context() is None:
            pytest.skip("fork start method unavailable")
        # Fires only on job 3's first attempt: one pool death, then the
        # retry goes through a rebuilt pool.
        monkeypatch.setenv("REPRO_FAULTS", "worker_crash:key=3:attempts=1")
        out = _map_squares(2, n=8)
        assert out == [v**2 for v in _values(8)]
        stats = last_run_stats()
        assert stats.pool_rebuilds == 1
        assert stats.retried_jobs >= 1

    def test_hang_hits_timeout_and_is_retried(self, monkeypatch):
        if fanout.fork_context() is None:
            pytest.skip("fork start method unavailable")
        monkeypatch.setenv("REPRO_FAULTS", "worker_hang:key=2:attempts=1:hang_s=30")
        values = _values(6)
        start = time.monotonic()
        out = supervised_map(
            _square_indexed,
            values,
            len(values),
            2,
            fallback_fn=_square,
            fallback_jobs=values,
            timeout_s=1.0,
            retries=2,
        )
        elapsed = time.monotonic() - start
        assert out == [v**2 for v in values]
        stats = last_run_stats()
        assert stats.timeouts >= 1
        assert stats.pool_rebuilds >= 1
        # The 30 s hang must have been preempted, not waited out.
        assert elapsed < 20.0


class TestKnobs:
    def test_timeout_env(self, monkeypatch):
        assert job_timeout_s() is None
        monkeypatch.setenv("REPRO_JOB_TIMEOUT_S", "2.5")
        assert job_timeout_s() == 2.5
        monkeypatch.setenv("REPRO_JOB_TIMEOUT_S", "0")
        assert job_timeout_s() is None
        monkeypatch.setenv("REPRO_JOB_TIMEOUT_S", "soon")
        with pytest.warns(RuntimeWarning, match="REPRO_JOB_TIMEOUT_S"):
            assert job_timeout_s() is None

    def test_retries_env(self, monkeypatch):
        assert job_retries() == 2
        monkeypatch.setenv("REPRO_JOB_RETRIES", "5")
        assert job_retries() == 5
        monkeypatch.setenv("REPRO_JOB_RETRIES", "-3")
        assert job_retries() == 0
        monkeypatch.setenv("REPRO_JOB_RETRIES", "many")
        with pytest.warns(RuntimeWarning, match="REPRO_JOB_RETRIES"):
            assert job_retries() == 2

    def test_backoff_deterministic_and_bounded(self):
        assert backoff_s(1, salt=4) == backoff_s(1, salt=4)
        assert backoff_s(1, salt=4) != backoff_s(1, salt=5)
        for round_no in range(8):
            delay = backoff_s(round_no, salt=3)
            assert 0 < delay <= supervisor.BACKOFF_BASE_S * 8 * 1.5

    def test_default_workers_warns_on_bad_value(self, monkeypatch):
        from repro.simulate.runner import default_workers

        monkeypatch.setenv("REPRO_BENCH_WORKERS", "three")
        with pytest.warns(RuntimeWarning, match="REPRO_BENCH_WORKERS"):
            assert default_workers() == 1
