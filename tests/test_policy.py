"""Carrier handover decision logic (the rules Prognos must learn)."""

import numpy as np
import pytest

from repro.geo.point import Point
from repro.radio.bands import band_by_name
from repro.radio.rrs import RRSSample
from repro.ran.cells import Cell
from repro.rrc.events import EventConfig, EventType, MeasurementObject
from repro.rrc.measurement import MeasurementReport
from repro.rrc.policy import AttachmentState, HandoverPolicy
from repro.rrc.taxonomy import HandoverType


def make_cell(gci, band_name, node_id, tower_id=None, pci=None):
    band = band_by_name(band_name)
    return Cell(
        gci=gci,
        pci=pci if pci is not None else gci % 400,
        band=band,
        node_id=node_id,
        tower_id=tower_id if tower_id is not None else gci,
        position=Point(float(gci) * 100.0, 0.0),
        eirp_dbm=60.0,
        carrier="OpX",
    )


LTE_SERVING = make_cell(0, "B2", node_id=0)
LTE_NEIGHBOUR = make_cell(1, "B2", node_id=1)
LTE_OTHER_BAND = make_cell(2, "B66", node_id=2)
NR_SERVING = make_cell(10, "n5", node_id=10)
NR_SAME_GNB = make_cell(11, "n5", node_id=10)
NR_OTHER_GNB = make_cell(12, "n5", node_id=11)
NR_OTHER_GNB2 = make_cell(13, "n5", node_id=12)


def sample(rsrp=-100.0):
    return RRSSample(rsrp_dbm=rsrp, rsrq_db=-8.0, sinr_db=10.0)


def report(event, obj, serving, neighbour, **cfg):
    return MeasurementReport(
        time_s=0.0,
        config=EventConfig(event, obj, **cfg),
        serving_cell=serving,
        neighbour_cell=neighbour,
        serving_sample=sample(),
        neighbour_sample=sample(-95.0),
    )


def policy(keep_scg=0.0, seed=0):
    return HandoverPolicy(
        np.random.default_rng(seed), anchor_keeps_scg_probability=keep_scg
    )


def state(lte=LTE_SERVING, nr=None, standalone=False):
    return AttachmentState(lte_serving=lte, nr_serving=nr, standalone=standalone)


class TestLteRules:
    def test_a3_intra_freq_lteh_when_not_attached(self):
        decision = policy().decide(
            state(), [report(EventType.A3, MeasurementObject.LTE, LTE_SERVING, LTE_NEIGHBOUR)],
            {}, -118.0,
        )
        assert decision is not None
        assert decision.ho_type is HandoverType.LTEH
        assert decision.target is LTE_NEIGHBOUR
        assert not decision.releases_scg

    def test_a3_other_band_ignored(self):
        decision = policy().decide(
            state(), [report(EventType.A3, MeasurementObject.LTE, LTE_SERVING, LTE_OTHER_BAND)],
            {}, -118.0,
        )
        assert decision is None

    def test_a5_inter_freq_lteh(self):
        decision = policy().decide(
            state(), [report(EventType.A5, MeasurementObject.LTE, LTE_SERVING, LTE_OTHER_BAND)],
            {}, -118.0,
        )
        assert decision is not None
        assert decision.ho_type is HandoverType.LTEH

    def test_anchor_ho_releases_scg_when_unsupported(self):
        decision = policy(keep_scg=0.0).decide(
            state(nr=NR_SERVING),
            [report(EventType.A3, MeasurementObject.LTE, LTE_SERVING, LTE_NEIGHBOUR)],
            {}, -118.0,
        )
        assert decision.ho_type is HandoverType.LTEH
        assert decision.releases_scg

    def test_anchor_ho_keeps_scg_as_mnbh(self):
        decision = policy(keep_scg=1.0).decide(
            state(nr=NR_SERVING),
            [report(EventType.A3, MeasurementObject.LTE, LTE_SERVING, LTE_NEIGHBOUR)],
            {}, -118.0,
        )
        assert decision.ho_type is HandoverType.MNBH
        assert not decision.releases_scg

    def test_serving_as_neighbour_ignored(self):
        decision = policy().decide(
            state(), [report(EventType.A3, MeasurementObject.LTE, LTE_SERVING, LTE_SERVING)],
            {}, -118.0,
        )
        assert decision is None


class TestNrRules:
    def test_b1_without_scg_is_scga(self):
        decision = policy().decide(
            state(), [report(EventType.B1, MeasurementObject.NR, None, NR_SERVING)],
            {}, -118.0,
        )
        assert decision.ho_type is HandoverType.SCGA
        assert decision.target is NR_SERVING

    def test_b1_with_scg_is_ignored(self):
        decision = policy().decide(
            state(nr=NR_SERVING),
            [report(EventType.B1, MeasurementObject.NR, NR_SERVING, NR_OTHER_GNB)],
            {}, -118.0,
        )
        assert decision is None

    def test_nr_a2_without_candidate_is_scgr(self):
        decision = policy().decide(
            state(nr=NR_SERVING),
            [report(EventType.A2, MeasurementObject.NR, NR_SERVING, None)],
            {NR_OTHER_GNB: sample(-130.0)},  # below B1 threshold
            -118.0,
        )
        assert decision.ho_type is HandoverType.SCGR
        assert decision.releases_scg
        assert decision.target is None

    def test_nr_a2_with_candidate_is_scgc(self):
        decision = policy().decide(
            state(nr=NR_SERVING),
            [report(EventType.A2, MeasurementObject.NR, NR_SERVING, None)],
            {NR_OTHER_GNB: sample(-110.0)},
            -118.0,
        )
        assert decision.ho_type is HandoverType.SCGC
        assert decision.target is NR_OTHER_GNB

    def test_scgc_takes_first_candidate_not_best(self):
        # The §6.2 inefficiency: first qualifying in cell order, even if
        # a stronger candidate exists.
        decision = policy().decide(
            state(nr=NR_SERVING),
            [report(EventType.A2, MeasurementObject.NR, NR_SERVING, None)],
            {NR_OTHER_GNB2: sample(-90.0), NR_OTHER_GNB: sample(-110.0)},
            -118.0,
        )
        assert decision.target is NR_OTHER_GNB  # lower gci, not stronger

    def test_nr_a3_same_gnb_is_scgm(self):
        decision = policy().decide(
            state(nr=NR_SERVING),
            [report(EventType.A3, MeasurementObject.NR, NR_SERVING, NR_SAME_GNB)],
            {}, -118.0,
        )
        assert decision.ho_type is HandoverType.SCGM
        assert decision.target is NR_SAME_GNB

    def test_nr_a3_cross_gnb_no_action(self):
        decision = policy().decide(
            state(nr=NR_SERVING),
            [report(EventType.A3, MeasurementObject.NR, NR_SERVING, NR_OTHER_GNB)],
            {}, -118.0,
        )
        assert decision is None


class TestSaRules:
    def test_nr_a3_is_mcgh(self):
        decision = policy().decide(
            state(lte=None, nr=NR_SERVING, standalone=True),
            [report(EventType.A3, MeasurementObject.NR, NR_SERVING, NR_OTHER_GNB)],
            {}, -118.0,
        )
        assert decision.ho_type is HandoverType.MCGH

    def test_lte_reports_ignored_in_sa(self):
        decision = policy().decide(
            state(lte=None, nr=NR_SERVING, standalone=True),
            [report(EventType.A3, MeasurementObject.LTE, None, LTE_NEIGHBOUR)],
            {}, -118.0,
        )
        assert decision is None


class TestDecideAll:
    def test_master_and_scg_decisions_coexist(self):
        reports = [
            report(EventType.A3, MeasurementObject.LTE, LTE_SERVING, LTE_NEIGHBOUR),
            report(EventType.A3, MeasurementObject.NR, NR_SERVING, NR_SAME_GNB),
        ]
        decisions = policy(keep_scg=1.0).decide_all(
            state(nr=NR_SERVING), reports, {}, -118.0
        )
        types = [d.ho_type for d in decisions]
        assert HandoverType.MNBH in types
        assert HandoverType.SCGM in types

    def test_duplicate_types_deduplicated(self):
        reports = [
            report(EventType.A3, MeasurementObject.LTE, LTE_SERVING, LTE_NEIGHBOUR),
            report(EventType.A3, MeasurementObject.LTE, LTE_SERVING, LTE_NEIGHBOUR),
        ]
        decisions = policy().decide_all(state(), reports, {}, -118.0)
        assert len(decisions) == 1

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            HandoverPolicy(np.random.default_rng(0), anchor_keeps_scg_probability=2.0)
