#!/usr/bin/env python3
"""Mini §5/§6 characterization: frequency, duration, energy, coverage.

Drives the same carrier through four coverage types and reproduces the
paper's headline characterization per band — the kind of sweep behind
Table 1 and Figures 8-11.

Run:  python examples/characterize_handovers.py  (takes a minute or two)
"""

from repro.analysis import (
    coverage_summary,
    duration_breakdown,
    energy_breakdown,
    frequency_breakdown,
)
from repro.analysis.duration import NSA_5G_TYPES
from repro.analysis.frequency import FIVE_G_NSA_TYPES, SA_TYPES
from repro.radio.bands import BandClass
from repro.ran import OPX, OPY
from repro.simulate.scenarios import coverage_scenario, freeway_scenario


def main() -> None:
    drives = {
        "NSA low-band": freeway_scenario(OPX, BandClass.LOW, length_km=12, seed=1),
        "NSA mid-band": freeway_scenario(OPY, BandClass.MID, length_km=8, seed=2),
        "NSA mmWave": freeway_scenario(OPX, BandClass.MMWAVE, length_km=5, seed=3),
        "SA low-band": freeway_scenario(
            OPY, BandClass.LOW, standalone=True, length_km=12, seed=4
        ),
    }
    print(f"{'coverage':14s}{'HO/km':>8s}{'spacing':>9s}{'dur ms':>8s}{'uAh/HO':>8s}")
    for name, scenario in drives.items():
        log = scenario.run()
        standalone = name.startswith("SA")
        types = SA_TYPES if standalone else FIVE_G_NSA_TYPES
        freq = frequency_breakdown([log])
        spacing = freq.spacing_sa_km if standalone else freq.spacing_5g_nsa_km
        duration = duration_breakdown([log], types=types)
        energy = energy_breakdown([log], types)
        print(
            f"{name:14s}{1 / spacing:8.2f}{spacing:8.2f}km"
            f"{duration.total.mean:8.0f}{1000 * energy.mean_energy_per_ho_mah:8.1f}"
        )

    print("\nRural low-band coverage (Fig. 11a):")
    nsa_log = coverage_scenario(OPX, BandClass.LOW, length_km=25, seed=5).run()
    summary = coverage_summary([nsa_log])
    print(f"  effective footprint w/ NSA : {summary.actual.mean:6.0f} m")
    print(f"  hypothetical w/o NSA       : {summary.merged.mean:6.0f} m")
    print(f"  NSA coverage reduction     : {summary.nsa_reduction_factor:.2f}x")


if __name__ == "__main__":
    main()
