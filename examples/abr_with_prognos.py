#!/usr/bin/env python3
"""Handover-aware adaptive streaming — the paper's §7.4 integration.

Simulates an mmWave walk, runs Prognos over it, then plays a 16K
panoramic video over the recorded bandwidth trace three ways: the
unmodified fastMPC, fastMPC with Prognos's ho_score correction (-PR),
and fastMPC with the ground-truth handover schedule (-GT).

Run:  python examples/abr_with_prognos.py  (takes a minute or two)
"""

from repro.apps import FastMpc, VodPlayer
from repro.apps.abr.prediction import PredictionFeed
from repro.core.evaluation import configs_for_log, run_prognos_over_logs
from repro.net.emulation import BandwidthTrace
from repro.radio.bands import BandClass
from repro.ran import OPX
from repro.simulate.scenarios import city_walk_scenario


def main() -> None:
    print("Simulating a 15-minute mmWave walk and running Prognos ...")
    log = city_walk_scenario(OPX, (BandClass.MMWAVE,), duration_min=15, seed=99).run()
    events = [(h.decision_time_s, h.ho_type) for h in log.handovers]

    configs = configs_for_log(OPX, (BandClass.MMWAVE,))
    run = run_prognos_over_logs([log], configs, stride=2)

    times, caps = log.capacity_series()
    trace = BandwidthTrace(times, caps)
    feeds = {
        "fastMPC": None,
        "fastMPC-PR": PredictionFeed.from_prognos(run.times_s, run.predictions),
        "fastMPC-GT": PredictionFeed.from_ground_truth(events),
    }

    print(f"\n{'variant':12s}{'stall %':>9s}{'bitrate':>9s}{'MAE@HO Mbps':>13s}")
    for name, feed in feeds.items():
        result = VodPlayer(FastMpc(), feed=feed).play(trace, events)
        print(
            f"{name:12s}{result.stall_pct:9.2f}{result.normalized_bitrate:9.3f}"
            f"{result.prediction_mae(near_ho=True):13.1f}"
        )
    print(
        "\nThe -PR row shows the paper's result: correcting the throughput\n"
        "prediction with Prognos's ho_score reduces stalls around handovers\n"
        "without giving up video quality; -GT is the oracle upper bound."
    )


if __name__ == "__main__":
    main()
