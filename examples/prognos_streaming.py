#!/usr/bin/env python3
"""Run Prognos online over a city walk and inspect its predictions.

Replays a D1-style mmWave walk through the streaming Prognos facade —
learning carrier handover patterns as they happen — then reports the
event-level prediction metrics, the learned pattern table, and the
prediction lead-time distribution (the paper's Table 3 / Fig. 18 view).

Run:  python examples/prognos_streaming.py  (takes a minute or two)
"""

import numpy as np

from repro.core.evaluation import configs_for_log, run_prognos_over_logs
from repro.radio.bands import BandClass
from repro.ran import OPX
from repro.simulate.scenarios import city_walk_scenario


def main() -> None:
    print("Simulating a 15-minute mmWave downtown walk on OpX ...")
    log = city_walk_scenario(OPX, (BandClass.MMWAVE,), duration_min=15, seed=42).run()
    print(f"  {len(log.handovers)} handovers, {len(log.reports)} measurement reports")

    print("Streaming the log through Prognos (online learning) ...")
    configs = configs_for_log(OPX, (BandClass.MMWAVE,))
    result = run_prognos_over_logs([log], configs, stride=2)

    report = result.report()
    print(f"\nEvent-level prediction quality:")
    print(f"  F1 {report.f1:.3f}  precision {report.precision:.3f}  "
          f"recall {report.recall:.3f}  tick accuracy {report.accuracy:.3f}")
    for ho_type, (precision, recall, f1) in report.per_class.items():
        print(f"    {ho_type.acronym:5s} P {precision:.2f} R {recall:.2f} F1 {f1:.2f}")

    stats = result.learner_stats
    print(f"\nLearner: {stats.phases_processed} phases, "
          f"{stats.live_patterns} live patterns "
          f"({stats.patterns_learned} learned, {stats.patterns_evicted} evicted)")

    if result.lead_times_s:
        leads = 1000 * np.array(result.lead_times_s)
        print(f"\nLead time before the handover command (Fig. 18):")
        print(f"  median {np.median(leads):.0f} ms, p90 {np.percentile(leads, 90):.0f} ms")


if __name__ == "__main__":
    main()
