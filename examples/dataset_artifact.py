#!/usr/bin/env python3
"""Generate, save, reload, and re-analyse a drive-test dataset.

Mirrors the paper's released-artifact workflow: simulate a drive, write
it to the repository's gzipped-JSON artifact format, load it back, and
confirm the analyses are identical — so expensive simulations can be
cached or shared.

Run:  python examples/dataset_artifact.py
"""

import tempfile
from pathlib import Path

from repro.analysis import frequency_breakdown
from repro.radio.bands import BandClass
from repro.ran import OPX
from repro.simulate.scenarios import freeway_scenario
from repro.simulate.serialization import load_log, save_log


def main() -> None:
    print("Simulating a 6 km NSA low-band drive ...")
    log = freeway_scenario(OPX, BandClass.LOW, length_km=6.0, seed=23).run()

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "drive.json.gz"
        save_log(log, path)
        size_kb = path.stat().st_size / 1024
        print(f"Saved {len(log.ticks)} ticks / {len(log.handovers)} handovers "
              f"to {path.name} ({size_kb:.0f} KiB)")

        reloaded = load_log(path)
        original = frequency_breakdown([log])
        roundtrip = frequency_breakdown([reloaded])
        print(f"4G spacing original {original.spacing_4g_km:.3f} km, "
              f"reloaded {roundtrip.spacing_4g_km:.3f} km")
        assert original.count_by_type == roundtrip.count_by_type
        print("Round-trip analysis identical — artifact format is lossless.")


if __name__ == "__main__":
    main()
