#!/usr/bin/env python3
"""Quickstart: simulate a 5G drive test and look at its handovers.

Builds a 10 km NSA low-band freeway deployment for carrier OpX, drives
it once, and prints the cross-layer log summary the paper's measurement
platform would have produced — handover counts by type, T1/T2 timings,
signaling, and energy.

Run:  python examples/quickstart.py
"""

from repro.analysis import duration_breakdown, frequency_breakdown
from repro.analysis.duration import NSA_5G_TYPES
from repro.radio.bands import BandClass
from repro.ran import OPX
from repro.simulate.scenarios import freeway_scenario


def main() -> None:
    print("Simulating a 10 km NSA low-band freeway drive on OpX ...")
    scenario = freeway_scenario(OPX, BandClass.LOW, length_km=10.0, seed=7)
    log = scenario.run()

    print(f"\nDrive: {log.distance_km:.1f} km in {log.duration_s / 60:.1f} minutes")
    print(f"Ticks logged: {len(log.ticks)} @ {1 / log.tick_interval_s:.0f} Hz")
    print(f"Measurement reports: {len(log.reports)}")

    print("\nHandovers by type (Table 2 taxonomy):")
    for ho_type, count in sorted(log.count_by_type().items(), key=lambda kv: -kv[1]):
        print(f"  {ho_type.acronym:5s} ({ho_type.value:16s}): {count}")

    breakdown = frequency_breakdown([log])
    print(f"\n4G handover spacing : {breakdown.spacing_4g_km:.2f} km")
    print(f"5G procedure spacing: {breakdown.spacing_5g_nsa_km:.2f} km")

    durations = duration_breakdown([log], types=NSA_5G_TYPES)
    print(
        f"\nNSA handover duration: mean {durations.total.mean:.0f} ms "
        f"(T1 {durations.t1.mean:.0f} ms + T2 {durations.t2.mean:.0f} ms; "
        f"T1 share {100 * durations.t1_share:.0f}%)"
    )

    total_signaling = log.total_signaling()
    print(
        f"\nHO signaling: {total_signaling.rrc_total} RRC msgs, "
        f"{total_signaling.rach_procedures} RACH, "
        f"{total_signaling.phy_ssb_measurements} PHY measurements"
    )
    print(f"HO energy: {log.total_energy_j():.1f} J "
          f"({log.total_energy_j() / 13.86:.2f} mAh)")

    print("\nFirst three handovers in detail:")
    for record in log.handovers[:3]:
        print(
            f"  t={record.decision_time_s:7.2f}s {record.ho_type.acronym:5s} "
            f"triggered by {list(record.trigger_labels)} "
            f"T1={record.t1_ms:.0f}ms T2={record.t2_ms:.0f}ms "
            f"{record.source_pci}->{record.target_pci}"
        )


if __name__ == "__main__":
    main()
