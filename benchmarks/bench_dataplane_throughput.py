"""Data-plane throughput: event-segmented engines vs scalar references.

Measures the three hot loops the event-segmented data plane batched —
fluid TCP over capacity traces (segment-batched CUBIC/BBR vs the
tick-at-a-time reference), chunked VoD playback (vectorized downloads
plus the ``play_many`` process fan-out vs the per-tick link loop), and
the Prognos streaming replay (staged per-log forecasts vs the
tick-by-tick reference) — plus the derived-dataset cache's warm-pass
win. The combined speedup is total reference seconds over total fast
seconds across the three loops. Results land in ``BENCH_dataplane.json``
at the repo root.

``REPRO_BENCH_SMOKE=1`` shrinks the corpus so the whole bench fits in a
CI smoke budget.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from repro.apps.abr.algorithms import FastMpc, Festive, RateBased, RobustMpc
from repro.apps.abr.player import play_many
from repro.core.evaluation import (
    configs_for_log,
    run_prognos_over_logs,
    run_prognos_over_logs_reference,
)
from repro.ml.dataset_cache import DatasetCache, build_cached
from repro.ml.features import build_radio_feature_dataset
from repro.net.emulation import BandwidthTrace, TraceDrivenLink
from repro.net.tcp import TcpBbr, TcpCubic, simulate_tcp, simulate_tcp_reference
from repro.perf import Timer
from repro.radio.bands import BandClass
from repro.ran import OPX
from repro.simulate.runner import default_workers, run_drives
from repro.simulate.scenarios import city_walk_scenario

from conftest import print_header

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"
WALKS = 1 if SMOKE else 2
WALK_MIN = 4 if SMOKE else 12
PROGNOS_STRIDE = 8
BASE_RTT_S = 0.04
OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_dataplane.json"


def test_dataplane_throughput(corpus):
    # Same walk scenarios as the prediction bench, so the on-disk drive
    # cache shares the entries between the two suites.
    logs = run_drives(
        [
            city_walk_scenario(OPX, (BandClass.MMWAVE,), duration_min=WALK_MIN, seed=261 + i)
            for i in range(WALKS)
        ],
        cache=corpus.drive_cache,
    )
    ticks = sum(len(log.ticks) for log in logs)
    timer = Timer()

    # --- fluid TCP: segment-batched engines vs the tick loop ---
    tcp_ticks = 0
    for log in logs:
        _, caps = log.capacity_series()
        for make_cc in (TcpCubic, TcpBbr):
            ref_s, ref = timer.timed(
                "tcp_reference", lambda: simulate_tcp_reference(make_cc(), caps, BASE_RTT_S)
            )
            fast_s, fast = timer.timed(
                "tcp_fast", lambda: simulate_tcp(make_cc(), caps, BASE_RTT_S)
            )
            tcp_ticks += len(ref.times_s)
            np.testing.assert_allclose(
                fast.goodput_mbps, ref.goodput_mbps, rtol=1e-8, atol=1e-6
            )

    # --- VoD playback: vectorized downloads vs the per-tick link loop ---
    # Each walk contributes several trace windows, as the Fig. 14 bench
    # replays sessions over many window starts.
    traces = []
    for log in logs:
        times, caps = log.capacity_series()
        full = BandwidthTrace(times_s=times - times[0], capacity_mbps=caps)
        window_s = full.duration_s / 3.0
        traces.extend(
            full.window(i * window_s, window_s) for i in range(3)
        )
    jobs = [
        (algo, trace, None, None)
        for algo in (RateBased, FastMpc, RobustMpc, Festive)
        for trace in traces
    ]
    fast_download = TraceDrivenLink.download_time_s
    TraceDrivenLink.download_time_s = TraceDrivenLink.download_time_reference_s
    try:
        timer.timed("player_reference", lambda: play_many(jobs, workers=1))
    finally:
        TraceDrivenLink.download_time_s = fast_download
    _, serial_results = timer.timed("player_fast", lambda: play_many(jobs, workers=1))
    workers = max(default_workers(), 2)
    _, fanned_results = timer.timed(
        "player_fanout", lambda: play_many(jobs, workers=workers)
    )
    assert [r.levels for r in serial_results] == [r.levels for r in fanned_results]

    # --- Prognos streaming replay: staged forecasts vs tick-by-tick ---
    # Serial on both sides so the comparison isolates the batched math;
    # the fork-inherited fan-out path (workers ship only an index, never
    # the 20 Hz logs) is measured in bench_corpus_fanout.py.
    configs = configs_for_log(OPX, (BandClass.MMWAVE,))
    timer.timed(
        "prognos_reference",
        lambda: run_prognos_over_logs_reference(logs, configs, stride=PROGNOS_STRIDE),
    )
    _, run = timer.timed(
        "prognos_fast",
        lambda: run_prognos_over_logs(logs, configs, stride=PROGNOS_STRIDE),
    )
    prognos_steps = len(run.predictions)

    # --- derived-dataset cache: cold build vs warm load ---
    cache = DatasetCache(corpus.drive_cache.root)
    params = {"stride": 5}
    builder = lambda: build_radio_feature_dataset(logs, stride=5)
    cold_s, dataset = timer.timed(
        "dataset_cold", lambda: build_cached("radio", builder, logs, params, cache=cache)
    )
    warm_s, warm_dataset = timer.timed(
        "dataset_warm", lambda: build_cached("radio", builder, logs, params, cache=cache)
    )
    assert np.array_equal(dataset.x, warm_dataset.x)
    assert cache.enabled is False or cache.stats["hits"] >= 1

    fast_total = timer["tcp_fast"] + timer["player_fast"] + timer["prognos_fast"]
    reference_total = (
        timer["tcp_reference"] + timer["player_reference"] + timer["prognos_reference"]
    )
    speedup = reference_total / fast_total

    result = {
        "walks": WALKS,
        "walk_minutes": WALK_MIN,
        "ticks": ticks,
        "tcp_ticks": tcp_ticks,
        "tcp_fast_s": round(timer["tcp_fast"], 3),
        "tcp_reference_s": round(timer["tcp_reference"], 3),
        "tcp_speedup": round(timer["tcp_reference"] / timer["tcp_fast"], 2),
        "player_sessions": len(jobs),
        "player_fast_s": round(timer["player_fast"], 3),
        "player_reference_s": round(timer["player_reference"], 3),
        "player_speedup": round(timer["player_reference"] / timer["player_fast"], 2),
        "player_fanout_s": round(timer["player_fanout"], 3),
        "player_fanout_workers": workers,
        "prognos_steps": prognos_steps,
        "prognos_stride": PROGNOS_STRIDE,
        "prognos_fast_s": round(timer["prognos_fast"], 3),
        "prognos_reference_s": round(timer["prognos_reference"], 3),
        "prognos_speedup": round(
            timer["prognos_reference"] / timer["prognos_fast"], 2
        ),
        "dataset_cold_s": round(cold_s, 3),
        "dataset_warm_s": round(warm_s, 4),
        "dataset_cache_stats": cache.stats,
        "fast_total_s": round(fast_total, 3),
        "reference_total_s": round(reference_total, 3),
        "speedup": round(speedup, 2),
        "smoke": SMOKE,
    }
    OUT_PATH.write_text(json.dumps(result, indent=2) + "\n")

    print_header("Data-plane throughput (event-segmented engines)")
    print(f"  corpus: {WALKS} walk(s) x {WALK_MIN} min, {ticks} ticks")
    print(
        f"  TCP     {timer['tcp_fast']:6.2f}s  (tick loop {timer['tcp_reference']:6.2f}s, "
        f"{timer['tcp_reference'] / timer['tcp_fast']:.1f}x, {tcp_ticks} ticks)"
    )
    print(
        f"  player  {timer['player_fast']:6.2f}s  (tick loop {timer['player_reference']:6.2f}s, "
        f"{timer['player_reference'] / timer['player_fast']:.1f}x; "
        f"{workers} workers {timer['player_fanout']:.2f}s)"
    )
    print(
        f"  Prognos {timer['prognos_fast']:6.2f}s  (tick loop {timer['prognos_reference']:6.2f}s, "
        f"{timer['prognos_reference'] / timer['prognos_fast']:.1f}x, "
        f"{prognos_steps} steps)"
    )
    print(f"  dataset cache: cold {cold_s:.2f}s, warm {warm_s * 1000:.0f} ms ({cache.stats})")
    print(
        f"  combined {fast_total:.2f}s vs reference {reference_total:.2f}s "
        f"-> {speedup:.2f}x"
    )
    print(f"  -> {OUT_PATH.name}")

    if not SMOKE:
        # Acceptance: the event-segmented data plane is >= 3x the
        # retained scalar references, cold cache, combined.
        assert speedup >= 3.0, f"data-plane speedup {speedup:.2f}x below 3x"
        # Warm dataset loads must skip feature extraction entirely.
        if cache.enabled:
            assert warm_s < cold_s / 5
