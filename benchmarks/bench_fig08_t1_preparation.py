"""Fig. 8 — HO preparation stage (T1) for OpY: LTE vs NSA vs SA.

Paper targets: T1 accounts for ~41% of an NSA handover; NSA T1 runs
~48% above LTE's; SA's median T1 is LTE-comparable but high-variance.
"""

from repro.analysis import duration_breakdown
from repro.analysis.duration import NSA_5G_TYPES
from repro.rrc.taxonomy import HandoverType

from conftest import print_header


def test_fig08_t1_preparation_stage(benchmark, corpus):
    opy_nsa = [corpus.freeway_mid(), corpus.freeway_opy_low()]
    opy_sa = [corpus.freeway_sa()]
    lte = [corpus.freeway_lte_only()]

    def analyse():
        rows = {}
        rows["LTEH (LTE)"] = duration_breakdown(
            lte, types=(HandoverType.LTEH,), nsa_context=False
        )
        rows["LTEH (NSA)"] = duration_breakdown(
            opy_nsa, types=(HandoverType.LTEH,), nsa_context=True
        )
        rows["SCGA (NSA)"] = duration_breakdown(opy_nsa, types=(HandoverType.SCGA,))
        rows["SCGM (NSA)"] = duration_breakdown(opy_nsa, types=(HandoverType.SCGM,))
        rows["MCGH (SA)"] = duration_breakdown(opy_sa, types=(HandoverType.MCGH,))
        rows["NSA overall"] = duration_breakdown(opy_nsa, types=NSA_5G_TYPES)
        return rows

    rows = benchmark.pedantic(analyse, rounds=1, iterations=1)
    print_header("Fig. 8: T1 preparation stage (ms), OpY-style comparison")
    for name, b in rows.items():
        print(
            f"  {name:12s} T1 mean {b.t1.mean:6.1f}  median {b.t1.median:6.1f}  "
            f"std {b.t1.std:5.1f}"
        )
    nsa, lte_row, sa = rows["NSA overall"], rows["LTEH (LTE)"], rows["MCGH (SA)"]
    increase = (nsa.t1.mean - lte_row.t1.mean) / lte_row.t1.mean
    print(f"  NSA T1 vs LTE T1: +{100 * increase:.0f}% (paper ~ +48%)")
    print(f"  T1 share of NSA handover: {100 * nsa.t1_share:.0f}% (paper ~41%)")

    # Shape: NSA preparation well above LTE's.
    assert nsa.t1.mean > lte_row.t1.mean * 1.25
    # T1 share of the NSA handover in the paper's region.
    assert 0.30 <= nsa.t1_share <= 0.55
    # SA: LTE-comparable median, far larger variance (§5.2).
    assert abs(sa.t1.median - lte_row.t1.median) < 30.0
    assert sa.t1.std > 1.5 * lte_row.t1.std
