"""Prediction-pipeline throughput: batched/vectorized vs scalar, cache.

Measures the §7.3 Table 3 / Fig. 18 prediction path on a fixed walk
corpus: dataset build (array-at-once features + searchsorted labels vs
the retained per-tick scalar extraction), GBC and stacked-LSTM training
(mini-batch BPTT vs the per-sample reference), model evaluation
(batched vs per-sample inference), Prognos streaming throughput, and
the trained-model cache's ability to skip retraining on a warm second
pass. Results land in ``BENCH_prediction.json`` at the repo root.

``REPRO_BENCH_SMOKE=1`` shrinks the corpus so the whole bench fits in a
CI smoke budget.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from repro.core.evaluation import configs_for_log, run_prognos_over_logs
from repro.ml.features import (
    LabeledDataset,
    _tick_radio_features,
    build_location_sequence_dataset,
    build_radio_feature_dataset,
    label_for_tick,
    train_test_split_by_time,
    upsample_positives,
)
from repro.ml.gbc import GradientBoostingClassifier
from repro.ml.lstm import StackedLstmClassifier
from repro.ml.model_cache import ModelCache, fit_cached
from repro.perf import Timer
from repro.radio.bands import BandClass
from repro.ran import OPX
from repro.simulate.runner import run_drives
from repro.simulate.scenarios import city_walk_scenario

from conftest import print_header

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"
WALKS = 1 if SMOKE else 2
WALK_MIN = 4 if SMOKE else 12
OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_prediction.json"


def _build_radio_dataset_reference(logs) -> LabeledDataset:
    """The seed's per-tick scalar dataset build (scan labelling)."""
    from repro.ml.features import log_time_offsets

    rows, labels, times = [], [], []
    for log, offset in zip(logs, log_time_offsets(logs)):
        slope_ticks = max(int(1.0 / max(log.tick_interval_s, 1e-3)), 1)
        for index in range(0, len(log.ticks), 5):
            tick = log.ticks[index]
            rows.append(_tick_radio_features(log.ticks, index, slope_ticks))
            labels.append(label_for_tick(log, tick.time_s, 1.0))
            times.append(tick.time_s + offset)
    return LabeledDataset(np.array(rows), labels, np.array(times))


def test_prediction_throughput(corpus):
    logs = run_drives(
        [
            city_walk_scenario(OPX, (BandClass.MMWAVE,), duration_min=WALK_MIN, seed=261 + i)
            for i in range(WALKS)
        ],
        cache=corpus.drive_cache,
    )
    ticks = sum(len(log.ticks) for log in logs)
    timer = Timer()

    # --- dataset build: array-at-once vs retained scalar extraction ---
    build_fast_s, dataset = timer.timed(
        "dataset_build", lambda: build_radio_feature_dataset(logs, stride=5)
    )
    build_ref_s, dataset_ref = timer.timed(
        "dataset_build_reference", lambda: _build_radio_dataset_reference(logs)
    )
    assert np.allclose(dataset.x, dataset_ref.x)
    assert dataset.labels == dataset_ref.labels

    seq_build_s, seq_dataset = timer.timed(
        "sequence_build",
        lambda: build_location_sequence_dataset(logs, stride=10)
    )

    # --- GBC training (shared column presort) + batched evaluation ---
    train, test = train_test_split_by_time(dataset, 0.6)
    x_train, y_train = upsample_positives(train.x, train.labels)
    gbc_train_s, gbc = timer.timed(
        "gbc_train",
        lambda: GradientBoostingClassifier(n_estimators=30, max_depth=3).fit(
            x_train, y_train
        )
    )
    gbc_eval_s, _ = timer.timed("gbc_eval", lambda: gbc.predict(test.x))

    # --- LSTM training: mini-batch BPTT vs per-sample reference ---
    seq_train, seq_test = train_test_split_by_time(seq_dataset, 0.6)
    x_seq, y_seq = seq_train.x, seq_train.labels
    cap = 400 if SMOKE else 2000
    if x_seq.shape[0] > cap:
        keep = np.linspace(0, x_seq.shape[0] - 1, cap).astype(int)
        x_seq = x_seq[keep]
        y_seq = [y_seq[i] for i in keep]
    epochs = 1 if SMOKE else 2
    lstm_train_s, lstm = timer.timed(
        "lstm_train",
        lambda: StackedLstmClassifier(hidden_dim=24, epochs=epochs).fit(x_seq, y_seq)
    )
    lstm_ref_s, _ = timer.timed(
        "lstm_train_reference",
        lambda: StackedLstmClassifier(hidden_dim=24, epochs=epochs, batch_size=1).fit(
            x_seq, y_seq
        )
    )
    lstm_eval_s, probs = timer.timed(
        "lstm_eval", lambda: lstm.predict_proba(seq_test.x)
    )
    lstm_eval_ref_s, probs_ref = timer.timed(
        "lstm_eval_reference",
        lambda: lstm.predict_proba_reference(seq_test.x)
    )
    assert np.allclose(probs, probs_ref, atol=1e-9)

    # --- Prognos streaming replay (Fig. 18 path) ---
    configs = configs_for_log(OPX, (BandClass.MMWAVE,))
    prognos_s, run = timer.timed(
        "prognos", lambda: run_prognos_over_logs(logs, configs, stride=2)
    )
    prognos_steps = len(run.predictions)

    # --- cold vs reference totals over the Table 3 offline path ---
    cold_total = build_fast_s + seq_build_s + gbc_train_s + gbc_eval_s + lstm_train_s + lstm_eval_s
    reference_total = (
        build_ref_s + seq_build_s + gbc_train_s + gbc_eval_s + lstm_ref_s + lstm_eval_ref_s
    )
    speedup = reference_total / cold_total

    # --- warm pass: the trained-model cache skips retraining ---
    cache = ModelCache(corpus.drive_cache.root)
    params = {"hidden_dim": 24, "epochs": epochs}
    fit_cached(
        "lstm",
        lambda: StackedLstmClassifier(hidden_dim=24, epochs=epochs),
        x_seq,
        y_seq,
        params,
        cache=cache,
    )
    warm_s, _ = timer.timed(
        "warm_model_cache",
        lambda: fit_cached(
            "lstm",
            lambda: StackedLstmClassifier(hidden_dim=24, epochs=epochs),
            x_seq,
            y_seq,
            params,
            cache=cache,
        )
    )
    assert cache.enabled is False or cache.stats["hits"] >= 1

    result = {
        "walks": WALKS,
        "walk_minutes": WALK_MIN,
        "ticks": ticks,
        "train_sequences": int(len(y_seq)),
        "dataset_rows": int(dataset.x.shape[0]),
        "build_s": round(build_fast_s, 3),
        "build_reference_s": round(build_ref_s, 3),
        "gbc_train_s": round(gbc_train_s, 3),
        "gbc_eval_s": round(gbc_eval_s, 3),
        "gbc_rows_per_s_train": round(x_train.shape[0] / gbc_train_s, 1),
        "lstm_train_s": round(lstm_train_s, 3),
        "lstm_train_reference_s": round(lstm_ref_s, 3),
        "lstm_train_speedup": round(lstm_ref_s / lstm_train_s, 2),
        "lstm_seqs_per_s_train": round(len(y_seq) * epochs / lstm_train_s, 1),
        "lstm_eval_s": round(lstm_eval_s, 3),
        "lstm_eval_reference_s": round(lstm_eval_ref_s, 3),
        "prognos_s": round(prognos_s, 3),
        "prognos_steps": prognos_steps,
        "prognos_steps_per_s": round(prognos_steps / prognos_s, 1),
        "cold_total_s": round(cold_total, 3),
        "reference_total_s": round(reference_total, 3),
        "speedup": round(speedup, 2),
        "warm_model_cache_s": round(warm_s, 4),
        "model_cache_stats": cache.stats,
        "smoke": SMOKE,
    }
    OUT_PATH.write_text(json.dumps(result, indent=2) + "\n")

    print_header("Prediction pipeline throughput (§7.3 path)")
    print(f"  corpus: {WALKS} walk(s) x {WALK_MIN} min, {ticks} ticks")
    print(
        f"  dataset build   {build_fast_s:6.2f}s  (scalar reference {build_ref_s:6.2f}s)"
    )
    print(f"  GBC train/eval  {gbc_train_s:6.2f}s / {gbc_eval_s:5.2f}s")
    print(
        f"  LSTM train      {lstm_train_s:6.2f}s  (per-sample {lstm_ref_s:6.2f}s, "
        f"{lstm_ref_s / lstm_train_s:.1f}x)"
    )
    print(
        f"  LSTM eval       {lstm_eval_s:6.2f}s  (per-sample {lstm_eval_ref_s:6.2f}s)"
    )
    print(
        f"  Prognos stream  {prognos_s:6.2f}s  ({prognos_steps / prognos_s:,.0f} steps/s)"
    )
    print(
        f"  cold path {cold_total:.2f}s vs reference {reference_total:.2f}s "
        f"-> {speedup:.2f}x"
    )
    print(f"  warm model cache: {warm_s * 1000:.0f} ms ({cache.stats})")
    print(f"  -> {OUT_PATH.name}")

    if not SMOKE:
        # Acceptance: the batched/vectorized prediction path is >= 3x
        # the retained scalar reference, cold cache.
        assert speedup >= 3.0, f"prediction speedup {speedup:.2f}x below 3x"
        # Warm runs must skip retraining entirely.
        if cache.enabled:
            assert warm_s < lstm_train_s / 10
