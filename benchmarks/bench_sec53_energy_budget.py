"""§5.3 — hourly energy budgets at 130 km/h.

Paper targets: ~553 NSA low-band HOs per hour costing ~34.7 mAh;
~998 mmWave HOs costing ~81.7 mAh; 4G HOs ~3.4 mAh.
"""

from repro.analysis import hourly_energy_budget
from repro.analysis.frequency import FIVE_G_NSA_TYPES, FOUR_G_TYPES

from conftest import print_header


def test_sec53_hourly_energy_budget(benchmark, corpus):
    lte_log = corpus.energy_lte()
    low_log = corpus.energy_low()
    mmwave_log = corpus.energy_mmwave()

    def analyse():
        return {
            "4G": hourly_energy_budget([lte_log], FOUR_G_TYPES),
            "NSA low": hourly_energy_budget([low_log], FIVE_G_NSA_TYPES),
            "NSA mmWave": hourly_energy_budget([mmwave_log], FIVE_G_NSA_TYPES),
        }

    budgets = benchmark.pedantic(analyse, rounds=1, iterations=1)
    paper = {"4G": (217, 3.4), "NSA low": (553, 34.7), "NSA mmWave": (998, 81.7)}
    print_header("§5.3: one hour at 130 km/h")
    for name, budget in budgets.items():
        hos, mah = paper[name]
        print(
            f"  {name:11s} {budget.handovers_per_hour:6.0f} HOs/h "
            f"(paper ~{hos}) | {budget.energy_mah_per_hour:6.1f} mAh/h (paper ~{mah})"
        )

    low, mmwave, lte = budgets["NSA low"], budgets["NSA mmWave"], budgets["4G"]
    # Frequency ordering and rough magnitudes.
    assert mmwave.handovers_per_hour > low.handovers_per_hour > lte.handovers_per_hour
    assert 300 <= low.handovers_per_hour <= 800
    assert 600 <= mmwave.handovers_per_hour <= 1400
    # Energy: NSA low an order of magnitude above 4G; mmWave the worst.
    assert low.energy_mah_per_hour > 5 * lte.energy_mah_per_hour
    assert mmwave.energy_mah_per_hour > low.energy_mah_per_hour
    assert 15 <= low.energy_mah_per_hour <= 60
    assert 40 <= mmwave.energy_mah_per_hour <= 130
