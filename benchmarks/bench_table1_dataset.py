"""Table 1 — driving dataset statistics per carrier.

Simulates the cross-country trip at reduced mileage and extrapolates
linearly, printing the same rows Table 1 reports. The shape checks:
OpY logs the most NSA procedures (densest deployment mix plus fastest
triggers), every carrier logs thousands of 4G handovers, and only OpY
has SA rows.
"""

import os

from repro.simulate.dataset import build_table1_dataset

from conftest import print_header

SCALE = 0.004 if os.environ.get("REPRO_BENCH_SCALE", "") != "full" else 0.02


def test_table1_dataset_statistics(benchmark):
    summaries = benchmark.pedantic(
        lambda: build_table1_dataset(scale=SCALE, seed=2022), rounds=1, iterations=1
    )
    print_header(f"Table 1 (simulated at scale={SCALE}, extrapolated)")
    rows = [
        ("# unique cells", lambda s: s.unique_cells),
        ("# 5G-NR bands", lambda s: s.nr_band_count),
        ("# 4G/LTE bands", lambda s: s.lte_band_count),
        ("City km", lambda s: round(s.city_km)),
        ("Freeway km", lambda s: round(s.freeway_km)),
        ("# 4G/LTE handovers", lambda s: s.lte_handovers),
        ("# 5G-NSA procedures", lambda s: s.nsa_procedures),
        ("# 5G-SA handovers", lambda s: s.sa_handovers if s.sa_handovers is not None else "N/A"),
        ("5G low-band minutes", lambda s: round(s.minutes_low)),
        ("5G mid-band minutes", lambda s: round(s.minutes_mid)),
        ("5G mmWave minutes", lambda s: round(s.minutes_mmwave)),
        ("NSA minutes", lambda s: round(s.minutes_nsa)),
        ("SA minutes", lambda s: round(s.minutes_sa) if s.minutes_sa is not None else "N/A"),
        ("LTE minutes", lambda s: round(s.minutes_lte)),
    ]
    names = list(summaries)
    print(f"{'':28s}" + "".join(f"{n:>12s}" for n in names))
    for label, getter in rows:
        print(f"{label:28s}" + "".join(f"{getter(summaries[n])!s:>12s}" for n in names))

    # Shape assertions (Table 1's qualitative structure).
    for summary in summaries.values():
        assert summary.lte_handovers > 1000
        assert summary.nsa_procedures > 1000
        assert summary.unique_cells > 500
    assert summaries["OpY"].sa_handovers is not None
    assert summaries["OpX"].sa_handovers is None
    assert summaries["OpZ"].sa_handovers is None
    # OpY deploys 9 LTE bands vs 5/6 for the others.
    assert summaries["OpY"].lte_band_count == 9
