"""Zero-copy corpus fan-out: per-job shipped bytes and wall-clock.

The worker pools in :func:`repro.simulate.runner.run_drives`,
:func:`repro.core.evaluation.run_prognos_over_logs`, and
:func:`repro.apps.abr.player.play_many` no longer pickle their payloads
per job: the corpus (scenarios / drive logs / play jobs) is parked in
:mod:`repro.simulate.fanout` before the pool forks, each worker job is
just a ``(token, index)`` pair, and results come back in job order.

This bench quantifies both halves of that change: the bytes a job would
have shipped under pickle-per-job vs. what the indexed jobs ship now
(deterministic — asserted >= 10x smaller), and the wall-clock of the
fanned stages at 1 vs. 4 workers (asserted only on multi-core hosts,
since a single-CPU container cannot win from parallelism). It also
prices the supervision layer (:mod:`repro.robust`): the same play jobs
through the supervised ``fanout_map`` vs the retained pre-supervision
``fanout_map_unsupervised``, best of 2, asserted <= 1.05x on the warm
no-fault path. Results land in ``BENCH_corpus_fanout.json`` at the repo
root, including the host's CPU count so the timing numbers can be read
in context.

``REPRO_BENCH_SMOKE=1`` shrinks the corpus to a CI smoke budget.
"""

from __future__ import annotations

import json
import os
import pickle
from pathlib import Path

from repro.apps.abr.algorithms import FastMpc, Festive, RateBased, RobustMpc
from repro.apps.abr.player import _play_job, _play_job_indexed, play_many
from repro.core.evaluation import configs_for_log, run_prognos_over_logs
from repro.simulate import fanout
from repro.net.emulation import BandwidthTrace
from repro.perf import Timer
from repro.radio.bands import BandClass
from repro.ran import OPX
from repro.simulate.runner import run_drives
from repro.simulate.scenarios import city_walk_scenario

from conftest import print_header

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"
WALKS = 1 if SMOKE else 2
WALK_MIN = 4 if SMOKE else 12
PROGNOS_STRIDE = 8
FAN_WORKERS = 4
OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_corpus_fanout.json"


def _job_bytes(jobs) -> int:
    """Total pickled size of per-job payloads, as pickle-per-job ships."""
    return sum(len(pickle.dumps(job, pickle.HIGHEST_PROTOCOL)) for job in jobs)


def _indexed_bytes(count: int) -> int:
    """Total pickled size of the ``(token, index)`` jobs that replace them."""
    return _job_bytes([(0, i) for i in range(count)])


def test_corpus_fanout(corpus):
    # Same walk scenarios as the data-plane bench, so the on-disk drive
    # cache shares the entries between the two suites.
    scenarios = [
        city_walk_scenario(OPX, (BandClass.MMWAVE,), duration_min=WALK_MIN, seed=261 + i)
        for i in range(WALKS)
    ]
    logs = run_drives(scenarios, cache=corpus.drive_cache)
    timer = Timer()

    # --- shipped bytes: pickle-per-job vs (token, index) ---
    configs = configs_for_log(OPX, (BandClass.MMWAVE,))
    prognos_jobs = [(log, 1.0, PROGNOS_STRIDE, configs, None) for log in logs]

    traces = []
    for log in logs:
        times, caps = log.capacity_series()
        full = BandwidthTrace(times_s=times - times[0], capacity_mbps=caps)
        window_s = full.duration_s / 3.0
        traces.extend(full.window(i * window_s, window_s) for i in range(3))
    play_jobs = [
        (algo, trace, None, None)
        for algo in (RateBased, FastMpc, RobustMpc, Festive)
        for trace in traces
    ]

    shipped = {}
    for name, jobs in (
        ("drives", scenarios),
        ("prognos", prognos_jobs),
        ("player", play_jobs),
    ):
        old = _job_bytes(jobs)
        new = _indexed_bytes(len(jobs))
        shipped[name] = {
            "jobs": len(jobs),
            "pickled_bytes": old,
            "indexed_bytes": new,
            "ratio": round(old / new, 1),
        }

    # --- wall-clock: fanned stages at 1 vs FAN_WORKERS workers ---
    _, serial_play = timer.timed("player_serial", lambda: play_many(play_jobs, workers=1))
    _, fanned_play = timer.timed(
        "player_fanout", lambda: play_many(play_jobs, workers=FAN_WORKERS)
    )
    assert [r.levels for r in serial_play] == [r.levels for r in fanned_play]

    _, serial_run = timer.timed(
        "prognos_serial",
        lambda: run_prognos_over_logs(logs, configs, stride=PROGNOS_STRIDE, workers=1),
    )
    _, fanned_run = timer.timed(
        "prognos_fanout",
        lambda: run_prognos_over_logs(
            logs, configs, stride=PROGNOS_STRIDE, workers=FAN_WORKERS
        ),
    )
    assert fanned_run.predictions == serial_run.predictions
    assert fanned_run.times_s.tolist() == serial_run.times_s.tolist()
    assert fanned_run.truths == serial_run.truths

    # --- supervision overhead: supervised pool pass vs the retained
    # pre-supervision reference, same jobs, same workers. Best-of-2 each
    # so a cold first pool (fork, page faults) doesn't bill supervision.
    def supervised():
        return fanout.fanout_map(
            _play_job_indexed,
            play_jobs,
            len(play_jobs),
            FAN_WORKERS,
            fallback_fn=_play_job,
            fallback_jobs=play_jobs,
        )

    def unsupervised():
        return fanout.fanout_map_unsupervised(
            _play_job_indexed,
            play_jobs,
            len(play_jobs),
            FAN_WORKERS,
            fallback_fn=_play_job,
            fallback_jobs=play_jobs,
        )

    sup_results = supervised()
    unsup_results = unsupervised()
    assert [r.levels for r in sup_results] == [r.levels for r in unsup_results]
    supervised_s = min(timer.timed(f"supervised_{i}", supervised)[0] for i in (1, 2))
    unsupervised_s = min(
        timer.timed(f"unsupervised_{i}", unsupervised)[0] for i in (1, 2)
    )
    supervision_overhead = supervised_s / unsupervised_s

    cpus = os.cpu_count() or 1
    serial_s = timer["player_serial"] + timer["prognos_serial"]
    fanned_s = timer["player_fanout"] + timer["prognos_fanout"]

    result = {
        "walks": WALKS,
        "walk_minutes": WALK_MIN,
        "cpus": cpus,
        "fan_workers": FAN_WORKERS,
        "shipped": shipped,
        "player_serial_s": round(timer["player_serial"], 3),
        "player_fanout_s": round(timer["player_fanout"], 3),
        "prognos_serial_s": round(timer["prognos_serial"], 3),
        "prognos_fanout_s": round(timer["prognos_fanout"], 3),
        "serial_total_s": round(serial_s, 3),
        "fanout_total_s": round(fanned_s, 3),
        "fanout_speedup": round(serial_s / fanned_s, 2),
        "supervised_s": round(supervised_s, 3),
        "unsupervised_s": round(unsupervised_s, 3),
        "supervision_overhead": round(supervision_overhead, 3),
        "smoke": SMOKE,
    }
    OUT_PATH.write_text(json.dumps(result, indent=2) + "\n")

    print_header("Corpus fan-out (zero-copy worker jobs)")
    print(f"  corpus: {WALKS} walk(s) x {WALK_MIN} min, {cpus} CPU(s)")
    for name, row in shipped.items():
        print(
            f"  {name:<8} {row['jobs']:3d} jobs: pickle-per-job "
            f"{row['pickled_bytes']:>12,} B -> indexed {row['indexed_bytes']:>6,} B "
            f"({row['ratio']:,.0f}x)"
        )
    print(
        f"  player  serial {timer['player_serial']:6.2f}s vs "
        f"{FAN_WORKERS} workers {timer['player_fanout']:6.2f}s"
    )
    print(
        f"  Prognos serial {timer['prognos_serial']:6.2f}s vs "
        f"{FAN_WORKERS} workers {timer['prognos_fanout']:6.2f}s"
    )
    print(
        f"  supervision: supervised {supervised_s:6.2f}s vs "
        f"unsupervised {unsupervised_s:6.2f}s "
        f"({supervision_overhead:.3f}x, best of 2)"
    )
    print(f"  -> {OUT_PATH.name}")

    # Acceptance: indexed jobs ship >= 10x fewer bytes than pickling the
    # payload per job, on every fan-out path. Deterministic, so always
    # enforced.
    for name, row in shipped.items():
        assert row["ratio"] >= 10.0, f"{name} shipped-bytes ratio {row['ratio']}x < 10x"
    # Acceptance: fan-out beats serial — only meaningful with real
    # parallelism, so gated off on single-CPU hosts and in smoke runs.
    if cpus >= 2 and not SMOKE:
        assert fanned_s < serial_s, (
            f"fan-out {fanned_s:.2f}s did not beat serial {serial_s:.2f}s "
            f"on a {cpus}-CPU host"
        )
    # Acceptance: supervision (timeouts, retries, incremental publish)
    # prices in at <= 5% over the pre-supervision pool pass on the warm
    # no-fault path. Timing-based, so gated like the speedup assert.
    if cpus >= 2 and not SMOKE:
        assert supervision_overhead <= 1.05, (
            f"supervised pass {supervised_s:.2f}s is "
            f"{supervision_overhead:.3f}x the unsupervised {unsupervised_s:.2f}s "
            "(> 1.05x budget)"
        )
