"""Fig. 13 / §6.3 — eNB/gNB co-location and handover duration.

Paper targets: a same-PCI (co-located) NSA handover completes ~13 ms
faster than a different-PCI one; co-located samples are 5-36% of NSA
low-band ticks; the paper's convex-hull check validates the same-PCI
heuristic.
"""

from repro.analysis import colocation_summary
from repro.analysis.colocation import verify_colocation_by_hulls

from conftest import print_header


def test_fig13_colocation_duration(benchmark, corpus):
    logs = [corpus.freeway_low(), corpus.energy_low(), corpus.coverage_low_nsa()]

    def analyse():
        return colocation_summary(logs)

    summary = benchmark.pedantic(analyse, rounds=1, iterations=1)
    print_header("Fig. 13: NSA handover duration by PCI heuristic (ms)")
    print(
        f"  same PCI   mean {summary.same_pci.mean:6.1f}  "
        f"median {summary.same_pci.median:6.1f}  n={summary.same_pci.count}"
    )
    print(
        f"  diff PCI   mean {summary.different_pci.mean:6.1f}  "
        f"median {summary.different_pci.median:6.1f}  n={summary.different_pci.count}"
    )
    print(f"  saving: {summary.mean_saving_ms:.1f} ms (paper ~13 ms)")
    print(
        f"  co-located sample fraction: {100 * summary.colocated_sample_fraction:.0f}%"
        " (paper 5-36%)"
    )
    assert 3.0 <= summary.mean_saving_ms <= 30.0
    assert 0.02 <= summary.colocated_sample_fraction <= 0.45


def test_sec63_hull_heuristic_validation(benchmark, corpus):
    logs = [corpus.freeway_low()]

    def analyse():
        return verify_colocation_by_hulls(logs)

    overlaps = benchmark.pedantic(analyse, rounds=1, iterations=1)
    print_header("§6.3: convex-hull check of attached (4G, 5G) PCI pairs")
    print(f"  pairs checked: {len(overlaps)}; overlapping: {sum(overlaps.values())}")
    # Simultaneously-attached pairs must show overlapping footprints.
    assert overlaps and all(overlaps.values())
