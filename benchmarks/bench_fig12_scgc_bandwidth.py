"""Fig. 12 / §6.2 — SCG Change's effect on mmWave bandwidth.

Paper target: the average post-HO throughput after an inter-gNB SCG
Change is ~14% *below* the pre-HO throughput — a handover that makes
things worse, caused by the independent release+add legs picking a
first-qualifying (not best) target.
"""

from repro.analysis import phase_throughput
from repro.rrc.taxonomy import HandoverType

from conftest import print_header


def test_fig12_scgc_throughput_phases(benchmark, corpus):
    walk = corpus.mmwave_walk()
    drive = corpus.freeway_mmwave()

    def analyse():
        return phase_throughput([walk, drive], HandoverType.SCGC)

    phases = benchmark.pedantic(analyse, rounds=1, iterations=1)
    assert phases is not None, "no SCG Changes in the mmWave workloads"
    print_header("Fig. 12: SCGC throughput phases (Mbps, mmWave)")
    print(f"  HO_pre   mean {phases.pre.mean:7.0f}  median {phases.pre.median:7.0f}")
    print(f"  HO_exec  mean {phases.execute.mean:7.0f}")
    print(f"  HO_post  mean {phases.post.mean:7.0f}  median {phases.post.median:7.0f}")
    print(
        f"  post/pre: mean ratio {phases.mean_post_over_pre:.2f} "
        f"median ratio {phases.median_post_over_pre:.2f} (paper ~0.86)"
    )
    # The counter-intuitive §6.2 finding: no meaningful improvement, and
    # typically a reduction, from an "improvement" handover.
    assert phases.mean_post_over_pre < 1.15
    # Execution phase throughput collapses (data plane interruption).
    assert phases.execute.mean < phases.pre.mean
