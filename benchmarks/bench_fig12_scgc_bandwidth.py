"""Fig. 12 / §6.2 — SCG Change's effect on mmWave bandwidth.

Paper target: the average post-HO throughput after an inter-gNB SCG
Change is ~14% *below* the pre-HO throughput — a handover that makes
things worse, caused by the independent release+add legs picking a
first-qualifying (not best) target — and the data plane stalls while
the change executes.
"""

from repro.analysis import phase_throughput
from repro.rrc.taxonomy import HandoverType

from conftest import print_header


def test_fig12_scgc_throughput_phases(benchmark, corpus):
    # SCG Changes are rare; pool the mmWave drives (plus the §6.2 walk)
    # so the phase statistics rest on more than a handful of events.
    logs = [corpus.mmwave_walk(), *corpus.mmwave_drive_pool()]

    def analyse():
        return phase_throughput(logs, HandoverType.SCGC)

    phases = benchmark.pedantic(analyse, rounds=1, iterations=1)
    assert phases is not None, "no SCG Changes in the mmWave workloads"
    assert phases.pre.count >= 5, "too few SCG Changes to estimate phases"
    print_header("Fig. 12: SCGC throughput phases (Mbps, mmWave)")
    print(f"  events   {phases.pre.count}")
    print(f"  HO_pre   mean {phases.pre.mean:7.0f}  median {phases.pre.median:7.0f}")
    print(f"  HO_exec  mean {phases.execute.mean:7.0f}")
    print(f"  HO_post  mean {phases.post.mean:7.0f}  median {phases.post.median:7.0f}")
    print(
        f"  post/pre: mean ratio {phases.mean_post_over_pre:.2f} "
        f"median ratio {phases.median_post_over_pre:.2f} (paper ~0.86)"
    )
    # The counter-intuitive §6.2 finding: no meaningful improvement, and
    # typically a reduction, from an "improvement" handover.
    assert phases.mean_post_over_pre < 1.15
    # Execution-phase data-plane interruption: the NR user plane halts
    # for every tick of every SCG Change execution window (throughput
    # falls back to whatever the LTE leg delivers).
    exec_ticks = 0
    for log in logs:
        for record in log.handovers_of(HandoverType.SCGC):
            for tick in log.ticks:
                if record.exec_start_s <= tick.time_s < record.complete_s:
                    exec_ticks += 1
                    assert tick.nr_interrupted
                    assert tick.nr_capacity_mbps == 0.0
    assert exec_ticks > 0, "no ticks fell inside any SCGC execution window"
