"""Fig. 15 / §9 — bootstrapping Prognos with frequent patterns.

Paper target: without bootstrapping the F1 is low for the first ~10
minutes; seeding the learner with the most frequent pattern per HO type
lifts F1 to ~0.8 within ~1.5 minutes.
"""

import numpy as np

from repro.core.bootstrap import frequent_patterns_from_logs
from repro.core.evaluation import configs_for_log, run_prognos_over_logs
from repro.radio.bands import BandClass
from repro.ran import OPX

from conftest import print_header


def test_fig15_bootstrap_startup(benchmark, corpus):
    d1 = corpus.d1()
    trace_log = d1[-1]
    seed_logs = d1[:-1]
    configs = configs_for_log(OPX, (BandClass.MMWAVE,))
    seeds = frequent_patterns_from_logs(seed_logs)

    def analyse():
        cold = run_prognos_over_logs([trace_log], configs, stride=2)
        warm = run_prognos_over_logs([trace_log], configs, stride=2, bootstrap=seeds)
        return cold, warm

    cold, warm = benchmark.pedantic(analyse, rounds=1, iterations=1)
    print_header("Fig. 15: startup F1 with vs without bootstrapping")
    startup_s = trace_log.duration_s * 0.25
    cold_f1 = _window_f1(cold, 0.0, startup_s)
    warm_f1 = _window_f1(warm, 0.0, startup_s)
    late_cold = _window_f1(cold, startup_s, trace_log.duration_s)
    late_warm = _window_f1(warm, startup_s, trace_log.duration_s)
    print(f"  startup (first {startup_s:.0f}s): cold F1 {cold_f1:.2f} vs warm F1 {warm_f1:.2f}")
    print(f"  steady state: cold F1 {late_cold:.2f} vs warm F1 {late_warm:.2f}")
    # Bootstrapping must not hurt the cold start (when the learner
    # already picks patterns up within the first loop, the seeded and
    # unseeded runs converge — both must stay usable).
    assert warm_f1 >= cold_f1 - 0.05
    assert warm_f1 > 0.3
    # Both converge once patterns are learned online.
    assert abs(late_warm - late_cold) < 0.35


def _window_f1(result, start_s, end_s):
    from repro.ml.metrics import event_level_report
    from repro.rrc.taxonomy import HandoverType

    mask = (result.times_s >= start_s) & (result.times_s < end_s)
    return event_level_report(
        result.times_s[mask],
        [p for p, m in zip(result.predictions, mask) if m],
        [t for t, m in zip(result.truths, mask) if m],
        [(t, c) for t, c in result.events if start_s <= t < end_s],
        negative_class=HandoverType.NONE,
    ).f1
