"""Fig. 6 / §4.1 — volumetric streaming QoE vs radio band.

Paper targets: handovers cost more on higher bands — bitrate drops ~31%
(low-band) vs ~58% (mmWave) in HO windows; latency rises ~41% vs ~107%.
"""

from repro.apps import RateBased
from repro.apps.volumetric import volumetric_band_impact

from conftest import print_header


def test_fig06_volumetric_band_impact(benchmark, corpus):
    low = corpus.low_band_walk()
    mmwave = corpus.mmwave_walk()

    def analyse():
        return (
            volumetric_band_impact(low, RateBased()),
            volumetric_band_impact(mmwave, RateBased()),
        )

    low_impact, mm_impact = benchmark.pedantic(analyse, rounds=1, iterations=1)
    print_header("Fig. 6: ViVo-style streaming, HO windows vs rest")
    print(
        f"  low-band : bitrate {low_impact.bitrate_reduction_pct:+5.1f}% "
        f"(paper -31%)  latency {low_impact.latency_increase_pct:+6.1f}% (paper +41%)"
    )
    print(
        f"  mmWave   : bitrate {mm_impact.bitrate_reduction_pct:+5.1f}% "
        f"(paper -58%)  latency {mm_impact.latency_increase_pct:+6.1f}% (paper +107%)"
    )
    # Both bands degrade during handovers; mmWave handovers hurt more on
    # the latency axis. (The paper's larger mmWave *bitrate* drop does
    # not fully reproduce: the simulated mmWave capacity dwarfs the
    # 170 Mbps ladder outside coverage gaps — see EXPERIMENTS.md.)
    assert low_impact.bitrate_reduction_pct > 0
    assert mm_impact.bitrate_reduction_pct > 0
    assert mm_impact.latency_increase_pct > low_impact.latency_increase_pct
