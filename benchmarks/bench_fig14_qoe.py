"""Fig. 14 — QoE gains from Prognos-aided rate adaptation (§7.4).

Fig. 14a: 16K panoramic VoD — stall time reduced 34.6-58.6% without
degrading quality. Fig. 14b: throughput-prediction error near HOs
improves 52-61%. Fig. 14c: real-time volumetric streaming — quality up
15.1-36.2% without prolonging stalls. The -PR variants should land near
the -GT (ground truth) upper bound.
"""

import numpy as np

from repro.apps import FastMpc, Festive, RateBased, RobustMpc, play_many
from repro.apps.abr.prediction import PredictionFeed
from repro.apps.volumetric import VolumetricStream
from repro.core.evaluation import configs_for_log, run_prognos_over_logs
from repro.net.emulation import BandwidthTrace
from repro.radio.bands import BandClass
from repro.ran import OPX
from repro.simulate.dataset import build_abr_traces

from conftest import print_header


def _prepare(corpus):
    """Traces + GT and Prognos prediction feeds from the mmWave walk."""
    log = corpus.mmwave_walk()
    events = [(h.decision_time_s, h.ho_type) for h in log.handovers]
    gt_feed = PredictionFeed.from_ground_truth(events)
    configs = configs_for_log(OPX, (BandClass.MMWAVE,))
    run = run_prognos_over_logs([log], configs, stride=2)
    pr_feed = PredictionFeed.from_prognos(run.times_s, run.predictions)
    times, caps = log.capacity_series()
    full = BandwidthTrace(times, caps)
    traces = build_abr_traces([log], window_s=240.0, stride_s=180.0) or [full]
    return log, events, gt_feed, pr_feed, traces


def test_fig14ab_vod_qoe(benchmark, corpus):
    log, events, gt_feed, pr_feed, traces = _prepare(corpus)

    def analyse():
        variants = [
            (algo_cls, variant, feed)
            for algo_cls in (RateBased, FastMpc, RobustMpc)
            for variant, feed in (("", None), ("-GT", gt_feed), ("-PR", pr_feed))
        ]
        # One flat job list over (variant x trace), fanned out over
        # REPRO_BENCH_WORKERS processes; results come back in job order.
        jobs = [
            (algo_cls, trace, feed, events)
            for algo_cls, _, feed in variants
            for trace in traces
        ]
        results = play_many(jobs)
        rows = {}
        for i, (algo_cls, variant, _) in enumerate(variants):
            batch = results[i * len(traces) : (i + 1) * len(traces)]
            rows[algo_cls().name + variant] = (
                float(np.mean([r.stall_pct for r in batch])),
                float(np.mean([r.normalized_bitrate for r in batch])),
                float(np.mean([r.prediction_mae(near_ho=True) for r in batch])),
                float(np.mean([r.prediction_mae(near_ho=False) for r in batch])),
            )
        return rows

    rows = benchmark.pedantic(analyse, rounds=1, iterations=1)
    print_header(f"Fig. 14a/b: 16K VoD over {len(traces)} mmWave traces")
    print(f"  {'variant':16s}{'stall%':>8s}{'bitrate':>9s}{'MAE@HO':>9s}{'MAE':>8s}")
    for name, (stall, bitrate, mae_ho, mae_no) in rows.items():
        print(f"  {name:16s}{stall:8.2f}{bitrate:9.3f}{mae_ho:9.1f}{mae_no:8.1f}")

    improved = 0
    for base_name in ("RB", "fastMPC", "robustMPC"):
        base = rows[base_name]
        for variant in ("-GT", "-PR"):
            aided = rows[base_name + variant]
            # Stall must not get worse by more than a hair, quality must
            # not collapse (paper: stall -34.6-58.6%, quality +1.7%).
            assert aided[0] <= base[0] + 0.25, f"{base_name}{variant} added stalls"
            assert aided[1] >= base[1] * 0.9, f"{base_name}{variant} lost quality"
            if aided[0] < base[0] - 1e-6 or aided[1] > base[1] + 1e-6:
                improved += 1
    # At least half the variants must show a strict improvement.
    assert improved >= 3


def test_fig14c_volumetric_qoe(benchmark, corpus):
    log, events, gt_feed, pr_feed, traces = _prepare(corpus)

    def analyse():
        rows = {}
        for algo_cls, algo_name in ((RateBased, "ViVo"), (Festive, "FESTIVE")):
            for variant, feed in (("", None), ("-GT", gt_feed), ("-PR", pr_feed)):
                quality, stalls = [], []
                for trace in traces:
                    result = VolumetricStream(algo_cls(), feed=feed).run(
                        trace, duration_s=min(180.0, trace.duration_s)
                    )
                    quality.append(result.mean_bitrate_mbps)
                    stalls.append(result.stall_pct)
                rows[algo_name + variant] = (
                    float(np.mean(quality)),
                    float(np.mean(stalls)),
                )
        return rows

    rows = benchmark.pedantic(analyse, rounds=1, iterations=1)
    print_header("Fig. 14c: volumetric streaming quality/stall change")
    for base_name in ("ViVo", "FESTIVE"):
        base = rows[base_name]
        for variant in ("-GT", "-PR"):
            aided = rows[base_name + variant]
            quality_change = 100.0 * (aided[0] / base[0] - 1.0)
            stall_change = aided[1] - base[1]
            print(
                f"  {base_name + variant:12s} quality {quality_change:+6.2f}% "
                f"(paper +15-36%)  stall {stall_change:+6.3f} pp"
            )
            # Paper: quality up without prolonging stalls (our FESTIVE
            # variant trades a hair more stall for its quality gain on
            # the reduced trace set — see EXPERIMENTS.md).
            assert aided[0] >= base[0] * 0.98
            assert stall_change <= 1.5
