"""Fig. 5 / §4.1 — cloud gaming during handovers, by HO type.

Paper targets: latency x2.26 and dropped frames x2.6 during handovers;
MeNB HOs (which interrupt both radios) cost ~16.8 ms more latency and
~65% more dropped frames than SCG Modifications (absorbed by the LTE
leg under the split bearer).
"""

from repro.apps import CloudGamingModel
from repro.rrc.taxonomy import HandoverType

from conftest import print_header


def test_fig05_cloud_gaming_qoe(benchmark, corpus):
    log = corpus.city_drive_mmwave()

    def analyse():
        return CloudGamingModel(seed=51).run(log)

    result = benchmark.pedantic(analyse, rounds=1, iterations=1)
    print_header("Fig. 5: 4K@60FPS cloud gaming, NSA city drive")
    lat, drops = result.latency_comparison, result.drops_comparison
    print(
        f"  latency x{lat.mean_ratio:.2f} (paper x2.26) | dropped frames "
        f"x{drops.mean_ratio:.2f} (paper x2.6)"
    )
    for ho_type, impact in result.per_type.items():
        print(
            f"  {ho_type.name:5s} windows {impact.windows:3d}  latency "
            f"{impact.mean_latency_ms:6.1f} ms  drops {impact.drop_rate_pct:5.1f}%"
        )
    assert lat.mean_ratio > 1.3
    assert drops.mean_ratio > 1.3
    scgm = result.per_type.get(HandoverType.SCGM)
    mnbh = result.per_type.get(HandoverType.MNBH)
    if scgm and mnbh:
        print(
            f"  MNBH - SCGM latency: {mnbh.mean_latency_ms - scgm.mean_latency_ms:+.1f} ms"
            " (paper ~ +16.8 ms)"
        )
        # The paper's HO-type finding: the anchor handover hurts more
        # than the intra-gNB beam switch.
        assert mnbh.mean_latency_ms > scgm.mean_latency_ms
        assert mnbh.drop_rate_pct > scgm.drop_rate_pct
