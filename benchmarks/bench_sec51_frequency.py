"""§5.1 — handover frequency and signaling overheads.

Paper targets: NSA 5G HO every ~0.4 km vs 4G every ~0.6 km vs SA every
~0.9 km; mmWave every ~0.13 km, mid-band ~0.35 km, low-band ~0.4 km;
SA cuts HO signaling per km several-fold versus LTE; NSA mmWave's
PHY-layer signaling exceeds low-band's >5x.
"""

from repro.analysis import frequency_breakdown, signaling_per_km
from repro.analysis.frequency import FIVE_G_NSA_TYPES, FOUR_G_TYPES, SA_TYPES, handover_spacing_km

from conftest import print_header


def test_sec51_handover_frequency(benchmark, corpus):
    # Per-drive handover spacing is noisy (shadowing clusters the
    # events), so the NSA rate comparisons pool several seeds per band.
    logs = {
        "NSA low-band": corpus.freeway_low_pool(),
        "NSA mmWave": corpus.freeway_mmwave_pool(),
        "NSA mid-band": corpus.freeway_mid_pool(),
        "SA low-band": [corpus.freeway_sa()],
        "LTE-only": [corpus.freeway_lte_only()],
    }

    def analyse():
        out = {}
        for name, pool in logs.items():
            if name.startswith("SA"):
                types = SA_TYPES
            elif name == "LTE-only":
                types = FOUR_G_TYPES
            else:
                types = FIVE_G_NSA_TYPES
            out[name] = handover_spacing_km(pool, types)
        out["4G under NSA"] = handover_spacing_km(
            logs["NSA low-band"], FOUR_G_TYPES
        )
        return out

    spacing = benchmark.pedantic(analyse, rounds=1, iterations=1)
    print_header("§5.1 handover spacing (km between HOs)")
    paper = {
        "NSA low-band": 0.4,
        "NSA mmWave": 0.13,
        "NSA mid-band": 0.35,
        "SA low-band": 0.9,
        "LTE-only": 0.6,
        "4G under NSA": 0.6,
    }
    for name, value in spacing.items():
        print(f"  {name:16s} measured {value:5.2f} km   (paper ~{paper[name]:.2f} km)")

    # Ordering (the paper's qualitative claim) must hold exactly:
    assert spacing["NSA mmWave"] < spacing["NSA mid-band"] < spacing["NSA low-band"]
    assert spacing["NSA low-band"] < spacing["SA low-band"]
    # 4G handovers are no more frequent than NSA 5G procedures:
    assert spacing["4G under NSA"] >= spacing["NSA low-band"]
    # Magnitudes within a loose band of the paper's values:
    assert 0.08 <= spacing["NSA mmWave"] <= 0.35
    assert 0.25 <= spacing["NSA low-band"] <= 0.75
    assert 0.55 <= spacing["SA low-band"] <= 1.5


def test_sec51_signaling_overheads(benchmark, corpus):
    lte = corpus.freeway_lte_only()
    sa = corpus.freeway_sa()
    low = corpus.freeway_low_pool()
    mmwave = corpus.freeway_mmwave_pool()

    def analyse():
        return {
            "LTE": signaling_per_km([lte]),
            "SA": signaling_per_km([sa]),
            "NSA low": signaling_per_km(low),
            "NSA mmWave": signaling_per_km(mmwave),
        }

    rates = benchmark.pedantic(analyse, rounds=1, iterations=1)
    print_header("§5.1 HO-related signaling per km")
    for name, r in rates.items():
        print(
            f"  {name:11s} RRC {r.rrc_per_km:6.1f}  RACH {r.rach_per_km:5.1f}  "
            f"PHY {r.phy_per_km:7.1f}  total {r.total_per_km:7.1f}"
        )
    # SA reduces HO-related signaling vs LTE (paper: ~3.8x fewer).
    ratio = rates["LTE"].total_per_km / rates["SA"].total_per_km
    print(f"  LTE/SA total signaling ratio: {ratio:.1f}x (paper ~3.8x)")
    assert ratio > 1.5
    # NSA mmWave PHY signaling explodes vs low-band (paper: >5x).
    phy_ratio = rates["NSA mmWave"].phy_per_km / rates["NSA low"].phy_per_km
    print(f"  mmWave/low PHY signaling ratio: {phy_ratio:.1f}x (paper >5x)")
    assert phy_ratio > 5.0
