"""Fig. 11 / §6.1 — the coverage landscape and NSA's effective reduction.

Paper targets: cell footprints ~1.4 km (low) / 0.73 km (mid) / 0.15 km
(mmWave); on rural low-band, NSA's anchor handovers cut the effective
footprint 1.2-2x versus SA, which travels 2 km+ per cell.
"""

import numpy as np

from repro.analysis import coverage_summary
from repro.analysis.coverage import nr_coverage_segments_m

from conftest import print_header


def test_fig11a_low_band_coverage(benchmark, corpus):
    nsa = corpus.coverage_low_nsa()
    sa = corpus.coverage_low_sa()

    def analyse():
        return coverage_summary([nsa]), nr_coverage_segments_m([sa])

    summary, sa_segments = benchmark.pedantic(analyse, rounds=1, iterations=1)
    print_header("Fig. 11a: low-band coverage footprint (m)")
    print(
        f"  w/ NSA (actual)     mean {summary.actual.mean:7.0f} "
        f"median {summary.actual.median:7.0f}"
    )
    print(
        f"  w/o NSA (merged)    mean {summary.merged.mean:7.0f} "
        f"median {summary.merged.median:7.0f}"
    )
    print(
        f"  SA                  mean {np.mean(sa_segments):7.0f} "
        f"median {np.median(sa_segments):7.0f}"
    )
    print(f"  NSA reduction factor {summary.nsa_reduction_factor:.2f}x (paper 1.2-2x)")

    # SA travels ~2 km per cell; NSA's actual footprint is about halved.
    assert np.median(sa_segments) > 1500.0
    assert 1.1 <= summary.nsa_reduction_factor <= 3.0
    assert summary.actual.mean < np.mean(sa_segments)


def test_fig11b_mid_band_coverage(benchmark, corpus):
    mid = corpus.coverage_mid_nsa()

    def analyse():
        return coverage_summary([mid])

    summary = benchmark.pedantic(analyse, rounds=1, iterations=1)
    print_header("Fig. 11b: mid-band coverage footprint (m)")
    print(f"  w/ NSA  mean {summary.actual.mean:6.0f}  w/o NSA mean {summary.merged.mean:6.0f}")
    print(f"  reduction {summary.nsa_reduction_factor:.2f}x (paper: slight)")
    # Mid-band reduction is milder than low-band's (denser anchors match
    # the NR grid more closely).
    assert 0.95 <= summary.nsa_reduction_factor <= 2.0


def test_sec61_per_band_footprints(benchmark, corpus):
    logs = {
        "low-band": corpus.freeway_low(),
        "mid-band": corpus.freeway_mid(),
        "mmWave": corpus.freeway_mmwave(),
    }

    def analyse():
        return {
            name: float(np.mean(nr_coverage_segments_m([log], merge_interruptions=True)))
            for name, log in logs.items()
        }

    footprints = benchmark.pedantic(analyse, rounds=1, iterations=1)
    paper = {"low-band": 1400.0, "mid-band": 730.0, "mmWave": 150.0}
    print_header("§6.1: per-band cell footprint (same-PCI travel, m)")
    for name, value in footprints.items():
        print(f"  {name:9s} measured {value:6.0f} m (paper ~{paper[name]:.0f} m)")
    # Strict ordering and loose magnitudes.
    assert footprints["mmWave"] < footprints["mid-band"] < footprints["low-band"]
    assert 60 <= footprints["mmWave"] <= 400
    assert 300 <= footprints["mid-band"] <= 1200
    assert 700 <= footprints["low-band"] <= 2400
