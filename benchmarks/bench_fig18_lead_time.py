"""Fig. 18 / §7.3 — prediction lead time with vs without the report
predictor.

Paper targets: an actual measurement report leaves only ~70 ms (median)
before the handover command; forecasting the report buys ~931 ms of
extra lead at ~1.2% accuracy cost.
"""

import numpy as np

from repro.core.evaluation import configs_for_log, run_prognos_over_logs
from repro.core.prognos import PrognosConfig
from repro.radio.bands import BandClass
from repro.ran import OPX

from conftest import print_header


def test_fig18_report_predictor_lead_time(benchmark, corpus):
    logs = corpus.d1()[:2]
    configs = configs_for_log(OPX, (BandClass.MMWAVE,))

    def analyse():
        with_rp = run_prognos_over_logs(logs, configs, stride=2)
        without_rp = run_prognos_over_logs(
            logs,
            configs,
            stride=2,
            config=PrognosConfig(use_report_predictor=False),
        )
        return with_rp, without_rp

    with_rp, without_rp = benchmark.pedantic(analyse, rounds=1, iterations=1)
    print_header("Fig. 18: prediction lead time (ms)")
    lead_with = 1000.0 * np.array(with_rp.lead_times_s)
    lead_without = 1000.0 * np.array(without_rp.lead_times_s)
    assert lead_with.size > 0 and lead_without.size > 0
    print(
        f"  w/ report predictor : median {np.median(lead_with):6.0f}  "
        f"p90 {np.percentile(lead_with, 90):6.0f}  n={lead_with.size}"
    )
    print(
        f"  w/o report predictor: median {np.median(lead_without):6.0f}  "
        f"p90 {np.percentile(lead_without, 90):6.0f}  n={lead_without.size}"
    )
    gain = np.median(lead_with) - np.median(lead_without)
    print(f"  median lead gained: {gain:.0f} ms (paper ~931 ms)")

    # Without forecasting, leads hug the preparation delay (tens of ms).
    assert np.median(lead_without) < 250.0
    # Forecasting buys a meaningfully earlier warning (the paper's
    # +931 ms shrinks here because synthetic walking-pace RRS diverges
    # late — see EXPERIMENTS.md; the tail p90 shows the forecast value).
    assert gain > 20.0
    assert np.percentile(lead_with, 90) > np.percentile(lead_without, 90) + 100.0

    with_report = with_rp.report()
    without_report = without_rp.report()
    print(
        f"  accuracy: {with_report.accuracy:.3f} w/ vs {without_report.accuracy:.3f} w/o"
        " (paper: ~1.2% cost)"
    )
    # The accuracy cost of early prediction stays small.
    assert with_report.accuracy > without_report.accuracy - 0.12
