"""Ablation — §6.2's proposed SCG Change mitigation, implemented.

The paper identifies why SCG Changes often *reduce* throughput: each
leg of the release+add is decided independently, so the add leg takes
the first qualifying target. It suggests carriers "improve their
inter-gNB HO logic by considering the overall HO sequence". This bench
implements that fix (quality-aware target selection) and compares the
post/pre throughput ratio of SCG Changes under both policies.
"""

import dataclasses

from repro.analysis import phase_throughput
from repro.net.bearer import BearerMode
from repro.radio.bands import BandClass
from repro.ran import OPX
from repro.rrc.taxonomy import HandoverType
from repro.simulate.scenarios import city_walk_scenario

from conftest import print_header


def test_ablation_quality_aware_scgc(benchmark):
    baseline_scenario = city_walk_scenario(
        OPX, (BandClass.MMWAVE,), duration_min=18, seed=301
    )
    improved_scenario = dataclasses.replace(
        baseline_scenario,
        config=dataclasses.replace(baseline_scenario.config, quality_aware_scgc=True),
    )

    def analyse():
        baseline_log = baseline_scenario.run()
        improved_log = improved_scenario.run()
        return (
            phase_throughput([baseline_log], HandoverType.SCGC),
            phase_throughput([improved_log], HandoverType.SCGC),
        )

    baseline, improved = benchmark.pedantic(analyse, rounds=1, iterations=1)
    print_header("Ablation: SCGC target selection policy")
    if baseline is None or improved is None:
        import pytest

        pytest.skip("not enough SCG Changes in the reduced walk")
    print(
        f"  today's NSA (first-qualifying): post/pre {baseline.mean_post_over_pre:.2f}"
    )
    print(
        f"  quality-aware (paper's fix)   : post/pre {improved.mean_post_over_pre:.2f}"
    )
    # The proposed fix should not make SCG Changes worse, and typically
    # lifts the post-handover throughput.
    assert improved.mean_post_over_pre >= baseline.mean_post_over_pre * 0.9
