"""Fig. 9 — HO execution stage (T2) across technologies and bands.

Paper targets: NSA T2 runs 1.4-5.4x LTE's; mmWave T2 exceeds low-band
T2 by 42-45% (beam management); overall averages LTE 76 ms / NSA 167 ms
/ SA 110 ms.
"""

from repro.analysis import duration_breakdown
from repro.analysis.duration import NSA_5G_TYPES
from repro.radio.bands import BandClass
from repro.rrc.taxonomy import HandoverType

from conftest import print_header


def test_fig09_t2_execution_stage(benchmark, corpus):
    opy_nsa = [corpus.freeway_mid(), corpus.freeway_opy_low()]
    opy_sa = [corpus.freeway_sa()]
    lte = [corpus.freeway_lte_only()]
    opx_low = [corpus.freeway_low()]
    opx_mmwave = [corpus.freeway_mmwave()]

    def analyse():
        rows = {}
        rows["OpY LTEH (LTE)"] = duration_breakdown(
            lte, types=(HandoverType.LTEH,), nsa_context=False
        )
        rows["OpY LTEH (NSA)"] = duration_breakdown(
            opy_nsa, types=(HandoverType.LTEH,), nsa_context=True
        )
        rows["OpY SCGM (NSA)"] = duration_breakdown(opy_nsa, types=(HandoverType.SCGM,))
        rows["OpY MCGH (SA)"] = duration_breakdown(opy_sa, types=(HandoverType.MCGH,))
        rows["OpX SCG low"] = duration_breakdown(
            opx_low,
            types=(HandoverType.SCGA, HandoverType.SCGC, HandoverType.SCGM),
            band_class=BandClass.LOW,
        )
        rows["OpX SCG mmWave"] = duration_breakdown(
            opx_mmwave,
            types=(HandoverType.SCGA, HandoverType.SCGC, HandoverType.SCGM),
            band_class=BandClass.MMWAVE,
        )
        rows["NSA overall"] = duration_breakdown(opy_nsa, types=NSA_5G_TYPES)
        return rows

    rows = benchmark.pedantic(analyse, rounds=1, iterations=1)
    print_header("Fig. 9: T2 execution stage (ms)")
    for name, b in rows.items():
        print(f"  {name:16s} T2 mean {b.t2.mean:6.1f}  total mean {b.total.mean:6.1f}")

    lte_t2 = rows["OpY LTEH (LTE)"].t2.mean
    nsa_t2 = rows["NSA overall"].t2.mean
    print(f"  NSA/LTE T2 ratio: {nsa_t2 / lte_t2:.1f}x (paper 1.4-5.4x)")
    mm_ratio = rows["OpX SCG mmWave"].t2.mean / rows["OpX SCG low"].t2.mean
    print(f"  mmWave/low T2 ratio: {mm_ratio:.2f}x (paper ~1.42-1.45x)")

    assert 1.4 <= nsa_t2 / lte_t2 <= 5.4
    assert 1.2 <= mm_ratio <= 1.7
    # Overall handover durations: LTE ~76 ms, NSA ~167 ms, SA ~110 ms.
    assert rows["OpY LTEH (LTE)"].total.mean == __import__("pytest").approx(76, rel=0.25)
    assert rows["NSA overall"].total.mean == __import__("pytest").approx(167, rel=0.3)
    assert rows["OpY MCGH (SA)"].total.mean == __import__("pytest").approx(110, rel=0.3)
