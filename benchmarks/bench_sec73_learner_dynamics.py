"""§7.3 — decision-learner dynamics: pattern learn/evict rates.

Paper targets: new HO patterns learned at ~9.1 +- 2.3 per hour, old
patterns evicted at ~8.3 +- 3.1 per hour; the pattern set stays small
and prediction accuracy stable.
"""

from repro.core.evaluation import configs_for_log, run_prognos_over_logs
from repro.core.prognos import PrognosConfig
from repro.radio.bands import BandClass
from repro.ran import OPX

from conftest import print_header


def test_sec73_pattern_learning_dynamics(benchmark, corpus):
    logs = corpus.d1()
    configs = configs_for_log(OPX, (BandClass.MMWAVE,))

    def analyse():
        return run_prognos_over_logs(
            logs,
            configs,
            stride=2,
            config=PrognosConfig(freshness_horizon_phases=40),
        )

    result = benchmark.pedantic(analyse, rounds=1, iterations=1)
    stats = result.learner_stats
    hours = sum(log.duration_s for log in logs) / 3600.0
    learn_rate = stats.patterns_learned / hours
    evict_rate = stats.patterns_evicted / hours
    print_header("§7.3: decision-learner dynamics")
    print(f"  phases processed : {stats.phases_processed}")
    print(f"  live patterns    : {stats.live_patterns}")
    print(f"  learned per hour : {learn_rate:.1f} (paper 9.1 +- 2.3)")
    print(f"  evicted per hour : {evict_rate:.1f} (paper 8.3 +- 3.1)")

    # Learning and eviction balance, keeping the live set bounded.
    assert stats.patterns_learned > 0
    assert stats.patterns_evicted > 0
    assert stats.live_patterns < 200
    assert learn_rate >= evict_rate  # net growth is small but non-negative
    assert learn_rate - evict_rate < 30.0
