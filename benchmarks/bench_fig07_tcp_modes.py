"""Fig. 7 / §4.2 — TCP (BBR) RTT under the two NSA bearer modes.

Paper targets: 5G-only mode has the lower no-HO RTT (no eNB detour);
during SCG handovers dual mode barely moves (1-4% median change — the
LTE leg keeps flowing) while 5G-only inflates 37-58%+ in the median.
"""

import numpy as np

from repro.net import LatencyModel
from repro.net.bearer import BearerMode
from repro.rrc.taxonomy import HandoverType

from conftest import print_header

# Pure SCG mobility procedures. SCGA/SCGR in our NSA model are mostly
# coupled to anchor handovers (whose LTE outage would contaminate the
# dual-mode window), so the bearer comparison uses the uncoupled ones.
SCG_TYPES = (HandoverType.SCGM, HandoverType.SCGC)


def _remaining_interruptions(log):
    """Per tick, the remaining NR/LTE interruption time (seconds)."""
    times = np.array([t.time_s for t in log.ticks])
    nr = np.zeros(len(times))
    lte = np.zeros(len(times))
    for h in log.handovers:
        mask = (times >= h.exec_start_s) & (times < h.complete_s)
        remaining = np.clip(h.complete_s - times, 0.0, None)
        if h.ho_type.interrupts_nr_data:
            nr[mask] = np.maximum(nr[mask], remaining[mask])
        if h.ho_type.interrupts_lte_data:
            lte[mask] = np.maximum(lte[mask], remaining[mask])
    return times, nr, lte


def _rtt_series(log, bearer):
    """TCP-visible RTT per tick: bearer baseline + interruption stall +
    the post-interruption queue-drain tail (packets buffered at the base
    station during the execution stage drain at link rate afterwards).
    """
    latency = LatencyModel(np.random.default_rng(7), jitter_ms=1.0)
    times, nr_rem, lte_rem = _remaining_interruptions(log)
    rtts = np.empty(len(times))
    drain_ms = 0.0
    dt = log.tick_interval_s or 0.05
    for i, tick in enumerate(log.ticks):
        base = latency.rtt_ms(
            bearer,
            nr_attached=tick.nr_serving_gci is not None,
            nr_interrupted_remaining_s=nr_rem[i],
            lte_interrupted_remaining_s=lte_rem[i],
        )
        stalled = (
            nr_rem[i] > 0
            if bearer is BearerMode.FIVE_G_ONLY
            else (nr_rem[i] > 0 and lte_rem[i] > 0)
        ) or lte_rem[i] > 0
        if stalled and bearer is BearerMode.FIVE_G_ONLY or lte_rem[i] > 0:
            # Queue accumulates for the duration of the outage.
            drain_ms += dt * 1000.0
        else:
            drain_ms = max(drain_ms - dt * 700.0, 0.0)  # drains ~1.4x rate
        rtts[i] = base + drain_ms
    return rtts


def test_fig07_bearer_mode_rtt(benchmark, corpus):
    dual_log = corpus.bearer_dual()
    five_log = corpus.bearer_5g_only()

    def analyse():
        out = {}
        for name, log, bearer in (
            ("dual", dual_log, BearerMode.DUAL),
            ("5G-only", five_log, BearerMode.FIVE_G_ONLY),
        ):
            rtts = _rtt_series(log, bearer)
            times = np.array([t.time_s for t in log.ticks])
            scg_hos = log.handovers_of(*SCG_TYPES)
            # During-HO RTT: the execution stage plus the queue drain
            # right after it (the window the paper's boxes cover).
            mask = np.zeros(len(times), dtype=bool)
            for h in scg_hos:
                mask |= (times >= h.exec_start_s) & (times <= h.complete_s + 0.2)
            out[name] = {
                "no_ho_median": float(np.median(rtts[~mask])),
                "ho_median": float(np.median(rtts[mask])),
            }
        return out

    rows = benchmark.pedantic(analyse, rounds=1, iterations=1)
    print_header("Fig. 7: TCP BBR RTT (ms) during SCG handovers")
    for name, r in rows.items():
        change = 100.0 * (r["ho_median"] / r["no_ho_median"] - 1.0)
        print(
            f"  {name:8s} w/o HO median {r['no_ho_median']:6.1f} | "
            f"w/ HO median {r['ho_median']:6.1f} | change {change:+5.1f}%"
        )
    dual, five = rows["dual"], rows["5G-only"]
    # 5G-only has the lower baseline RTT (no eNB forwarding detour).
    assert five["no_ho_median"] < dual["no_ho_median"]
    # Dual mode absorbs SCG interruptions; 5G-only does not.
    dual_change = dual["ho_median"] / dual["no_ho_median"] - 1.0
    five_change = five["ho_median"] / five["no_ho_median"] - 1.0
    print(
        f"  median inflation: dual {100 * dual_change:+.1f}% (paper 1-4%) vs "
        f"5G-only {100 * five_change:+.1f}% (paper 37-58%)"
    )
    assert dual_change < 0.15
    assert five_change > 0.15
    assert five_change > dual_change + 0.1
