"""Ablation — NSA bearer modes, including §4.2's proposed hybrid.

The paper suggests carriers could get "the best of both worlds" by
running the split bearer with the 5G share routed core→gNB directly
(our ``DUAL_DIRECT``): dual-mode handover resilience at 5G-only RTT.
This bench replays the same drive under all three bearer mappings.
"""

import numpy as np

from repro.net import LatencyModel
from repro.net.bearer import BearerMode
from repro.rrc.taxonomy import HandoverType

from conftest import print_header

SCG_TYPES = (HandoverType.SCGM, HandoverType.SCGC)


def _rtt_medians(log, bearer):
    """(no-HO median, SCG-HO-window median) under a bearer mapping."""
    latency = LatencyModel(np.random.default_rng(3), jitter_ms=0.5)
    times = np.array([t.time_s for t in log.ticks])
    nr_rem = np.zeros(len(times))
    lte_rem = np.zeros(len(times))
    for h in log.handovers:
        in_exec = (times >= h.exec_start_s) & (times < h.complete_s)
        remaining = np.clip(h.complete_s - times, 0.0, None)
        if h.ho_type.interrupts_nr_data:
            nr_rem[in_exec] = np.maximum(nr_rem[in_exec], remaining[in_exec])
        if h.ho_type.interrupts_lte_data:
            lte_rem[in_exec] = np.maximum(lte_rem[in_exec], remaining[in_exec])
    rtts = np.array(
        [
            latency.rtt_ms(
                bearer,
                nr_attached=t.nr_serving_gci is not None,
                nr_interrupted_remaining_s=nr_rem[i],
                lte_interrupted_remaining_s=lte_rem[i],
            )
            for i, t in enumerate(log.ticks)
        ]
    )
    # Execution-stage samples only — the instants whose RTT the bearer
    # mapping actually changes.
    mask = np.zeros(len(times), dtype=bool)
    for h in log.handovers_of(*SCG_TYPES):
        mask |= (times >= h.exec_start_s) & (times < h.complete_s)
    if not mask.any():
        raise RuntimeError("no SCG windows in the drive")
    return float(np.median(rtts[~mask])), float(np.median(rtts[mask]))


def test_ablation_bearer_modes(benchmark, corpus):
    log = corpus.bearer_dual()

    def analyse():
        return {
            bearer.value: _rtt_medians(log, bearer)
            for bearer in (BearerMode.DUAL, BearerMode.FIVE_G_ONLY, BearerMode.DUAL_DIRECT)
        }

    rows = benchmark.pedantic(analyse, rounds=1, iterations=1)
    print_header("Ablation: bearer modes (median RTT ms, no-HO vs SCG-HO windows)")
    for name, (no_ho, ho) in rows.items():
        print(f"  {name:12s} no-HO {no_ho:6.1f} | HO {ho:6.1f} ({100 * (ho / no_ho - 1):+.0f}%)")
    dual, five, hybrid = rows["dual"], rows["5G-only"], rows["dual-direct"]
    # The proposed hybrid: baseline as low as 5G-only...
    assert hybrid[0] < dual[0]
    assert abs(hybrid[0] - five[0]) < 4.0
    # ...while inheriting dual mode's HO resilience: during SCG windows
    # the single-path mode inflates, the split-bearer modes do not.
    five_inflation = five[1] / five[0]
    hybrid_inflation = hybrid[1] / hybrid[0]
    dual_inflation = dual[1] / dual[0]
    assert five_inflation > hybrid_inflation + 0.1
    assert abs(hybrid_inflation - dual_inflation) < 0.15
