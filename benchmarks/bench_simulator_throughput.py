"""Simulator throughput: scalar vs vectorized, serial vs parallel, cache.

Measures single-drive tick throughput on the 20 km low-band freeway
drive (the corpus's workhorse scenario), the speedup of the vectorized
radio pipeline over the scalar reference, the effect of fanning a small
corpus out over worker processes, and the drive cache's ability to skip
simulation entirely on a warm second pass. Results land in
``BENCH_simulator.json`` at the repo root.

``REPRO_BENCH_SMOKE=1`` shrinks the drive so the whole bench fits in a
CI smoke budget (~30 s).
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path

import numpy as np

from repro.perf import Timer
from repro.radio.bands import BandClass
from repro.ran import OPX
from repro.simulate.cache import DriveCache
from repro.simulate.runner import run_drives
from repro.simulate.scenarios import freeway_scenario
from repro.simulate.simulator import DriveSimulator

from conftest import print_header

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"
LENGTH_KM = 4.0 if SMOKE else 20.0
OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_simulator.json"


def _drive(scenario, *, vectorized: bool) -> tuple[float, int]:
    """(wall seconds, ticks) for one full simulation of ``scenario``."""
    config = dataclasses.replace(scenario.config, vectorized_radio=vectorized)
    rng = np.random.default_rng(scenario.seed + 0x5EED)
    sim = DriveSimulator(scenario.deployment, scenario.trajectory, rng, config)
    elapsed, log = Timer().timed("drive", sim.run)
    return elapsed, len(log.ticks)


def _mean_audible_cells(scenario) -> float:
    """Mean audible-cell count along the route (the per-tick work scale)."""
    samples = list(scenario.trajectory)
    counts = [
        len(scenario.deployment.audible_cells(s.position))
        for s in samples[:: max(1, len(samples) // 200)]
    ]
    return float(np.mean(counts)) if counts else 0.0


def test_simulator_throughput(corpus):
    scenario = freeway_scenario(OPX, BandClass.LOW, length_km=LENGTH_KM, seed=211)
    timer = Timer()

    scalar_s, ticks = _drive(scenario, vectorized=False)
    vector_s = min(_drive(scenario, vectorized=True)[0] for _ in range(3))
    speedup = scalar_s / vector_s
    cells = _mean_audible_cells(scenario)

    # --- parallel fan-out over a small corpus of independent drives ---
    fleet = [
        freeway_scenario(OPX, BandClass.LOW, length_km=LENGTH_KM / 4, seed=400 + i)
        for i in range(4)
    ]
    serial_s, serial_logs = timer.timed(
        "fleet_serial", lambda: run_drives(fleet, workers=1, use_cache=False)
    )
    workers = min(4, os.cpu_count() or 1)
    parallel_s, parallel_logs = timer.timed(
        "fleet_parallel", lambda: run_drives(fleet, workers=workers, use_cache=False)
    )
    assert [len(l.ticks) for l in serial_logs] == [len(l.ticks) for l in parallel_logs]

    # --- warm-cache pass: the second resolution simulates nothing ---
    cache = DriveCache()
    run_drives([scenario], workers=1, cache=cache)
    warm_s, _ = timer.timed(
        "warm_cache", lambda: run_drives([scenario], workers=1, cache=cache)
    )
    assert cache.enabled is False or cache.stats["hits"] >= 1

    result = {
        "scenario": scenario.name,
        "length_km": LENGTH_KM,
        "ticks": ticks,
        "mean_audible_cells": round(cells, 2),
        "scalar_s": round(scalar_s, 3),
        "vectorized_s": round(vector_s, 3),
        "speedup": round(speedup, 2),
        "ticks_per_s_scalar": round(ticks / scalar_s, 1),
        "ticks_per_s_vectorized": round(ticks / vector_s, 1),
        "cell_ticks_per_s_vectorized": round(cells * ticks / vector_s, 1),
        "fleet_serial_s": round(serial_s, 3),
        "fleet_parallel_s": round(parallel_s, 3),
        "fleet_workers": workers,
        "warm_cache_s": round(warm_s, 3),
        "cache_stats": cache.stats,
        "smoke": SMOKE,
    }
    OUT_PATH.write_text(json.dumps(result, indent=2) + "\n")

    print_header("Simulator throughput")
    print(
        f"  {scenario.name}: {ticks} ticks, ~{cells:.0f} audible cells/tick"
    )
    print(
        f"  scalar  {scalar_s:6.2f}s  ({ticks / scalar_s:8.0f} ticks/s)\n"
        f"  vector  {vector_s:6.2f}s  ({ticks / vector_s:8.0f} ticks/s, "
        f"{cells * ticks / vector_s:,.0f} cell-ticks/s)\n"
        f"  speedup {speedup:.2f}x"
    )
    print(
        f"  fleet of {len(fleet)}: serial {serial_s:.2f}s, "
        f"{workers} workers {parallel_s:.2f}s"
    )
    print(f"  warm cache resolve: {warm_s * 1000:.0f} ms ({cache.stats})")
    print(f"  -> {OUT_PATH.name}")

    if not SMOKE:
        # Acceptance: the vectorized pipeline is >= 5x the scalar baseline.
        assert speedup >= 5.0, f"vectorized speedup {speedup:.2f}x below 5x"
