"""Shared simulation corpus for the reproduction benches.

Every bench regenerates one of the paper's tables/figures from simulated
drive logs. Builders declare *scenarios*; :class:`Corpus` turns them
into logs through :func:`repro.simulate.runner.run_drives`, which
consults the on-disk :class:`~repro.simulate.cache.DriveCache` first
(so a warm cache skips simulation entirely) and fans cache misses out
over ``REPRO_BENCH_WORKERS`` processes. Within a session the logs are
additionally memoised in memory.

Scale: simulating the full 6,200 km corpus is possible but slow; the
benches default to reduced mileage/durations that keep the whole suite
in the tens of minutes while leaving every distribution well-populated.
Set ``REPRO_BENCH_SCALE=full`` for larger runs. ``REPRO_NO_CACHE=1``
disables the disk cache; ``REPRO_CACHE_DIR`` relocates it.
"""

from __future__ import annotations

import os

import pytest

from repro.net.bearer import BearerMode
from repro.radio.bands import BandClass
from repro.ran import OPX, OPY, OPZ
from repro.simulate.cache import DriveCache
from repro.simulate.runner import run_drives
from repro.simulate.scenarios import (
    Scenario,
    city_drive_scenario,
    city_walk_scenario,
    coverage_scenario,
    energy_loop_scenario,
    freeway_scenario,
)

FULL = os.environ.get("REPRO_BENCH_SCALE", "") == "full"


def _x(reduced, full):
    return full if FULL else reduced


class Corpus:
    """Lazily-built, memoised simulation corpus.

    Builders produce :class:`Scenario` objects; ``_get`` resolves them
    into drive logs via the cached, parallel runner.
    """

    def __init__(self):
        self._cache = {}
        self.drive_cache = DriveCache()

    def _get(self, key, builder):
        if key not in self._cache:
            built = builder()
            if isinstance(built, Scenario):
                logs = run_drives([built], cache=self.drive_cache)
                self._cache[key] = logs[0]
            else:
                self._cache[key] = run_drives(built, cache=self.drive_cache)
        return self._cache[key]

    @property
    def cache_stats(self) -> dict[str, int]:
        """Hit/miss/store counters of the on-disk drive cache."""
        return self.drive_cache.stats

    # --- freeway characterization drives (§5.1, Figs. 8-9) ---

    def freeway_low(self):
        return self._get(
            "freeway_low",
            lambda: freeway_scenario(OPX, BandClass.LOW, length_km=_x(20, 60), seed=211),
        )

    def freeway_mmwave(self):
        return self._get(
            "freeway_mmwave",
            lambda: freeway_scenario(
                OPX, BandClass.MMWAVE, length_km=_x(6, 15), seed=212
            ),
        )

    def freeway_mid(self):
        return self._get(
            "freeway_mid",
            lambda: freeway_scenario(OPY, BandClass.MID, length_km=_x(12, 30), seed=213),
        )

    # Multi-seed pools for rate estimates (§5.1): handover spacing has
    # large per-drive variance (spatially correlated shadowing clusters
    # the events), so frequency comparisons pool several seeds instead
    # of leaning on one drive.  Seeds overlap the single-drive builders
    # above so the on-disk cache shares the common entries.

    def freeway_low_pool(self):
        return self._get(
            "freeway_low_pool",
            lambda: [
                freeway_scenario(OPX, BandClass.LOW, length_km=_x(20, 60), seed=s)
                for s in (211, 311, 411)
            ],
        )

    def freeway_mmwave_pool(self):
        return self._get(
            "freeway_mmwave_pool",
            lambda: [
                freeway_scenario(OPX, BandClass.MMWAVE, length_km=_x(6, 15), seed=s)
                for s in (212, 312)
            ],
        )

    def mmwave_drive_pool(self):
        """Freeway + downtown mmWave drives pooled for SCGC statistics.

        SCG Changes are rare (~0.3/km of mmWave driving and absent from
        walks), so Fig. 12's phase stats need tens of km of drives to
        populate.
        """
        return self._get(
            "mmwave_drive_pool",
            lambda: [
                freeway_scenario(OPX, BandClass.MMWAVE, length_km=_x(6, 15), seed=s)
                for s in (212, 312, 412)
            ]
            + [
                city_drive_scenario(OPX, BandClass.MMWAVE, distance_km=_x(12, 20), seed=s)
                for s in (252, 352, 452, 552)
            ],
        )

    def freeway_mid_pool(self):
        return self._get(
            "freeway_mid_pool",
            lambda: [
                freeway_scenario(OPY, BandClass.MID, length_km=_x(12, 30), seed=s)
                for s in (213, 214, 313)
            ],
        )

    def freeway_mid_2(self):
        return self._get(
            "freeway_mid_2",
            lambda: freeway_scenario(OPY, BandClass.MID, length_km=_x(12, 30), seed=214),
        )

    def freeway_opy_low(self):
        return self._get(
            "freeway_opy_low",
            lambda: freeway_scenario(OPY, BandClass.LOW, length_km=_x(15, 40), seed=215),
        )

    def freeway_sa(self):
        return self._get(
            "freeway_sa",
            lambda: freeway_scenario(
                OPY, BandClass.LOW, standalone=True, length_km=_x(15, 40), seed=216
            ),
        )

    def freeway_lte_only(self):
        return self._get(
            "freeway_lte_only",
            lambda: freeway_scenario(OPX, None, length_km=_x(15, 40), seed=217),
        )

    # --- bearer-mode drives (Fig. 7) ---

    def bearer_dual(self):
        return self._get(
            "bearer_dual",
            lambda: freeway_scenario(
                OPX, BandClass.LOW, length_km=_x(10, 25), seed=221,
                bearer=BearerMode.DUAL,
            ),
        )

    def bearer_5g_only(self):
        return self._get(
            "bearer_5g_only",
            lambda: freeway_scenario(
                OPX, BandClass.LOW, length_km=_x(10, 25), seed=221,
                bearer=BearerMode.FIVE_G_ONLY,
            ),
        )

    # --- energy loops (§5.3, Fig. 10) ---

    def energy_lte(self):
        return self._get(
            "energy_lte",
            lambda: energy_loop_scenario(OPX, None, length_km=_x(15, 40), seed=231),
        )

    def energy_low(self):
        return self._get(
            "energy_low",
            lambda: energy_loop_scenario(
                OPX, BandClass.LOW, length_km=_x(15, 40), seed=232
            ),
        )

    def energy_mmwave(self):
        return self._get(
            "energy_mmwave",
            lambda: energy_loop_scenario(
                OPX, BandClass.MMWAVE, length_km=_x(8, 20), seed=233
            ),
        )

    # --- coverage drives (§6.1, Fig. 11) ---

    def coverage_low_nsa(self):
        return self._get(
            "coverage_low_nsa",
            lambda: coverage_scenario(
                OPX, BandClass.LOW, length_km=_x(40, 120), seed=241
            ),
        )

    def coverage_low_sa(self):
        return self._get(
            "coverage_low_sa",
            lambda: coverage_scenario(
                OPY, BandClass.LOW, standalone=True, length_km=_x(40, 120), seed=241
            ),
        )

    def coverage_mid_nsa(self):
        return self._get(
            "coverage_mid_nsa",
            lambda: coverage_scenario(
                OPY, BandClass.MID, length_km=_x(25, 60), seed=242
            ),
        )

    # --- city workloads (Figs. 4-6, 12, 16; §7.4) ---

    def city_drive_low(self):
        return self._get(
            "city_drive_low",
            lambda: city_drive_scenario(
                OPX, BandClass.LOW, distance_km=_x(6, 14), seed=251
            ),
        )

    def city_drive_mmwave(self):
        return self._get(
            "city_drive_mmwave",
            lambda: city_drive_scenario(
                OPX, BandClass.MMWAVE, distance_km=_x(6, 14), seed=252
            ),
        )

    def mmwave_walk(self):
        """The §6.2 iPerf walk: 35+ minutes of mmWave downtown."""
        return self._get(
            "mmwave_walk",
            lambda: city_walk_scenario(
                OPX, (BandClass.MMWAVE,), duration_min=_x(25, 35), seed=253
            ),
        )

    def low_band_walk(self):
        return self._get(
            "low_band_walk",
            lambda: city_walk_scenario(
                OPX, (BandClass.LOW,), duration_min=_x(15, 25), seed=254
            ),
        )

    # --- Prognos datasets (§7.3) ---

    def d1(self):
        return self._get(
            "d1",
            lambda: [
                city_walk_scenario(
                    OPX, (BandClass.MMWAVE,), duration_min=_x(18, 35), seed=261 + i
                )
                for i in range(_x(2, 7))
            ],
        )

    def d2(self):
        return self._get(
            "d2",
            lambda: [
                city_walk_scenario(
                    OPX,
                    (BandClass.MMWAVE, BandClass.LOW),
                    duration_min=_x(14, 25),
                    seed=281 + i,
                )
                for i in range(_x(3, 10))
            ],
        )


@pytest.fixture(scope="session")
def corpus():
    corpus = Corpus()
    yield corpus
    stats = corpus.cache_stats
    if stats["hits"] or stats["misses"]:
        print(
            f"\n[drive-cache] hits={stats['hits']} misses={stats['misses']} "
            f"stores={stats['stores']} root={corpus.drive_cache.root}"
        )


def print_header(title: str) -> None:
    print(f"\n=== {title} " + "=" * max(8, 70 - len(title)))
