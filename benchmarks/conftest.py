"""Shared simulation corpus for the reproduction benches.

Every bench regenerates one of the paper's tables/figures from simulated
drive logs. The logs themselves are produced once per session and cached
here; the ``benchmark`` fixture then times the *analysis* step that turns
raw logs into the paper's numbers.

Scale: simulating the full 6,200 km corpus is possible but slow; the
benches default to reduced mileage/durations that keep the whole suite
in the tens of minutes while leaving every distribution well-populated.
Set ``REPRO_BENCH_SCALE=full`` for larger runs.
"""

from __future__ import annotations

import os

import pytest

from repro.net.bearer import BearerMode
from repro.radio.bands import BandClass
from repro.ran import OPX, OPY, OPZ
from repro.simulate.scenarios import (
    city_drive_scenario,
    city_walk_scenario,
    coverage_scenario,
    energy_loop_scenario,
    freeway_scenario,
)

FULL = os.environ.get("REPRO_BENCH_SCALE", "") == "full"


def _x(reduced, full):
    return full if FULL else reduced


class Corpus:
    """Lazily-built, memoised simulation corpus."""

    def __init__(self):
        self._cache = {}

    def _get(self, key, builder):
        if key not in self._cache:
            self._cache[key] = builder()
        return self._cache[key]

    # --- freeway characterization drives (§5.1, Figs. 8-9) ---

    def freeway_low(self):
        return self._get(
            "freeway_low",
            lambda: freeway_scenario(
                OPX, BandClass.LOW, length_km=_x(20, 60), seed=211
            ).run(),
        )

    def freeway_mmwave(self):
        return self._get(
            "freeway_mmwave",
            lambda: freeway_scenario(
                OPX, BandClass.MMWAVE, length_km=_x(6, 15), seed=212
            ).run(),
        )

    def freeway_mid(self):
        return self._get(
            "freeway_mid",
            lambda: freeway_scenario(
                OPY, BandClass.MID, length_km=_x(12, 30), seed=213
            ).run(),
        )

    def freeway_mid_2(self):
        return self._get(
            "freeway_mid_2",
            lambda: freeway_scenario(
                OPY, BandClass.MID, length_km=_x(12, 30), seed=214
            ).run(),
        )

    def freeway_opy_low(self):
        return self._get(
            "freeway_opy_low",
            lambda: freeway_scenario(
                OPY, BandClass.LOW, length_km=_x(15, 40), seed=215
            ).run(),
        )

    def freeway_sa(self):
        return self._get(
            "freeway_sa",
            lambda: freeway_scenario(
                OPY, BandClass.LOW, standalone=True, length_km=_x(15, 40), seed=216
            ).run(),
        )

    def freeway_lte_only(self):
        return self._get(
            "freeway_lte_only",
            lambda: freeway_scenario(OPX, None, length_km=_x(15, 40), seed=217).run(),
        )

    # --- bearer-mode drives (Fig. 7) ---

    def bearer_dual(self):
        return self._get(
            "bearer_dual",
            lambda: freeway_scenario(
                OPX, BandClass.LOW, length_km=_x(10, 25), seed=221,
                bearer=BearerMode.DUAL,
            ).run(),
        )

    def bearer_5g_only(self):
        return self._get(
            "bearer_5g_only",
            lambda: freeway_scenario(
                OPX, BandClass.LOW, length_km=_x(10, 25), seed=221,
                bearer=BearerMode.FIVE_G_ONLY,
            ).run(),
        )

    # --- energy loops (§5.3, Fig. 10) ---

    def energy_lte(self):
        return self._get(
            "energy_lte",
            lambda: energy_loop_scenario(OPX, None, length_km=_x(15, 40), seed=231).run(),
        )

    def energy_low(self):
        return self._get(
            "energy_low",
            lambda: energy_loop_scenario(
                OPX, BandClass.LOW, length_km=_x(15, 40), seed=232
            ).run(),
        )

    def energy_mmwave(self):
        return self._get(
            "energy_mmwave",
            lambda: energy_loop_scenario(
                OPX, BandClass.MMWAVE, length_km=_x(8, 20), seed=233
            ).run(),
        )

    # --- coverage drives (§6.1, Fig. 11) ---

    def coverage_low_nsa(self):
        return self._get(
            "coverage_low_nsa",
            lambda: coverage_scenario(
                OPX, BandClass.LOW, length_km=_x(40, 120), seed=241
            ).run(),
        )

    def coverage_low_sa(self):
        return self._get(
            "coverage_low_sa",
            lambda: coverage_scenario(
                OPY, BandClass.LOW, standalone=True, length_km=_x(40, 120), seed=241
            ).run(),
        )

    def coverage_mid_nsa(self):
        return self._get(
            "coverage_mid_nsa",
            lambda: coverage_scenario(
                OPY, BandClass.MID, length_km=_x(25, 60), seed=242
            ).run(),
        )

    # --- city workloads (Figs. 4-6, 12, 16; §7.4) ---

    def city_drive_low(self):
        return self._get(
            "city_drive_low",
            lambda: city_drive_scenario(
                OPX, BandClass.LOW, distance_km=_x(6, 14), seed=251
            ).run(),
        )

    def city_drive_mmwave(self):
        return self._get(
            "city_drive_mmwave",
            lambda: city_drive_scenario(
                OPX, BandClass.MMWAVE, distance_km=_x(6, 14), seed=252
            ).run(),
        )

    def mmwave_walk(self):
        """The §6.2 iPerf walk: 35+ minutes of mmWave downtown."""
        return self._get(
            "mmwave_walk",
            lambda: city_walk_scenario(
                OPX, (BandClass.MMWAVE,), duration_min=_x(25, 35), seed=253
            ).run(),
        )

    def low_band_walk(self):
        return self._get(
            "low_band_walk",
            lambda: city_walk_scenario(
                OPX, (BandClass.LOW,), duration_min=_x(15, 25), seed=254
            ).run(),
        )

    # --- Prognos datasets (§7.3) ---

    def d1(self):
        return self._get(
            "d1",
            lambda: [
                city_walk_scenario(
                    OPX, (BandClass.MMWAVE,), duration_min=_x(18, 35), seed=261 + i
                ).run()
                for i in range(_x(2, 7))
            ],
        )

    def d2(self):
        return self._get(
            "d2",
            lambda: [
                city_walk_scenario(
                    OPX,
                    (BandClass.MMWAVE, BandClass.LOW),
                    duration_min=_x(14, 25),
                    seed=281 + i,
                ).run()
                for i in range(_x(3, 10))
            ],
        )


@pytest.fixture(scope="session")
def corpus():
    return Corpus()


def print_header(title: str) -> None:
    print(f"\n=== {title} " + "=" * max(8, 70 - len(title)))
