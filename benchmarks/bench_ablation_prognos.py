"""Ablations of Prognos's design choices (DESIGN.md §5).

* Two-stage decoupling (§7.2's core claim): Prognos's MR-inference +
  decision-logic pipeline vs. the monolithic feature->HO mapping (the
  GBC baseline plays that role, §7.3).
* Sanity checks: disabling the radio-context filter admits impossible
  predictions and costs precision.
* Eviction: disabling freshness eviction lets the pattern set grow
  without bound.
* Prediction window: longer windows trade precision for lead time.
"""

from repro.core.evaluation import (
    configs_for_log,
    evaluate_gbc,
    evaluate_prognos,
    run_prognos_over_logs,
)
from repro.core.prognos import PrognosConfig
from repro.radio.bands import BandClass
from repro.ran import OPX

from conftest import print_header


def test_ablation_two_stage_vs_monolithic(benchmark, corpus):
    logs = corpus.d1()[:2]

    def analyse():
        prognos, _ = evaluate_prognos(logs, OPX, (BandClass.MMWAVE,), stride=2)
        monolithic = evaluate_gbc(logs)
        return prognos, monolithic

    prognos, monolithic = benchmark.pedantic(analyse, rounds=1, iterations=1)
    print_header("Ablation: two-stage pipeline vs monolithic model")
    print(f"  two-stage (Prognos) F1 {prognos.f1:.3f}")
    print(f"  monolithic (GBC)    F1 {monolithic.f1:.3f}")
    assert prognos.f1 > monolithic.f1 + 0.15


def test_ablation_sanity_checks(benchmark, corpus):
    logs = corpus.d1()[:2]
    configs = configs_for_log(OPX, (BandClass.MMWAVE,))

    def analyse():
        with_checks = run_prognos_over_logs(logs, configs, stride=2)
        without_checks = run_prognos_over_logs(
            logs, configs, stride=2, config=PrognosConfig(use_sanity_checks=False)
        )
        return with_checks.report(), without_checks.report()

    with_checks, without_checks = benchmark.pedantic(analyse, rounds=1, iterations=1)
    print_header("Ablation: radio-context sanity checks")
    print(f"  with checks    F1 {with_checks.f1:.3f} precision {with_checks.precision:.3f}")
    print(f"  without checks F1 {without_checks.f1:.3f} precision {without_checks.precision:.3f}")
    assert with_checks.f1 >= without_checks.f1 - 0.02


def test_ablation_eviction(benchmark, corpus):
    logs = corpus.d1()[:2]
    configs = configs_for_log(OPX, (BandClass.MMWAVE,))

    def analyse():
        evicting = run_prognos_over_logs(
            logs, configs, stride=2, config=PrognosConfig(freshness_horizon_phases=40)
        )
        hoarding = run_prognos_over_logs(
            logs, configs, stride=2, config=PrognosConfig(use_eviction=False)
        )
        return evicting, hoarding

    evicting, hoarding = benchmark.pedantic(analyse, rounds=1, iterations=1)
    print_header("Ablation: freshness-based pattern eviction")
    print(
        f"  evicting: {evicting.learner_stats.live_patterns} live patterns, "
        f"F1 {evicting.report().f1:.3f}"
    )
    print(
        f"  hoarding: {hoarding.learner_stats.live_patterns} live patterns, "
        f"F1 {hoarding.report().f1:.3f}"
    )
    # Eviction keeps the set strictly smaller without losing accuracy.
    assert evicting.learner_stats.live_patterns <= hoarding.learner_stats.live_patterns
    assert evicting.report().f1 >= hoarding.report().f1 - 0.1


def test_ablation_prediction_window(benchmark, corpus):
    logs = corpus.d1()[:1]
    configs = configs_for_log(OPX, (BandClass.MMWAVE,))

    def analyse():
        out = {}
        for window in (0.5, 1.0, 2.0):
            result = run_prognos_over_logs(
                logs,
                configs,
                stride=2,
                window_s=window,
                config=PrognosConfig(prediction_window_s=window),
            )
            out[window] = result.report()
        return out

    reports = benchmark.pedantic(analyse, rounds=1, iterations=1)
    print_header("Ablation: prediction-window sweep")
    for window, report in reports.items():
        print(f"  window {window:.1f}s  F1 {report.f1:.3f}  recall {report.recall:.3f}")
    # Every window setting must keep the system usable.
    assert all(report.f1 > 0.3 for report in reports.values())
