"""Fig. 10 — handover power/energy: LTE vs NSA low-band vs NSA mmWave.

Paper targets: NSA handovers draw 1.2-2.3x the power of LTE handovers;
a single mmWave HO runs at ~54% lower power than a low-band NSA HO yet
mmWave costs 1.9-2.4x more energy per km (sheer frequency).
"""

from repro.analysis import energy_breakdown
from repro.analysis.frequency import FIVE_G_NSA_TYPES, FOUR_G_TYPES
from repro.radio.bands import BandClass
from repro.rrc.taxonomy import HandoverType
from repro.ue.energy import EnergyModel
from repro.ue.state import RadioMode

from conftest import print_header


def test_fig10_handover_energy(benchmark, corpus):
    lte_log = corpus.energy_lte()
    low_log = corpus.energy_low()
    mmwave_log = corpus.energy_mmwave()

    def analyse():
        return {
            "LTE (mid)": energy_breakdown([lte_log], FOUR_G_TYPES),
            "NSA low": energy_breakdown([low_log], FIVE_G_NSA_TYPES),
            "NSA mmWave": energy_breakdown([mmwave_log], FIVE_G_NSA_TYPES),
        }

    rows = benchmark.pedantic(analyse, rounds=1, iterations=1)
    print_header("Fig. 10: per-HO power and per-km energy")
    for name, b in rows.items():
        print(
            f"  {name:11s} HOs {b.handover_count:4d} over {b.distance_km:5.1f} km | "
            f"per-HO {1000 * b.mean_energy_per_ho_mah:6.1f} uAh | "
            f"per-km {b.energy_per_km_mah:6.3f} mAh"
        )

    # Per-HO *power* ratios come from the calibrated model itself.
    model = EnergyModel(__import__("numpy").random.default_rng(0), jitter=0.0)
    lte_p = model.for_handover(HandoverType.LTEH, RadioMode.LTE, None).power_w
    low_p = model.for_handover(HandoverType.SCGM, RadioMode.NSA, BandClass.LOW).power_w
    mm_p = model.for_handover(HandoverType.SCGM, RadioMode.NSA, BandClass.MMWAVE).power_w
    print(f"  per-HO power: LTE {lte_p:.2f} W | NSA low {low_p:.2f} W | mmWave {mm_p:.2f} W")
    print(f"  NSA/LTE power ratio {low_p / lte_p:.2f}x (paper 1.2-2.3x)")
    print(f"  mmWave vs low power {100 * (1 - mm_p / low_p):.0f}% lower (paper ~54%)")
    assert 1.2 <= low_p / lte_p <= 2.3
    assert 0.4 <= 1 - mm_p / low_p <= 0.65

    # Per-km energy: mmWave 1.9-2.4x low-band (paper); we accept a loose band.
    per_km_ratio = rows["NSA mmWave"].energy_per_km_mah / rows["NSA low"].energy_per_km_mah
    print(f"  mmWave/low per-km energy {per_km_ratio:.2f}x (paper 1.9-2.4x)")
    assert 1.3 <= per_km_ratio <= 3.5
    # NSA low-band per-km energy far above LTE's.
    assert rows["NSA low"].energy_per_km_mah > 4 * rows["LTE (mid)"].energy_per_km_mah
