"""Fig. 16 (Appendix A.3) — throughput phases for every HO type, mmWave.

Paper targets: SCG Addition multiplies throughput ~17x (the mmWave leg
comes up over LTE-only service); SCG Release divides it ~7x; SCG
Modification gains ~43% post-HO; LTEH changes little; horizontal HOs
collapse 1.5-4.8x during execution. The same ratios feed ho_score.
"""

from repro.analysis import ho_score_table, phase_throughput
from repro.rrc.taxonomy import HandoverType

from conftest import print_header

TYPES = (
    HandoverType.SCGM,
    HandoverType.SCGC,
    HandoverType.SCGA,
    HandoverType.SCGR,
    HandoverType.LTEH,
)


def test_fig16_all_types_throughput(benchmark, corpus):
    logs = [corpus.mmwave_walk(), corpus.freeway_mmwave()]

    def analyse():
        phases = {t: phase_throughput(logs, t) for t in TYPES}
        return phases, ho_score_table(logs)

    phases, scores = benchmark.pedantic(analyse, rounds=1, iterations=1)
    print_header("Fig. 16: throughput phases per HO type (Mbps, mmWave)")
    for ho_type, p in phases.items():
        if p is None:
            print(f"  {ho_type.name:5s} (no samples)")
            continue
        print(
            f"  {ho_type.name:5s} pre {p.pre.mean:7.0f}  exec {p.execute.mean:7.0f}  "
            f"post {p.post.mean:7.0f}  post/pre {p.mean_post_over_pre:5.2f}"
        )
    print("  empirical ho_score (median post/pre):")
    for ho_type, score in scores.items():
        print(f"    {ho_type.name:5s} {score:6.2f}")

    scga, scgr = phases[HandoverType.SCGA], phases[HandoverType.SCGR]
    scgm = phases[HandoverType.SCGM]
    assert scga is not None and scgr is not None and scgm is not None
    # Vertical handovers: addition is a large multiplier, release a
    # large divider (paper: ~17x up, ~7x down).
    assert scga.mean_post_over_pre > 3.0
    assert scgr.mean_post_over_pre < 0.5
    # SCGM improves (paper ~ +43%); execution collapses vs pre.
    assert scgm.mean_post_over_pre > 1.0
    assert scgm.execute.mean < scgm.pre.mean
