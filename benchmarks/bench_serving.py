"""Serving-layer throughput: micro-batched engine vs per-session serving.

A forked :class:`~repro.serve.server.PrognosServer` is driven closed
loop by :mod:`repro.serve.loadgen`: every client replays a simulated
drive tick by tick over TCP (reports and handover commands interleaved
at their replay positions), pacing itself on the returned predictions
exactly like a UE-side Prognos client would. Both engine modes serve
the identical script set; the ``"dropped"`` accounting stays at zero so
every latency sample corresponds to a served tick.

Correctness is asserted unconditionally: each session's prediction
stream must be bit-identical to the offline
:func:`~repro.core.evaluation.run_prognos_over_logs` replay of its
drive, and the batched and sequential streams must agree on every field
(including the MPC bitrate decisions). The ≥3x sessions/sec gate runs
under the repo's usual timing-assert convention (multi-core, non-smoke).

``test_shard_scaling`` sweeps the multi-core serving layer
(:mod:`repro.serve.shard`): the same fixed session cohort against 1,
2, 4, and ``cpu_count()`` engine shard processes, load-generated from
a matching number of forked client processes, recording sessions/s,
latency percentiles, and scaling efficiency. Every swept run is held
to the same offline bit-identity bar.

Results land in ``BENCH_serving.json`` at the repo root.
``REPRO_BENCH_SMOKE=1`` shrinks drives and cohort to a CI smoke budget.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import time
from functools import partial
from pathlib import Path

from repro.core.evaluation import configs_for_log, run_prognos_over_logs
from repro.radio.bands import BandClass
from repro.ran import OPX
from repro.robust import faults
from repro.serve.loadgen import build_script, run_load, spawn_server, stop_server
from repro.serve.server import PrognosServer, ServerConfig
from repro.serve.shard import ShardedPrognosServer
from repro.simulate.runner import run_drives
from repro.simulate.scenarios import freeway_scenario

from conftest import print_header

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"
DRIVES = 2 if SMOKE else 3
LENGTH_KM = 1.2 if SMOKE else 3.0
SESSIONS = 6 if SMOKE else 24
OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_serving.json"


def _run_mode(batched: bool, scripts):
    # shards pinned to 1: this comparison isolates the micro-batch
    # engine itself from multi-process scaling (swept separately below).
    pid, port = spawn_server(ServerConfig(batched=batched, shards=1))
    try:
        start = time.perf_counter()
        result = run_load(port, scripts, collect=True)
        wall_s = time.perf_counter() - start
    finally:
        exit_code = stop_server(pid)
    assert exit_code == 0, "serving daemon did not exit cleanly"
    assert result.failed == 0 and result.completed == len(scripts)
    for script in scripts:
        bye = result.byes[script.session_id]
        assert bye["answered"] == script.n_ticks
        assert bye["dropped"] == 0 and bye["lost"] == 0
    return result, wall_s


def test_serving_throughput(corpus):
    logs = run_drives(
        [
            freeway_scenario(OPX, BandClass.LOW, length_km=LENGTH_KM, seed=331 + i)
            for i in range(DRIVES)
        ],
        cache=corpus.drive_cache,
    )
    configs = configs_for_log(OPX, (BandClass.LOW,))

    # Offline oracle per drive: the served stream must reproduce it.
    offline = []
    for log in logs:
        run = run_prognos_over_logs([log], configs)
        offline.append(
            [(float(t), p) for t, p in zip(run.times_s, run.predictions)]
        )

    scripts = [
        build_script(logs[i % DRIVES], f"ue-{i:03d}", configs)
        for i in range(SESSIONS)
    ]
    total_ticks = sum(s.n_ticks for s in scripts)

    by_mode = {}
    for mode in ("sequential", "batched"):
        result, wall_s = _run_mode(mode == "batched", scripts)
        for i, script in enumerate(scripts):
            expected = offline[i % DRIVES]
            got = result.predictions[script.session_id]
            assert len(got) == len(expected)
            for (t, ho, _sc, _sim, _lead, _lvl), (rt, rho) in zip(got, expected):
                assert t == rt and ho is rho, (
                    f"{mode} serving diverged from the offline replay "
                    f"({script.session_id} @ t={t})"
                )
        by_mode[mode] = (result, wall_s)
    sequential, batched = by_mode["sequential"][0], by_mode["batched"][0]
    assert batched.predictions == sequential.predictions

    speedup = batched.sessions_per_s / sequential.sessions_per_s
    cpus = os.cpu_count() or 1
    if cpus >= 2 and not SMOKE:
        assert speedup >= 3.0, (
            f"micro-batching must clear 3x closed-loop throughput "
            f"(got {speedup:.2f}x)"
        )

    result = {
        "drives": DRIVES,
        "length_km": LENGTH_KM,
        "sessions": SESSIONS,
        "ticks_per_session_total": total_ticks,
        "sequential": sequential.summary(),
        "batched": batched.summary(),
        "speedup_sessions_per_s": round(speedup, 2),
        "speedup_ticks_per_s": round(
            batched.ticks_per_s / sequential.ticks_per_s, 2
        ),
        "identical_to_offline": True,
        "cpus": cpus,
        "smoke": SMOKE,
    }
    OUT_PATH.write_text(json.dumps(result, indent=2) + "\n")

    print_header("Serving layer: micro-batched vs per-session sequential")
    print(
        f"  corpus: {DRIVES} freeway drive(s) x {LENGTH_KM} km, "
        f"{SESSIONS} sessions, {total_ticks} ticks"
    )
    for mode, (res, _wall) in by_mode.items():
        print(
            f"  {mode:>10}: {res.sessions_per_s:8.3f} sessions/s  "
            f"{res.ticks_per_s:9.1f} ticks/s  "
            f"p50 {res.p50_ms:7.3f} ms  p99 {res.p99_ms:8.3f} ms  "
            f"p99.9 {res.p999_ms:8.3f} ms"
        )
    print(f"  speedup: {speedup:.2f}x sessions/s (identical prediction streams)")


def test_shard_scaling(corpus):
    """Core-scaling sweep: fixed cohort, growing engine shard counts."""
    cpus = os.cpu_count() or 1
    shard_counts = sorted({1, 2, 4, cpus})
    shard_counts = [n for n in shard_counts if n <= max(2, cpus)]

    logs = run_drives(
        [
            freeway_scenario(OPX, BandClass.LOW, length_km=LENGTH_KM, seed=331 + i)
            for i in range(DRIVES)
        ],
        cache=corpus.drive_cache,
    )
    configs = configs_for_log(OPX, (BandClass.LOW,))
    offline = []
    for log in logs:
        run = run_prognos_over_logs([log], configs)
        offline.append(
            [(float(t), p) for t, p in zip(run.times_s, run.predictions)]
        )
    scripts = [
        build_script(logs[i % DRIVES], f"ue-{i:03d}", configs)
        for i in range(SESSIONS)
    ]

    sweep = []
    for n_shards in shard_counts:
        # The load generator forks alongside the server so a single
        # client core can never be the bottleneck being measured.
        processes = min(n_shards, 8)
        pid, port = spawn_server(
            ServerConfig(batched=True, shards=n_shards, routing="auto")
        )
        try:
            result = run_load(port, scripts, collect=True, processes=processes)
        finally:
            exit_code = stop_server(pid)
        assert exit_code == 0, f"{n_shards}-shard daemon did not exit cleanly"
        assert result.failed == 0 and result.completed == len(scripts)
        for i, script in enumerate(scripts):
            bye = result.byes[script.session_id]
            assert bye["answered"] == script.n_ticks
            assert bye["dropped"] == 0 and bye["lost"] == 0
            expected = offline[i % DRIVES]
            got = result.predictions[script.session_id]
            assert len(got) == len(expected)
            for (t, ho, _sc, _sim, _lead, _lvl), (rt, rho) in zip(got, expected):
                assert t == rt and ho is rho, (
                    f"{n_shards}-shard serving diverged from the offline "
                    f"replay ({script.session_id} @ t={t})"
                )
        entry = result.summary()
        entry["shards"] = n_shards
        entry["loadgen_processes"] = processes
        sweep.append(entry)

    baseline = sweep[0]["sessions_per_s"]
    for entry in sweep:
        entry["speedup_vs_1_shard"] = round(entry["sessions_per_s"] / baseline, 3)
        entry["scaling_efficiency"] = round(
            entry["speedup_vs_1_shard"] / entry["shards"], 3
        )
    at_cpus = next(e for e in sweep if e["shards"] == min(cpus, max(shard_counts)))
    if not SMOKE:
        if cpus >= 4:
            assert at_cpus["speedup_vs_1_shard"] >= 1.8, (
                f"{at_cpus['shards']} shards on {cpus} cores must clear 1.8x "
                f"one shard (got {at_cpus['speedup_vs_1_shard']:.2f}x)"
            )
        else:
            # Single-core (and 2-3 core) guard: the sharded path must
            # not tank throughput even without cores to scale onto.
            assert at_cpus["speedup_vs_1_shard"] >= 0.9, (
                f"sharding regressed throughput on {cpus} core(s) "
                f"(got {at_cpus['speedup_vs_1_shard']:.2f}x)"
            )

    payload = json.loads(OUT_PATH.read_text()) if OUT_PATH.exists() else {}
    payload["shard_scaling"] = {
        "cpus": cpus,
        "sessions": SESSIONS,
        "smoke": SMOKE,
        "sweep": sweep,
        "identical_to_offline": True,
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    print_header("Serving layer: engine shard scaling")
    print(f"  {cpus} cpu(s), {SESSIONS} sessions per run")
    for entry in sweep:
        print(
            f"  {entry['shards']:>2} shard(s): {entry['sessions_per_s']:8.3f} "
            f"sessions/s  p50 {entry['p50_ms']:7.3f} ms  "
            f"p99 {entry['p99_ms']:8.3f} ms  "
            f"{entry['speedup_vs_1_shard']:5.2f}x "
            f"(efficiency {entry['scaling_efficiency']:.2f})"
        )


# ----------------------------------------------------------------------
# Resilience: chaos survival, resume latency, shed/evict accounting
# ----------------------------------------------------------------------

CHAOS_SPEC = (
    "conn_reset:p=0.03,"
    "frame_truncate:p=0.015,"
    "byte_corrupt:p=0.015,"
    "stall_s:p=0.01:hang_s=0.3,"
    "reconnect_storm:p=0.01"
)
RES_SESSIONS = 4 if SMOKE else 8
RES_LENGTH_KM = 1.0 if SMOKE else 1.6


def test_serving_resilience(corpus, monkeypatch):
    """The full degradation gauntlet in one run — network chaos, a
    SIGKILLed shard, a rolling drain — against the stream-invariant
    bar, recording resume latency and the shed/evict counters."""
    logs = run_drives(
        [
            freeway_scenario(OPX, BandClass.LOW, length_km=RES_LENGTH_KM, seed=411 + i)
            for i in range(2)
        ],
        cache=corpus.drive_cache,
    )
    configs = configs_for_log(OPX, (BandClass.LOW,))
    offline = []
    for log in logs:
        run = run_prognos_over_logs([log], configs)
        offline.append(
            [(float(t), p) for t, p in zip(run.times_s, run.predictions)]
        )
    scripts = [
        build_script(logs[i % 2], f"ue-{i:03d}", configs)
        for i in range(RES_SESSIONS)
    ]
    monkeypatch.setenv(faults.ENV_VAR, CHAOS_SPEC)
    faults.reset()

    config = ServerConfig(
        batched=True, shards=2, routing="auto", heartbeat_s=1.0, drain_s=2.0
    )

    async def chaos_run():
        async with ShardedPrognosServer(config) as server:
            loop = asyncio.get_running_loop()
            start = time.perf_counter()
            future = loop.run_in_executor(
                None,
                partial(run_load, server.port, scripts, collect=True, chaos=True),
            )
            await asyncio.sleep(0.6)
            os.kill(server._shards[0].pid, signal.SIGKILL)
            await asyncio.sleep(0.6)
            await server.rolling_drain(1.0)
            result = await future
            wall_s = time.perf_counter() - start
            stats = await server.stats()
        return result, stats, wall_s

    result, stats, wall_s = asyncio.run(chaos_run())
    assert result.failed == 0 and result.completed == RES_SESSIONS
    assert result.resumes > 0, "the chaos spec never bit"
    for i, script in enumerate(scripts):
        expected = offline[i % 2][: script.n_ticks]
        got = result.predictions[script.session_id]
        assert len(got) == len(expected)
        for (t, ho, _sc, _sim, _lead, _lvl), (rt, rho) in zip(got, expected):
            assert t == rt and ho is rho, (
                f"chaos serving diverged from the offline replay "
                f"({script.session_id} @ t={t})"
            )

    # Admission probe: a ceiling at half the cohort sheds hellos with
    # retry_after; every shed client retries in and still completes.
    pid, port = spawn_server(
        ServerConfig(
            batched=True, shards=1, max_sessions=max(2, RES_SESSIONS // 2)
        )
    )
    try:
        admission = run_load(port, scripts, resume=True)
    finally:
        assert stop_server(pid) == 0
    assert admission.failed == 0 and admission.completed == RES_SESSIONS
    assert admission.shed > 0, "the admission ceiling never bit"

    # Eviction probe: stalls past twice the heartbeat trip the
    # dead-peer sweep; the stalled clients resume and finish anyway.
    monkeypatch.setenv(faults.ENV_VAR, "stall_s:p=0.02:hang_s=1.0")
    faults.reset()

    async def evict_run():
        async with PrognosServer(
            ServerConfig(batched=True, heartbeat_s=0.4)
        ) as server:
            loop = asyncio.get_running_loop()
            result = await loop.run_in_executor(
                None,
                partial(run_load, server.port, scripts[:4], chaos=True),
            )
            return result, server.stats()

    evict_result, evict_stats = asyncio.run(evict_run())
    faults.reset()
    assert evict_result.failed == 0 and evict_result.completed == 4
    assert evict_stats["evicted_dead"] > 0, "no stall tripped the sweeper"

    entry = {
        "sessions": RES_SESSIONS,
        "length_km": RES_LENGTH_KM,
        "chaos_spec": CHAOS_SPEC,
        "wall_s": round(wall_s, 3),
        "resets": result.resets,
        "resumes": result.resumes,
        "restarts": result.restarts,
        "resume_p50_ms": round(result.resume_p50_ms, 3),
        "resume_p99_ms": round(result.resume_p99_ms, 3),
        "shed": admission.shed,
        "evicted_dead": evict_stats["evicted_dead"],
        "evicted_idle": evict_stats["evicted_idle"],
        "shard_crash_restarts": stats["restarts"],
        "orphans_claimed": stats["orphans_claimed"],
        "identical_to_offline": True,
        "smoke": SMOKE,
    }
    payload = json.loads(OUT_PATH.read_text()) if OUT_PATH.exists() else {}
    payload["resilience"] = entry
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    print_header("Serving layer: resilience under network chaos")
    print(
        f"  {RES_SESSIONS} sessions, kill+rolling-drain, spec {CHAOS_SPEC}"
    )
    print(
        f"  resets {result.resets}  resumes {result.resumes}  "
        f"restarts {result.restarts}  resume p50 "
        f"{result.resume_p50_ms:.3f} ms  p99 {result.resume_p99_ms:.3f} ms"
    )
    print(
        f"  shed {admission.shed}  evicted_dead {evict_stats['evicted_dead']}  "
        f"(streams identical to offline)"
    )
