"""Fig. 4 / §4.1 — live video conferencing during handovers.

Paper targets: average latency 2.26x higher in HO windows (up to 14.5x);
average packet loss 2.24x higher.
"""

from repro.apps import ConferencingModel

from conftest import print_header


def test_fig04_conferencing_qoe(benchmark, corpus):
    log = corpus.city_drive_low()

    def analyse():
        return ConferencingModel(seed=41).run(log)

    result = benchmark.pedantic(analyse, rounds=1, iterations=1)
    print_header("Fig. 4: Zoom-style call, NSA low-band city drive")
    lat, loss = result.latency_comparison, result.loss_comparison
    print(
        f"  latency: w/ HO {lat.with_ho_mean:6.1f} ms vs w/o {lat.without_ho_mean:6.1f} ms"
        f" -> x{lat.mean_ratio:.2f} (paper x2.26), worst x{lat.max_ratio:.1f} (paper x14.5)"
    )
    print(
        f"  loss:    w/ HO {loss.with_ho_mean:5.2f}% vs w/o {loss.without_ho_mean:5.2f}%"
        f" -> x{loss.mean_ratio:.2f} (paper x2.24)"
    )
    assert lat.mean_ratio > 1.2
    assert lat.max_ratio > 4.0
    assert loss.mean_ratio > 1.5
