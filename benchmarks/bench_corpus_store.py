"""Out-of-core corpus store: build resumability, open latency, peak RSS.

The sharded :class:`~repro.simulate.corpus.CorpusStore` replaces
decompress-and-materialise per-drive ``.npz`` loads with read-only
``np.memmap`` slices over uncompressed shard blobs. This bench prices
the claims:

* **Cold vs. resumed build** — a corpus build killed mid-run (hard
  ``os._exit`` after k of n appends, in a forked child) resumes on
  rerun from the committed shards: exactly n−k drives simulate, and the
  resumed build's wall-clock reflects only the missing work.
* **Warm open latency** — ``open_slice`` (mmap + header arithmetic) vs.
  ``load_columnar`` (zlib decompress) per drive.
* **Peak RSS** — a full-corpus §5.1 frequency + §5.3 energy scan in a
  forked child, store leg (columnar analyses over memmap slices)
  vs. ``.npz`` leg (materialise every ``DriveLog``, list-based
  reference analyses — today's consumer pattern), measured by
  ``ru_maxrss``. Both children fork from the same parent state, so the
  inherited baseline cancels.
* **Bytes mapped vs. bytes read** — the whole corpus is mapped, but the
  scan faults in only the columns it touches.

Results land in ``BENCH_corpus_store.json`` at the repo root.
``REPRO_BENCH_SMOKE=1`` shrinks the corpus to a CI smoke budget. The
store directories are bench-private temp dirs — the shared drive cache
and ``REPRO_CORPUS_DIR`` are never touched.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import resource
import tempfile
from pathlib import Path

import pytest

from repro.analysis.energy import energy_breakdown, energy_breakdown_reference
from repro.analysis.frequency import (
    FIVE_G_NSA_TYPES,
    frequency_breakdown,
    frequency_breakdown_reference,
)
from repro.perf import Timer
from repro.radio.bands import BandClass
from repro.ran import OPX
from repro.simulate.cache import DriveCache
from repro.simulate.columnar import load_columnar
from repro.simulate.corpus import CorpusStore
from repro.simulate.runner import default_workers, run_drives_to_store
from repro.simulate.scenarios import freeway_scenario

from conftest import print_header

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"
DRIVES = 4 if SMOKE else 8
LENGTH_KM = 2.0 if SMOKE else 6.0
OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_corpus_store.json"

#: Columns the §5.1 + §5.3 scans actually touch (bytes-read accounting).
_SCANNED_KEYS = (
    "tick_arc_m",
    "enum_ho_types",
    "ho_type",
    "ho_signaling",
    "ho_energy_j",
    "ho_t1_ms",
    "ho_t2_ms",
)


def _scenarios():
    return [
        freeway_scenario(OPX, BandClass.LOW, length_km=LENGTH_KM, seed=611 + i)
        for i in range(DRIVES)
    ]


def _analyse_store(root, drive_ids):
    """Full-corpus scan over memmap slices: nothing materialised."""
    store = CorpusStore(root, enabled=True)
    slices = [store.open_slice(d) for d in drive_ids]
    freq = frequency_breakdown(slices)
    energy = energy_breakdown(slices, FIVE_G_NSA_TYPES)
    return (freq.distance_km, freq.spacing_5g_nsa_km, energy.energy_per_km_j)


def _analyse_npz(paths):
    """The pre-store consumer pattern: every log decompressed + rebuilt."""
    logs = [load_columnar(p).to_drive_log() for p in paths]
    freq = frequency_breakdown_reference(logs)
    energy = energy_breakdown_reference(logs, FIVE_G_NSA_TYPES)
    return (freq.distance_km, freq.spacing_5g_nsa_km, energy.energy_per_km_j)


def _rss_child(fn, args, conn):
    try:
        result = fn(*args)
        peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        conn.send((result, peak_kb))
    finally:
        conn.close()
        os._exit(0)


def _measure_rss(ctx, fn, args):
    """Run ``fn`` in a forked child; return (result, peak ru_maxrss KiB)."""
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    child = ctx.Process(target=_rss_child, args=(fn, args, child_conn))
    child.start()
    child_conn.close()
    result, peak_kb = parent_conn.recv()
    child.join(timeout=120)
    return result, peak_kb


def _killed_build(root, kill_after, conn):
    """Child body: run a corpus build that hard-exits mid-publication."""
    store = CorpusStore(root, enabled=True)
    original = CorpusStore.append

    def mortal_append(self, drive_id, clog):
        stored = original(self, drive_id, clog)
        if self.appends >= kill_after:
            conn.send(self.appends)
            conn.close()
            os._exit(21)  # no cleanup, no atexit: a real mid-run kill
        return stored

    CorpusStore.append = mortal_append
    run_drives_to_store(_scenarios(), workers=1, store=store, use_cache=False)
    os._exit(0)  # not reached


def test_corpus_store(corpus):
    ctx = multiprocessing.get_context("fork")
    if ctx is None:  # pragma: no cover - Linux CI always has fork
        pytest.skip("fork start method unavailable")
    timer = Timer()
    workers = default_workers()
    scenarios = _scenarios()

    with tempfile.TemporaryDirectory(prefix="bench-corpus-") as tmp:
        tmp = Path(tmp)
        cold_root, resume_root, npz_root = tmp / "cold", tmp / "resume", tmp / "npz"

        # --- cold build: every drive simulates, streams into shards ---
        cold_store = CorpusStore(cold_root, enabled=True)
        _, view = timer.timed(
            "cold_build",
            lambda: run_drives_to_store(
                scenarios, workers=workers, store=cold_store, use_cache=False
            ),
        )
        assert cold_store.stats["appends"] == DRIVES

        # --- kill mid-build, then resume: only the rest simulates ---
        kill_after = DRIVES // 2
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        child = ctx.Process(
            target=_killed_build, args=(resume_root, kill_after, child_conn)
        )
        child.start()
        child_conn.close()
        appends_before_kill = parent_conn.recv()
        child.join(timeout=600)
        assert child.exitcode == 21
        assert appends_before_kill == kill_after

        resumed_store = CorpusStore(resume_root, enabled=True)
        survivors = len(resumed_store)
        assert survivors == kill_after  # committed shards survived the kill
        _, _ = timer.timed(
            "resumed_build",
            lambda: run_drives_to_store(
                scenarios, workers=workers, store=resumed_store, use_cache=False
            ),
        )
        resimulated = resumed_store.stats["appends"]
        assert resimulated == DRIVES - kill_after
        assert len(resumed_store) == DRIVES

        # --- the per-drive .npz comparison corpus (no re-simulation) ---
        npz_cache = DriveCache(npz_root, enabled=True, store=None)
        for i, scenario in enumerate(scenarios):
            npz_cache.put(scenario, view.ref(i).load())
        npz_paths = sorted(npz_root.glob("*.npz"))
        assert len(npz_paths) == DRIVES

        # --- warm open latency: mmap slice vs .npz decompress ---
        warm_store = CorpusStore(cold_root, enabled=True)
        opens = 3 * DRIVES
        slice_open_s, _ = timer.timed(
            "slice_open",
            lambda: [
                warm_store.open_slice(d) for _ in range(3) for d in view.drive_ids
            ],
        )
        npz_open_s, _ = timer.timed(
            "npz_open",
            lambda: [load_columnar(p) for _ in range(3) for p in npz_paths],
        )

        # --- peak RSS: full-corpus scan, store leg vs .npz leg ---
        store_result, store_rss_kb = _measure_rss(
            ctx, _analyse_store, (cold_root, list(view.drive_ids))
        )
        npz_result, npz_rss_kb = _measure_rss(ctx, _analyse_npz, (npz_paths,))
        assert store_result == npz_result  # bit-identical analyses

        # --- bytes mapped vs bytes read ---
        bytes_mapped = warm_store.bytes_indexed
        bytes_read = sum(
            warm_store.open_slice(d).arrays[key].nbytes
            for d in view.drive_ids
            for key in _SCANNED_KEYS
        )

    cpus = os.cpu_count() or 1
    result = {
        "drives": DRIVES,
        "length_km": LENGTH_KM,
        "cpus": cpus,
        "workers": workers,
        "cold_build_s": round(timer["cold_build"], 3),
        "kill_after": kill_after,
        "survivors_after_kill": survivors,
        "resimulated_on_resume": resimulated,
        "resumed_build_s": round(timer["resumed_build"], 3),
        "slice_open_ms": round(1000 * slice_open_s / opens, 3),
        "npz_open_ms": round(1000 * npz_open_s / opens, 3),
        "open_speedup": round(npz_open_s / max(slice_open_s, 1e-9), 1),
        "scan_rss_store_kb": store_rss_kb,
        "scan_rss_npz_kb": npz_rss_kb,
        "bytes_mapped": bytes_mapped,
        "bytes_read": bytes_read,
        "mapped_to_read_ratio": round(bytes_mapped / max(bytes_read, 1), 1),
        "smoke": SMOKE,
    }
    OUT_PATH.write_text(json.dumps(result, indent=2) + "\n")

    print_header("Corpus store (out-of-core sharded drives)")
    print(f"  corpus: {DRIVES} freeway drives x {LENGTH_KM} km, {cpus} CPU(s)")
    print(
        f"  build: cold {timer['cold_build']:6.2f}s; killed at "
        f"{kill_after}/{DRIVES}, resume simulated {resimulated} "
        f"in {timer['resumed_build']:6.2f}s"
    )
    print(
        f"  warm open: slice {result['slice_open_ms']:7.3f} ms vs "
        f".npz {result['npz_open_ms']:7.3f} ms ({result['open_speedup']}x)"
    )
    print(
        f"  full-corpus scan RSS: store {store_rss_kb:,} KiB vs "
        f".npz {npz_rss_kb:,} KiB"
    )
    print(
        f"  bytes: mapped {bytes_mapped:,} read {bytes_read:,} "
        f"({result['mapped_to_read_ratio']}x)"
    )
    print(f"  -> {OUT_PATH.name}")

    # Acceptance: the killed build resumed without re-simulating the
    # committed drives. Deterministic, so always enforced (the exact
    # counters were asserted inline above).
    assert survivors + resimulated == DRIVES
    # Acceptance: the memmap scan stays below the materialise-everything
    # .npz path on peak RSS — the out-of-core claim. ru_maxrss baselines
    # cancel (both children fork from the same parent state).
    assert store_rss_kb < npz_rss_kb, (
        f"store scan RSS {store_rss_kb} KiB not below .npz scan RSS "
        f"{npz_rss_kb} KiB"
    )
    # Acceptance: the scan reads a fraction of what is mapped.
    assert bytes_read < bytes_mapped
    # Acceptance (timing, gated): slice opens beat .npz decompression.
    if cpus >= 2 and not SMOKE:
        assert slice_open_s < npz_open_s, (
            f"slice open {slice_open_s:.3f}s not below npz open {npz_open_s:.3f}s"
        )
