"""Table 3 — Prognos vs GBC vs stacked LSTM on D1 and D2.

Paper targets: Prognos F1 0.92-0.94 with accuracy 0.92-0.93; GBC F1
0.40-0.48 despite high accuracy; stacked LSTM F1 0.24-0.28. The
reproduction preserves the *ordering and gap* (Prognos several-fold
above both "blind ML" baselines) on reduced-length walks.
"""

from repro.core.evaluation import evaluate_gbc, evaluate_lstm, evaluate_prognos
from repro.radio.bands import BandClass
from repro.ran import OPX

from conftest import print_header


def test_table3_prediction_comparison(benchmark, corpus):
    datasets = {
        "D1": (corpus.d1(), (BandClass.MMWAVE,)),
        "D2": (corpus.d2(), (BandClass.MMWAVE, BandClass.LOW)),
    }

    def analyse():
        rows = []
        for name, (logs, bands) in datasets.items():
            gbc = evaluate_gbc(logs)
            lstm = evaluate_lstm(logs, epochs=3)
            prognos, _run = evaluate_prognos(logs, OPX, bands, stride=2)
            rows.append((name, "GBC", gbc))
            rows.append((name, "Stacked LSTM", lstm))
            rows.append((name, "Prognos", prognos))
        return rows

    rows = benchmark.pedantic(analyse, rounds=1, iterations=1)
    print_header("Table 3: handover prediction on D1/D2")
    paper = {
        ("D1", "GBC"): (0.475, 0.936),
        ("D1", "Stacked LSTM"): (0.284, 0.857),
        ("D1", "Prognos"): (0.919, 0.917),
        ("D2", "GBC"): (0.396, 0.867),
        ("D2", "Stacked LSTM"): (0.241, 0.420),
        ("D2", "Prognos"): (0.936, 0.931),
    }
    print(f"  {'dataset':8s}{'method':14s}{'F1':>7s}{'Prec':>7s}{'Rec':>7s}{'Acc':>7s}"
          f"{'paper F1':>10s}")
    results = {}
    for name, method, report in rows:
        p_f1, _ = paper[(name, method)]
        print(
            f"  {name:8s}{method:14s}{report.f1:7.3f}{report.precision:7.3f}"
            f"{report.recall:7.3f}{report.accuracy:7.3f}{p_f1:10.3f}"
        )
        results[(name, method)] = report

    for name in datasets:
        prognos = results[(name, "Prognos")]
        gbc = results[(name, "GBC")]
        lstm = results[(name, "Stacked LSTM")]
        # The paper's core claim: Prognos far outperforms both baselines
        # (1.9x-3.8x better F1). Absolute F1 runs below the paper's
        # 0.92-0.94 on the reduced corpus — see EXPERIMENTS.md deviations.
        assert prognos.f1 > 0.45, f"Prognos F1 too low on {name}"
        assert prognos.f1 > 1.5 * max(gbc.f1, 0.01)
        assert prognos.f1 > 1.5 * max(lstm.f1, 0.01)
        # Baselines stay in the blind-ML regime.
        assert gbc.f1 < 0.6
        assert lstm.f1 < 0.6
