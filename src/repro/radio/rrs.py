"""RRS synthesis: per-cell RSRP / RSRQ / SINR as a UE would report them.

The paper abbreviates the radio quality triple (RSRP, RSRQ, SINR) as
"RRS" and samples it at 20 Hz. This module turns the propagation stack
(path loss + shadowing + fading) into those three indicators for every
audible cell, including co-channel interference between cells on the
same band, which is what makes RSRQ/SINR behave differently from RSRP
near cell edges — precisely where handovers happen.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.radio.bands import Band, BandClass
from repro.radio.fading import (
    FastFading,
    RICIAN_K_MMWAVE_ALIGNED,
    RICIAN_K_MMWAVE_URBAN,
    RICIAN_K_SUBURBAN,
    RICIAN_K_URBAN,
)
from repro.radio.propagation import PathLossModel, ShadowingField

#: Thermal noise density in dBm/Hz at 290 K.
THERMAL_NOISE_DBM_HZ = -174.0

#: UE receiver noise figure (dB).
NOISE_FIGURE_DB = 7.0

#: Fraction of a co-channel neighbour's power that lands as interference
#: (captures partial load and scrambling-code separation). mmWave beams
#: are highly directional, so co-channel coupling is nearly absent there.
DEFAULT_INTERFERENCE_LOAD: dict[BandClass, float] = {
    BandClass.LOW: 0.35,
    BandClass.MID: 0.25,
    BandClass.MMWAVE: 0.05,
}

#: RSRP below this is inaudible and not reported (3GPP reporting floor).
AUDIBILITY_FLOOR_DBM = -140.0


@dataclass(frozen=True, slots=True)
class RRSSample:
    """One UE-side radio quality measurement of a single cell."""

    rsrp_dbm: float
    rsrq_db: float
    sinr_db: float

    def stronger_than(self, other: "RRSSample", offset_db: float = 0.0) -> bool:
        """True if this cell beats ``other`` by at least ``offset_db`` RSRP."""
        return self.rsrp_dbm > other.rsrp_dbm + offset_db


def noise_power_dbm(scs_khz: float) -> float:
    """Receiver noise power over one resource element (subcarrier).

    RSRP is defined per resource element, so the SINR/RSRQ denominators
    must use the same reference bandwidth.
    """
    if scs_khz <= 0:
        raise ValueError("subcarrier spacing must be positive")
    return THERMAL_NOISE_DBM_HZ + 10.0 * math.log10(scs_khz * 1e3) + NOISE_FIGURE_DB


def _db_to_mw(db: float) -> float:
    return 10.0 ** (db / 10.0)


def _mw_to_db(mw: float) -> float:
    return 10.0 * math.log10(max(mw, 1e-30))


def default_k_factor(band: Band, urban: bool) -> float:
    """Scenario-appropriate Rician K factor for a band."""
    if band.band_class is BandClass.MMWAVE:
        return RICIAN_K_MMWAVE_URBAN if urban else RICIAN_K_MMWAVE_ALIGNED
    return RICIAN_K_URBAN if urban else RICIAN_K_SUBURBAN


class CellSignal:
    """Per-(UE, cell) signal state: shadowing field plus fading process."""

    def __init__(
        self,
        band: Band,
        tx_power_dbm: float,
        rng: np.random.Generator,
        *,
        speed_mps: float = 30.0,
        sample_interval_s: float = 0.05,
        urban: bool = False,
        path_loss: PathLossModel | None = None,
        shadow_sigma_scale: float = 1.0,
    ):
        self.band = band
        self.tx_power_dbm = tx_power_dbm
        self._path_loss = path_loss or PathLossModel()
        self._shadowing = ShadowingField.for_band(band, rng, shadow_sigma_scale)
        doppler = FastFading.doppler_hz(speed_mps, band.frequency_mhz)
        self._fading = FastFading(
            default_k_factor(band, urban), doppler, sample_interval_s, rng
        )

    def rsrp_dbm(self, distance_m: float, travelled_m: float) -> float:
        """Instantaneous RSRP at ``distance_m`` from the cell."""
        loss = self._path_loss.path_loss_db(self.band, distance_m)
        shadow = self._shadowing.sample(travelled_m)
        fade = self._fading.sample_db()
        return self.tx_power_dbm - loss + shadow + fade


class RadioEnvironment:
    """Synthesises the full RRS triple for a set of audible cells.

    Callers pass, per tick, the distance from the UE to each cell and the
    UE's cumulative travelled distance (which indexes the shadowing
    fields). Cells are identified by an opaque hashable key — the RAN
    layer uses the cell's global identity.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        *,
        interference_load: dict[BandClass, float] | float | None = None,
        speed_mps: float = 30.0,
        sample_interval_s: float = 0.05,
        urban: bool = False,
        shadow_sigma_scale: float = 1.0,
    ):
        if interference_load is None:
            load = dict(DEFAULT_INTERFERENCE_LOAD)
        elif isinstance(interference_load, dict):
            load = dict(interference_load)
        else:
            load = {band_class: float(interference_load) for band_class in BandClass}
        if any(not 0.0 <= v <= 1.0 for v in load.values()):
            raise ValueError("interference load must lie in [0, 1]")
        self._rng = rng
        self._load = load
        self._speed = speed_mps
        self._interval = sample_interval_s
        self._urban = urban
        self._shadow_scale = shadow_sigma_scale
        self._signals: dict[object, CellSignal] = {}

    def register(self, key: object, band: Band, tx_power_dbm: float) -> None:
        """Register a cell; idempotent for an already-known key."""
        if key in self._signals:
            return
        self._signals[key] = CellSignal(
            band,
            tx_power_dbm,
            self._rng,
            speed_mps=self._speed,
            sample_interval_s=self._interval,
            urban=self._urban,
            shadow_sigma_scale=self._shadow_scale,
        )

    def measure(
        self,
        distances_m: dict[object, float],
        travelled_m: float,
    ) -> dict[object, RRSSample]:
        """Measure every registered cell in ``distances_m``.

        Returns only audible cells (RSRP above the reporting floor).
        Co-channel interference couples cells that share a band.
        """
        rsrp: dict[object, float] = {}
        for key, distance in distances_m.items():
            signal = self._signals.get(key)
            if signal is None:
                raise KeyError(f"cell {key!r} was never registered")
            rsrp[key] = signal.rsrp_dbm(distance, travelled_m)

        samples: dict[object, RRSSample] = {}
        for key, level in rsrp.items():
            if level < AUDIBILITY_FLOOR_DBM:
                continue
            band = self._signals[key].band
            noise_mw = _db_to_mw(noise_power_dbm(band.scs_khz))
            load = self._load[band.band_class]
            interference_mw = sum(
                load * _db_to_mw(other_level)
                for other_key, other_level in rsrp.items()
                if other_key != key and self._signals[other_key].band.name == band.name
            )
            signal_mw = _db_to_mw(level)
            sinr_db = _mw_to_db(signal_mw) - _mw_to_db(interference_mw + noise_mw)
            # RSRQ = S / (S + I + N) in dB — bounded above by 0 dB; around
            # -3 dB when interference-free, falling towards -20 dB at edges.
            rsrq_db = _mw_to_db(signal_mw) - _mw_to_db(signal_mw + interference_mw + noise_mw)
            samples[key] = RRSSample(
                rsrp_dbm=level,
                rsrq_db=rsrq_db,
                sinr_db=sinr_db,
            )
        return samples
