"""RRS synthesis: per-cell RSRP / RSRQ / SINR as a UE would report them.

The paper abbreviates the radio quality triple (RSRP, RSRQ, SINR) as
"RRS" and samples it at 20 Hz. This module turns the propagation stack
(path loss + shadowing + fading) into those three indicators for every
audible cell, including co-channel interference between cells on the
same band, which is what makes RSRQ/SINR behave differently from RSRP
near cell edges — precisely where handovers happen.

Two implementations live here:

* :class:`RadioEnvironment` — the production path. Per-cell propagation
  state is kept in structure-of-arrays form and every tick is computed
  with batched numpy operations: one path-loss vector, one batched
  shadowing/fading innovation draw, and per-band linear-power partial
  sums that reduce the co-channel interference computation from
  O(cells²) to O(cells). The random draws are laid out so the generator
  stream matches the scalar reference exactly (one shadowing plus two
  fading normals per cell, in measurement order).
* :class:`ScalarRadioEnvironment` — the original per-cell reference
  implementation, kept for equivalence tests and as the benchmark
  baseline. It is bit-compatible with the vectorized path up to
  last-ulp libm differences (≪ 1e-9 dB).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.radio.bands import Band, BandClass
from repro.radio.fading import (
    FastFading,
    RICIAN_K_MMWAVE_ALIGNED,
    RICIAN_K_MMWAVE_URBAN,
    RICIAN_K_SUBURBAN,
    RICIAN_K_URBAN,
)
from repro.radio.propagation import (
    DEFAULT_DECORRELATION_M,
    DEFAULT_SHADOW_SIGMA_DB,
    PathLossModel,
    ShadowingField,
    free_space_intercept_db,
)

#: Thermal noise density in dBm/Hz at 290 K.
THERMAL_NOISE_DBM_HZ = -174.0

#: UE receiver noise figure (dB).
NOISE_FIGURE_DB = 7.0

#: Fraction of a co-channel neighbour's power that lands as interference
#: (captures partial load and scrambling-code separation). mmWave beams
#: are highly directional, so co-channel coupling is nearly absent there.
DEFAULT_INTERFERENCE_LOAD: dict[BandClass, float] = {
    BandClass.LOW: 0.35,
    BandClass.MID: 0.25,
    BandClass.MMWAVE: 0.05,
}

#: RSRP below this is inaudible and not reported (3GPP reporting floor).
AUDIBILITY_FLOOR_DBM = -140.0


@dataclass(frozen=True, slots=True)
class RRSSample:
    """One UE-side radio quality measurement of a single cell."""

    rsrp_dbm: float
    rsrq_db: float
    sinr_db: float

    def stronger_than(self, other: "RRSSample", offset_db: float = 0.0) -> bool:
        """True if this cell beats ``other`` by at least ``offset_db`` RSRP."""
        return self.rsrp_dbm > other.rsrp_dbm + offset_db


def noise_power_dbm(scs_khz: float) -> float:
    """Receiver noise power over one resource element (subcarrier).

    RSRP is defined per resource element, so the SINR/RSRQ denominators
    must use the same reference bandwidth.
    """
    if scs_khz <= 0:
        raise ValueError("subcarrier spacing must be positive")
    return THERMAL_NOISE_DBM_HZ + 10.0 * math.log10(scs_khz * 1e3) + NOISE_FIGURE_DB


def _db_to_mw(db: float) -> float:
    return 10.0 ** (db / 10.0)


def _mw_to_db(mw: float) -> float:
    return 10.0 * math.log10(max(mw, 1e-30))


def default_k_factor(band: Band, urban: bool) -> float:
    """Scenario-appropriate Rician K factor for a band."""
    if band.band_class is BandClass.MMWAVE:
        return RICIAN_K_MMWAVE_URBAN if urban else RICIAN_K_MMWAVE_ALIGNED
    return RICIAN_K_URBAN if urban else RICIAN_K_SUBURBAN


class CellSignal:
    """Per-(UE, cell) signal state: shadowing field plus fading process.

    Scalar companion of the vectorized environment — used by the
    reference implementation and available for one-off probes.
    """

    def __init__(
        self,
        band: Band,
        tx_power_dbm: float,
        rng: np.random.Generator,
        *,
        speed_mps: float = 30.0,
        sample_interval_s: float = 0.05,
        urban: bool = False,
        path_loss: PathLossModel | None = None,
        shadow_sigma_scale: float = 1.0,
    ):
        self.band = band
        self.tx_power_dbm = tx_power_dbm
        self._path_loss = path_loss or PathLossModel()
        self._shadowing = ShadowingField.for_band(band, rng, shadow_sigma_scale)
        doppler = FastFading.doppler_hz(speed_mps, band.frequency_mhz)
        self._fading = FastFading(
            default_k_factor(band, urban), doppler, sample_interval_s, rng
        )

    def rsrp_dbm(self, distance_m: float, travelled_m: float) -> float:
        """Instantaneous RSRP at ``distance_m`` from the cell."""
        loss = self._path_loss.path_loss_db(self.band, distance_m)
        shadow = self._shadowing.sample(travelled_m)
        fade = self._fading.sample_db()
        return self.tx_power_dbm - loss + shadow + fade


@dataclass(frozen=True, slots=True)
class MeasurementBatch:
    """One tick of audible-cell measurements in array form.

    ``keys[i]`` corresponds to ``rsrp[i]`` / ``rsrq[i]`` / ``sinr[i]``,
    in the order the cells were passed to ``measure_batch`` (inaudible
    cells removed). Array consumers (the L3 filter, capacity, neighbour
    ranking) work on the columns directly; :meth:`samples` materialises
    the classic per-cell dict when objects are needed.
    """

    keys: list
    rsrp: np.ndarray
    rsrq: np.ndarray
    sinr: np.ndarray

    def __len__(self) -> int:
        return len(self.keys)

    def samples(self) -> dict[object, RRSSample]:
        rsrp = self.rsrp.tolist()
        rsrq = self.rsrq.tolist()
        sinr = self.sinr.tolist()
        return {
            key: RRSSample(rsrp_dbm=rsrp[i], rsrq_db=rsrq[i], sinr_db=sinr[i])
            for i, key in enumerate(self.keys)
        }


@dataclass(frozen=True, slots=True)
class BlockMeasurement:
    """A block of ticks measured in one call, in (ticks, cells) arrays.

    Row ``t`` holds every cell's measurement at the block's ``t``-th
    tick; ``audible[t, i]`` marks whether cell ``keys[i]`` cleared the
    reporting floor that tick (inaudible cells still advanced their
    propagation state and still interfered).
    """

    keys: list
    rsrp: np.ndarray
    rsrq: np.ndarray
    sinr: np.ndarray
    audible: np.ndarray


def _resolve_load(
    interference_load: dict[BandClass, float] | float | None,
) -> dict[BandClass, float]:
    if interference_load is None:
        load = dict(DEFAULT_INTERFERENCE_LOAD)
    elif isinstance(interference_load, dict):
        load = dict(interference_load)
    else:
        load = {band_class: float(interference_load) for band_class in BandClass}
    if any(not 0.0 <= v <= 1.0 for v in load.values()):
        raise ValueError("interference load must lie in [0, 1]")
    return load


class RadioEnvironment:
    """Synthesises the full RRS triple for a set of audible cells.

    Callers pass, per tick, the distance from the UE to each cell and the
    UE's cumulative travelled distance (which indexes the shadowing
    fields). Cells are identified by an opaque hashable key — the RAN
    layer uses the cell's global identity.

    All per-cell propagation state (path-loss coefficients, shadowing
    AR(1) state, fading complex-gaussian state, noise and interference
    coefficients) lives in parallel numpy arrays; one :meth:`measure_batch`
    call advances every requested cell with a handful of vector
    operations and a single batched draw from the generator.

    Cells that stop being measured for ``evict_after_measures``
    consecutive measurement ticks are evicted (their propagation state is
    dropped), bounding memory and the interference scan on long drives.
    A re-appearing cell is re-registered with fresh shadowing/fading
    state, exactly like a cell seen for the first time.
    """

    _INITIAL_CAPACITY = 32

    def __init__(
        self,
        rng: np.random.Generator,
        *,
        interference_load: dict[BandClass, float] | float | None = None,
        speed_mps: float = 30.0,
        sample_interval_s: float = 0.05,
        urban: bool = False,
        shadow_sigma_scale: float = 1.0,
        evict_after_measures: int | None = None,
    ):
        if shadow_sigma_scale < 0:
            raise ValueError("sigma scale must be non-negative")
        if evict_after_measures is not None and evict_after_measures < 1:
            raise ValueError("evict_after_measures must be positive")
        self._rng = rng
        self._load = _resolve_load(interference_load)
        self._speed = speed_mps
        self._interval = sample_interval_s
        self._urban = urban
        self._shadow_scale = shadow_sigma_scale
        self._evict_after = evict_after_measures
        self._measure_count = 0

        self._keys: list[object] = []
        self._index: dict[object, int] = {}
        self._band_of: list[Band] = []
        self._band_group: dict[str, int] = {}
        self._n = 0
        #: Bumped whenever eviction compacts the arrays (cached index
        #: resolutions become stale).
        self._generation = 0
        self._resolve_cache: tuple | None = None
        self._alloc(self._INITIAL_CAPACITY)

    # -- storage ---------------------------------------------------------

    def _alloc(self, capacity: int) -> None:
        self._tx = np.empty(capacity)
        self._pl_intercept = np.empty(capacity)
        self._pl_slope = np.empty(capacity)
        self._noise_mw = np.empty(capacity)
        self._cell_load = np.empty(capacity)
        self._band_id = np.empty(capacity, dtype=np.intp)
        self._sh_sigma = np.empty(capacity)
        self._sh_dcorr = np.empty(capacity)
        self._sh_last_dist = np.empty(capacity)
        self._sh_last_val = np.empty(capacity)
        self._fd_rho = np.empty(capacity)
        self._fd_sigma = np.empty(capacity)
        self._fd_los = np.empty(capacity)
        self._fd_nlos = np.empty(capacity)
        self._fd_re = np.empty(capacity)
        self._fd_im = np.empty(capacity)
        self._last_seen = np.empty(capacity, dtype=np.int64)

    _ARRAY_FIELDS = (
        "_tx",
        "_pl_intercept",
        "_pl_slope",
        "_noise_mw",
        "_cell_load",
        "_band_id",
        "_sh_sigma",
        "_sh_dcorr",
        "_sh_last_dist",
        "_sh_last_val",
        "_fd_rho",
        "_fd_sigma",
        "_fd_los",
        "_fd_nlos",
        "_fd_re",
        "_fd_im",
        "_last_seen",
    )

    def _grow(self) -> None:
        capacity = max(self._tx.shape[0] * 2, self._INITIAL_CAPACITY)
        for name in self._ARRAY_FIELDS:
            old = getattr(self, name)
            new = np.empty(capacity, dtype=old.dtype)
            new[: self._n] = old[: self._n]
            setattr(self, name, new)

    @property
    def tracked_cells(self) -> int:
        """Number of cells currently holding propagation state."""
        return self._n

    # -- registration ----------------------------------------------------

    def register(self, key: object, band: Band, tx_power_dbm: float) -> None:
        """Register a cell; idempotent for an already-known key."""
        if key in self._index:
            return
        if self._n == self._tx.shape[0]:
            self._grow()
        i = self._n
        exponent = PathLossModel().exponent_for(band)
        doppler = FastFading.doppler_hz(self._speed, band.frequency_mhz)
        x = math.pi * doppler * self._interval
        rho_f = math.exp(-(x * x))
        k = default_k_factor(band, self._urban)
        # Fading bootstrap: the same two unit-variance complex-gaussian
        # component draws the scalar FastFading constructor performs.
        root_half = math.sqrt(0.5)
        g_re = float(self._rng.normal(0, root_half))
        g_im = float(self._rng.normal(0, root_half))

        self._tx[i] = tx_power_dbm
        self._pl_intercept[i] = free_space_intercept_db(band.frequency_mhz)
        self._pl_slope[i] = 10.0 * exponent
        self._noise_mw[i] = _db_to_mw(noise_power_dbm(band.scs_khz))
        self._cell_load[i] = self._load[band.band_class]
        self._band_id[i] = self._band_group.setdefault(
            band.name, len(self._band_group)
        )
        self._sh_sigma[i] = DEFAULT_SHADOW_SIGMA_DB[band.band_class] * self._shadow_scale
        self._sh_dcorr[i] = DEFAULT_DECORRELATION_M[band.band_class]
        self._sh_last_dist[i] = np.nan
        self._sh_last_val[i] = 0.0
        self._fd_rho[i] = rho_f
        self._fd_sigma[i] = math.sqrt(max(1.0 - rho_f * rho_f, 0.0) * 0.5)
        self._fd_los[i] = math.sqrt(k / (k + 1.0))
        self._fd_nlos[i] = math.sqrt(1.0 / (k + 1.0))
        self._fd_re[i] = g_re
        self._fd_im[i] = g_im
        self._last_seen[i] = self._measure_count
        self._keys.append(key)
        self._index[key] = i
        self._band_of.append(band)
        self._n += 1

    # -- measurement -----------------------------------------------------

    def _resolve(self, keys: list) -> tuple[np.ndarray, np.ndarray]:
        """(positions, band one-hot) for ``keys``, cached by list identity.

        The cache holds a reference to ``keys``, so callers must treat a
        list they pass as immutable while they keep reusing it. Eviction
        bumps the generation and invalidates stale resolutions.
        """
        cache = self._resolve_cache
        if (
            cache is not None
            and cache[0] is keys
            and cache[1] == self._generation
        ):
            return cache[2], cache[3]
        n = len(keys)
        index = self._index
        try:
            idx = np.fromiter((index[k] for k in keys), dtype=np.intp, count=n)
        except KeyError as exc:
            raise KeyError(f"cell {exc.args[0]!r} was never registered") from None
        # One column per band group: co-channel totals become one matmul.
        onehot = np.zeros((n, len(self._band_group)))
        onehot[np.arange(n), self._band_id[idx]] = 1.0
        self._resolve_cache = (keys, self._generation, idx, onehot)
        return idx, onehot

    def measure_block(
        self,
        keys: list,
        distances_m: np.ndarray,
        travelled_m: np.ndarray,
    ) -> BlockMeasurement:
        """Measure ``keys`` over a block of consecutive ticks at once.

        ``distances_m`` is (ticks, cells); ``travelled_m`` is the UE's
        cumulative arc length per tick. The whole block costs one
        generator draw and a handful of (ticks, cells) array operations —
        the AR(1) recurrences run as two tiny vector ops per tick. The
        draw layout per tick is [shadow_i, fade_re_i, fade_im_i] per
        cell, so the generator stream is identical to measuring the same
        ticks one at a time (and to the scalar reference).

        One block counts as one measurement round for eviction purposes.
        """
        d = np.asarray(distances_m, dtype=float)
        travelled = np.atleast_1d(np.asarray(travelled_m, dtype=float))
        n = len(keys)
        ticks = travelled.shape[0]
        if n == 0:
            empty = np.empty((ticks, 0))
            return BlockMeasurement([], empty, empty, empty, empty.astype(bool))
        if d.shape != (ticks, n):
            raise ValueError("distances must be a (ticks, cells) array matching keys")
        if np.any(d < 0):
            raise ValueError("distance must be non-negative")
        if ticks > 1 and np.any(np.diff(travelled) < -1e-9):
            raise ValueError("shadowing field sampled backwards along the track")
        idx, onehot = self._resolve(keys)

        sigma = self._sh_sigma[idx]
        dcorr = self._sh_dcorr[idx]
        rho_f = self._fd_rho[idx]
        sigma_f = self._fd_sigma[idx]
        shadow_active = bool(np.any(sigma > 0.0))
        if shadow_active:
            z = self._rng.standard_normal(3 * n * ticks).reshape(ticks, 3 * n)
            z_shadow, z_re, z_im = z[:, 0::3], z[:, 1::3], z[:, 2::3]
        else:
            # The scalar ShadowingField consumes no draws at sigma == 0;
            # mirror that so the streams stay aligned.
            z = self._rng.standard_normal(2 * n * ticks).reshape(ticks, 2 * n)
            z_shadow, z_re, z_im = None, z[:, 0::2], z[:, 1::2]

        # --- correlated shadowing (Gudmundson AR(1) over distance) ---
        # The first tick correlates against each cell's stored state
        # (never-sampled cells start fresh); later ticks all share the
        # same travelled-distance step, so their rho/innovation rows are
        # precomputed and the recurrence is two ops per tick.
        if shadow_active:
            last_dist = self._sh_last_dist[idx]
            first = np.isnan(last_dist)
            delta0 = travelled[0] - last_dist
            if np.any((delta0 < -1e-9) & ~first):
                raise ValueError("shadowing field sampled backwards along the track")
            with np.errstate(invalid="ignore"):
                rho0 = np.exp(-np.maximum(delta0, 0.0) / dcorr)
                innov0 = sigma * np.sqrt(np.maximum(1.0 - rho0 * rho0, 0.0))
            rho0 = np.where(first, 0.0, rho0)
            innov0 = np.where(first, sigma, innov0)
            shadow = np.empty((ticks, n))
            val = rho0 * self._sh_last_val[idx] + z_shadow[0] * innov0
            shadow[0] = val
            if ticks > 1:
                steps = np.diff(travelled)
                rho_t = np.exp(-np.maximum(steps, 0.0)[:, None] / dcorr)
                innov_t = sigma * np.sqrt(np.maximum(1.0 - rho_t * rho_t, 0.0))
                for t in range(1, ticks):
                    val = rho_t[t - 1] * val + z_shadow[t] * innov_t[t - 1]
                    shadow[t] = val
            self._sh_last_val[idx] = val
            self._sh_last_dist[idx] = travelled[-1]
        else:
            shadow = 0.0

        # --- correlated Rician fading ---
        g_re = np.empty((ticks, n))
        g_im = np.empty((ticks, n))
        cur_re = self._fd_re[idx]
        cur_im = self._fd_im[idx]
        for t in range(ticks):
            cur_re = rho_f * cur_re + z_re[t] * sigma_f
            cur_im = rho_f * cur_im + z_im[t] * sigma_f
            g_re[t] = cur_re
            g_im[t] = cur_im
        self._fd_re[idx] = cur_re
        self._fd_im[idx] = cur_im
        h_re = self._fd_los[idx] + self._fd_nlos[idx] * g_re
        h_im = self._fd_nlos[idx] * g_im
        power = np.maximum(h_re * h_re + h_im * h_im, 1e-12)
        fade_db = 10.0 * np.log10(power)

        # --- path loss and RSRP ---
        loss = self._pl_intercept[idx] + self._pl_slope[idx] * np.log10(
            np.maximum(d, 1.0)
        )
        rsrp = self._tx[idx] - loss + shadow + fade_db

        # --- co-channel interference: per-band linear-power partial sums
        # turn the all-pairs scan into O(cells). ---
        signal_mw = 10.0 ** (rsrp / 10.0)
        band_ids = self._band_id[idx]
        totals = signal_mw @ onehot
        interference_mw = self._cell_load[idx] * (totals[:, band_ids] - signal_mw)
        denom = interference_mw + self._noise_mw[idx]
        signal_db = 10.0 * np.log10(np.maximum(signal_mw, 1e-30))
        sinr = signal_db - 10.0 * np.log10(np.maximum(denom, 1e-30))
        rsrq = signal_db - 10.0 * np.log10(np.maximum(signal_mw + denom, 1e-30))

        self._last_seen[idx] = self._measure_count
        self._measure_count += 1
        self._maybe_evict()

        audible = rsrp >= AUDIBILITY_FLOOR_DBM
        return BlockMeasurement(list(keys), rsrp, rsrq, sinr, audible)

    def measure_batch(
        self,
        keys: list,
        distances_m: np.ndarray,
        travelled_m: float,
    ) -> MeasurementBatch:
        """Measure ``keys`` (all registered) for one tick.

        Returns only audible cells (RSRP above the reporting floor); the
        inaudible ones still advance their propagation state and still
        contribute co-channel interference, exactly as in the scalar
        reference. Single-tick wrapper over :meth:`measure_block`.
        """
        n = len(keys)
        if n == 0:
            empty = np.empty(0)
            return MeasurementBatch([], empty, empty, empty)
        d = np.asarray(distances_m, dtype=float)
        if d.shape != (n,):
            raise ValueError("distances must be a 1-D array matching keys")
        block = self.measure_block(keys, d.reshape(1, n), np.array([travelled_m]))
        rsrp, rsrq, sinr = block.rsrp[0], block.rsrq[0], block.sinr[0]
        audible = block.audible[0]
        if bool(audible.all()):
            return MeasurementBatch(list(keys), rsrp, rsrq, sinr)
        which = np.nonzero(audible)[0]
        kept = [keys[i] for i in which.tolist()]
        return MeasurementBatch(kept, rsrp[which], rsrq[which], sinr[which])

    def measure(
        self,
        distances_m: dict[object, float],
        travelled_m: float,
    ) -> dict[object, RRSSample]:
        """Measure every registered cell in ``distances_m``.

        Thin dict-based wrapper over :meth:`measure_batch`, kept as the
        classic scalar-friendly API.
        """
        keys = list(distances_m.keys())
        distances = np.fromiter(distances_m.values(), dtype=float, count=len(keys))
        return self.measure_batch(keys, distances, travelled_m).samples()

    # -- eviction --------------------------------------------------------

    def _maybe_evict(self) -> None:
        if self._evict_after is None or self._n == 0:
            return
        # Sweep rarely; staleness is judged against the same cutoff either
        # way, so amortising the compaction does not change results.
        if self._measure_count % max(self._evict_after // 2, 16) != 0:
            return
        cutoff = self._measure_count - self._evict_after
        keep = self._last_seen[: self._n] >= cutoff
        if bool(keep.all()):
            return
        kept_positions = np.nonzero(keep)[0]
        for name in self._ARRAY_FIELDS:
            arr = getattr(self, name)
            arr[: kept_positions.size] = arr[: self._n][kept_positions]
        kept_list = kept_positions.tolist()
        self._keys = [self._keys[i] for i in kept_list]
        self._band_of = [self._band_of[i] for i in kept_list]
        self._index = {key: i for i, key in enumerate(self._keys)}
        self._n = len(self._keys)
        self._generation += 1
        self._resolve_cache = None


class ScalarRadioEnvironment:
    """Reference per-cell implementation of :class:`RadioEnvironment`.

    This is the original O(cells²) scalar pipeline, retained verbatim as
    the ground truth for equivalence tests and as the baseline the
    throughput benchmark measures speedups against. It consumes the
    generator stream in the same order as the vectorized path.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        *,
        interference_load: dict[BandClass, float] | float | None = None,
        speed_mps: float = 30.0,
        sample_interval_s: float = 0.05,
        urban: bool = False,
        shadow_sigma_scale: float = 1.0,
    ):
        self._rng = rng
        self._load = _resolve_load(interference_load)
        self._speed = speed_mps
        self._interval = sample_interval_s
        self._urban = urban
        self._shadow_scale = shadow_sigma_scale
        self._signals: dict[object, CellSignal] = {}

    def register(self, key: object, band: Band, tx_power_dbm: float) -> None:
        """Register a cell; idempotent for an already-known key."""
        if key in self._signals:
            return
        self._signals[key] = CellSignal(
            band,
            tx_power_dbm,
            self._rng,
            speed_mps=self._speed,
            sample_interval_s=self._interval,
            urban=self._urban,
            shadow_sigma_scale=self._shadow_scale,
        )

    def measure(
        self,
        distances_m: dict[object, float],
        travelled_m: float,
    ) -> dict[object, RRSSample]:
        """Measure every registered cell in ``distances_m``.

        Returns only audible cells (RSRP above the reporting floor).
        Co-channel interference couples cells that share a band.
        """
        rsrp: dict[object, float] = {}
        for key, distance in distances_m.items():
            signal = self._signals.get(key)
            if signal is None:
                raise KeyError(f"cell {key!r} was never registered")
            rsrp[key] = signal.rsrp_dbm(distance, travelled_m)

        samples: dict[object, RRSSample] = {}
        for key, level in rsrp.items():
            if level < AUDIBILITY_FLOOR_DBM:
                continue
            band = self._signals[key].band
            noise_mw = _db_to_mw(noise_power_dbm(band.scs_khz))
            load = self._load[band.band_class]
            interference_mw = sum(
                load * _db_to_mw(other_level)
                for other_key, other_level in rsrp.items()
                if other_key != key and self._signals[other_key].band.name == band.name
            )
            signal_mw = _db_to_mw(level)
            sinr_db = _mw_to_db(signal_mw) - _mw_to_db(interference_mw + noise_mw)
            # RSRQ = S / (S + I + N) in dB — bounded above by 0 dB; around
            # -3 dB when interference-free, falling towards -20 dB at edges.
            rsrq_db = _mw_to_db(signal_mw) - _mw_to_db(signal_mw + interference_mw + noise_mw)
            samples[key] = RRSSample(
                rsrp_dbm=level,
                rsrq_db=rsrq_db,
                sinr_db=sinr_db,
            )
        return samples
