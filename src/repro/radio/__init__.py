"""Radio substrate: frequency bands, propagation, fading, and RRS metrics.

The paper's measurement pipeline records RRS — its shorthand for the radio
quality triple (RSRP, RSRQ, SINR) — at 20 Hz per cell. This package
synthesises physically plausible RRS time series: a 3GPP-style
log-distance path loss with frequency-dependent attenuation, spatially
correlated shadowing (Gudmundson model), and small-scale fading, combined
into per-cell RSRP/RSRQ/SINR exactly as a UE would report them.
"""

from repro.radio.bands import (
    Band,
    BandClass,
    Duplex,
    RadioAccessTechnology,
    BAND_CATALOG,
    band_by_name,
)
from repro.radio.propagation import PathLossModel, ShadowingField
from repro.radio.fading import FastFading
from repro.radio.rrs import (
    BlockMeasurement,
    CellSignal,
    MeasurementBatch,
    RRSSample,
    RadioEnvironment,
    ScalarRadioEnvironment,
)

__all__ = [
    "BAND_CATALOG",
    "Band",
    "BandClass",
    "BlockMeasurement",
    "CellSignal",
    "Duplex",
    "FastFading",
    "MeasurementBatch",
    "PathLossModel",
    "RRSSample",
    "RadioAccessTechnology",
    "RadioEnvironment",
    "ScalarRadioEnvironment",
    "ShadowingField",
    "band_by_name",
]
