"""Frequency bands and radio access technologies.

The study spans 4G/LTE plus 5G-NR low-band, mid-band, and mmWave across
three carriers. Band identity drives nearly everything downstream:
propagation (higher frequency attenuates faster → smaller cells → more
handovers, Section 5.1/6.1), capacity (mmWave reaches multi-Gbps,
Section 6.2), RACH timing (mmWave's short PRACH formats, Section 5.2),
and energy (Section 5.3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class RadioAccessTechnology(enum.Enum):
    """Radio access technology of a cell."""

    LTE = "LTE"
    NR = "NR"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class BandClass(enum.Enum):
    """Coarse frequency class used throughout the paper."""

    LOW = "low-band"
    MID = "mid-band"
    MMWAVE = "mmWave"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class Duplex(enum.Enum):
    FDD = "FDD"
    TDD = "TDD"


@dataclass(frozen=True, slots=True)
class Band:
    """A deployed radio frequency band.

    Attributes:
        name: 3GPP band label, e.g. ``"n71"`` or ``"B2"``.
        rat: radio access technology the band carries.
        band_class: coarse low/mid/mmWave class.
        frequency_mhz: carrier centre frequency.
        bandwidth_mhz: channel bandwidth available to one cell.
        duplex: duplexing scheme (informational).
    """

    name: str
    rat: RadioAccessTechnology
    band_class: BandClass
    frequency_mhz: float
    bandwidth_mhz: float
    duplex: Duplex = Duplex.FDD
    #: Subcarrier spacing — RSRP is a per-resource-element quantity, so
    #: SINR/RSRQ compare it against noise over one subcarrier.
    scs_khz: float = 15.0

    def __post_init__(self) -> None:
        if self.frequency_mhz <= 0:
            raise ValueError(f"band {self.name}: frequency must be positive")
        if self.bandwidth_mhz <= 0:
            raise ValueError(f"band {self.name}: bandwidth must be positive")
        if self.scs_khz <= 0:
            raise ValueError(f"band {self.name}: subcarrier spacing must be positive")

    @property
    def is_mmwave(self) -> bool:
        return self.band_class is BandClass.MMWAVE

    @property
    def wavelength_m(self) -> float:
        """Carrier wavelength in metres."""
        return 299.792458 / self.frequency_mhz


_NR_SCS_KHZ = {BandClass.LOW: 15.0, BandClass.MID: 30.0, BandClass.MMWAVE: 120.0}


def _nr(name: str, band_class: BandClass, freq: float, bw: float, duplex: Duplex = Duplex.TDD) -> Band:
    return Band(
        name, RadioAccessTechnology.NR, band_class, freq, bw, duplex, _NR_SCS_KHZ[band_class]
    )


def _lte(name: str, band_class: BandClass, freq: float, bw: float) -> Band:
    return Band(name, RadioAccessTechnology.LTE, band_class, freq, bw, Duplex.FDD)


#: Bands observed in the study (3GPP labels; frequencies are band centres).
#: LTE low/mid bands are the U.S. workhorse bands; NR bands cover the
#: low-band (n71/n5), mid-band (n41/n77) and mmWave (n260/n261) deployments
#: the three carriers ran at measurement time.
BAND_CATALOG: dict[str, Band] = {
    band.name: band
    for band in [
        # --- LTE ---
        _lte("B12", BandClass.LOW, 737.0, 10.0),
        _lte("B13", BandClass.LOW, 751.0, 10.0),
        _lte("B71", BandClass.LOW, 617.0, 15.0),
        _lte("B2", BandClass.MID, 1960.0, 20.0),
        _lte("B4", BandClass.MID, 2125.0, 20.0),
        _lte("B25", BandClass.MID, 1962.5, 20.0),
        _lte("B30", BandClass.MID, 2355.0, 10.0),
        _lte("B41", BandClass.MID, 2593.0, 20.0),
        _lte("B66", BandClass.MID, 2145.0, 20.0),
        # --- 5G NR ---
        _nr("n5", BandClass.LOW, 881.5, 20.0, Duplex.FDD),
        _nr("n71", BandClass.LOW, 634.0, 20.0, Duplex.FDD),
        _nr("n2", BandClass.MID, 1960.0, 20.0, Duplex.FDD),
        _nr("n41", BandClass.MID, 2593.0, 100.0),
        _nr("n77", BandClass.MID, 3700.0, 100.0),
        _nr("n260", BandClass.MMWAVE, 39000.0, 400.0),
        _nr("n261", BandClass.MMWAVE, 28000.0, 400.0),
    ]
}


def band_by_name(name: str) -> Band:
    """Look up a band from :data:`BAND_CATALOG` by its 3GPP label."""
    try:
        return BAND_CATALOG[name]
    except KeyError:
        raise KeyError(
            f"unknown band {name!r}; known bands: {sorted(BAND_CATALOG)}"
        ) from None
