"""Small-scale fading.

Fast fading is the high-frequency jitter on top of path loss and
shadowing. The paper's Prognos smooths it away with a triangular kernel
before predicting RRS (Section 7.2, citing Long & Sikdar); to make that
smoothing meaningful our synthetic traces must carry realistic fading.

We model the envelope as Rician: a dominant (possibly zero) line-of-sight
component plus scattered multipath. K → 0 degenerates to Rayleigh (urban
NLOS), large K approaches AWGN-only (strong LOS, e.g. mmWave beams when
aligned). Successive samples are correlated through an AR(1) process on
the underlying complex Gaussians, parameterised by the Doppler rate so
faster driving decorrelates faster.
"""

from __future__ import annotations

import math

import numpy as np

#: Default Rician K-factor (linear) per scenario.
RICIAN_K_URBAN = 1.0
RICIAN_K_SUBURBAN = 3.0
#: Freeway mmWave with an aligned beam is nearly AWGN...
RICIAN_K_MMWAVE_ALIGNED = 8.0
#: ...but urban walking mmWave suffers body/corner blockage: deep fades.
RICIAN_K_MMWAVE_URBAN = 1.5


class FastFading:
    """Correlated Rician fading gain generator (values in dB).

    The complex channel is ``h = sqrt(K/(K+1)) + sqrt(1/(K+1)) g`` with
    ``g`` a unit complex Gaussian evolved as an AR(1) with coefficient
    derived from the Doppler frequency (Jakes spectrum approximated by its
    lag-1 autocorrelation ``J0(2 pi f_d dt) ≈ exp(-(pi f_d dt)^2)``).
    """

    def __init__(
        self,
        k_factor: float,
        doppler_hz: float,
        sample_interval_s: float,
        rng: np.random.Generator,
    ):
        if k_factor < 0:
            raise ValueError("Rician K-factor must be non-negative")
        if doppler_hz < 0:
            raise ValueError("Doppler frequency must be non-negative")
        if sample_interval_s <= 0:
            raise ValueError("sample interval must be positive")
        self._k = k_factor
        self._rng = rng
        x = math.pi * doppler_hz * sample_interval_s
        self._rho = math.exp(-(x * x))
        self._g = complex(rng.normal(0, math.sqrt(0.5)), rng.normal(0, math.sqrt(0.5)))

    @staticmethod
    def doppler_hz(speed_mps: float, frequency_mhz: float) -> float:
        """Maximum Doppler shift for the given speed and carrier."""
        if speed_mps < 0:
            raise ValueError("speed must be non-negative")
        wavelength_m = 299.792458 / frequency_mhz
        return speed_mps / wavelength_m

    def sample_db(self) -> float:
        """Next fading gain in dB (0 dB is the no-fading mean level)."""
        rho = self._rho
        sigma = math.sqrt(max(1.0 - rho * rho, 0.0) * 0.5)
        self._g = complex(
            rho * self._g.real + self._rng.normal(0.0, sigma),
            rho * self._g.imag + self._rng.normal(0.0, sigma),
        )
        k = self._k
        los = math.sqrt(k / (k + 1.0))
        nlos = math.sqrt(1.0 / (k + 1.0))
        h = complex(los + nlos * self._g.real, nlos * self._g.imag)
        power = max(abs(h) ** 2, 1e-12)
        return 10.0 * math.log10(power)

    def sample_series_db(self, count: int) -> np.ndarray:
        """Generate ``count`` successive fading gains in dB."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return np.array([self.sample_db() for _ in range(count)])
