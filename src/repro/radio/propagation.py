"""Large-scale propagation: path loss and correlated shadowing.

The handover geography of the paper — cells every 1.4 km on low-band but
every 0.15 km on mmWave (Section 6.1) — is a direct consequence of
frequency-dependent attenuation. We model it with the classic
close-in-reference log-distance path loss, whose free-space intercept
carries the ``20 log10(f)`` frequency dependence, plus log-normal
shadowing that is spatially correlated along the drive route
(Gudmundson's exponential autocorrelation model), so that signal strength
evolves smoothly as the vehicle moves — the property Prognos's linear
RRS predictor relies on (Section 7.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.radio.bands import Band, BandClass

#: Reference distance for the close-in path loss intercept (metres).
REFERENCE_DISTANCE_M = 1.0

#: Path loss exponents per band class. Higher bands see harsher
#: distance decay (blockage, foliage, lack of diffraction), which is what
#: shrinks their cells. Values follow 3GPP TR 38.901 UMa/UMi NLOS fits.
DEFAULT_EXPONENTS: dict[BandClass, float] = {
    BandClass.LOW: 2.9,
    BandClass.MID: 3.2,
    BandClass.MMWAVE: 3.6,
}

#: Shadowing standard deviation (dB) per band class (TR 38.901 shadow
#: fading sigma, NLOS).
DEFAULT_SHADOW_SIGMA_DB: dict[BandClass, float] = {
    BandClass.LOW: 6.0,
    BandClass.MID: 6.5,
    BandClass.MMWAVE: 7.5,
}

#: Shadowing decorrelation distance (metres). Open-terrain low-band
#: macro ~120 m (TR 38.901 RMa), suburban mid ~45 m, dense urban mmWave
#: ~12 m.
DEFAULT_DECORRELATION_M: dict[BandClass, float] = {
    BandClass.LOW: 120.0,
    BandClass.MID: 45.0,
    BandClass.MMWAVE: 12.0,
}


def free_space_intercept_db(frequency_mhz: float, reference_m: float = REFERENCE_DISTANCE_M) -> float:
    """Free-space path loss at the reference distance, in dB.

    FSPL(d0, f) = 20 log10(d0_km) + 20 log10(f_MHz) + 32.44
    """
    d0_km = reference_m / 1000.0
    return 20.0 * math.log10(d0_km) + 20.0 * math.log10(frequency_mhz) + 32.44


@dataclass(slots=True)
class PathLossModel:
    """Close-in reference log-distance path loss.

    ``PL(d) = FSPL(d0) + 10 n log10(d / d0)`` with a band-class dependent
    exponent ``n``.  Distances below the reference clamp to the reference,
    so a UE driving directly under a tower never sees negative loss.
    """

    exponents: dict[BandClass, float] = field(default_factory=lambda: dict(DEFAULT_EXPONENTS))

    def exponent_for(self, band: Band) -> float:
        return self.exponents[band.band_class]

    def path_loss_db(self, band: Band, distance_m: float) -> float:
        """Path loss in dB at ``distance_m`` metres on ``band``."""
        if distance_m < 0:
            raise ValueError("distance must be non-negative")
        d = max(distance_m, REFERENCE_DISTANCE_M)
        intercept = free_space_intercept_db(band.frequency_mhz)
        return intercept + 10.0 * self.exponent_for(band) * math.log10(d / REFERENCE_DISTANCE_M)

    def path_loss_db_array(self, band: Band, distances_m: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`path_loss_db`."""
        d = np.maximum(np.asarray(distances_m, dtype=float), REFERENCE_DISTANCE_M)
        intercept = free_space_intercept_db(band.frequency_mhz)
        return intercept + 10.0 * self.exponent_for(band) * np.log10(d / REFERENCE_DISTANCE_M)


class ShadowingField:
    """Spatially correlated log-normal shadowing along a 1-D track.

    Gudmundson's model: shadowing is a Gaussian process with
    ``E[s(x) s(x+Δ)] = σ² exp(-|Δ| / d_corr)``, i.e. an AR(1)/
    Ornstein-Uhlenbeck process in the distance domain. Each (cell, UE)
    pair gets its own field; we index by travelled distance so that the
    process is independent of the sampling rate.
    """

    def __init__(self, sigma_db: float, decorrelation_m: float, rng: np.random.Generator):
        if sigma_db < 0:
            raise ValueError("shadowing sigma must be non-negative")
        if decorrelation_m <= 0:
            raise ValueError("decorrelation distance must be positive")
        self._sigma = sigma_db
        self._dcorr = decorrelation_m
        self._rng = rng
        self._last_distance: float | None = None
        self._last_value: float = 0.0

    @property
    def sigma_db(self) -> float:
        return self._sigma

    def sample(self, travelled_m: float) -> float:
        """Shadowing (dB) at cumulative travelled distance ``travelled_m``.

        Must be called with non-decreasing distances (the drive only moves
        forward); backwards queries raise to surface bookkeeping bugs.
        """
        if self._sigma == 0.0:
            return 0.0
        if self._last_distance is None:
            self._last_distance = travelled_m
            self._last_value = float(self._rng.normal(0.0, self._sigma))
            return self._last_value
        delta = travelled_m - self._last_distance
        if delta < -1e-9:
            raise ValueError("shadowing field sampled backwards along the track")
        rho = math.exp(-max(delta, 0.0) / self._dcorr)
        innovation_sigma = self._sigma * math.sqrt(max(1.0 - rho * rho, 0.0))
        value = rho * self._last_value + float(self._rng.normal(0.0, innovation_sigma))
        self._last_distance = travelled_m
        self._last_value = value
        return value

    @classmethod
    def for_band(
        cls, band: Band, rng: np.random.Generator, sigma_scale: float = 1.0
    ) -> "ShadowingField":
        """Field with the default sigma/decorrelation for the band class.

        ``sigma_scale`` scales the default sigma — open rural terrain
        shadows far less than the suburban defaults.
        """
        if sigma_scale < 0:
            raise ValueError("sigma scale must be non-negative")
        return cls(
            DEFAULT_SHADOW_SIGMA_DB[band.band_class] * sigma_scale,
            DEFAULT_DECORRELATION_M[band.band_class],
            rng,
        )
