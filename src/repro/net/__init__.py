"""Data-plane models: capacity, latency, bearers, TCP, link emulation.

Everything the paper measured above the RRC layer flows through here:
per-tick downlink capacity as a function of the serving legs' radio
quality (§6.2's throughput phases), RTT under the two NSA bearer modes
(§4.2, Fig. 7), fluid-model TCP CUBIC/BBR (the iPerf experiments), and a
Mahimahi-style trace-driven link used by the application studies (§7.4).
"""

from repro.net.capacity import CapacityModel, LinkCapacity
from repro.net.bearer import BearerMode
from repro.net.latency import LatencyModel
from repro.net.segments import TraceSegment, segment_capacity
from repro.net.tcp import (
    TcpBbr,
    TcpConnection,
    TcpCubic,
    TcpSample,
    TcpTrace,
    simulate_tcp,
    simulate_tcp_reference,
)
from repro.net.emulation import TraceDrivenLink, BandwidthTrace

__all__ = [
    "BandwidthTrace",
    "BearerMode",
    "CapacityModel",
    "LatencyModel",
    "LinkCapacity",
    "TcpBbr",
    "TcpConnection",
    "TcpCubic",
    "TcpSample",
    "TcpTrace",
    "TraceDrivenLink",
    "TraceSegment",
    "segment_capacity",
    "simulate_tcp",
    "simulate_tcp_reference",
]
