"""Event segmentation of capacity traces.

A drive's capacity trace is piecewise-smooth between events: handover
interruptions force capacity to zero for their whole duration, and the
congestion state between loss/drain events evolves under closed-form
dynamics. Splitting the tick series at zero/non-zero boundaries yields
segments over which the fluid TCP engines (:mod:`repro.net.tcp`) can
advance state with array updates instead of one tick at a time, and
over which byte accounting can be checked segment by segment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True, slots=True)
class TraceSegment:
    """A maximal run of ticks that are all-outage or all-serving.

    Attributes:
        start: first tick index (inclusive).
        stop: one past the last tick index (exclusive).
        outage: True when capacity is zero throughout the segment
            (a handover interruption or coverage hole).
    """

    start: int
    stop: int
    outage: bool

    @property
    def ticks(self) -> int:
        return self.stop - self.start


def segment_capacity(capacity_mbps: np.ndarray) -> list[TraceSegment]:
    """Split a capacity tick series at zero/non-zero boundaries.

    Returns segments in order; they tile ``[0, len(capacity_mbps))``.
    """
    caps = np.asarray(capacity_mbps, dtype=float)
    if caps.ndim != 1:
        raise ValueError("capacity series must be one-dimensional")
    if caps.size == 0:
        return []
    zero = caps <= 0.0
    changes = np.flatnonzero(zero[1:] != zero[:-1]) + 1
    bounds = np.concatenate(([0], changes, [caps.size]))
    return [
        TraceSegment(int(a), int(b), bool(zero[a]))
        for a, b in zip(bounds[:-1], bounds[1:])
    ]


def segment_bounds(capacity_mbps: np.ndarray) -> list[tuple[int, int]]:
    """(start, stop) index pairs of :func:`segment_capacity` segments."""
    return [(s.start, s.stop) for s in segment_capacity(capacity_mbps)]
