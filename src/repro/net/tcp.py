"""Fluid-model TCP CUBIC and BBR over a time-varying cellular bottleneck.

The paper's iPerf experiments run both CUBIC and BBR; Fig. 7 reports BBR
RTT distributions around handovers under the two NSA bearer modes. We
model both congestion controllers at tick granularity over a single
bottleneck whose capacity comes from the drive simulation:

* CUBIC grows its window with the cubic function of time-since-loss and
  backs off multiplicatively on queue overflow — so it keeps the
  bottleneck buffer full (bufferbloat) and its RTT rides the queue.
* BBR paces at its bottleneck-bandwidth estimate with the standard
  8-phase gain cycle and periodically drains to probe min-RTT — so its
  queue stays short except right after capacity drops (handovers!),
  which is exactly the transient §4.2 measures.

During a handover interruption the capacity is zero: inflight data sits
in the bottleneck queue and drains afterwards, producing the post-HO RTT
inflation the paper observes.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.net.segments import segment_capacity

MSS_BYTES = 1500.0


@dataclass(frozen=True, slots=True)
class TcpSample:
    """One tick of transport-layer state.

    ``delivered_bytes`` carries the tick's exact byte delivery so that
    goodput integrated over any trace segment reconstructs bytes without
    round-tripping through Mbps — the post-HO queue-drain accounting the
    equivalence tests assert segment by segment.
    """

    time_s: float
    goodput_mbps: float
    rtt_ms: float
    queue_bytes: float
    lost: bool
    delivered_bytes: float = 0.0


class CongestionController(Protocol):
    """Minimal congestion-controller interface for the fluid loop."""

    def sending_rate_bps(self, rtt_s: float) -> float: ...

    def on_ack(self, delivered_bytes: float, rtt_s: float, dt_s: float) -> None: ...

    def on_loss(self) -> None: ...


class TcpCubic:
    """CUBIC window dynamics (RFC 8312 fluid approximation)."""

    C = 0.4
    BETA = 0.7

    def __init__(self, initial_cwnd_pkts: float = 10.0):
        if initial_cwnd_pkts <= 0:
            raise ValueError("initial cwnd must be positive")
        self.cwnd_pkts = initial_cwnd_pkts
        self._w_max = initial_cwnd_pkts
        self._epoch_s = 0.0

    def sending_rate_bps(self, rtt_s: float) -> float:
        return self.cwnd_pkts * MSS_BYTES * 8.0 / max(rtt_s, 1e-3)

    def on_ack(self, delivered_bytes: float, rtt_s: float, dt_s: float) -> None:
        self._epoch_s += dt_s
        k = (self._w_max * (1.0 - self.BETA) / self.C) ** (1.0 / 3.0)
        target = self.C * (self._epoch_s - k) ** 3 + self._w_max
        self.cwnd_pkts = max(target, 2.0)

    def on_loss(self) -> None:
        self._w_max = self.cwnd_pkts
        self.cwnd_pkts = max(self.cwnd_pkts * self.BETA, 2.0)
        self._epoch_s = 0.0


class TcpBbr:
    """BBR v1 rate dynamics (bandwidth probe cycle + min-RTT tracking)."""

    PROBE_GAINS = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)
    CYCLE_PHASE_S = 0.2
    BW_WINDOW_S = 4.0
    RTT_WINDOW_S = 10.0
    CWND_GAIN = 1.3
    #: PROBE_RTT: every interval, drain the pipe briefly so min-RTT is
    #: measured without the standing queue (BBR v1 §4.3.4).
    PROBE_RTT_INTERVAL_S = 5.0
    PROBE_RTT_DURATION_S = 0.3
    PROBE_RTT_GAIN = 0.05

    def __init__(self, initial_rate_mbps: float = 10.0):
        if initial_rate_mbps <= 0:
            raise ValueError("initial rate must be positive")
        self._btl_bw_bps = initial_rate_mbps * 1e6
        self._bw_samples: list[tuple[float, float]] = []
        self._rtt_samples: list[tuple[float, float]] = []
        self._min_rtt_s = 0.1
        self._clock_s = 0.0

    @property
    def btl_bw_mbps(self) -> float:
        return self._btl_bw_bps / 1e6

    def sending_rate_bps(self, rtt_s: float) -> float:
        if self._clock_s % self.PROBE_RTT_INTERVAL_S < self.PROBE_RTT_DURATION_S:
            return self.PROBE_RTT_GAIN * self._btl_bw_bps
        phase = int(self._clock_s / self.CYCLE_PHASE_S) % len(self.PROBE_GAINS)
        return self.PROBE_GAINS[phase] * self._btl_bw_bps

    def on_ack(self, delivered_bytes: float, rtt_s: float, dt_s: float) -> None:
        self._clock_s += dt_s
        self._rtt_samples.append((self._clock_s, rtt_s))
        rtt_horizon = self._clock_s - self.RTT_WINDOW_S
        while self._rtt_samples and self._rtt_samples[0][0] < rtt_horizon:
            self._rtt_samples.pop(0)
        self._min_rtt_s = min(r for _, r in self._rtt_samples)
        if dt_s > 0:
            sample_bps = delivered_bytes * 8.0 / dt_s
            self._bw_samples.append((self._clock_s, sample_bps))
            horizon = self._clock_s - self.BW_WINDOW_S
            while self._bw_samples and self._bw_samples[0][0] < horizon:
                self._bw_samples.pop(0)
            self._btl_bw_bps = max(s for _, s in self._bw_samples)

    def inflight_cap_bytes(self, rtt_s: float) -> float:
        """BBR caps inflight data at cwnd_gain x BDP."""
        return self.CWND_GAIN * self._btl_bw_bps / 8.0 * max(self._min_rtt_s, 1e-3)

    def on_loss(self) -> None:
        # BBR v1 ignores isolated losses.
        pass


class TcpConnection:
    """A bulk-transfer flow over a time-varying bottleneck.

    Args:
        controller: CUBIC or BBR instance.
        base_rtt_s: propagation RTT (no queueing).
        buffer_bytes: bottleneck buffer size; overflow drops trigger
            ``on_loss``.
        tick_s: simulation tick.
    """

    def __init__(
        self,
        controller: CongestionController,
        base_rtt_s: float,
        buffer_bytes: float = 3.0e6,
        tick_s: float = 0.05,
    ):
        if base_rtt_s <= 0:
            raise ValueError("base RTT must be positive")
        if buffer_bytes <= 0:
            raise ValueError("buffer must be positive")
        self._cc = controller
        self._base_rtt_s = base_rtt_s
        self._buffer = buffer_bytes
        self._tick = tick_s
        self._queue_bytes = 0.0
        self._time_s = 0.0
        self._last_capacity_bps = 0.0
        #: Queue sizes the sender has *observed* — feedback arrives one
        #: RTT late, which is what lets short outages build real queues.
        self._queue_history: list[float] = []
        #: Byte accounting: sent = delivered + queued + dropped at every
        #: point in time (overflow drops used to vanish silently).
        self.sent_bytes = 0.0
        self.delivered_bytes = 0.0
        self.dropped_bytes = 0.0

    @property
    def queue_delay_s(self) -> float:
        """Current queueing delay given the last drain rate estimate."""
        return self._last_queue_delay

    _last_queue_delay: float = 0.0

    def step(self, capacity_mbps: float, base_rtt_s: float | None = None) -> TcpSample:
        """Advance one tick with the given bottleneck capacity."""
        if capacity_mbps < 0:
            raise ValueError("capacity must be non-negative")
        base = base_rtt_s if base_rtt_s is not None else self._base_rtt_s
        capacity_bps = capacity_mbps * 1e6

        # Queueing delay from the backlog. During an outage the drain
        # rate is zero; packets will drain at roughly the pre-outage
        # capacity once service resumes, so that is the delay estimate.
        if capacity_bps > 0:
            self._last_capacity_bps = capacity_bps
        reference_bps = capacity_bps if capacity_bps > 0 else self._last_capacity_bps
        if reference_bps > 0:
            queue_delay = self._queue_bytes * 8.0 / reference_bps
        else:
            queue_delay = 2.0
        queue_delay = min(queue_delay, 2.0)
        self._last_queue_delay = queue_delay
        rtt_s = base + queue_delay

        send_bytes = self._cc.sending_rate_bps(rtt_s) / 8.0 * self._tick
        inflight_cap = getattr(self._cc, "inflight_cap_bytes", None)
        if inflight_cap is not None:
            # Rate-based senders honour an inflight (queue) cap — but the
            # sender only sees the queue state one RTT late (ACK clock),
            # so a sudden outage keeps filling the buffer for a while.
            self._queue_history.append(self._queue_bytes)
            lag_ticks = max(int(round(rtt_s / self._tick)), 1)
            observed = (
                self._queue_history[-lag_ticks]
                if len(self._queue_history) >= lag_ticks
                else 0.0
            )
            del self._queue_history[:-200]
            room = max(inflight_cap(base) - observed, 0.0)
            # ACK clocking: data delivered during the tick releases more
            # window — without this term a tick longer than the RTT
            # would deadlock the window.
            ack_clocked = capacity_bps / 8.0 * self._tick
            send_bytes = min(send_bytes, room + ack_clocked)
        drain_bytes = capacity_bps / 8.0 * self._tick

        delivered = min(self._queue_bytes + send_bytes, drain_bytes)
        self._queue_bytes = self._queue_bytes + send_bytes - delivered
        self.sent_bytes += send_bytes
        self.delivered_bytes += delivered

        lost = False
        if self._queue_bytes > self._buffer:
            lost = True
            self.dropped_bytes += self._queue_bytes - self._buffer
            self._queue_bytes = self._buffer
            self._cc.on_loss()
        self._cc.on_ack(delivered, rtt_s, self._tick)

        self._time_s += self._tick
        return TcpSample(
            time_s=self._time_s,
            goodput_mbps=delivered * 8.0 / self._tick / 1e6,
            rtt_ms=rtt_s * 1000.0,
            queue_bytes=self._queue_bytes,
            lost=lost,
            delivered_bytes=delivered,
        )


# ----------------------------------------------------------------------
# Event-segmented batch simulation.
#
# The per-tick loop above is the behavioural reference. The engines
# below advance the same fluid models over whole capacity-trace
# segments (split at handover interruptions, i.e. zero-capacity runs,
# and at loss/drain events discovered along the way):
#
# * CUBIC's window between losses is a closed-form function of
#   time-since-loss, so every zero-queue stretch is advanced with one
#   array evaluation; the queued/outage stretches keep a tight scalar
#   recurrence over precomputed drain arrays.
# * BBR's gain cycle is a pure function of its clock, so the whole
#   pacing-gain sequence is precomputed in one vector pass; the
#   windowed bandwidth max / RTT min become monotonic deques (exact
#   same extrema, O(1) amortised instead of O(window) per tick).
#
# Both engines reproduce the reference tick loop to <= 1e-8 (bitwise on
# most traces); tests/test_dataplane_equivalence.py pins that, plus
# segment-by-segment byte conservation (sent = delivered + queued +
# dropped).
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TcpTrace:
    """Per-tick transport state as arrays (one entry per capacity tick)."""

    times_s: np.ndarray
    goodput_mbps: np.ndarray
    rtt_ms: np.ndarray
    queue_bytes: np.ndarray
    lost: np.ndarray
    delivered_bytes: np.ndarray
    sent_bytes: float
    dropped_bytes: float

    @property
    def delivered_total_bytes(self) -> float:
        return float(self.delivered_bytes.sum())

    def samples(self) -> list[TcpSample]:
        """The trace as :class:`TcpSample` records (compat shim)."""
        return [
            TcpSample(
                time_s=float(self.times_s[i]),
                goodput_mbps=float(self.goodput_mbps[i]),
                rtt_ms=float(self.rtt_ms[i]),
                queue_bytes=float(self.queue_bytes[i]),
                lost=bool(self.lost[i]),
                delivered_bytes=float(self.delivered_bytes[i]),
            )
            for i in range(self.times_s.size)
        ]


def simulate_tcp_reference(
    controller: CongestionController,
    capacity_mbps: np.ndarray,
    base_rtt_s: float,
    *,
    buffer_bytes: float = 3.0e6,
    tick_s: float = 0.05,
) -> TcpTrace:
    """Tick-at-a-time reference: :meth:`TcpConnection.step` per tick."""
    conn = TcpConnection(
        controller, base_rtt_s, buffer_bytes=buffer_bytes, tick_s=tick_s
    )
    samples = [conn.step(float(c)) for c in np.asarray(capacity_mbps, dtype=float)]
    return TcpTrace(
        times_s=np.array([s.time_s for s in samples]),
        goodput_mbps=np.array([s.goodput_mbps for s in samples]),
        rtt_ms=np.array([s.rtt_ms for s in samples]),
        queue_bytes=np.array([s.queue_bytes for s in samples]),
        lost=np.array([s.lost for s in samples], dtype=bool),
        delivered_bytes=np.array([s.delivered_bytes for s in samples]),
        sent_bytes=conn.sent_bytes,
        dropped_bytes=conn.dropped_bytes,
    )


def simulate_tcp(
    controller: CongestionController,
    capacity_mbps: np.ndarray,
    base_rtt_s: float,
    *,
    buffer_bytes: float = 3.0e6,
    tick_s: float = 0.05,
) -> TcpTrace:
    """Advance a flow over a whole capacity trace, segment-batched.

    Dispatches to the segmented CUBIC or BBR engine; any other
    controller falls back to the tick-at-a-time reference. The
    controller's scalar state (window/rate estimate) reflects the end
    of the trace on return.
    """
    if base_rtt_s <= 0:
        raise ValueError("base RTT must be positive")
    if buffer_bytes <= 0:
        raise ValueError("buffer must be positive")
    caps = np.asarray(capacity_mbps, dtype=float)
    if np.any(caps < 0):
        raise ValueError("capacity must be non-negative")
    # Exact type match: a subclass may override the control law, and the
    # segmented engines hard-code CUBIC's/BBR's update rules.
    if type(controller) is TcpCubic:
        return _simulate_cubic(controller, caps, base_rtt_s, buffer_bytes, tick_s)
    if type(controller) is TcpBbr:
        return _simulate_bbr(controller, caps, base_rtt_s, buffer_bytes, tick_s)
    return simulate_tcp_reference(
        controller, caps, base_rtt_s, buffer_bytes=buffer_bytes, tick_s=tick_s
    )


def _simulate_cubic(
    cc: TcpCubic,
    caps: np.ndarray,
    base_rtt_s: float,
    buffer_bytes: float,
    tick_s: float,
) -> TcpTrace:
    n = caps.size
    caps_bps = caps * 1e6
    drain = caps_bps / 8.0 * tick_s
    # Python-float views for the scalar stretches: C-double arithmetic
    # either way, but without per-op numpy scalar overhead.
    caps_bps_list = caps_bps.tolist()
    drain_list = drain.tolist()
    out_delivered = np.zeros(n)
    out_rtt = np.empty(n)
    out_queue = np.empty(n)
    out_lost = np.zeros(n, dtype=bool)

    base = base_rtt_s
    base_eff = base if base > 1e-3 else 1e-3
    C = TcpCubic.C
    BETA = TcpCubic.BETA
    one_minus_beta = 1.0 - BETA
    third = 1.0 / 3.0

    cwnd = cc.cwnd_pkts
    w_max = cc._w_max
    epoch = cc._epoch_s
    q = 0.0
    last_cap_bps = 0.0
    sent_total = 0.0
    dropped_total = 0.0

    def tight_step(j: int) -> None:
        # One serving tick, mirroring TcpConnection.step op for op.
        nonlocal cwnd, w_max, epoch, q, last_cap_bps, sent_total, dropped_total
        cap_b = caps_bps_list[j]
        last_cap_bps = cap_b
        qd = q * 8.0 / cap_b
        if qd > 2.0:
            qd = 2.0
        rtt = base + qd
        rate = cwnd * MSS_BYTES * 8.0 / (rtt if rtt > 1e-3 else 1e-3)
        send = rate / 8.0 * tick_s
        dr = drain_list[j]
        tot = q + send
        delivered = tot if tot < dr else dr
        q = tot - delivered
        sent_total += send
        lost = False
        if q > buffer_bytes:
            lost = True
            dropped_total += q - buffer_bytes
            q = buffer_bytes
            w_max = cwnd
            epoch = 0.0
        epoch += tick_s
        k = (w_max * one_minus_beta / C) ** third
        target = C * (epoch - k) ** 3 + w_max
        cwnd = target if target > 2.0 else 2.0
        out_delivered[j] = delivered
        out_rtt[j] = rtt
        out_queue[j] = q
        out_lost[j] = lost

    for seg in segment_capacity(caps):
        if seg.outage:
            # Interruption: drain rate is zero, the queue only builds.
            # RTT rides the pre-outage capacity estimate; segments are
            # short (one HO interruption) so the scalar recurrence is
            # cheap.
            for j in range(seg.start, seg.stop):
                if last_cap_bps > 0:
                    qd = q * 8.0 / last_cap_bps
                    if qd > 2.0:
                        qd = 2.0
                else:
                    qd = 2.0
                rtt = base + qd
                rate = cwnd * MSS_BYTES * 8.0 / (rtt if rtt > 1e-3 else 1e-3)
                send = rate / 8.0 * tick_s
                tot = q + send
                # delivered = min(q + send, 0) = 0 during the outage.
                q = tot - 0.0
                sent_total += send
                lost = False
                if q > buffer_bytes:
                    lost = True
                    dropped_total += q - buffer_bytes
                    q = buffer_bytes
                    w_max = cwnd
                    epoch = 0.0
                epoch += tick_s
                k = (w_max * one_minus_beta / C) ** third
                target = C * (epoch - k) ** 3 + w_max
                cwnd = target if target > 2.0 else 2.0
                out_rtt[j] = rtt
                out_queue[j] = q
                out_lost[j] = lost
            continue
        j = seg.start
        while j < seg.stop:
            if q == 0.0:
                # Zero-queue stretch: RTT is the propagation delay and
                # cwnd is closed-form in epoch time, so the whole
                # stretch until send first exceeds drain advances in
                # one array evaluation.
                m_max = seg.stop - j
                k = (w_max * one_minus_beta / C) ** third
                incs = np.full(m_max, tick_s)
                incs[0] = epoch + tick_s
                epochs = np.add.accumulate(incs)
                cwnd_used = np.empty(m_max)
                cwnd_used[0] = cwnd
                if m_max > 1:
                    grown = C * (epochs[:-1] - k) ** 3 + w_max
                    cwnd_used[1:] = np.maximum(grown, 2.0)
                rates = cwnd_used * MSS_BYTES * 8.0 / base_eff
                sends = rates / 8.0 * tick_s
                seg_drain = drain[j : seg.stop]
                exceed = sends > seg_drain
                m = int(np.argmax(exceed)) if exceed.any() else m_max
                if m > 0:
                    out_delivered[j : j + m] = sends[:m]
                    out_rtt[j : j + m] = base
                    out_queue[j : j + m] = 0.0
                    sent_total += float(sends[:m].sum())
                    epoch = float(epochs[m - 1])
                    target = C * (epoch - k) ** 3 + w_max
                    cwnd = target if target > 2.0 else 2.0
                    last_cap_bps = caps_bps_list[j + m - 1]
                    j += m
                if j < seg.stop:
                    # The transition tick (send > drain) starts a queue.
                    tight_step(j)
                    j += 1
            else:
                # Queued stretch: the queue-delay feedback makes the
                # recurrence sequential, but drain/caps are precomputed
                # and the cubic update is inlined.
                while j < seg.stop:
                    tight_step(j)
                    j += 1
                    if q == 0.0:
                        break

    cc.cwnd_pkts = cwnd
    cc._w_max = w_max
    cc._epoch_s = epoch
    times = np.add.accumulate(np.full(n, tick_s)) if n else np.empty(0)
    return TcpTrace(
        times_s=times,
        goodput_mbps=out_delivered * 8.0 / tick_s / 1e6,
        rtt_ms=out_rtt * 1000.0,
        queue_bytes=out_queue,
        lost=out_lost,
        delivered_bytes=out_delivered,
        sent_bytes=sent_total,
        dropped_bytes=dropped_total,
    )


def _simulate_bbr(
    cc: TcpBbr,
    caps: np.ndarray,
    base_rtt_s: float,
    buffer_bytes: float,
    tick_s: float,
) -> TcpTrace:
    n = caps.size
    caps_bps = caps * 1e6
    drain = caps_bps / 8.0 * tick_s
    out_delivered = np.empty(n)
    out_rtt = np.empty(n)
    out_queue = np.empty(n)
    out_lost = np.zeros(n, dtype=bool)

    # The gain cycle is a pure function of the controller clock, which
    # advances by exactly one tick per tick — precompute the whole
    # pacing-gain sequence in one vector pass.
    clock_after = np.add.accumulate(np.full(n, tick_s)) if n else np.empty(0)
    clock_before = np.concatenate(([0.0], clock_after[:-1])) if n else clock_after
    gains_table = np.array(TcpBbr.PROBE_GAINS)
    phase = (clock_before / TcpBbr.CYCLE_PHASE_S).astype(np.int64) % gains_table.size
    probing_rtt = (
        np.mod(clock_before, TcpBbr.PROBE_RTT_INTERVAL_S) < TcpBbr.PROBE_RTT_DURATION_S
    )
    gain = np.where(probing_rtt, TcpBbr.PROBE_RTT_GAIN, gains_table[phase])

    # Python-float views for the tick loop (same C doubles, no numpy
    # scalar overhead per op).
    caps_bps_list = caps_bps.tolist()
    drain_list = drain.tolist()
    gain_list = gain.tolist()
    clock_list = clock_after.tolist()

    base = base_rtt_s
    btl_bw = cc._btl_bw_bps
    min_rtt = cc._min_rtt_s
    # Monotonic deques: front holds the window max (bw) / min (rtt) —
    # exactly the extrema the reference recomputes over its sample
    # lists each tick.
    bw_dq: deque[tuple[float, float]] = deque()
    rtt_dq: deque[tuple[float, float]] = deque()
    hist: list[float] = []
    q = 0.0
    last_cap_bps = 0.0
    sent_total = 0.0
    dropped_total = 0.0
    cwnd_gain = TcpBbr.CWND_GAIN
    bw_window = TcpBbr.BW_WINDOW_S
    rtt_window = TcpBbr.RTT_WINDOW_S

    for j in range(n):
        cap_b = caps_bps_list[j]
        if cap_b > 0:
            last_cap_bps = cap_b
        ref = cap_b if cap_b > 0 else last_cap_bps
        if ref > 0:
            qd = q * 8.0 / ref
            if qd > 2.0:
                qd = 2.0
        else:
            qd = 2.0
        rtt = base + qd
        rate = gain_list[j] * btl_bw
        send = rate / 8.0 * tick_s
        hist.append(q)
        lag = int(round(rtt / tick_s))
        if lag < 1:
            lag = 1
        observed = hist[-lag] if len(hist) >= lag else 0.0
        del hist[:-200]
        inflight_cap = cwnd_gain * btl_bw / 8.0 * (min_rtt if min_rtt > 1e-3 else 1e-3)
        room = inflight_cap - observed
        if room < 0.0:
            room = 0.0
        ack_clocked = cap_b / 8.0 * tick_s
        limit = room + ack_clocked
        if send > limit:
            send = limit
        dr = drain_list[j]
        tot = q + send
        delivered = tot if tot < dr else dr
        q = tot - delivered
        sent_total += send
        lost = False
        if q > buffer_bytes:
            lost = True
            dropped_total += q - buffer_bytes
            q = buffer_bytes
            # BBR v1 ignores isolated losses (on_loss is a no-op).
        clock = clock_list[j]
        while rtt_dq and rtt_dq[-1][1] >= rtt:
            rtt_dq.pop()
        rtt_dq.append((clock, rtt))
        rtt_horizon = clock - rtt_window
        while rtt_dq[0][0] < rtt_horizon:
            rtt_dq.popleft()
        min_rtt = rtt_dq[0][1]
        sample_bps = delivered * 8.0 / tick_s
        while bw_dq and bw_dq[-1][1] <= sample_bps:
            bw_dq.pop()
        bw_dq.append((clock, sample_bps))
        bw_horizon = clock - bw_window
        while bw_dq[0][0] < bw_horizon:
            bw_dq.popleft()
        btl_bw = bw_dq[0][1]
        out_delivered[j] = delivered
        out_rtt[j] = rtt
        out_queue[j] = q
        out_lost[j] = lost

    cc._btl_bw_bps = float(btl_bw)
    cc._min_rtt_s = float(min_rtt)
    if n:
        cc._clock_s = float(clock_after[-1])
    return TcpTrace(
        times_s=clock_after,
        goodput_mbps=out_delivered * 8.0 / tick_s / 1e6,
        rtt_ms=out_rtt * 1000.0,
        queue_bytes=out_queue,
        lost=out_lost,
        delivered_bytes=out_delivered,
        sent_bytes=sent_total,
        dropped_bytes=dropped_total,
    )
