"""Fluid-model TCP CUBIC and BBR over a time-varying cellular bottleneck.

The paper's iPerf experiments run both CUBIC and BBR; Fig. 7 reports BBR
RTT distributions around handovers under the two NSA bearer modes. We
model both congestion controllers at tick granularity over a single
bottleneck whose capacity comes from the drive simulation:

* CUBIC grows its window with the cubic function of time-since-loss and
  backs off multiplicatively on queue overflow — so it keeps the
  bottleneck buffer full (bufferbloat) and its RTT rides the queue.
* BBR paces at its bottleneck-bandwidth estimate with the standard
  8-phase gain cycle and periodically drains to probe min-RTT — so its
  queue stays short except right after capacity drops (handovers!),
  which is exactly the transient §4.2 measures.

During a handover interruption the capacity is zero: inflight data sits
in the bottleneck queue and drains afterwards, producing the post-HO RTT
inflation the paper observes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol

MSS_BYTES = 1500.0


@dataclass(frozen=True, slots=True)
class TcpSample:
    """One tick of transport-layer state."""

    time_s: float
    goodput_mbps: float
    rtt_ms: float
    queue_bytes: float
    lost: bool


class CongestionController(Protocol):
    """Minimal congestion-controller interface for the fluid loop."""

    def sending_rate_bps(self, rtt_s: float) -> float: ...

    def on_ack(self, delivered_bytes: float, rtt_s: float, dt_s: float) -> None: ...

    def on_loss(self) -> None: ...


class TcpCubic:
    """CUBIC window dynamics (RFC 8312 fluid approximation)."""

    C = 0.4
    BETA = 0.7

    def __init__(self, initial_cwnd_pkts: float = 10.0):
        if initial_cwnd_pkts <= 0:
            raise ValueError("initial cwnd must be positive")
        self.cwnd_pkts = initial_cwnd_pkts
        self._w_max = initial_cwnd_pkts
        self._epoch_s = 0.0

    def sending_rate_bps(self, rtt_s: float) -> float:
        return self.cwnd_pkts * MSS_BYTES * 8.0 / max(rtt_s, 1e-3)

    def on_ack(self, delivered_bytes: float, rtt_s: float, dt_s: float) -> None:
        self._epoch_s += dt_s
        k = (self._w_max * (1.0 - self.BETA) / self.C) ** (1.0 / 3.0)
        target = self.C * (self._epoch_s - k) ** 3 + self._w_max
        self.cwnd_pkts = max(target, 2.0)

    def on_loss(self) -> None:
        self._w_max = self.cwnd_pkts
        self.cwnd_pkts = max(self.cwnd_pkts * self.BETA, 2.0)
        self._epoch_s = 0.0


class TcpBbr:
    """BBR v1 rate dynamics (bandwidth probe cycle + min-RTT tracking)."""

    PROBE_GAINS = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)
    CYCLE_PHASE_S = 0.2
    BW_WINDOW_S = 4.0
    RTT_WINDOW_S = 10.0
    CWND_GAIN = 1.3
    #: PROBE_RTT: every interval, drain the pipe briefly so min-RTT is
    #: measured without the standing queue (BBR v1 §4.3.4).
    PROBE_RTT_INTERVAL_S = 5.0
    PROBE_RTT_DURATION_S = 0.3
    PROBE_RTT_GAIN = 0.05

    def __init__(self, initial_rate_mbps: float = 10.0):
        if initial_rate_mbps <= 0:
            raise ValueError("initial rate must be positive")
        self._btl_bw_bps = initial_rate_mbps * 1e6
        self._bw_samples: list[tuple[float, float]] = []
        self._rtt_samples: list[tuple[float, float]] = []
        self._min_rtt_s = 0.1
        self._clock_s = 0.0

    @property
    def btl_bw_mbps(self) -> float:
        return self._btl_bw_bps / 1e6

    def sending_rate_bps(self, rtt_s: float) -> float:
        if self._clock_s % self.PROBE_RTT_INTERVAL_S < self.PROBE_RTT_DURATION_S:
            return self.PROBE_RTT_GAIN * self._btl_bw_bps
        phase = int(self._clock_s / self.CYCLE_PHASE_S) % len(self.PROBE_GAINS)
        return self.PROBE_GAINS[phase] * self._btl_bw_bps

    def on_ack(self, delivered_bytes: float, rtt_s: float, dt_s: float) -> None:
        self._clock_s += dt_s
        self._rtt_samples.append((self._clock_s, rtt_s))
        rtt_horizon = self._clock_s - self.RTT_WINDOW_S
        while self._rtt_samples and self._rtt_samples[0][0] < rtt_horizon:
            self._rtt_samples.pop(0)
        self._min_rtt_s = min(r for _, r in self._rtt_samples)
        if dt_s > 0:
            sample_bps = delivered_bytes * 8.0 / dt_s
            self._bw_samples.append((self._clock_s, sample_bps))
            horizon = self._clock_s - self.BW_WINDOW_S
            while self._bw_samples and self._bw_samples[0][0] < horizon:
                self._bw_samples.pop(0)
            self._btl_bw_bps = max(s for _, s in self._bw_samples)

    def inflight_cap_bytes(self, rtt_s: float) -> float:
        """BBR caps inflight data at cwnd_gain x BDP."""
        return self.CWND_GAIN * self._btl_bw_bps / 8.0 * max(self._min_rtt_s, 1e-3)

    def on_loss(self) -> None:
        # BBR v1 ignores isolated losses.
        pass


class TcpConnection:
    """A bulk-transfer flow over a time-varying bottleneck.

    Args:
        controller: CUBIC or BBR instance.
        base_rtt_s: propagation RTT (no queueing).
        buffer_bytes: bottleneck buffer size; overflow drops trigger
            ``on_loss``.
        tick_s: simulation tick.
    """

    def __init__(
        self,
        controller: CongestionController,
        base_rtt_s: float,
        buffer_bytes: float = 3.0e6,
        tick_s: float = 0.05,
    ):
        if base_rtt_s <= 0:
            raise ValueError("base RTT must be positive")
        if buffer_bytes <= 0:
            raise ValueError("buffer must be positive")
        self._cc = controller
        self._base_rtt_s = base_rtt_s
        self._buffer = buffer_bytes
        self._tick = tick_s
        self._queue_bytes = 0.0
        self._time_s = 0.0
        self._last_capacity_bps = 0.0
        #: Queue sizes the sender has *observed* — feedback arrives one
        #: RTT late, which is what lets short outages build real queues.
        self._queue_history: list[float] = []

    @property
    def queue_delay_s(self) -> float:
        """Current queueing delay given the last drain rate estimate."""
        return self._last_queue_delay

    _last_queue_delay: float = 0.0

    def step(self, capacity_mbps: float, base_rtt_s: float | None = None) -> TcpSample:
        """Advance one tick with the given bottleneck capacity."""
        if capacity_mbps < 0:
            raise ValueError("capacity must be non-negative")
        base = base_rtt_s if base_rtt_s is not None else self._base_rtt_s
        capacity_bps = capacity_mbps * 1e6

        # Queueing delay from the backlog. During an outage the drain
        # rate is zero; packets will drain at roughly the pre-outage
        # capacity once service resumes, so that is the delay estimate.
        if capacity_bps > 0:
            self._last_capacity_bps = capacity_bps
        reference_bps = capacity_bps if capacity_bps > 0 else self._last_capacity_bps
        if reference_bps > 0:
            queue_delay = self._queue_bytes * 8.0 / reference_bps
        else:
            queue_delay = 2.0
        queue_delay = min(queue_delay, 2.0)
        self._last_queue_delay = queue_delay
        rtt_s = base + queue_delay

        send_bytes = self._cc.sending_rate_bps(rtt_s) / 8.0 * self._tick
        inflight_cap = getattr(self._cc, "inflight_cap_bytes", None)
        if inflight_cap is not None:
            # Rate-based senders honour an inflight (queue) cap — but the
            # sender only sees the queue state one RTT late (ACK clock),
            # so a sudden outage keeps filling the buffer for a while.
            self._queue_history.append(self._queue_bytes)
            lag_ticks = max(int(round(rtt_s / self._tick)), 1)
            observed = (
                self._queue_history[-lag_ticks]
                if len(self._queue_history) >= lag_ticks
                else 0.0
            )
            del self._queue_history[:-200]
            room = max(inflight_cap(base) - observed, 0.0)
            # ACK clocking: data delivered during the tick releases more
            # window — without this term a tick longer than the RTT
            # would deadlock the window.
            ack_clocked = capacity_bps / 8.0 * self._tick
            send_bytes = min(send_bytes, room + ack_clocked)
        drain_bytes = capacity_bps / 8.0 * self._tick

        delivered = min(self._queue_bytes + send_bytes, drain_bytes)
        self._queue_bytes = self._queue_bytes + send_bytes - delivered

        lost = False
        if self._queue_bytes > self._buffer:
            lost = True
            self._queue_bytes = self._buffer
            self._cc.on_loss()
        self._cc.on_ack(delivered, rtt_s, self._tick)

        self._time_s += self._tick
        return TcpSample(
            time_s=self._time_s,
            goodput_mbps=delivered * 8.0 / self._tick / 1e6,
            rtt_ms=rtt_s * 1000.0,
            queue_bytes=self._queue_bytes,
            lost=lost,
        )
