"""NSA bearer modes (§4.2).

Under NSA the user plane can ride an *SCG bearer* ("5G-only mode": all
traffic on the NR leg, routed core→gNB directly) or an *MCG split bearer*
("dual mode": traffic split across LTE and NR, with 5G data detouring
core→eNB→gNB). The paper finds dual mode absorbs NR handover
interruptions (the LTE leg keeps flowing) at the price of a higher
baseline RTT from the eNB forwarding hop.
"""

from __future__ import annotations

import enum


class BearerMode(enum.Enum):
    """How NSA user-plane traffic is mapped onto the two legs."""

    #: SCG bearer: everything on NR, core→gNB direct path.
    FIVE_G_ONLY = "5G-only"
    #: MCG split bearer: both legs carry data, core→eNB→gNB detour.
    DUAL = "dual"
    #: The paper's §4.2 proposal: split bearer but with the 5G share
    #: routed core→gNB directly — dual-mode resilience at 5G-only RTT.
    DUAL_DIRECT = "dual-direct"

    @property
    def uses_lte_leg(self) -> bool:
        return self is not BearerMode.FIVE_G_ONLY

    @property
    def routes_via_enb(self) -> bool:
        """True when 5G data takes the core→eNB→gNB detour."""
        return self is BearerMode.DUAL
