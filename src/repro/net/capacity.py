"""Downlink capacity model.

Capacity per leg follows an attenuated-Shannon curve over the leg's SINR
with per-technology spectral-efficiency caps — the standard abstraction
for system-level cellular simulation (cf. 3GPP TR 36.942 link-to-system
mapping). Combined with the bands' channel widths this reproduces the
throughput landscape the paper reports: tens-to-hundreds of Mbps on LTE
and low-band NR, ~1 Gbps mid-band, multi-Gbps on mmWave (Figs. 12/16).

New NR attachments suffer a decaying SINR *transient* (beam refinement /
link adaptation settling). For cross-gNB additions (SCGC's add leg) the
transient is larger — together with the policy's first-qualifying target
choice this produces §6.2's observation that SCG Changes often *reduce*
throughput.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.radio.bands import Band, BandClass, RadioAccessTechnology
from repro.radio.rrs import RRSSample

#: Attenuation factor on the Shannon bound (implementation losses).
SHANNON_ALPHA = 0.78

#: Spectral-efficiency ceilings (bits/s/Hz).
EFFICIENCY_CAP: dict[RadioAccessTechnology, float] = {
    RadioAccessTechnology.LTE: 5.0,
    RadioAccessTechnology.NR: 7.0,
}

#: Fraction of cell capacity one UE gets (scheduler fair-share, overhead).
DEFAULT_UTILIZATION = 0.85

#: Post-attach SINR transient (dB at attach, decay constant in seconds).
SAME_GNB_TRANSIENT = (1.5, 1.0)
CROSS_GNB_TRANSIENT = (6.0, 3.0)


@dataclass(frozen=True, slots=True)
class LinkCapacity:
    """Instantaneous capacity of one leg."""

    band: Band
    sinr_db: float
    capacity_mbps: float


class CapacityModel:
    """Maps (band, SINR) to achievable downlink throughput."""

    def __init__(self, utilization: float = DEFAULT_UTILIZATION):
        if not 0.0 < utilization <= 1.0:
            raise ValueError("utilization must lie in (0, 1]")
        self._utilization = utilization

    def capacity_mbps(self, band: Band, sinr_db: float) -> float:
        """Throughput of one leg at the given SINR, in Mbps."""
        sinr_linear = 10.0 ** (sinr_db / 10.0)
        efficiency = SHANNON_ALPHA * math.log2(1.0 + sinr_linear)
        efficiency = min(efficiency, EFFICIENCY_CAP[band.rat])
        if efficiency <= 0.0:
            return 0.0
        return efficiency * band.bandwidth_mhz * self._utilization

    def leg_capacity(
        self,
        band: Band,
        sample: RRSSample,
        *,
        time_since_attach_s: float | None = None,
        cross_gnb_attach: bool = False,
    ) -> LinkCapacity:
        """Capacity of a leg, applying the post-attach transient.

        Args:
            band: the leg's band.
            sample: current RRS of the serving cell on this leg.
            time_since_attach_s: seconds since the leg last (re)attached;
                None suppresses the transient entirely.
            cross_gnb_attach: True when the attach was a cross-gNB
                addition (SCGC add leg) — larger, slower-decaying
                transient.
        """
        sinr = sample.sinr_db
        if time_since_attach_s is not None:
            initial_db, tau_s = (
                CROSS_GNB_TRANSIENT if cross_gnb_attach else SAME_GNB_TRANSIENT
            )
            sinr -= initial_db * math.exp(-max(time_since_attach_s, 0.0) / tau_s)
        return LinkCapacity(band, sinr, self.capacity_mbps(band, sinr))
