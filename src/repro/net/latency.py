"""RTT model under NSA bearer modes and handover interruptions (§4.2).

Baseline RTT depends on the bearer path: 5G-only rides core→gNB directly;
dual mode detours 5G data through the eNB, adding a forwarding hop. On
top of the baseline, handover execution stages inflate RTT: if *all*
legs the bearer uses are interrupted, packets wait out the remaining
interruption; if only the NR leg is interrupted under a split bearer,
the LTE leg keeps the flow alive with a barely-visible RTT bump
(the paper measures a 1-4% median change in dual mode vs. a 37-58%
median inflation in 5G-only mode).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.net.bearer import BearerMode

#: Baseline RTTs (ms). The eNB detour costs ~9 ms; plain LTE sits higher
#: than NR because of LTE's longer TTI/scheduling latency.
BASE_RTT_MS: dict[BearerMode, float] = {
    BearerMode.FIVE_G_ONLY: 28.0,
    BearerMode.DUAL: 37.0,
    BearerMode.DUAL_DIRECT: 29.0,
}

LTE_ONLY_BASE_RTT_MS = 42.0

#: RTT bump on the surviving LTE leg while the NR leg is down (queue
#: shuffle when flows collapse onto one leg).
SPLIT_SURVIVOR_BUMP_MS = 1.2


@dataclass(frozen=True, slots=True)
class RttSample:
    """One RTT observation."""

    time_s: float
    rtt_ms: float
    during_handover: bool


class LatencyModel:
    """Computes instantaneous RTT from bearer, interruptions, and jitter."""

    def __init__(self, rng: np.random.Generator, jitter_ms: float = 2.5):
        if jitter_ms < 0:
            raise ValueError("jitter must be non-negative")
        self._rng = rng
        self._jitter = jitter_ms

    def base_rtt_ms(self, bearer: BearerMode | None) -> float:
        """Baseline RTT for a bearer (None = LTE-only attachment)."""
        if bearer is None:
            return LTE_ONLY_BASE_RTT_MS
        return BASE_RTT_MS[bearer]

    def rtt_ms(
        self,
        bearer: BearerMode | None,
        *,
        nr_attached: bool,
        nr_interrupted_remaining_s: float = 0.0,
        lte_interrupted_remaining_s: float = 0.0,
        queue_delay_ms: float = 0.0,
    ) -> float:
        """Instantaneous RTT in ms.

        Args:
            bearer: NSA bearer mode; None when the UE is LTE-only.
            nr_attached: whether an NR leg currently exists.
            nr_interrupted_remaining_s: remaining NR execution-stage
                interruption (0 when the NR leg is up).
            lte_interrupted_remaining_s: same for the LTE leg (4G HOs
                interrupt both legs — taxonomy footnote).
            queue_delay_ms: extra queueing delay from the transport layer.
        """
        base = self.base_rtt_ms(bearer if nr_attached else None)
        stall_s = 0.0
        if bearer is None or not nr_attached:
            # Single (LTE) path: any LTE interruption stalls packets.
            stall_s = lte_interrupted_remaining_s
            extra = 0.0
        elif bearer is BearerMode.FIVE_G_ONLY:
            # Single (NR) path; LTE interruptions also freeze NR data
            # (4G control-plane HOs halt both radios).
            stall_s = max(nr_interrupted_remaining_s, lte_interrupted_remaining_s)
            extra = 0.0
        else:
            # Split bearer: the flow survives on whichever leg is up.
            both_down = nr_interrupted_remaining_s > 0 and lte_interrupted_remaining_s > 0
            if both_down:
                stall_s = min(nr_interrupted_remaining_s, lte_interrupted_remaining_s)
                extra = 0.0
            elif nr_interrupted_remaining_s > 0 or lte_interrupted_remaining_s > 0:
                extra = SPLIT_SURVIVOR_BUMP_MS
            else:
                extra = 0.0
        jitter = abs(float(self._rng.normal(0.0, self._jitter)))
        return base + extra + queue_delay_ms + stall_s * 1000.0 + jitter
