"""Trace-driven link emulation (the paper's Mahimahi record-and-replay).

The Prognos application studies (§7.4) feed recorded bandwidth traces
into Mahimahi and replay video workloads over them. ``BandwidthTrace``
is our recorded artefact (it comes out of the drive simulator) and
``TraceDrivenLink`` replays it: chunk downloads integrate capacity over
time exactly the way a record-and-replay shell would deliver them.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class BandwidthTrace:
    """A capacity time series (regularly sampled).

    Attributes:
        times_s: sample timestamps, strictly increasing, uniform spacing.
        capacity_mbps: downlink capacity at each timestamp.
    """

    times_s: np.ndarray
    capacity_mbps: np.ndarray

    def __post_init__(self) -> None:
        if len(self.times_s) != len(self.capacity_mbps):
            raise ValueError("times and capacities must align")
        if len(self.times_s) < 2:
            raise ValueError("trace needs at least two samples")
        if np.any(np.diff(self.times_s) <= 0):
            raise ValueError("times must be strictly increasing")
        if np.any(self.capacity_mbps < 0):
            raise ValueError("capacity must be non-negative")

    @property
    def duration_s(self) -> float:
        return float(self.times_s[-1] - self.times_s[0])

    @property
    def tick_s(self) -> float:
        return float(self.times_s[1] - self.times_s[0])

    @property
    def mean_mbps(self) -> float:
        return float(np.mean(self.capacity_mbps))

    @property
    def min_mbps(self) -> float:
        return float(np.min(self.capacity_mbps))

    def capacity_at(self, time_s: float) -> float:
        """Capacity at an arbitrary time (previous-sample hold)."""
        index = bisect.bisect_right(self.times_s.tolist(), time_s) - 1
        index = min(max(index, 0), len(self.capacity_mbps) - 1)
        return float(self.capacity_mbps[index])

    def mean_between(self, start_s: float, end_s: float) -> float:
        """Mean capacity over a window (used for ground-truth prediction)."""
        if end_s <= start_s:
            raise ValueError("window end must exceed start")
        mask = (self.times_s >= start_s) & (self.times_s < end_s)
        if not np.any(mask):
            return self.capacity_at(start_s)
        return float(np.mean(self.capacity_mbps[mask]))

    def window(self, start_s: float, duration_s: float) -> "BandwidthTrace":
        """Slice a sub-trace (re-based to start at 0)."""
        mask = (self.times_s >= start_s) & (self.times_s <= start_s + duration_s)
        if int(np.sum(mask)) < 2:
            raise ValueError("window too short for this trace")
        return BandwidthTrace(
            times_s=self.times_s[mask] - start_s,
            capacity_mbps=self.capacity_mbps[mask],
        )


class TraceDrivenLink:
    """Replays a :class:`BandwidthTrace` for chunked downloads."""

    def __init__(self, trace: BandwidthTrace, *, loop: bool = True):
        self._trace = trace
        self._loop = loop

    @property
    def trace(self) -> BandwidthTrace:
        return self._trace

    def _capacity_at(self, time_s: float) -> float:
        duration = self._trace.duration_s
        if self._loop and time_s > duration:
            time_s = time_s % duration
        return self._trace.capacity_at(time_s)

    def download_time_reference_s(
        self, size_bytes: float, start_s: float, max_s: float = 600.0
    ) -> float:
        """Tick-at-a-time reference for :meth:`download_time_s`.

        Integrates capacity tick by tick (previous-sample hold), exactly
        like a record-and-replay shell delivering packets.
        """
        if size_bytes <= 0:
            return 0.0
        tick = self._trace.tick_s
        remaining_bits = size_bytes * 8.0
        elapsed = 0.0
        while remaining_bits > 0:
            if elapsed >= max_s:
                raise RuntimeError(
                    f"download of {size_bytes:.0f} B stalled beyond {max_s:.0f} s"
                )
            rate_bps = self._capacity_at(start_s + elapsed) * 1e6
            step_bits = rate_bps * tick
            if step_bits >= remaining_bits and rate_bps > 0:
                elapsed += remaining_bits / rate_bps
                remaining_bits = 0.0
            else:
                remaining_bits -= step_bits
                elapsed += tick
        return elapsed

    def download_time_s(self, size_bytes: float, start_s: float, max_s: float = 600.0) -> float:
        """Seconds needed to download ``size_bytes`` starting at ``start_s``.

        Vectorized integration over the capacity trace: the tick grid is
        accumulated exactly as the reference loop accumulates
        ``elapsed``, capacities resolve through one ``searchsorted``,
        and the exit tick (where the tick's bits cover the remainder)
        comes from the sequentially-accumulated remaining-bits series —
        so the result is bit-identical to
        :meth:`download_time_reference_s`, including the stall error.
        """
        if size_bytes <= 0:
            return 0.0
        trace = self._trace
        tick = trace.tick_s
        remaining0 = size_bytes * 8.0
        duration = trace.duration_s
        times = trace.times_s
        caps = trace.capacity_mbps
        last_index = caps.shape[0] - 1
        # Grid capacity: enough ticks to reach max_s plus one overshoot.
        n_cap = int(max_s / tick) + 8
        # First guess from the trace's mean capacity; grow if short.
        mean_bps = float(np.mean(caps)) * 1e6
        if mean_bps > 0:
            n = int(remaining0 / (mean_bps * tick) * 1.5) + 16
            n = min(max(n, 32), n_cap)
        else:
            n = n_cap
        while True:
            steps = np.full(n, tick)
            steps[0] = 0.0
            elapsed = np.add.accumulate(steps)
            query = start_s + elapsed
            if self._loop:
                over = query > duration
                if over.any():
                    query = np.where(over, np.mod(query, duration), query)
            index = np.searchsorted(times, query, side="right") - 1
            np.clip(index, 0, last_index, out=index)
            rate_bps = caps[index] * 1e6
            step_bits = rate_bps * tick
            # remaining_before[j]: bits left entering tick j, accumulated
            # with the same op sequence as the reference's subtraction.
            seq = np.empty(n)
            seq[0] = remaining0
            seq[1:] = step_bits[:-1]
            remaining_before = np.subtract.accumulate(seq)
            finishes = (step_bits >= remaining_before) & (rate_bps > 0)
            stalls = elapsed >= max_s
            exit_hit = finishes.any()
            exit_at = int(np.argmax(finishes)) if exit_hit else n
            stall_at = int(np.argmax(stalls)) if stalls.any() else n
            if stall_at <= exit_at and stall_at < n:
                raise RuntimeError(
                    f"download of {size_bytes:.0f} B stalled beyond {max_s:.0f} s"
                )
            if exit_hit:
                return float(
                    elapsed[exit_at] + remaining_before[exit_at] / rate_bps[exit_at]
                )
            if n >= n_cap:
                # Unreachable: a grid reaching max_s always stalls first.
                raise RuntimeError(
                    f"download of {size_bytes:.0f} B stalled beyond {max_s:.0f} s"
                )
            n = min(n * 4, n_cap)
