"""Measurement analyses — the paper's Sections 4-6 pipelines.

Every function here consumes :class:`repro.simulate.DriveLog` records
(the simulator's XCAL-equivalent output) and produces the quantities the
paper reports: handover frequencies and signaling rates (§5.1), T1/T2
duration decompositions (§5.2), energy budgets (§5.3), coverage
footprints (§6.1), around-handover throughput phases (§6.2), and
co-location effects (§6.3).

Every analysis runs columnar: inputs are normalised through
:func:`repro.analysis.inputs.columnar_logs` (``DriveLog``,
``ColumnarLog``, ``DriveRef``, or a whole memory-mapped
``CorpusView``) and scanned as packed arrays without materialising
tick or handover objects. The original per-record list scans are kept
as ``*_reference`` functions and pinned bit-identical by the
equivalence tests.
"""

from repro.analysis.stats import SeriesSummary, summarize
from repro.analysis.frequency import (
    handover_spacing_km,
    handover_rate_per_km,
    signaling_breakdown,
    signaling_per_km,
    FrequencyBreakdown,
    frequency_breakdown,
)
from repro.analysis.duration import (
    DurationBreakdown,
    duration_breakdown,
    stage_durations_ms,
)
from repro.analysis.energy import (
    EnergyBreakdown,
    energy_breakdown,
    hourly_energy_budget,
)
from repro.analysis.coverage import (
    CoverageSummary,
    nr_coverage_segments_m,
    coverage_summary,
)
from repro.analysis.bandwidth import (
    HandoverPhaseThroughput,
    phase_throughput,
    ho_score_table,
)
from repro.analysis.colocation import ColocationSummary, colocation_summary

__all__ = [
    "ColocationSummary",
    "CoverageSummary",
    "DurationBreakdown",
    "EnergyBreakdown",
    "FrequencyBreakdown",
    "HandoverPhaseThroughput",
    "SeriesSummary",
    "colocation_summary",
    "coverage_summary",
    "duration_breakdown",
    "energy_breakdown",
    "frequency_breakdown",
    "handover_rate_per_km",
    "handover_spacing_km",
    "ho_score_table",
    "hourly_energy_budget",
    "nr_coverage_segments_m",
    "phase_throughput",
    "signaling_breakdown",
    "signaling_per_km",
    "stage_durations_ms",
    "summarize",
]
