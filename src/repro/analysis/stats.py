"""Small statistics helpers shared by the analyses and benches."""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True, slots=True)
class SeriesSummary:
    """Five-number-style summary of a sample series."""

    count: int
    mean: float
    std: float
    median: float
    p25: float
    p75: float
    p5: float
    p95: float
    minimum: float
    maximum: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"n={self.count} mean={self.mean:.2f} median={self.median:.2f} "
            f"IQR=[{self.p25:.2f}, {self.p75:.2f}]"
        )


def summarize(values: Sequence[float] | np.ndarray) -> SeriesSummary:
    """Summarise a non-empty series; raises on empty input."""
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ValueError("cannot summarise an empty series")
    return SeriesSummary(
        count=int(array.size),
        mean=float(np.mean(array)),
        std=float(np.std(array)),
        median=float(np.median(array)),
        p25=float(np.percentile(array, 25)),
        p75=float(np.percentile(array, 75)),
        p5=float(np.percentile(array, 5)),
        p95=float(np.percentile(array, 95)),
        minimum=float(np.min(array)),
        maximum=float(np.max(array)),
    )


def empirical_cdf(values: Sequence[float] | np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """(sorted values, cumulative probabilities) for CDF plotting."""
    array = np.sort(np.asarray(list(values), dtype=float))
    if array.size == 0:
        raise ValueError("cannot build a CDF from an empty series")
    probs = np.arange(1, array.size + 1) / array.size
    return array, probs


def ratio(numerator: float, denominator: float) -> float:
    """Safe ratio; raises on zero denominator to surface analysis bugs."""
    if denominator == 0:
        raise ZeroDivisionError("ratio denominator is zero")
    return numerator / denominator
