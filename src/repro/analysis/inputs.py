"""Normalising analysis inputs to packed columnar slices.

The columnar analyses accept any of: a list of
:class:`~repro.simulate.records.DriveLog` objects (fresh simulator
output — each contributes its memoized packing), a list of
:class:`~repro.simulate.columnar.ColumnarLog` /
:class:`~repro.simulate.corpus.DriveRef` handles, or a whole
memmap-backed :class:`~repro.simulate.corpus.CorpusView`. The last two
never materialise a tick object: a store-backed slice is scanned
straight off the shard files.
"""

from __future__ import annotations

from typing import Sequence

from repro.simulate.columnar import ColumnarLog, as_columnar
from repro.simulate.corpus import CorpusView, DriveRef
from repro.simulate.records import DriveLog

#: The union every columnar analysis entry point accepts.
Logs = "Sequence[DriveLog | ColumnarLog | DriveRef] | CorpusView"


def columnar_logs(logs) -> list[ColumnarLog]:
    """Resolve any supported input shape to packed columnar slices."""
    if isinstance(logs, CorpusView):
        return list(logs.iter_columnar())
    resolved: list[ColumnarLog] = []
    for log in logs:
        if isinstance(log, DriveRef):
            resolved.append(log.columnar())
        else:
            resolved.append(as_columnar(log))
    return resolved
