"""Handover frequency and signaling-rate analysis (§5.1).

The paper's headline numbers: on freeways an NSA 5G handover every
0.4 km versus every 0.6 km for 4G and every 0.9 km for SA; mmWave every
0.13 km, mid-band every 0.35 km, low-band every 0.4 km. Signaling: SA
cuts HO-related messages ~3.8× versus LTE per km; NSA mmWave's PHY-layer
procedures exceed low-band's by >5×.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rrc.signaling import SignalingTally
from repro.rrc.taxonomy import HandoverCategory, HandoverType
from repro.simulate.records import DriveLog

#: Procedure sets used for the paper's "4G HO" vs "5G HO" accounting.
FOUR_G_TYPES = (HandoverType.LTEH, HandoverType.MNBH)
FIVE_G_NSA_TYPES = (
    HandoverType.SCGA,
    HandoverType.SCGR,
    HandoverType.SCGM,
    HandoverType.SCGC,
)
SA_TYPES = (HandoverType.MCGH,)


def handover_rate_per_km(logs: list[DriveLog], types: tuple[HandoverType, ...]) -> float:
    """Handovers of the given types per km across the logs."""
    distance = sum(log.distance_km for log in logs)
    if distance <= 0:
        raise ValueError("logs cover no distance")
    count = sum(len(log.handovers_of(*types)) for log in logs)
    return count / distance


def handover_spacing_km(logs: list[DriveLog], types: tuple[HandoverType, ...]) -> float:
    """Mean distance between handovers of the given types (km)."""
    rate = handover_rate_per_km(logs, types)
    if rate == 0:
        return float("inf")
    return 1.0 / rate


@dataclass(frozen=True, slots=True)
class FrequencyBreakdown:
    """Per-category handover spacings for one workload."""

    distance_km: float
    spacing_4g_km: float
    spacing_5g_nsa_km: float
    spacing_sa_km: float
    count_by_type: dict[HandoverType, int]


def frequency_breakdown(logs: list[DriveLog]) -> FrequencyBreakdown:
    """Handover spacing per paper category over a set of drives."""
    distance = sum(log.distance_km for log in logs)
    counts: dict[HandoverType, int] = {}
    for log in logs:
        for ho_type, count in log.count_by_type().items():
            counts[ho_type] = counts.get(ho_type, 0) + count
    return FrequencyBreakdown(
        distance_km=distance,
        spacing_4g_km=handover_spacing_km(logs, FOUR_G_TYPES),
        spacing_5g_nsa_km=handover_spacing_km(logs, FIVE_G_NSA_TYPES),
        spacing_sa_km=handover_spacing_km(logs, SA_TYPES),
        count_by_type=counts,
    )


@dataclass(frozen=True, slots=True)
class SignalingRates:
    """HO-related signaling message rates per km."""

    rrc_per_km: float
    rach_per_km: float
    phy_per_km: float

    @property
    def total_per_km(self) -> float:
        return self.rrc_per_km + self.rach_per_km + self.phy_per_km


def signaling_per_km(logs: list[DriveLog]) -> SignalingRates:
    """Per-km signaling attributable to handovers across the logs."""
    distance = sum(log.distance_km for log in logs)
    if distance <= 0:
        raise ValueError("logs cover no distance")
    total = SignalingTally()
    for log in logs:
        total.add(log.total_signaling())
    return SignalingRates(
        rrc_per_km=total.rrc_total / distance,
        rach_per_km=total.rach_procedures / distance,
        phy_per_km=total.phy_ssb_measurements / distance,
    )
