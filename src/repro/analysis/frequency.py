"""Handover frequency and signaling-rate analysis (§5.1).

The paper's headline numbers: on freeways an NSA 5G handover every
0.4 km versus every 0.6 km for 4G and every 0.9 km for SA; mmWave every
0.13 km, mid-band every 0.35 km, low-band every 0.4 km. Signaling: SA
cuts HO-related messages ~3.8× versus LTE per km; NSA mmWave's PHY-layer
procedures exceed low-band's by >5×.

These analyses run on :class:`~repro.simulate.columnar.ColumnarLog`
packed arrays — distance from the first/last ``tick_arc_m`` entries,
type counts by ``bincount`` over the ``ho_type`` index column, tallies
as one ``ho_signaling`` matrix sum — so a memory-mapped corpus slice is
analysed without materialising a single tick object. Every public
function accepts the full input union of
:func:`repro.analysis.inputs.columnar_logs` — ``DriveLog``,
``ColumnarLog``, ``DriveRef``, or a whole ``CorpusView`` — so a
store-backed slice is scanned straight off the shard files. The
original per-record list scans are retained as ``*_reference``
implementations; the equivalence tests pin the columnar results to
them bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.inputs import Logs, columnar_logs
from repro.rrc.signaling import SignalingTally
from repro.rrc.taxonomy import HandoverCategory, HandoverType
from repro.simulate.columnar import ColumnarLog
from repro.simulate.records import DriveLog

#: Procedure sets used for the paper's "4G HO" vs "5G HO" accounting.
FOUR_G_TYPES = (HandoverType.LTEH, HandoverType.MNBH)
FIVE_G_NSA_TYPES = (
    HandoverType.SCGA,
    HandoverType.SCGR,
    HandoverType.SCGM,
    HandoverType.SCGC,
)
SA_TYPES = (HandoverType.MCGH,)


def _distance_km(clogs: list[ColumnarLog]) -> float:
    """Total drive distance: first→last arc per log, summed in order."""
    total = 0.0
    for clog in clogs:
        arc = clog.arrays["tick_arc_m"]
        if len(arc):
            total += float(arc[-1] - arc[0]) / 1000.0
    return total


def _count_of_types(clog: ColumnarLog, wanted: set[HandoverType]) -> int:
    """Handovers of ``wanted`` types in one log, off the index column."""
    names = clog.arrays["enum_ho_types"]
    wanted_indices = [
        i for i, name in enumerate(names.tolist()) if HandoverType[name] in wanted
    ]
    if not wanted_indices:
        return 0
    return int(np.isin(clog.arrays["ho_type"], wanted_indices).sum())


def handover_rate_per_km(logs: Logs, types: tuple[HandoverType, ...]) -> float:
    """Handovers of the given types per km across the logs."""
    clogs = columnar_logs(logs)
    distance = _distance_km(clogs)
    if distance <= 0:
        raise ValueError("logs cover no distance")
    wanted = set(types)
    count = sum(_count_of_types(clog, wanted) for clog in clogs)
    return count / distance


def handover_spacing_km(logs: Logs, types: tuple[HandoverType, ...]) -> float:
    """Mean distance between handovers of the given types (km)."""
    rate = handover_rate_per_km(logs, types)
    if rate == 0:
        return float("inf")
    return 1.0 / rate


@dataclass(frozen=True, slots=True)
class FrequencyBreakdown:
    """Per-category handover spacings for one workload."""

    distance_km: float
    spacing_4g_km: float
    spacing_5g_nsa_km: float
    spacing_sa_km: float
    count_by_type: dict[HandoverType, int]


def frequency_breakdown(logs: Logs) -> FrequencyBreakdown:
    """Handover spacing per paper category over a set of drives."""
    clogs = columnar_logs(logs)
    counts: dict[HandoverType, int] = {}
    for clog in clogs:
        # One bincount over the index column replaces the per-record
        # dict walk; indices map through the log's own name table.
        types = [HandoverType[name] for name in clog.arrays["enum_ho_types"].tolist()]
        per_index = np.bincount(clog.arrays["ho_type"], minlength=len(types))
        for index, count in enumerate(per_index.tolist()):
            if count:
                counts[types[index]] = counts.get(types[index], 0) + count
    return FrequencyBreakdown(
        distance_km=_distance_km(clogs),
        spacing_4g_km=handover_spacing_km(clogs, FOUR_G_TYPES),
        spacing_5g_nsa_km=handover_spacing_km(clogs, FIVE_G_NSA_TYPES),
        spacing_sa_km=handover_spacing_km(clogs, SA_TYPES),
        count_by_type=counts,
    )


@dataclass(frozen=True, slots=True)
class SignalingRates:
    """HO-related signaling message rates per km."""

    rrc_per_km: float
    rach_per_km: float
    phy_per_km: float

    @property
    def total_per_km(self) -> float:
        return self.rrc_per_km + self.rach_per_km + self.phy_per_km


def signaling_per_km(logs: Logs) -> SignalingRates:
    """Per-km signaling attributable to handovers across the logs."""
    clogs = columnar_logs(logs)
    distance = _distance_km(clogs)
    if distance <= 0:
        raise ValueError("logs cover no distance")
    # ho_signaling columns are the SignalingTally fields in order:
    # (measurement reports, reconfigurations, completes, RACH, PHY SSB).
    totals = np.zeros(5, dtype=np.int64)
    for clog in clogs:
        matrix = clog.arrays["ho_signaling"]
        if len(matrix):
            totals += matrix.sum(axis=0, dtype=np.int64)
    rrc_total = int(totals[0] + totals[1] + totals[2])
    return SignalingRates(
        rrc_per_km=rrc_total / distance,
        rach_per_km=int(totals[3]) / distance,
        phy_per_km=int(totals[4]) / distance,
    )


def signaling_breakdown(logs: Logs) -> dict[HandoverType, SignalingTally]:
    """Accumulated signaling tally per procedure type (§5.1 taxonomy).

    The per-type decomposition behind the paper's NSA-mmWave >5× PHY
    inflation claim: each ``ho_signaling`` row is grouped by its
    ``ho_type`` index with per-column ``bincount`` weights — no
    handover record is materialised.
    """
    totals: dict[HandoverType, SignalingTally] = {}
    for clog in columnar_logs(logs):
        matrix = clog.arrays["ho_signaling"]
        if not len(matrix):
            continue
        indices = clog.arrays["ho_type"]
        names = clog.arrays["enum_ho_types"].tolist()
        per_type = np.stack(
            [
                np.bincount(indices, weights=matrix[:, col], minlength=len(names))
                for col in range(matrix.shape[1])
            ],
            axis=1,
        ).astype(np.int64)
        present = np.bincount(indices, minlength=len(names))
        for index in np.nonzero(present)[0].tolist():
            ho_type = HandoverType[names[index]]
            tally = totals.setdefault(ho_type, SignalingTally())
            row = per_type[index]
            tally.add(
                SignalingTally(
                    rrc_measurement_reports=int(row[0]),
                    rrc_reconfigurations=int(row[1]),
                    rrc_reconfiguration_completes=int(row[2]),
                    rach_procedures=int(row[3]),
                    phy_ssb_measurements=int(row[4]),
                )
            )
    return totals


# ----------------------------------------------------------------------
# Reference implementations: the original per-record list scans
# ----------------------------------------------------------------------


def handover_rate_per_km_reference(
    logs: list[DriveLog], types: tuple[HandoverType, ...]
) -> float:
    """List-based :func:`handover_rate_per_km` (equivalence baseline)."""
    distance = sum(log.distance_km for log in logs)
    if distance <= 0:
        raise ValueError("logs cover no distance")
    count = sum(len(log.handovers_of(*types)) for log in logs)
    return count / distance


def handover_spacing_km_reference(
    logs: list[DriveLog], types: tuple[HandoverType, ...]
) -> float:
    """List-based :func:`handover_spacing_km` (equivalence baseline)."""
    rate = handover_rate_per_km_reference(logs, types)
    if rate == 0:
        return float("inf")
    return 1.0 / rate


def frequency_breakdown_reference(logs: list[DriveLog]) -> FrequencyBreakdown:
    """List-based :func:`frequency_breakdown` (equivalence baseline)."""
    distance = sum(log.distance_km for log in logs)
    counts: dict[HandoverType, int] = {}
    for log in logs:
        for ho_type, count in log.count_by_type().items():
            counts[ho_type] = counts.get(ho_type, 0) + count
    return FrequencyBreakdown(
        distance_km=distance,
        spacing_4g_km=handover_spacing_km_reference(logs, FOUR_G_TYPES),
        spacing_5g_nsa_km=handover_spacing_km_reference(logs, FIVE_G_NSA_TYPES),
        spacing_sa_km=handover_spacing_km_reference(logs, SA_TYPES),
        count_by_type=counts,
    )


def signaling_per_km_reference(logs: list[DriveLog]) -> SignalingRates:
    """List-based :func:`signaling_per_km` (equivalence baseline)."""
    distance = sum(log.distance_km for log in logs)
    if distance <= 0:
        raise ValueError("logs cover no distance")
    total = SignalingTally()
    for log in logs:
        total.add(log.total_signaling())
    return SignalingRates(
        rrc_per_km=total.rrc_total / distance,
        rach_per_km=total.rach_procedures / distance,
        phy_per_km=total.phy_ssb_measurements / distance,
    )


def signaling_breakdown_reference(
    logs: list[DriveLog],
) -> dict[HandoverType, SignalingTally]:
    """List-based :func:`signaling_breakdown` (equivalence baseline)."""
    totals: dict[HandoverType, SignalingTally] = {}
    for log in logs:
        for handover in log.handovers:
            tally = totals.setdefault(handover.ho_type, SignalingTally())
            tally.add(handover.signaling)
    return totals
