"""Handover duration decomposition (§5.2, Figs. 8-9).

The paper splits each handover into preparation (T1) and execution (T2)
and reports: NSA handovers average 167 ms (LTE: 76 ms, SA: 110 ms); T1
is ~41% of an NSA handover and ~48% longer than LTE's; NSA T2 runs
1.4-5.4x LTE's; mmWave T2 exceeds low-band's by 42-45%.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.stats import SeriesSummary, summarize
from repro.radio.bands import BandClass
from repro.rrc.taxonomy import HandoverType
from repro.simulate.records import DriveLog, HandoverRecord


def _collect(
    logs: list[DriveLog],
    *,
    types: tuple[HandoverType, ...] | None = None,
    band_class: BandClass | None = None,
    nsa_context: bool | None = None,
) -> list[HandoverRecord]:
    """Filter handovers across logs.

    Args:
        types: keep only these procedures (None = all).
        band_class: keep only handovers whose NR leg is on this class.
        nsa_context: for LTEH — True keeps only LTEH executed while
            NSA-attached, False only plain-LTE LTEH (the paper plots
            "LTEH (LTE)" and "LTEH (NSA)" separately).
    """
    kept: list[HandoverRecord] = []
    for log in logs:
        for record in log.handovers:
            if types is not None and record.ho_type not in types:
                continue
            if band_class is not None and record.band_class is not band_class:
                continue
            if nsa_context is not None and record.ho_type is HandoverType.LTEH:
                was_nsa = record.mode_before.value == "5G-NSA"
                if was_nsa != nsa_context:
                    continue
            kept.append(record)
    return kept


def stage_durations_ms(
    logs: list[DriveLog],
    stage: str,
    *,
    types: tuple[HandoverType, ...] | None = None,
    band_class: BandClass | None = None,
    nsa_context: bool | None = None,
) -> list[float]:
    """Raw T1 / T2 / total durations (ms) for the filtered handovers."""
    if stage not in ("t1", "t2", "total"):
        raise ValueError("stage must be 't1', 't2' or 'total'")
    records = _collect(
        logs, types=types, band_class=band_class, nsa_context=nsa_context
    )
    if stage == "t1":
        return [r.t1_ms for r in records]
    if stage == "t2":
        return [r.t2_ms for r in records]
    return [r.total_ms for r in records]


@dataclass(frozen=True, slots=True)
class DurationBreakdown:
    """Average duration decomposition for one handover population."""

    t1: SeriesSummary
    t2: SeriesSummary
    total: SeriesSummary

    @property
    def t1_share(self) -> float:
        """Fraction of the overall handover spent in preparation."""
        return self.t1.mean / self.total.mean


def duration_breakdown(
    logs: list[DriveLog],
    *,
    types: tuple[HandoverType, ...] | None = None,
    band_class: BandClass | None = None,
    nsa_context: bool | None = None,
) -> DurationBreakdown:
    """T1/T2/total summaries for the filtered handover population."""
    t1 = stage_durations_ms(
        logs, "t1", types=types, band_class=band_class, nsa_context=nsa_context
    )
    t2 = stage_durations_ms(
        logs, "t2", types=types, band_class=band_class, nsa_context=nsa_context
    )
    if not t1:
        raise ValueError("no handovers matched the filter")
    return DurationBreakdown(
        t1=summarize(t1),
        t2=summarize(t2),
        total=summarize([a + b for a, b in zip(t1, t2)]),
    )


#: Convenience filters matching the paper's figure populations.
NSA_5G_TYPES = (
    HandoverType.SCGA,
    HandoverType.SCGR,
    HandoverType.SCGM,
    HandoverType.SCGC,
    HandoverType.MNBH,
)
