"""Handover duration decomposition (§5.2, Figs. 8-9).

The paper splits each handover into preparation (T1) and execution (T2)
and reports: NSA handovers average 167 ms (LTE: 76 ms, SA: 110 ms); T1
is ~41% of an NSA handover and ~48% longer than LTE's; NSA T2 runs
1.4-5.4x LTE's; mmWave T2 exceeds low-band's by 42-45%.

Filtering runs on :class:`~repro.simulate.columnar.ColumnarLog` packed
arrays: the type / band / NSA-context predicates compose into one
boolean mask over the ``ho_*`` index columns and the durations come off
the ``ho_t1_ms`` / ``ho_t2_ms`` float columns directly — so a
memory-mapped corpus slice is analysed without materialising a
handover record. Every public function accepts ``DriveLog`` /
``ColumnarLog`` / :class:`~repro.simulate.corpus.DriveRef` lists or a
whole :class:`~repro.simulate.corpus.CorpusView`. The original
per-record scan is retained as :func:`stage_durations_ms_reference`;
the equivalence tests pin the columnar results to it bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.inputs import columnar_logs
from repro.analysis.stats import SeriesSummary, summarize
from repro.radio.bands import BandClass
from repro.rrc.taxonomy import HandoverType
from repro.simulate.columnar import ColumnarLog
from repro.simulate.records import DriveLog, HandoverRecord
from repro.ue.state import RadioMode


def _filter_mask(
    clog: ColumnarLog,
    *,
    types: tuple[HandoverType, ...] | None,
    band_class: BandClass | None,
    nsa_context: bool | None,
) -> np.ndarray:
    """One boolean mask over the log's handover columns."""
    arrays = clog.arrays
    ho_type = arrays["ho_type"]
    mask = np.ones(len(ho_type), dtype=bool)
    type_names = arrays["enum_ho_types"].tolist()
    if types is not None:
        wanted = set(types)
        indices = [
            i for i, name in enumerate(type_names) if HandoverType[name] in wanted
        ]
        mask &= np.isin(ho_type, indices)
    if band_class is not None:
        band_names = arrays["enum_bands"].tolist()
        band_idx = (
            band_names.index(band_class.name)
            if band_class.name in band_names
            else -2
        )
        mask &= arrays["ho_band"] == band_idx
    if nsa_context is not None:
        lteh = (
            type_names.index(HandoverType.LTEH.name)
            if HandoverType.LTEH.name in type_names
            else -2
        )
        mode_names = arrays["enum_modes"].tolist()
        nsa_idx = next(
            (
                i
                for i, name in enumerate(mode_names)
                if RadioMode[name].value == "5G-NSA"
            ),
            -2,
        )
        was_nsa = arrays["ho_mode_before"] == nsa_idx
        # Only LTEH carries the NSA-context split; other types pass.
        mask &= (ho_type != lteh) | (was_nsa == nsa_context)
    return mask


def stage_durations_ms(
    logs,
    stage: str,
    *,
    types: tuple[HandoverType, ...] | None = None,
    band_class: BandClass | None = None,
    nsa_context: bool | None = None,
) -> list[float]:
    """Raw T1 / T2 / total durations (ms) for the filtered handovers.

    Args:
        types: keep only these procedures (None = all).
        band_class: keep only handovers whose NR leg is on this class.
        nsa_context: for LTEH — True keeps only LTEH executed while
            NSA-attached, False only plain-LTE LTEH (the paper plots
            "LTEH (LTE)" and "LTEH (NSA)" separately).
    """
    if stage not in ("t1", "t2", "total"):
        raise ValueError("stage must be 't1', 't2' or 'total'")
    values: list[float] = []
    for clog in columnar_logs(logs):
        mask = _filter_mask(
            clog, types=types, band_class=band_class, nsa_context=nsa_context
        )
        if stage == "t1":
            stage_ms = clog.arrays["ho_t1_ms"][mask]
        elif stage == "t2":
            stage_ms = clog.arrays["ho_t2_ms"][mask]
        else:
            # Elementwise, matching HandoverRecord.total_ms = t1 + t2.
            stage_ms = clog.arrays["ho_t1_ms"][mask] + clog.arrays["ho_t2_ms"][mask]
        values.extend(stage_ms.tolist())
    return values


def _collect_reference(
    logs: list[DriveLog],
    *,
    types: tuple[HandoverType, ...] | None = None,
    band_class: BandClass | None = None,
    nsa_context: bool | None = None,
) -> list[HandoverRecord]:
    """Per-record filter over materialised logs (the test oracle)."""
    kept: list[HandoverRecord] = []
    for log in logs:
        for record in log.handovers:
            if types is not None and record.ho_type not in types:
                continue
            if band_class is not None and record.band_class is not band_class:
                continue
            if nsa_context is not None and record.ho_type is HandoverType.LTEH:
                was_nsa = record.mode_before.value == "5G-NSA"
                if was_nsa != nsa_context:
                    continue
            kept.append(record)
    return kept


def stage_durations_ms_reference(
    logs: list[DriveLog],
    stage: str,
    *,
    types: tuple[HandoverType, ...] | None = None,
    band_class: BandClass | None = None,
    nsa_context: bool | None = None,
) -> list[float]:
    """Per-record formulation (kept as the test oracle)."""
    if stage not in ("t1", "t2", "total"):
        raise ValueError("stage must be 't1', 't2' or 'total'")
    records = _collect_reference(
        logs, types=types, band_class=band_class, nsa_context=nsa_context
    )
    if stage == "t1":
        return [r.t1_ms for r in records]
    if stage == "t2":
        return [r.t2_ms for r in records]
    return [r.total_ms for r in records]


@dataclass(frozen=True, slots=True)
class DurationBreakdown:
    """Average duration decomposition for one handover population."""

    t1: SeriesSummary
    t2: SeriesSummary
    total: SeriesSummary

    @property
    def t1_share(self) -> float:
        """Fraction of the overall handover spent in preparation."""
        return self.t1.mean / self.total.mean


def duration_breakdown(
    logs,
    *,
    types: tuple[HandoverType, ...] | None = None,
    band_class: BandClass | None = None,
    nsa_context: bool | None = None,
) -> DurationBreakdown:
    """T1/T2/total summaries for the filtered handover population."""
    clogs = columnar_logs(logs)
    t1 = stage_durations_ms(
        clogs, "t1", types=types, band_class=band_class, nsa_context=nsa_context
    )
    t2 = stage_durations_ms(
        clogs, "t2", types=types, band_class=band_class, nsa_context=nsa_context
    )
    if not t1:
        raise ValueError("no handovers matched the filter")
    return DurationBreakdown(
        t1=summarize(t1),
        t2=summarize(t2),
        total=summarize([a + b for a, b in zip(t1, t2)]),
    )


#: Convenience filters matching the paper's figure populations.
NSA_5G_TYPES = (
    HandoverType.SCGA,
    HandoverType.SCGR,
    HandoverType.SCGM,
    HandoverType.SCGC,
    HandoverType.MNBH,
)
