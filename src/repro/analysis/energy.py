"""Handover energy analysis (§5.3, Fig. 10).

Reports per-handover power, per-distance energy, and the paper's
headline hourly budgets: a UE at 130 km/h sees ~553 NSA low-band
handovers per hour costing ~34.7 mAh (mmWave: ~998 / ~81.7 mAh;
4G: ~3.4 mAh).

Runs on :class:`~repro.simulate.columnar.ColumnarLog` packed arrays
(``ho_energy_j``, ``ho_t1_ms``/``ho_t2_ms``, the ``ho_type`` index
column), so memory-mapped corpus slices are analysed without
materialising handover records. Inputs are the full union of
:func:`repro.analysis.inputs.columnar_logs` — ``DriveLog``,
``ColumnarLog``, ``DriveRef``, or a whole ``CorpusView``. The original
list scans survive as ``*_reference`` implementations for the
equivalence tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.frequency import FIVE_G_NSA_TYPES, FOUR_G_TYPES, _distance_km
from repro.analysis.inputs import Logs, columnar_logs
from repro.rrc.taxonomy import HandoverType
from repro.simulate.columnar import ColumnarLog
from repro.simulate.records import DriveLog
from repro.ue.energy import joules_to_mah


@dataclass(frozen=True, slots=True)
class EnergyBreakdown:
    """Energy attribution for one handover population in one workload."""

    handover_count: int
    distance_km: float
    mean_power_w: float
    mean_energy_per_ho_j: float
    energy_per_km_j: float

    @property
    def energy_per_km_mah(self) -> float:
        return joules_to_mah(self.energy_per_km_j)

    @property
    def mean_energy_per_ho_mah(self) -> float:
        return joules_to_mah(self.mean_energy_per_ho_j)


def _type_mask(clog: ColumnarLog, wanted: set[HandoverType]) -> np.ndarray:
    """Boolean mask over the log's handovers, via its own name table."""
    names = clog.arrays["enum_ho_types"]
    wanted_indices = [
        i for i, name in enumerate(names.tolist()) if HandoverType[name] in wanted
    ]
    return np.isin(clog.arrays["ho_type"], wanted_indices)


def energy_breakdown(logs: Logs, types: tuple[HandoverType, ...]) -> EnergyBreakdown:
    """Per-HO and per-km energy for the given procedure types."""
    clogs = columnar_logs(logs)
    distance = _distance_km(clogs)
    if distance <= 0:
        raise ValueError("logs cover no distance")
    wanted = set(types)
    energy_parts: list[np.ndarray] = []
    window_parts: list[np.ndarray] = []
    for clog in clogs:
        mask = _type_mask(clog, wanted)
        if mask.any():
            a = clog.arrays
            energy_parts.append(a["ho_energy_j"][mask])
            window_parts.append(_window_s_arrays(a["ho_t1_ms"][mask], a["ho_t2_ms"][mask]))
    if not energy_parts:
        raise ValueError("no handovers of the requested types")
    energies = np.concatenate(energy_parts)
    windows = np.concatenate(window_parts)
    # Per-HO power: energy over the HO's active-signaling window. The
    # window is not logged directly, so derive power from the calibrated
    # energy and the procedure duration proxy used by the paper's Fig 10
    # (energy / signaling-active window). We log energy only; the power
    # column of Fig 10 is regenerated in the bench from the energy model.
    return EnergyBreakdown(
        handover_count=len(energies),
        distance_km=distance,
        mean_power_w=float(np.mean(energies / windows)),
        mean_energy_per_ho_j=float(np.mean(energies)),
        energy_per_km_j=float(np.sum(energies)) / distance,
    )


def _window_s_arrays(t1_ms: np.ndarray, t2_ms: np.ndarray) -> np.ndarray:
    """Active-signaling window per handover (total stage time, seconds).

    Used only to express measured energy as an average power for the
    Fig. 10 left axis. Columnar twin of :func:`_window_s`: same
    ``max(t1 + t2, 1 ms)`` floor, elementwise.
    """
    return np.maximum(t1_ms + t2_ms, 1.0) / 1000.0


@dataclass(frozen=True, slots=True)
class HourlyBudget:
    """The §5.3 extrapolation: one hour at a constant driving speed."""

    speed_kmh: float
    handovers_per_hour: float
    energy_mah_per_hour: float


def hourly_energy_budget(
    logs: Logs,
    types: tuple[HandoverType, ...],
    speed_kmh: float = 130.0,
) -> HourlyBudget:
    """Extrapolate the measured per-km rates to one hour at ``speed_kmh``."""
    breakdown = energy_breakdown(logs, types)
    per_km = breakdown.handover_count / breakdown.distance_km
    return HourlyBudget(
        speed_kmh=speed_kmh,
        handovers_per_hour=per_km * speed_kmh,
        energy_mah_per_hour=breakdown.energy_per_km_mah * speed_kmh,
    )


# ----------------------------------------------------------------------
# Reference implementations: the original per-record list scans
# ----------------------------------------------------------------------


def energy_breakdown_reference(
    logs: list[DriveLog], types: tuple[HandoverType, ...]
) -> EnergyBreakdown:
    """List-based :func:`energy_breakdown` (equivalence baseline)."""
    distance = sum(log.distance_km for log in logs)
    if distance <= 0:
        raise ValueError("logs cover no distance")
    records = [r for log in logs for r in log.handovers_of(*types)]
    if not records:
        raise ValueError("no handovers of the requested types")
    energies = np.array([r.energy_j for r in records])
    return EnergyBreakdown(
        handover_count=len(records),
        distance_km=distance,
        mean_power_w=float(np.mean(energies / _window_s(records))),
        mean_energy_per_ho_j=float(np.mean(energies)),
        energy_per_km_j=float(np.sum(energies)) / distance,
    )


def _window_s(records) -> np.ndarray:
    """Per-record active-signaling windows (reference path)."""
    return np.array([max(r.total_ms, 1.0) / 1000.0 for r in records])


def hourly_energy_budget_reference(
    logs: list[DriveLog],
    types: tuple[HandoverType, ...],
    speed_kmh: float = 130.0,
) -> HourlyBudget:
    """List-based :func:`hourly_energy_budget` (equivalence baseline)."""
    breakdown = energy_breakdown_reference(logs, types)
    per_km = breakdown.handover_count / breakdown.distance_km
    return HourlyBudget(
        speed_kmh=speed_kmh,
        handovers_per_hour=per_km * speed_kmh,
        energy_mah_per_hour=breakdown.energy_per_km_mah * speed_kmh,
    )


#: Re-exported procedure sets for bench readability.
NSA_TYPES = FIVE_G_NSA_TYPES
LTE_TYPES = FOUR_G_TYPES
