"""Coverage landscape analysis (§6.1, Fig. 11).

The paper estimates a cell's coverage as the continuous distance the UE
travels while connected to the same PCI. For NSA it contrasts:

* *coverage w/ NSA* — actual NR connection segments, which anchor (4C)
  handovers chop up because an anchor HO tears the SCG down, and
* *coverage w/o NSA* — the hypothetical footprint obtained by merging
  segments on the same NR PCI across those interruptions (the dashed
  curves of Fig. 11).

Reported footprints: low-band 1.4 km, mid-band 0.73 km, mmWave 0.15 km;
NSA reduces effective low-band coverage 1.2-2x versus SA.

The segment extraction runs on
:class:`~repro.simulate.columnar.ColumnarLog` packed arrays: the
attached subsequence is one ``flatnonzero`` over ``tick_nr_pci``,
segment boundaries are a vectorised PCI-change (and, without merging,
index-gap) comparison, and each segment length is a single ``arc``
subtraction — so a memory-mapped corpus slice is analysed without
materialising a tick object. Every public function accepts
``DriveLog`` / ``ColumnarLog`` / :class:`~repro.simulate.corpus.DriveRef`
lists or a whole :class:`~repro.simulate.corpus.CorpusView`. The
original per-tick state machine is retained as
:func:`nr_coverage_segments_m_reference`; the equivalence tests pin the
columnar results to it bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.inputs import columnar_logs
from repro.analysis.stats import SeriesSummary, summarize
from repro.simulate.records import DriveLog


def nr_coverage_segments_m(
    logs, *, merge_interruptions: bool = False
) -> list[float]:
    """Distances travelled on one NR PCI, off the packed arrays.

    Args:
        merge_interruptions: False measures actual connection segments
            ("coverage w/ NSA"); True merges across detached gaps when
            the UE comes back to the same PCI ("coverage w/o NSA").
    """
    segments: list[float] = []
    for clog in columnar_logs(logs):
        pci = clog.arrays["tick_nr_pci"]
        arc = clog.arrays["tick_arc_m"]
        attached = np.flatnonzero(pci >= 0)
        if attached.size == 0:
            continue
        sub_pci = pci[attached]
        sub_arc = arc[attached]
        # A segment closes where the PCI changes between consecutive
        # attached samples; without merging, a detached gap (an index
        # jump in the attached subsequence) closes it too.
        boundary = sub_pci[1:] != sub_pci[:-1]
        if not merge_interruptions:
            boundary = boundary | (attached[1:] != attached[:-1] + 1)
        cuts = np.flatnonzero(boundary)
        starts = np.concatenate(([0], cuts + 1))
        ends = np.concatenate((cuts, [attached.size - 1]))
        lengths = sub_arc[ends] - sub_arc[starts]
        if merge_interruptions and attached[-1] != pci.size - 1:
            # When the log ends detached, the segment left open across
            # the trailing gap is never closed (matching the state
            # machine, which only flushes while attached).
            lengths = lengths[:-1]
        segments.extend(lengths[lengths > 0].tolist())
    return segments


def nr_coverage_segments_m_reference(
    logs: list[DriveLog], *, merge_interruptions: bool = False
) -> list[float]:
    """Per-tick state-machine formulation (kept as the test oracle)."""
    segments: list[float] = []
    for log in logs:
        current_pci: int | None = None
        segment_start: float | None = None
        last_arc: float | None = None
        pending_gap_pci: int | None = None
        for tick in log.ticks:
            pci = tick.nr_serving_pci
            if pci is not None:
                if current_pci is None:
                    resume = merge_interruptions and pci == pending_gap_pci
                    if not resume:
                        # A different PCI (or no-merge mode): close any
                        # segment left open across the gap, start fresh.
                        if (
                            merge_interruptions
                            and segment_start is not None
                            and last_arc is not None
                        ):
                            segments.append(last_arc - segment_start)
                        segment_start = tick.arc_m
                    elif segment_start is None:
                        segment_start = tick.arc_m
                    current_pci = pci
                elif pci != current_pci:
                    if segment_start is not None and last_arc is not None:
                        segments.append(last_arc - segment_start)
                    current_pci = pci
                    segment_start = tick.arc_m
                last_arc = tick.arc_m
                pending_gap_pci = None
            else:
                if current_pci is not None:
                    pending_gap_pci = current_pci
                    if not merge_interruptions:
                        if segment_start is not None and last_arc is not None:
                            segments.append(last_arc - segment_start)
                        segment_start = None
                    current_pci = None
        if current_pci is not None and segment_start is not None and last_arc is not None:
            segments.append(last_arc - segment_start)
    return [s for s in segments if s > 0]


@dataclass(frozen=True, slots=True)
class CoverageSummary:
    """Coverage footprints with and without NSA interruptions."""

    actual: SeriesSummary
    merged: SeriesSummary

    @property
    def nsa_reduction_factor(self) -> float:
        """How much NSA shrinks the effective footprint (>= 1)."""
        return self.merged.mean / self.actual.mean


def coverage_summary(logs) -> CoverageSummary:
    """Coverage w/ NSA vs. w/o NSA for a set of drives."""
    clogs = columnar_logs(logs)
    actual = nr_coverage_segments_m(clogs, merge_interruptions=False)
    merged = nr_coverage_segments_m(clogs, merge_interruptions=True)
    if not actual or not merged:
        raise ValueError("no NR coverage segments in the logs")
    return CoverageSummary(actual=summarize(actual), merged=summarize(merged))
