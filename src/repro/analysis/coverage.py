"""Coverage landscape analysis (§6.1, Fig. 11).

The paper estimates a cell's coverage as the continuous distance the UE
travels while connected to the same PCI. For NSA it contrasts:

* *coverage w/ NSA* — actual NR connection segments, which anchor (4C)
  handovers chop up because an anchor HO tears the SCG down, and
* *coverage w/o NSA* — the hypothetical footprint obtained by merging
  segments on the same NR PCI across those interruptions (the dashed
  curves of Fig. 11).

Reported footprints: low-band 1.4 km, mid-band 0.73 km, mmWave 0.15 km;
NSA reduces effective low-band coverage 1.2-2x versus SA.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.stats import SeriesSummary, summarize
from repro.simulate.records import DriveLog


def nr_coverage_segments_m(
    logs: list[DriveLog], *, merge_interruptions: bool = False
) -> list[float]:
    """Distances travelled on one NR PCI.

    Args:
        merge_interruptions: False measures actual connection segments
            ("coverage w/ NSA"); True merges across detached gaps when
            the UE comes back to the same PCI ("coverage w/o NSA").
    """
    segments: list[float] = []
    for log in logs:
        current_pci: int | None = None
        segment_start: float | None = None
        last_arc: float | None = None
        pending_gap_pci: int | None = None
        for tick in log.ticks:
            pci = tick.nr_serving_pci
            if pci is not None:
                if current_pci is None:
                    resume = merge_interruptions and pci == pending_gap_pci
                    if not resume:
                        # A different PCI (or no-merge mode): close any
                        # segment left open across the gap, start fresh.
                        if (
                            merge_interruptions
                            and segment_start is not None
                            and last_arc is not None
                        ):
                            segments.append(last_arc - segment_start)
                        segment_start = tick.arc_m
                    elif segment_start is None:
                        segment_start = tick.arc_m
                    current_pci = pci
                elif pci != current_pci:
                    if segment_start is not None and last_arc is not None:
                        segments.append(last_arc - segment_start)
                    current_pci = pci
                    segment_start = tick.arc_m
                last_arc = tick.arc_m
                pending_gap_pci = None
            else:
                if current_pci is not None:
                    pending_gap_pci = current_pci
                    if not merge_interruptions:
                        if segment_start is not None and last_arc is not None:
                            segments.append(last_arc - segment_start)
                        segment_start = None
                    current_pci = None
        if current_pci is not None and segment_start is not None and last_arc is not None:
            segments.append(last_arc - segment_start)
    return [s for s in segments if s > 0]


@dataclass(frozen=True, slots=True)
class CoverageSummary:
    """Coverage footprints with and without NSA interruptions."""

    actual: SeriesSummary
    merged: SeriesSummary

    @property
    def nsa_reduction_factor(self) -> float:
        """How much NSA shrinks the effective footprint (>= 1)."""
        return self.merged.mean / self.actual.mean


def coverage_summary(logs: list[DriveLog]) -> CoverageSummary:
    """Coverage w/ NSA vs. w/o NSA for a set of drives."""
    actual = nr_coverage_segments_m(logs, merge_interruptions=False)
    merged = nr_coverage_segments_m(logs, merge_interruptions=True)
    if not actual or not merged:
        raise ValueError("no NR coverage segments in the logs")
    return CoverageSummary(actual=summarize(actual), merged=summarize(merged))
