"""eNB/gNB co-location analysis (§6.3, Fig. 13).

The paper detects co-location from the UE side: when the NSA-4C eNB and
the 5G-NR gNB hang on the same tower, carriers assign them the same PCI.
Building convex hulls over the points where each (4G PCI, 5G PCI) pair
was observed and testing them for overlap confirms the heuristic. The
payoff: NSA handovers whose eNB/gNB pair is co-located complete ~13 ms
faster (no cross-tower coordination), and only 5-36% of NSA low-band
samples are co-located.

All entry points scan :class:`~repro.simulate.columnar.ColumnarLog`
packed arrays (``tick_lte_pci`` / ``tick_nr_pci`` for attachment
counting, the ``ho_same_pci`` tri-state column for the duration split),
so they accept ``DriveLog`` / ``ColumnarLog`` /
:class:`~repro.simulate.corpus.DriveRef` lists or a memmap-backed
:class:`~repro.simulate.corpus.CorpusView` interchangeably — a stored
corpus slice is analysed without materialising a single tick object.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.inputs import columnar_logs
from repro.analysis.stats import SeriesSummary, summarize
from repro.geo.hull import convex_hull, hulls_overlap
from repro.geo.point import Point
from repro.rrc.taxonomy import HandoverType

#: NSA procedures whose timing the co-location comparison covers.
NSA_PROCEDURES = (
    HandoverType.SCGA,
    HandoverType.SCGR,
    HandoverType.SCGM,
    HandoverType.SCGC,
    HandoverType.MNBH,
)


@dataclass(frozen=True, slots=True)
class ColocationSummary:
    """Fig. 13: NSA handover duration, same-PCI vs. different-PCI legs."""

    same_pci: SeriesSummary
    different_pci: SeriesSummary
    colocated_sample_fraction: float

    @property
    def mean_saving_ms(self) -> float:
        return self.different_pci.mean - self.same_pci.mean


def colocated_tick_fraction(logs) -> float:
    """Fraction of NSA-attached ticks whose 4G and 5G PCIs match."""
    attached = 0
    same = 0
    for clog in columnar_logs(logs):
        lte_pci = clog.arrays["tick_lte_pci"]
        nr_pci = clog.arrays["tick_nr_pci"]
        both = (lte_pci >= 0) & (nr_pci >= 0)
        attached += int(np.count_nonzero(both))
        same += int(np.count_nonzero(both & (lte_pci == nr_pci)))
    if attached == 0:
        raise ValueError("no NSA-attached ticks in the logs")
    return same / attached


def colocation_summary(logs) -> ColocationSummary:
    """Compare NSA handover durations by the same-PCI heuristic."""
    same: list[float] = []
    different: list[float] = []
    clogs = columnar_logs(logs)
    for clog in clogs:
        arrays = clog.arrays
        type_names = arrays["enum_ho_types"].tolist()
        nsa = [
            i
            for i, name in enumerate(type_names)
            if HandoverType[name] in NSA_PROCEDURES
        ]
        known = arrays["ho_same_pci"] >= 0  # tri-state: -1 = unknown
        keep = np.isin(arrays["ho_type"], nsa) & known
        total_ms = arrays["ho_t1_ms"][keep] + arrays["ho_t2_ms"][keep]
        same_legs = arrays["ho_same_pci"][keep] == 1
        same.extend(total_ms[same_legs].tolist())
        different.extend(total_ms[~same_legs].tolist())
    if not same or not different:
        raise ValueError("need both same-PCI and different-PCI handovers")
    return ColocationSummary(
        same_pci=summarize(same),
        different_pci=summarize(different),
        colocated_sample_fraction=colocated_tick_fraction(clogs),
    )


def verify_colocation_by_hulls(logs) -> dict[tuple[int, int], bool]:
    """The paper's hull check: do a 4G PCI's and a 5G PCI's observation
    footprints overlap?

    Returns, for every (4G PCI, 5G PCI) pair that was ever attached
    simultaneously, whether their observation hulls overlap — True is
    evidence of co-location (or at least adjacency).
    """
    observations: dict[tuple[str, int], list[Point]] = {}
    pairs: set[tuple[int, int]] = set()
    for clog in columnar_logs(logs):
        arrays = clog.arrays
        lte_pci = arrays["tick_lte_pci"]
        nr_pci = arrays["tick_nr_pci"]
        xs = arrays["tick_x_m"]
        ys = arrays["tick_y_m"]
        for lte, nr, x, y in zip(
            lte_pci.tolist(), nr_pci.tolist(), xs.tolist(), ys.tolist()
        ):
            point = Point(x, y)
            if lte >= 0:
                observations.setdefault(("lte", lte), []).append(point)
            if nr >= 0:
                observations.setdefault(("nr", nr), []).append(point)
            if lte >= 0 and nr >= 0:
                pairs.add((lte, nr))
    result: dict[tuple[int, int], bool] = {}
    for lte_pci_id, nr_pci_id in pairs:
        lte_points = observations.get(("lte", lte_pci_id), [])
        nr_points = observations.get(("nr", nr_pci_id), [])
        if not lte_points or not nr_points:
            continue
        result[(lte_pci_id, nr_pci_id)] = hulls_overlap(
            convex_hull(lte_points), convex_hull(nr_points)
        )
    return result
