"""eNB/gNB co-location analysis (§6.3, Fig. 13).

The paper detects co-location from the UE side: when the NSA-4C eNB and
the 5G-NR gNB hang on the same tower, carriers assign them the same PCI.
Building convex hulls over the points where each (4G PCI, 5G PCI) pair
was observed and testing them for overlap confirms the heuristic. The
payoff: NSA handovers whose eNB/gNB pair is co-located complete ~13 ms
faster (no cross-tower coordination), and only 5-36% of NSA low-band
samples are co-located.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.stats import SeriesSummary, summarize
from repro.geo.hull import convex_hull, hulls_overlap
from repro.geo.point import Point
from repro.rrc.taxonomy import HandoverType
from repro.simulate.records import DriveLog

#: NSA procedures whose timing the co-location comparison covers.
NSA_PROCEDURES = (
    HandoverType.SCGA,
    HandoverType.SCGR,
    HandoverType.SCGM,
    HandoverType.SCGC,
    HandoverType.MNBH,
)


@dataclass(frozen=True, slots=True)
class ColocationSummary:
    """Fig. 13: NSA handover duration, same-PCI vs. different-PCI legs."""

    same_pci: SeriesSummary
    different_pci: SeriesSummary
    colocated_sample_fraction: float

    @property
    def mean_saving_ms(self) -> float:
        return self.different_pci.mean - self.same_pci.mean


def colocated_tick_fraction(logs: list[DriveLog]) -> float:
    """Fraction of NSA-attached ticks whose 4G and 5G PCIs match."""
    attached = 0
    same = 0
    for log in logs:
        lte_pci, nr_pci = log.serving_pci_series()
        both = (lte_pci >= 0) & (nr_pci >= 0)
        attached += int(np.count_nonzero(both))
        same += int(np.count_nonzero(both & (lte_pci == nr_pci)))
    if attached == 0:
        raise ValueError("no NSA-attached ticks in the logs")
    return same / attached


def colocation_summary(logs: list[DriveLog]) -> ColocationSummary:
    """Compare NSA handover durations by the same-PCI heuristic."""
    same: list[float] = []
    different: list[float] = []
    for log in logs:
        for record in log.handovers_of(*NSA_PROCEDURES):
            if record.same_pci_legs is None:
                continue
            (same if record.same_pci_legs else different).append(record.total_ms)
    if not same or not different:
        raise ValueError("need both same-PCI and different-PCI handovers")
    return ColocationSummary(
        same_pci=summarize(same),
        different_pci=summarize(different),
        colocated_sample_fraction=colocated_tick_fraction(logs),
    )


def verify_colocation_by_hulls(logs: list[DriveLog]) -> dict[tuple[int, int], bool]:
    """The paper's hull check: do a 4G PCI's and a 5G PCI's observation
    footprints overlap?

    Returns, for every (4G PCI, 5G PCI) pair that was ever attached
    simultaneously, whether their observation hulls overlap — True is
    evidence of co-location (or at least adjacency).
    """
    observations: dict[tuple[str, int], list[Point]] = {}
    pairs: set[tuple[int, int]] = set()
    for log in logs:
        for tick in log.ticks:
            point = Point(tick.x_m, tick.y_m)
            if tick.lte_serving_pci is not None:
                observations.setdefault(("lte", tick.lte_serving_pci), []).append(point)
            if tick.nr_serving_pci is not None:
                observations.setdefault(("nr", tick.nr_serving_pci), []).append(point)
            if tick.lte_serving_pci is not None and tick.nr_serving_pci is not None:
                pairs.add((tick.lte_serving_pci, tick.nr_serving_pci))
    result: dict[tuple[int, int], bool] = {}
    for lte_pci, nr_pci in pairs:
        lte_points = observations.get(("lte", lte_pci), [])
        nr_points = observations.get(("nr", nr_pci), [])
        if not lte_points or not nr_points:
            continue
        result[(lte_pci, nr_pci)] = hulls_overlap(
            convex_hull(lte_points), convex_hull(nr_points)
        )
    return result
