"""Around-handover throughput phases (§6.2, Figs. 12 & 16).

For each handover the paper measures downlink throughput in three
phases: HO_pre (the second before preparation starts), HO_exec (during
the procedure), and HO_post (the second after completion). Headline
findings: SCG Change — nominally an "improvement" handover — *reduces*
post-HO throughput by ~14% on average; SCG Addition multiplies
throughput ~17x (the NR leg comes up); SCG Release divides it ~7x;
SCG Modification gains ~43% post-HO.

The same table, expressed as the median post/pre capacity ratio per
procedure, is what Prognos ships to applications as ``ho_score`` (§7.2).

The phase windows are computed over
:class:`~repro.simulate.columnar.ColumnarLog` packed arrays
(``tick_time_s`` / ``tick_total_capacity_mbps`` for the capacity
series, the ``ho_*`` timestamp columns for the windows), so every entry
point accepts ``DriveLog`` / ``ColumnarLog`` /
:class:`~repro.simulate.corpus.DriveRef` lists or a memmap-backed
:class:`~repro.simulate.corpus.CorpusView` interchangeably — a stored
corpus slice is analysed straight off its shard files.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.inputs import columnar_logs
from repro.analysis.stats import SeriesSummary, summarize
from repro.rrc.taxonomy import HandoverType


@dataclass(frozen=True, slots=True)
class HandoverPhaseThroughput:
    """Throughput distribution per phase for one handover type."""

    ho_type: HandoverType
    pre: SeriesSummary
    execute: SeriesSummary
    post: SeriesSummary
    post_over_pre_ratios: tuple[float, ...]

    @property
    def median_post_over_pre(self) -> float:
        return float(np.median(self.post_over_pre_ratios))

    @property
    def mean_post_over_pre(self) -> float:
        """Ratio of mean post to mean pre (the paper's 'average' framing)."""
        if self.pre.mean == 0:
            return float("inf")
        return self.post.mean / self.pre.mean


def phase_throughput(
    logs,
    ho_type: HandoverType,
    *,
    window_s: float = 1.0,
) -> HandoverPhaseThroughput | None:
    """Phase throughput for one handover type across drives.

    Returns None when no handover of the type has enough surrounding
    samples (e.g. at trace edges).
    """
    pre_all: list[float] = []
    exec_all: list[float] = []
    post_all: list[float] = []
    ratios: list[float] = []
    for clog in columnar_logs(logs):
        # Packed (possibly memmapped) arrays; each phase window [a, b)
        # over the sorted tick times is the contiguous index range given
        # by one searchsorted — means over the slices match the
        # boolean-mask formulation bit for bit (same elements, same
        # reduction).
        arrays = clog.arrays
        times = arrays["tick_time_s"]
        caps = arrays["tick_total_capacity_mbps"]
        type_names = arrays["enum_ho_types"].tolist()
        type_idx = (
            type_names.index(ho_type.name) if ho_type.name in type_names else -2
        )
        for row in np.flatnonzero(arrays["ho_type"] == type_idx).tolist():
            decision_s = arrays["ho_decision_s"][row]
            exec_start_s = arrays["ho_exec_start_s"][row]
            complete_s = arrays["ho_complete_s"][row]
            bounds = np.searchsorted(
                times,
                [
                    decision_s - window_s,
                    decision_s,
                    exec_start_s,
                    complete_s,
                    complete_s,
                    complete_s + window_s,
                ],
                side="left",
            )
            pre_lo, pre_hi, exec_lo, exec_hi, post_lo, post_hi = (
                int(b) for b in bounds
            )
            if pre_hi <= pre_lo or post_hi <= post_lo:
                continue
            pre = float(np.mean(caps[pre_lo:pre_hi]))
            post = float(np.mean(caps[post_lo:post_hi]))
            pre_all.append(pre)
            post_all.append(post)
            if exec_hi > exec_lo:
                exec_all.append(float(np.mean(caps[exec_lo:exec_hi])))
            if pre > 1e-6:
                ratios.append(post / pre)
    if not pre_all:
        return None
    return HandoverPhaseThroughput(
        ho_type=ho_type,
        pre=summarize(pre_all),
        execute=summarize(exec_all) if exec_all else summarize([0.0]),
        post=summarize(post_all),
        post_over_pre_ratios=tuple(ratios),
    )


def ho_score_table(
    logs,
    types: tuple[HandoverType, ...] = (
        HandoverType.SCGA,
        HandoverType.SCGR,
        HandoverType.SCGM,
        HandoverType.SCGC,
        HandoverType.MNBH,
        HandoverType.LTEH,
        HandoverType.MCGH,
    ),
) -> dict[HandoverType, float]:
    """Empirical ho_score per procedure: median post/pre capacity ratio.

    This is exactly how the paper derives the ho_score Prognos hands to
    applications (§7.2: "empirically calculated from results reported in
    Fig. 16").
    """
    # Resolve once so store-backed views open their memmaps one time,
    # not once per handover type.
    clogs = columnar_logs(logs)
    table: dict[HandoverType, float] = {}
    for ho_type in types:
        phases = phase_throughput(clogs, ho_type)
        if phases is not None and phases.post_over_pre_ratios:
            table[ho_type] = phases.median_post_over_pre
    return table
