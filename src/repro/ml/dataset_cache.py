"""On-disk derived-dataset cache: content-addressed feature matrices.

Feature extraction over a 35-minute 20 Hz corpus costs seconds per
Table 3 cell, and the §7.3 benches rebuild the exact same matrices
every session. This module caches :class:`LabeledDataset` artefacts on
disk, keyed by a sha256 over everything that determines the build
bit-for-bit:

* the builder kind and its parameters (stride, window, ...),
* a content digest of every input drive log (ticks, reports,
  handovers — not the object identity), and
* the same code-version token the drive/model caches use — a hash over
  the ``repro`` package sources — so editing a feature-extraction
  constant silently invalidates stale entries instead of serving
  matrices produced by old code.

It shares the :mod:`repro.simulate.cache` knobs: ``REPRO_CACHE_DIR``
relocates the root (datasets live under a ``datasets/`` subdirectory
next to drive logs and models), ``REPRO_NO_CACHE=1`` disables caching
entirely. Entries are ``.npz`` archives — arrays round-trip losslessly
and labels are stored by enum name.
"""

from __future__ import annotations

import hashlib
import json
import os
import zipfile
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from repro.ml.features import LabeledDataset
from repro.rrc.taxonomy import HandoverType
from repro.simulate.cache import atomic_publish, code_version_token
from repro.simulate.records import DriveLog

_DEFAULT_ROOT = ".repro-cache"


def log_content_digest(log) -> str:
    """sha256 over everything in the log a feature builder can read.

    Hashes the log's packed columnar arrays
    (:meth:`DriveLog.columnar`) rather than pickling tick tuples: logs
    served by the drive cache are already columnar-backed, so their
    digest is a straight pass over the loaded arrays, and fresh logs
    pack once into a form the cache store reuses. Memoized on the log
    instance, as the Table 3 drivers digest the same logs once per
    (kind, params) combination. Accepts a
    :class:`~repro.simulate.columnar.ColumnarLog` too — memory-mapped
    corpus slices digest without materialising a DriveLog.
    """
    from repro.simulate.columnar import as_columnar

    cached = log.__dict__.get("_content_digest")
    if cached is not None:
        return cached
    token = as_columnar(log).content_digest()
    log.__dict__["_content_digest"] = token
    return token


class DatasetCache:
    """Content-addressed store of derived feature datasets.

    Entries live under ``root/datasets`` as ``<kind>-<key>.npz``.
    Lookups on a disabled cache always miss; stores become no-ops.
    Like the drive cache it is self-healing: failed writes degrade to
    a counted no-op (``put_failures``) and undecodable entries are
    quarantined to ``*.corrupt`` (``corrupt``) so they miss once.
    """

    def __init__(self, root: str | Path | None = None, *, enabled: bool | None = None):
        if enabled is None:
            enabled = os.environ.get("REPRO_NO_CACHE", "") != "1"
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR") or _DEFAULT_ROOT
        self.root = Path(root) / "datasets"
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.put_failures = 0
        self.corrupt = 0

    @staticmethod
    def key_for(kind: str, logs: Sequence[DriveLog], params: dict) -> str:
        payload = json.dumps(
            {
                "kind": kind,
                "logs": [log_content_digest(log) for log in logs],
                "params": {k: params[k] for k in sorted(params)},
                "code_version": code_version_token(),
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def _path(self, kind: str, key: str) -> Path:
        return self.root / f"{kind}-{key}.npz"

    def get(self, kind: str, key: str) -> LabeledDataset | None:
        """The cached dataset, or None on a miss."""
        if not self.enabled:
            self.misses += 1
            return None
        path = self._path(kind, key)
        if not path.exists():
            self.misses += 1
            return None
        try:
            with np.load(path, allow_pickle=False) as archive:
                x = archive["x"]
                times_s = archive["times_s"]
                labels = [HandoverType[name] for name in archive["labels"].tolist()]
        except (EOFError, KeyError, ValueError, zipfile.BadZipFile):
            # Undecodable entry: miss, and quarantine it so the next
            # lookup misses cheaply instead of re-parsing it forever.
            self.corrupt += 1
            try:
                path.replace(path.with_name(path.name + ".corrupt"))
            except OSError:
                pass
            self.misses += 1
            return None
        except OSError:
            # Transient read failure: a plain miss.
            self.misses += 1
            return None
        self.hits += 1
        return LabeledDataset(x, labels, times_s)

    def put(self, kind: str, key: str, dataset: LabeledDataset) -> None:
        if not self.enabled:
            return
        path = self._path(kind, key)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            with atomic_publish(path) as tmp:
                with open(tmp, "wb") as fh:
                    np.savez_compressed(
                        fh,
                        x=dataset.x,
                        times_s=dataset.times_s,
                        labels=np.array([label.name for label in dataset.labels]),
                    )
        except OSError:
            # Full disk / read-only cache dir: degrade to a counted
            # no-op, never abort the run that built the dataset.
            self.put_failures += 1
            return
        self.stores += 1

    @property
    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "put_failures": self.put_failures,
            "corrupt": self.corrupt,
        }


def build_cached(
    kind: str,
    builder: Callable[[], LabeledDataset],
    logs: Sequence[DriveLog],
    params: dict,
    *,
    cache: DatasetCache | None = None,
) -> LabeledDataset:
    """Build a dataset through the cache.

    ``params`` must capture every knob the builder closes over — it is
    part of the content key alongside the log digests.
    """
    if cache is None:
        cache = DatasetCache()
    key = cache.key_for(kind, logs, params)
    dataset = cache.get(kind, key)
    if dataset is not None:
        return dataset
    dataset = builder()
    cache.put(kind, key, dataset)
    return dataset
