"""Stacked LSTM classifier in numpy (BPTT + Adam).

The Ozturk et al. baseline (§7.3): a stacked LSTM that predicts
handovers from the device's location track. Two LSTM layers feed a
softmax head; training is truncated-BPTT over fixed-length windows with
Adam and class-frequency weighting.

The implementation is deliberately compact but complete: full forward
pass caching, exact gradients through both layers, gradient clipping.
"""

from __future__ import annotations

import numpy as np


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -30, 30)))


class _LstmLayer:
    """One LSTM layer with fused gate weights."""

    def __init__(self, input_dim: int, hidden_dim: int, rng: np.random.Generator):
        scale = 1.0 / np.sqrt(input_dim + hidden_dim)
        self.w = rng.normal(0, scale, size=(4 * hidden_dim, input_dim + hidden_dim))
        self.b = np.zeros(4 * hidden_dim)
        self.b[:hidden_dim] = 1.0  # forget-gate bias init
        self.hidden_dim = hidden_dim
        self._cache: list[tuple] = []

    def forward(self, xs: np.ndarray) -> np.ndarray:
        """xs: (T, input_dim) -> hidden states (T, hidden_dim)."""
        h = np.zeros(self.hidden_dim)
        c = np.zeros(self.hidden_dim)
        self._cache = []
        outputs = np.empty((xs.shape[0], self.hidden_dim))
        hd = self.hidden_dim
        for t, x in enumerate(xs):
            z = np.concatenate([h, x])
            gates = self.w @ z + self.b
            f = _sigmoid(gates[:hd])
            i = _sigmoid(gates[hd : 2 * hd])
            o = _sigmoid(gates[2 * hd : 3 * hd])
            g = np.tanh(gates[3 * hd :])
            c_new = f * c + i * g
            h_new = o * np.tanh(c_new)
            self._cache.append((z, f, i, o, g, c, c_new))
            h, c = h_new, c_new
            outputs[t] = h
        return outputs

    def backward(self, d_outputs: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """d_outputs: (T, hidden) -> (d_inputs, dW, db)."""
        hd = self.hidden_dim
        dw = np.zeros_like(self.w)
        db = np.zeros_like(self.b)
        d_inputs = np.empty((d_outputs.shape[0], self.w.shape[1] - hd))
        dh_next = np.zeros(hd)
        dc_next = np.zeros(hd)
        for t in range(d_outputs.shape[0] - 1, -1, -1):
            z, f, i, o, g, c_prev, c_new = self._cache[t]
            dh = d_outputs[t] + dh_next
            tanh_c = np.tanh(c_new)
            do = dh * tanh_c
            dc = dh * o * (1 - tanh_c**2) + dc_next
            df = dc * c_prev
            di = dc * g
            dg = dc * i
            dc_next = dc * f
            d_gates = np.concatenate(
                [
                    df * f * (1 - f),
                    di * i * (1 - i),
                    do * o * (1 - o),
                    dg * (1 - g**2),
                ]
            )
            dw += np.outer(d_gates, z)
            db += d_gates
            dz = self.w.T @ d_gates
            dh_next = dz[:hd]
            d_inputs[t] = dz[hd:]
        return d_inputs, dw, db


class _Adam:
    def __init__(self, shapes: list[tuple[int, ...]], lr: float):
        self.lr = lr
        self.m = [np.zeros(s) for s in shapes]
        self.v = [np.zeros(s) for s in shapes]
        self.t = 0

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        self.t += 1
        b1, b2, eps = 0.9, 0.999, 1e-8
        for p, g, m, v in zip(params, grads, self.m, self.v):
            m *= b1
            m += (1 - b1) * g
            v *= b2
            v += (1 - b2) * g * g
            m_hat = m / (1 - b1**self.t)
            v_hat = v / (1 - b2**self.t)
            p -= self.lr * m_hat / (np.sqrt(v_hat) + eps)


class StackedLstmClassifier:
    """Two stacked LSTM layers + softmax head over the final hidden state."""

    def __init__(
        self,
        hidden_dim: int = 32,
        epochs: int = 8,
        learning_rate: float = 3e-3,
        clip: float = 5.0,
        random_state: int = 0,
        class_weighting: bool = True,
    ):
        if hidden_dim < 1 or epochs < 1:
            raise ValueError("invalid hyperparameters")
        self.hidden_dim = hidden_dim
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.clip = clip
        self.random_state = random_state
        self.class_weighting = class_weighting
        self.classes_: list[object] = []
        self._layers: list[_LstmLayer] = []
        self._w_out: np.ndarray | None = None
        self._b_out: np.ndarray | None = None
        self._mu: np.ndarray | None = None
        self._sigma: np.ndarray | None = None

    def fit(self, sequences: np.ndarray, y: list[object]) -> "StackedLstmClassifier":
        """sequences: (n, T, d) windows; y: labels (len n)."""
        sequences = np.asarray(sequences, dtype=float)
        if sequences.ndim != 3:
            raise ValueError("sequences must be (n, T, d)")
        if sequences.shape[0] != len(y):
            raise ValueError("sequences and labels differ in count")
        rng = np.random.default_rng(self.random_state)
        self.classes_ = sorted(set(y), key=repr)
        index = {c: i for i, c in enumerate(self.classes_)}
        labels = np.array([index[v] for v in y])
        n, _, d = sequences.shape
        k = len(self.classes_)

        flat = sequences.reshape(-1, d)
        self._mu = flat.mean(axis=0)
        self._sigma = flat.std(axis=0) + 1e-9
        normalized = (sequences - self._mu) / self._sigma

        weights = np.ones(n)
        if self.class_weighting:
            counts = np.bincount(labels, minlength=k).astype(float)
            class_weight = n / (k * np.clip(counts, 1, None))
            weights = class_weight[labels]

        self._layers = [
            _LstmLayer(d, self.hidden_dim, rng),
            _LstmLayer(self.hidden_dim, self.hidden_dim, rng),
        ]
        self._w_out = rng.normal(0, 1.0 / np.sqrt(self.hidden_dim), size=(k, self.hidden_dim))
        self._b_out = np.zeros(k)

        params = [
            self._layers[0].w,
            self._layers[0].b,
            self._layers[1].w,
            self._layers[1].b,
            self._w_out,
            self._b_out,
        ]
        adam = _Adam([p.shape for p in params], self.learning_rate)

        for _ in range(self.epochs):
            order = rng.permutation(n)
            for sample in order:
                xs = normalized[sample]
                h1 = self._layers[0].forward(xs)
                h2 = self._layers[1].forward(h1)
                final = h2[-1]
                logits = self._w_out @ final + self._b_out
                probs = np.exp(logits - logits.max())
                probs /= probs.sum()
                d_logits = probs.copy()
                d_logits[labels[sample]] -= 1.0
                d_logits *= weights[sample]
                dw_out = np.outer(d_logits, final)
                db_out = d_logits
                d_h2 = np.zeros_like(h2)
                d_h2[-1] = self._w_out.T @ d_logits
                d_h1, dw2, db2 = self._layers[1].backward(d_h2)
                _, dw1, db1 = self._layers[0].backward(d_h1)
                grads = [dw1, db1, dw2, db2, dw_out, db_out]
                for g in grads:
                    np.clip(g, -self.clip, self.clip, out=g)
                adam.step(params, grads)
        return self

    def predict_proba(self, sequences: np.ndarray) -> np.ndarray:
        if self._w_out is None or self._mu is None:
            raise RuntimeError("classifier is not fitted")
        sequences = np.asarray(sequences, dtype=float)
        if sequences.ndim == 2:
            sequences = sequences[None]
        normalized = (sequences - self._mu) / self._sigma
        out = np.empty((sequences.shape[0], len(self.classes_)))
        for i, xs in enumerate(normalized):
            h1 = self._layers[0].forward(xs)
            h2 = self._layers[1].forward(h1)
            logits = self._w_out @ h2[-1] + self._b_out
            probs = np.exp(logits - logits.max())
            out[i] = probs / probs.sum()
        return out

    def predict(self, sequences: np.ndarray) -> list[object]:
        probs = self.predict_proba(sequences)
        return [self.classes_[i] for i in probs.argmax(axis=1)]
