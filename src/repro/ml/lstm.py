"""Stacked LSTM classifier in numpy (mini-batch BPTT + Adam).

The Ozturk et al. baseline (§7.3): a stacked LSTM that predicts
handovers from the device's location track. Two LSTM layers feed a
softmax head; training is truncated-BPTT over fixed-length windows with
Adam and class-frequency weighting.

Training and inference run over ``(B, T, D)`` mini-batches: each
timestep is one fused gate matmul across the whole batch, so the
Python-level loop is O(T) instead of O(B * T). The original per-sample
path is retained verbatim (``_LstmLayer.forward`` / ``backward``) as
the equivalence reference — the same discipline as the scalar radio
pipeline in ``repro.radio.rrs`` — and the batched gradients equal the
sum of the per-sample gradients to fp accuracy (see
``tests/test_ml_equivalence.py``).
"""

from __future__ import annotations

import numpy as np


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -30, 30)))


class _LstmLayer:
    """One LSTM layer with fused gate weights."""

    def __init__(self, input_dim: int, hidden_dim: int, rng: np.random.Generator):
        scale = 1.0 / np.sqrt(input_dim + hidden_dim)
        self.w = rng.normal(0, scale, size=(4 * hidden_dim, input_dim + hidden_dim))
        self.b = np.zeros(4 * hidden_dim)
        self.b[:hidden_dim] = 1.0  # forget-gate bias init
        self.hidden_dim = hidden_dim
        self._cache: list[tuple] = []

    def __getstate__(self):
        # The BPTT cache is transient training state — dropping it keeps
        # pickled models (the on-disk model cache) small.
        return {"w": self.w, "b": self.b, "hidden_dim": self.hidden_dim}

    def __setstate__(self, state):
        self.w = state["w"]
        self.b = state["b"]
        self.hidden_dim = state["hidden_dim"]
        self._cache = []

    # ------------------------------------------------------------------
    # Per-sample reference path (ground truth for the batched path).
    # ------------------------------------------------------------------

    def forward(self, xs: np.ndarray) -> np.ndarray:
        """xs: (T, input_dim) -> hidden states (T, hidden_dim)."""
        h = np.zeros(self.hidden_dim)
        c = np.zeros(self.hidden_dim)
        self._cache = []
        outputs = np.empty((xs.shape[0], self.hidden_dim))
        hd = self.hidden_dim
        for t, x in enumerate(xs):
            z = np.concatenate([h, x])
            gates = self.w @ z + self.b
            f = _sigmoid(gates[:hd])
            i = _sigmoid(gates[hd : 2 * hd])
            o = _sigmoid(gates[2 * hd : 3 * hd])
            g = np.tanh(gates[3 * hd :])
            c_new = f * c + i * g
            h_new = o * np.tanh(c_new)
            self._cache.append((z, f, i, o, g, c, c_new))
            h, c = h_new, c_new
            outputs[t] = h
        return outputs

    def backward(self, d_outputs: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """d_outputs: (T, hidden) -> (d_inputs, dW, db)."""
        hd = self.hidden_dim
        dw = np.zeros_like(self.w)
        db = np.zeros_like(self.b)
        d_inputs = np.empty((d_outputs.shape[0], self.w.shape[1] - hd))
        dh_next = np.zeros(hd)
        dc_next = np.zeros(hd)
        for t in range(d_outputs.shape[0] - 1, -1, -1):
            z, f, i, o, g, c_prev, c_new = self._cache[t]
            dh = d_outputs[t] + dh_next
            tanh_c = np.tanh(c_new)
            do = dh * tanh_c
            dc = dh * o * (1 - tanh_c**2) + dc_next
            df = dc * c_prev
            di = dc * g
            dg = dc * i
            dc_next = dc * f
            d_gates = np.concatenate(
                [
                    df * f * (1 - f),
                    di * i * (1 - i),
                    do * o * (1 - o),
                    dg * (1 - g**2),
                ]
            )
            dw += np.outer(d_gates, z)
            db += d_gates
            dz = self.w.T @ d_gates
            dh_next = dz[:hd]
            d_inputs[t] = dz[hd:]
        return d_inputs, dw, db

    # ------------------------------------------------------------------
    # Batched path: one fused matmul per timestep across the batch.
    # ------------------------------------------------------------------

    def forward_batch(self, xs: np.ndarray) -> np.ndarray:
        """xs: (B, T, input_dim) -> hidden states (B, T, hidden_dim)."""
        batch, steps, _ = xs.shape
        hd = self.hidden_dim
        h = np.zeros((batch, hd))
        c = np.zeros((batch, hd))
        self._cache = []
        outputs = np.empty((batch, steps, hd))
        w_t = self.w.T
        for t in range(steps):
            z = np.hstack([h, xs[:, t]])
            gates = z @ w_t + self.b
            f = _sigmoid(gates[:, :hd])
            i = _sigmoid(gates[:, hd : 2 * hd])
            o = _sigmoid(gates[:, 2 * hd : 3 * hd])
            g = np.tanh(gates[:, 3 * hd :])
            c_new = f * c + i * g
            h = o * np.tanh(c_new)
            self._cache.append((z, f, i, o, g, c, c_new))
            c = c_new
            outputs[:, t] = h
        return outputs

    def backward_batch(
        self, d_outputs: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """d_outputs: (B, T, hidden) -> (d_inputs, dW, db).

        dW/db are summed over the batch, so they equal the sum of the
        per-sample ``backward`` gradients.
        """
        batch, steps, hd = d_outputs.shape
        dw = np.zeros_like(self.w)
        db = np.zeros_like(self.b)
        d_inputs = np.empty((batch, steps, self.w.shape[1] - hd))
        dh_next = np.zeros((batch, hd))
        dc_next = np.zeros((batch, hd))
        d_gates = np.empty((batch, 4 * hd))
        for t in range(steps - 1, -1, -1):
            z, f, i, o, g, c_prev, c_new = self._cache[t]
            dh = d_outputs[:, t] + dh_next
            tanh_c = np.tanh(c_new)
            do = dh * tanh_c
            dc = dh * o * (1 - tanh_c**2) + dc_next
            d_gates[:, :hd] = dc * c_prev * f * (1 - f)
            d_gates[:, hd : 2 * hd] = dc * g * i * (1 - i)
            d_gates[:, 2 * hd : 3 * hd] = do * o * (1 - o)
            d_gates[:, 3 * hd :] = dc * i * (1 - g**2)
            dc_next = dc * f
            dw += d_gates.T @ z
            db += d_gates.sum(axis=0)
            dz = d_gates @ self.w
            dh_next = dz[:, :hd]
            d_inputs[:, t] = dz[:, hd:]
        return d_inputs, dw, db


class _Adam:
    def __init__(self, shapes: list[tuple[int, ...]], lr: float):
        self.lr = lr
        self.m = [np.zeros(s) for s in shapes]
        self.v = [np.zeros(s) for s in shapes]
        self.t = 0

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        self.t += 1
        b1, b2, eps = 0.9, 0.999, 1e-8
        for p, g, m, v in zip(params, grads, self.m, self.v):
            m *= b1
            m += (1 - b1) * g
            v *= b2
            v += (1 - b2) * g * g
            m_hat = m / (1 - b1**self.t)
            v_hat = v / (1 - b2**self.t)
            p -= self.lr * m_hat / (np.sqrt(v_hat) + eps)


class StackedLstmClassifier:
    """Two stacked LSTM layers + softmax head over the final hidden state."""

    def __init__(
        self,
        hidden_dim: int = 32,
        epochs: int = 8,
        learning_rate: float = 3e-3,
        clip: float = 5.0,
        random_state: int = 0,
        class_weighting: bool = True,
        batch_size: int = 8,
    ):
        if hidden_dim < 1 or epochs < 1:
            raise ValueError("invalid hyperparameters")
        if batch_size < 1:
            raise ValueError("batch size must be at least 1")
        self.hidden_dim = hidden_dim
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.clip = clip
        self.random_state = random_state
        self.class_weighting = class_weighting
        self.batch_size = batch_size
        self.classes_: list[object] = []
        self._layers: list[_LstmLayer] = []
        self._w_out: np.ndarray | None = None
        self._b_out: np.ndarray | None = None
        self._mu: np.ndarray | None = None
        self._sigma: np.ndarray | None = None

    def _init_parameters(
        self, d: int, k: int, rng: np.random.Generator
    ) -> list[np.ndarray]:
        self._layers = [
            _LstmLayer(d, self.hidden_dim, rng),
            _LstmLayer(self.hidden_dim, self.hidden_dim, rng),
        ]
        self._w_out = rng.normal(0, 1.0 / np.sqrt(self.hidden_dim), size=(k, self.hidden_dim))
        self._b_out = np.zeros(k)
        return [
            self._layers[0].w,
            self._layers[0].b,
            self._layers[1].w,
            self._layers[1].b,
            self._w_out,
            self._b_out,
        ]

    def _batch_grads(
        self, xs: np.ndarray, labels: np.ndarray, weights: np.ndarray
    ) -> tuple[float, list[np.ndarray]]:
        """Weighted cross-entropy loss and summed gradients for one batch.

        xs: (B, T, d) already normalized; labels/weights: (B,).
        """
        assert self._w_out is not None and self._b_out is not None
        h1 = self._layers[0].forward_batch(xs)
        h2 = self._layers[1].forward_batch(h1)
        final = h2[:, -1]
        logits = final @ self._w_out.T + self._b_out
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        probs = exp / exp.sum(axis=1, keepdims=True)
        rows = np.arange(xs.shape[0])
        loss = float(np.sum(-weights * np.log(probs[rows, labels] + 1e-300)))
        d_logits = probs.copy()
        d_logits[rows, labels] -= 1.0
        d_logits *= weights[:, None]
        dw_out = d_logits.T @ final
        db_out = d_logits.sum(axis=0)
        d_h2 = np.zeros_like(h2)
        d_h2[:, -1] = d_logits @ self._w_out
        d_h1, dw2, db2 = self._layers[1].backward_batch(d_h2)
        _, dw1, db1 = self._layers[0].backward_batch(d_h1)
        return loss, [dw1, db1, dw2, db2, dw_out, db_out]

    def _sample_grads(
        self, xs: np.ndarray, label: int, weight: float
    ) -> tuple[float, list[np.ndarray]]:
        """Per-sample reference gradients (xs: (T, d), normalized)."""
        assert self._w_out is not None and self._b_out is not None
        h1 = self._layers[0].forward(xs)
        h2 = self._layers[1].forward(h1)
        final = h2[-1]
        logits = self._w_out @ final + self._b_out
        probs = np.exp(logits - logits.max())
        probs /= probs.sum()
        loss = float(-weight * np.log(probs[label] + 1e-300))
        d_logits = probs.copy()
        d_logits[label] -= 1.0
        d_logits *= weight
        dw_out = np.outer(d_logits, final)
        db_out = d_logits
        d_h2 = np.zeros_like(h2)
        d_h2[-1] = self._w_out.T @ d_logits
        d_h1, dw2, db2 = self._layers[1].backward(d_h2)
        _, dw1, db1 = self._layers[0].backward(d_h1)
        return loss, [dw1, db1, dw2, db2, dw_out, db_out]

    def fit(self, sequences: np.ndarray, y: list[object]) -> "StackedLstmClassifier":
        """sequences: (n, T, d) windows; y: labels (len n)."""
        sequences = np.asarray(sequences, dtype=float)
        if sequences.ndim != 3:
            raise ValueError("sequences must be (n, T, d)")
        if sequences.shape[0] != len(y):
            raise ValueError("sequences and labels differ in count")
        rng = np.random.default_rng(self.random_state)
        self.classes_ = sorted(set(y), key=repr)
        index = {c: i for i, c in enumerate(self.classes_)}
        labels = np.array([index[v] for v in y])
        n, _, d = sequences.shape
        k = len(self.classes_)

        flat = sequences.reshape(-1, d)
        self._mu = flat.mean(axis=0)
        self._sigma = flat.std(axis=0) + 1e-9
        normalized = (sequences - self._mu) / self._sigma

        weights = np.ones(n)
        if self.class_weighting:
            counts = np.bincount(labels, minlength=k).astype(float)
            class_weight = n / (k * np.clip(counts, 1, None))
            weights = class_weight[labels]

        params = self._init_parameters(d, k, rng)
        adam = _Adam([p.shape for p in params], self.learning_rate)

        for _ in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                batch = order[start : start + self.batch_size]
                _, grads = self._batch_grads(
                    normalized[batch], labels[batch], weights[batch]
                )
                for g in grads:
                    np.clip(g, -self.clip, self.clip, out=g)
                adam.step(params, grads)
        return self

    def predict_proba(self, sequences: np.ndarray, chunk: int = 256) -> np.ndarray:
        if self._w_out is None or self._mu is None:
            raise RuntimeError("classifier is not fitted")
        sequences = np.asarray(sequences, dtype=float)
        if sequences.ndim == 2:
            sequences = sequences[None]
        normalized = (sequences - self._mu) / self._sigma
        out = np.empty((sequences.shape[0], len(self.classes_)))
        for start in range(0, normalized.shape[0], chunk):
            xs = normalized[start : start + chunk]
            h1 = self._layers[0].forward_batch(xs)
            h2 = self._layers[1].forward_batch(h1)
            logits = h2[:, -1] @ self._w_out.T + self._b_out
            exp = np.exp(logits - logits.max(axis=1, keepdims=True))
            out[start : start + chunk] = exp / exp.sum(axis=1, keepdims=True)
        return out

    def predict_proba_reference(self, sequences: np.ndarray) -> np.ndarray:
        """Per-sample inference via the reference forward pass.

        The seed implementation's ``predict_proba`` loop, retained for
        the equivalence suite and the throughput bench's baseline.
        """
        if self._w_out is None or self._mu is None:
            raise RuntimeError("classifier is not fitted")
        sequences = np.asarray(sequences, dtype=float)
        if sequences.ndim == 2:
            sequences = sequences[None]
        normalized = (sequences - self._mu) / self._sigma
        out = np.empty((sequences.shape[0], len(self.classes_)))
        for i, xs in enumerate(normalized):
            h1 = self._layers[0].forward(xs)
            h2 = self._layers[1].forward(h1)
            logits = self._w_out @ h2[-1] + self._b_out
            probs = np.exp(logits - logits.max())
            out[i] = probs / probs.sum()
        return out

    def predict(self, sequences: np.ndarray) -> list[object]:
        probs = self.predict_proba(sequences)
        return [self.classes_[i] for i in probs.argmax(axis=1)]
