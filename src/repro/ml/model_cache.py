"""On-disk trained-model cache: content-addressed fitted estimators.

The §7.3 benches retrain the same GBC/LSTM baselines on the same
corpus every session. This module caches fitted models on disk, keyed
by a sha256 over everything that determines the fit bit-for-bit:

* the estimator kind and its hyperparameters,
* the training arrays (shape, dtype, raw bytes) and label names, and
* the same code-version token the drive cache uses — a hash over the
  ``repro`` package sources — so editing any model code silently
  invalidates stale entries instead of serving models produced by old
  code.

It shares the :mod:`repro.simulate.cache` infrastructure and knobs:
``REPRO_CACHE_DIR`` relocates the root (models live under a
``models/`` subdirectory next to the drive logs), ``REPRO_NO_CACHE=1``
disables it entirely. Entries are gzipped pickles — models are pure
numpy containers produced by this package, not untrusted input.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import os
import pickle
from pathlib import Path
from typing import Callable

import numpy as np

from repro.simulate.cache import atomic_publish, code_version_token

_DEFAULT_ROOT = ".repro-cache"


def dataset_digest(x: np.ndarray, labels: list[object]) -> str:
    """sha256 over the training arrays and label names."""
    digest = hashlib.sha256()
    arr = np.ascontiguousarray(np.asarray(x, dtype=float))
    digest.update(str(arr.shape).encode())
    digest.update(arr.tobytes())
    for label in labels:
        digest.update(getattr(label, "name", str(label)).encode())
        digest.update(b"\0")
    return digest.hexdigest()


class ModelCache:
    """Content-addressed store of fitted models.

    Entries live under ``root/models`` as ``<kind>-<key>.pkl.gz``.
    Lookups on a disabled cache always miss; stores become no-ops.
    Like the drive cache it is self-healing: failed writes degrade to
    a counted no-op (``put_failures``) and undecodable entries are
    quarantined to ``*.corrupt`` (``corrupt``) so they miss once.
    """

    def __init__(self, root: str | Path | None = None, *, enabled: bool | None = None):
        if enabled is None:
            enabled = os.environ.get("REPRO_NO_CACHE", "") != "1"
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR") or _DEFAULT_ROOT
        self.root = Path(root) / "models"
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.put_failures = 0
        self.corrupt = 0

    @staticmethod
    def key_for(kind: str, data_digest: str, params: dict) -> str:
        payload = json.dumps(
            {
                "kind": kind,
                "data": data_digest,
                "params": {k: params[k] for k in sorted(params)},
                "code_version": code_version_token(),
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def _path(self, kind: str, key: str) -> Path:
        return self.root / f"{kind}-{key}.pkl.gz"

    def get(self, kind: str, key: str):
        """The cached model, or None on a miss."""
        if not self.enabled:
            self.misses += 1
            return None
        path = self._path(kind, key)
        if not path.exists():
            self.misses += 1
            return None
        try:
            with gzip.open(path, "rb") as fh:
                model = pickle.load(fh)
        except (EOFError, pickle.UnpicklingError, gzip.BadGzipFile):
            # Undecodable entry (BadGzipFile is an OSError subclass,
            # so it must be caught before the transient clause): miss,
            # and quarantine so the next lookup misses cheaply.
            self.corrupt += 1
            try:
                path.replace(path.with_name(path.name + ".corrupt"))
            except OSError:
                pass
            self.misses += 1
            return None
        except OSError:
            # Transient read failure: a plain miss.
            self.misses += 1
            return None
        self.hits += 1
        return model

    def put(self, kind: str, key: str, model) -> None:
        if not self.enabled:
            return
        path = self._path(kind, key)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            with atomic_publish(path) as tmp:
                with gzip.open(tmp, "wb", compresslevel=6) as fh:
                    pickle.dump(model, fh, protocol=pickle.HIGHEST_PROTOCOL)
        except OSError:
            # Full disk / read-only cache dir: degrade to a counted
            # no-op, never abort the run that fitted the model.
            self.put_failures += 1
            return
        self.stores += 1

    @property
    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "put_failures": self.put_failures,
            "corrupt": self.corrupt,
        }


def fit_cached(
    kind: str,
    factory: Callable[[], object],
    x: np.ndarray,
    y: list[object],
    params: dict,
    *,
    cache: ModelCache | None = None,
):
    """Fit ``factory()`` on ``(x, y)``, short-circuiting via the cache.

    ``params`` must capture every hyperparameter the factory closes
    over — it is part of the content key alongside the data digest.
    """
    if cache is None:
        cache = ModelCache()
    key = cache.key_for(kind, dataset_digest(x, y), params)
    model = cache.get(kind, key)
    if model is not None:
        return model
    model = factory().fit(x, y)
    cache.put(kind, key, model)
    return model
