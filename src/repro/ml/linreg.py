"""Ordinary least-squares linear regression.

Used two ways in the reproduction: as the light-weight RRS extrapolator
inside Prognos's report predictor (§7.2 explicitly chooses linear
regression for its low cost on energy-constrained devices), and as a
building block for feature baselines.
"""

from __future__ import annotations

import numpy as np


class LinearRegressor:
    """OLS with an intercept, solved via least squares."""

    def __init__(self) -> None:
        self._coef: np.ndarray | None = None

    @property
    def is_fitted(self) -> bool:
        return self._coef is not None

    @property
    def coefficients(self) -> np.ndarray:
        """[intercept, slope_1, ..., slope_d]; raises before fitting."""
        if self._coef is None:
            raise RuntimeError("regressor is not fitted")
        return self._coef.copy()

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LinearRegressor":
        """Fit on features ``x`` (n,) or (n, d) against targets ``y`` (n,)."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.ndim == 1:
            x = x[:, None]
        if x.shape[0] != y.shape[0]:
            raise ValueError("x and y row counts differ")
        if x.shape[0] < 2:
            raise ValueError("need at least two samples")
        design = np.hstack([np.ones((x.shape[0], 1)), x])
        coef, *_ = np.linalg.lstsq(design, y, rcond=None)
        self._coef = coef
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predict targets for ``x`` (n,) or (n, d)."""
        if self._coef is None:
            raise RuntimeError("regressor is not fitted")
        x = np.asarray(x, dtype=float)
        scalar = x.ndim == 0
        if x.ndim <= 1 and self._coef.shape[0] == 2:
            x = np.atleast_1d(x)[:, None]
        elif x.ndim == 1:
            x = x[None, :]
        design = np.hstack([np.ones((x.shape[0], 1)), x])
        result = design @ self._coef
        return float(result[0]) if scalar else result


def extrapolate_series(
    values: np.ndarray, horizon_steps: int
) -> np.ndarray:
    """Fit a line to a series (indexed 0..n-1) and extend it.

    Returns the ``horizon_steps`` predicted values after the series end —
    the core of Prognos's RRS prediction.
    """
    values = np.asarray(values, dtype=float)
    if values.size < 2:
        raise ValueError("need at least two history samples")
    if horizon_steps < 1:
        raise ValueError("horizon must be at least one step")
    t = np.arange(values.size, dtype=float)
    model = LinearRegressor().fit(t, values)
    future = np.arange(values.size, values.size + horizon_steps, dtype=float)
    return model.predict(future)
