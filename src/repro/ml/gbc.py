"""Gradient boosting classifier (softmax multiclass, CART weak learners).

The Mei et al. baseline the paper compares Prognos against (§7.3): an
offline-trained GBC over lower-layer radio features. Implementation is
the standard multinomial deviance boosting: per round, fit one
regression tree per class to the softmax residuals ``y_k - p_k``.
"""

from __future__ import annotations

import numpy as np

from repro.ml.tree import RegressionTree, presort_columns


def _softmax(scores: np.ndarray) -> np.ndarray:
    shifted = scores - scores.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class GradientBoostingClassifier:
    """Multinomial gradient boosting on regression trees."""

    def __init__(
        self,
        n_estimators: int = 40,
        learning_rate: float = 0.15,
        max_depth: int = 3,
        min_samples_leaf: int = 5,
        subsample: float = 1.0,
        random_state: int = 0,
    ):
        if n_estimators < 1:
            raise ValueError("need at least one boosting round")
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError("learning rate must lie in (0, 1]")
        if not 0.0 < subsample <= 1.0:
            raise ValueError("subsample must lie in (0, 1]")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.random_state = random_state
        self.classes_: list[object] = []
        self._trees: list[list[RegressionTree]] = []
        self._base_scores: np.ndarray | None = None

    def fit(self, x: np.ndarray, y: list[object]) -> "GradientBoostingClassifier":
        x = np.asarray(x, dtype=float)
        if x.ndim != 2:
            raise ValueError("x must be 2-D")
        if x.shape[0] != len(y):
            raise ValueError("x and y row counts differ")
        rng = np.random.default_rng(self.random_state)
        self.classes_ = sorted(set(y), key=repr)
        class_index = {c: i for i, c in enumerate(self.classes_)}
        n, k = x.shape[0], len(self.classes_)
        onehot = np.zeros((n, k))
        for row, label in enumerate(y):
            onehot[row, class_index[label]] = 1.0

        # Base score: log prior (with clamping for absent classes).
        priors = np.clip(onehot.mean(axis=0), 1e-6, None)
        self._base_scores = np.log(priors)
        scores = np.tile(self._base_scores, (n, 1))

        self._trees = []
        # The feature matrix never changes across rounds — argsort its
        # columns once and share the orders with every tree (the split
        # search then never sorts; see repro.ml.tree).
        full_order = presort_columns(x)
        for _ in range(self.n_estimators):
            probs = _softmax(scores)
            residuals = onehot - probs
            round_trees: list[RegressionTree] = []
            if self.subsample < 1.0:
                take = max(int(n * self.subsample), 2)
                idx = rng.choice(n, size=take, replace=False)
                x_round = x[idx]
                round_order = presort_columns(x_round)
            else:
                idx = np.arange(n)
                x_round = x
                round_order = full_order
            for cls in range(k):
                tree = RegressionTree(
                    max_depth=self.max_depth,
                    min_samples_leaf=self.min_samples_leaf,
                )
                tree.fit(x_round, residuals[idx, cls], presorted=round_order)
                # Newton-style scaling of the mean-residual leaves
                # ((K-1)/K factor of multinomial boosting).
                tree.apply_leaf_values(lambda v: v * (k - 1) / k)
                round_trees.append(tree)
                scores[:, cls] += self.learning_rate * tree.predict(x)
            self._trees.append(round_trees)
        return self

    def decision_scores(self, x: np.ndarray) -> np.ndarray:
        if self._base_scores is None:
            raise RuntimeError("classifier is not fitted")
        x = np.asarray(x, dtype=float)
        if x.ndim == 1:
            x = x[None, :]
        scores = np.tile(self._base_scores, (x.shape[0], 1))
        for round_trees in self._trees:
            for cls, tree in enumerate(round_trees):
                scores[:, cls] += self.learning_rate * tree.predict(x)
        return scores

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        return _softmax(self.decision_scores(x))

    def predict(self, x: np.ndarray) -> list[object]:
        probs = self.predict_proba(x)
        return [self.classes_[i] for i in probs.argmax(axis=1)]
