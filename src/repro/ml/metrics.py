"""Classification metrics (§7.3's F1 / precision / recall / accuracy).

The handover prediction problem is extremely class-imbalanced (~0.4% of
ticks carry a handover), so the paper evaluates on metrics "oblivious to
class imbalance": per-class precision/recall/F1 macro-averaged over the
*handover* classes, alongside plain accuracy over all samples.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass


def confusion_matrix(
    y_true: Sequence[object], y_pred: Sequence[object]
) -> dict[tuple[object, object], int]:
    """Sparse confusion counts keyed by (true, predicted)."""
    if len(y_true) != len(y_pred):
        raise ValueError("prediction/label length mismatch")
    counts: dict[tuple[object, object], int] = {}
    for t, p in zip(y_true, y_pred):
        counts[(t, p)] = counts.get((t, p), 0) + 1
    return counts


@dataclass(frozen=True, slots=True)
class ClassificationReport:
    """Macro-averaged report over the positive (handover) classes."""

    f1: float
    precision: float
    recall: float
    accuracy: float
    per_class: dict[object, tuple[float, float, float]]
    support: dict[object, int]


def prediction_episodes(
    times_s: Sequence[float],
    predictions: Sequence[object],
    *,
    negative_class: object,
    max_gap_s: float = 1.5,
    min_samples: int = 2,
) -> list[tuple[float, float, object]]:
    """Collapse a per-tick prediction stream into prediction *episodes*.

    Ticks predicting the same class with gaps up to ``max_gap_s`` form
    one episode — one "the handover is coming" declaration. A forecast
    naturally flickers as the radio trend wanders around the trigger
    threshold; merging and debouncing (``min_samples``) turns that
    flicker into the declaration a consumer would actually act on.
    Returns (start, end, class) triples.
    """
    episodes: list[tuple[float, float, object]] = []
    current: object = negative_class
    start = last = 0.0
    count = 0

    def close() -> None:
        if current != negative_class and count >= min_samples:
            episodes.append((start, last, current))

    for t, p in zip(times_s, predictions):
        if p == current and p != negative_class and t - last <= max_gap_s:
            last = t
            count += 1
            continue
        if p != current and current != negative_class and p == negative_class:
            # Tolerate momentary dropouts within the gap budget.
            if t - last <= max_gap_s:
                continue
        close()
        current = p
        start = last = t
        count = 1
    close()
    return episodes


def event_level_report(
    times_s: Sequence[float],
    predictions: Sequence[object],
    tick_truths: Sequence[object],
    events: Sequence[tuple[float, object]],
    *,
    window_s: float = 1.0,
    negative_class: object,
) -> ClassificationReport:
    """Score a prediction stream against actual handover events.

    Coverage semantics (standard for detection problems): an episode is
    a true positive when at least one handover of its class falls inside
    [episode start, episode end + ``window_s``]; an actual handover is
    *covered* (recalled) when some episode of its class spans it. An
    episode covering nothing is a false positive; an uncovered handover
    a false negative. Accuracy stays tick-level (as the paper reports
    it).
    """
    episodes = prediction_episodes(
        times_s, predictions, negative_class=negative_class
    )
    classes = sorted(
        {c for _, c in events} | {c for _, _, c in episodes}, key=repr
    )
    covered: set[int] = set()
    tp: dict[object, int] = {c: 0 for c in classes}
    fp: dict[object, int] = {c: 0 for c in classes}
    for start, end, cls in episodes:
        hits = [
            idx
            for idx, (event_time, event_cls) in enumerate(events)
            # Half-window backward tolerance: a declaration made moments
            # after the command (the procedure is still executing) is
            # not a hallucination.
            if event_cls == cls
            and start - window_s / 2 <= event_time <= end + window_s
        ]
        if hits:
            tp[cls] += 1
            covered.update(hits)
        else:
            fp[cls] += 1
    covered_by_class: dict[object, int] = {c: 0 for c in classes}
    total_by_class: dict[object, int] = {c: 0 for c in classes}
    for idx, (_, event_cls) in enumerate(events):
        total_by_class[event_cls] += 1
        if idx in covered:
            covered_by_class[event_cls] += 1

    per_class: dict[object, tuple[float, float, float]] = {}
    support: dict[object, int] = {}
    f1s, precisions, recalls = [], [], []
    for cls in classes:
        support[cls] = total_by_class[cls]
        if support[cls] == 0 and fp[cls] == 0 and tp[cls] == 0:
            continue
        precision = tp[cls] / (tp[cls] + fp[cls]) if tp[cls] + fp[cls] else 0.0
        recall = (
            covered_by_class[cls] / total_by_class[cls] if total_by_class[cls] else 0.0
        )
        f1 = 2 * precision * recall / (precision + recall) if precision + recall else 0.0
        per_class[cls] = (precision, recall, f1)
        precisions.append(precision)
        recalls.append(recall)
        f1s.append(f1)
    correct = sum(1 for t, p in zip(tick_truths, predictions) if t == p)
    accuracy = correct / max(len(tick_truths), 1)
    if not f1s:
        return ClassificationReport(0.0, 0.0, 0.0, accuracy, per_class, support)
    return ClassificationReport(
        f1=sum(f1s) / len(f1s),
        precision=sum(precisions) / len(precisions),
        recall=sum(recalls) / len(recalls),
        accuracy=accuracy,
        per_class=per_class,
        support=support,
    )


def classification_report(
    y_true: Sequence[object],
    y_pred: Sequence[object],
    *,
    negative_class: object = None,
) -> ClassificationReport:
    """Precision/recall/F1 macro-averaged over all classes except the
    negative one; accuracy over everything.

    Args:
        negative_class: the "no handover" label, excluded from the macro
            average (it would otherwise dominate every metric). Pass
            None to include all classes.
    """
    if not y_true:
        raise ValueError("empty evaluation set")
    counts = confusion_matrix(y_true, y_pred)
    classes = sorted(
        {c for c in list(y_true) + list(y_pred) if c != negative_class},
        key=repr,
    )
    per_class: dict[object, tuple[float, float, float]] = {}
    support: dict[object, int] = {}
    f1s, precisions, recalls = [], [], []
    for cls in classes:
        tp = counts.get((cls, cls), 0)
        fp = sum(v for (t, p), v in counts.items() if p == cls and t != cls)
        fn = sum(v for (t, p), v in counts.items() if t == cls and p != cls)
        support[cls] = tp + fn
        if support[cls] == 0 and fp == 0:
            continue  # class never appears at all
        precision = tp / (tp + fp) if tp + fp else 0.0
        recall = tp / (tp + fn) if tp + fn else 0.0
        f1 = 2 * precision * recall / (precision + recall) if precision + recall else 0.0
        per_class[cls] = (precision, recall, f1)
        precisions.append(precision)
        recalls.append(recall)
        f1s.append(f1)
    correct = sum(v for (t, p), v in counts.items() if t == p)
    accuracy = correct / len(y_true)
    if not f1s:
        return ClassificationReport(0.0, 0.0, 0.0, accuracy, per_class, support)
    return ClassificationReport(
        f1=sum(f1s) / len(f1s),
        precision=sum(precisions) / len(precisions),
        recall=sum(recalls) / len(recalls),
        accuracy=accuracy,
        per_class=per_class,
        support=support,
    )
