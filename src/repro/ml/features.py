"""Feature/label extraction from drive logs for the §7.3 baselines.

Ground-truth labelling matches the paper's prediction problem: at tick
time t, the label is the type of the handover whose *decision* falls in
the next prediction window (t, t + 1 s], or NONE. The two baselines see
different inputs:

* GBC (Mei et al.): lower-layer radio features of the serving and
  strongest neighbouring cells, plus short-horizon RSRP slopes.
* Stacked LSTM (Ozturk et al.): the location track (position, speed) as
  a sequence window.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rrc.taxonomy import HandoverType
from repro.simulate.records import DriveLog, TickRecord

#: Sentinel RRS values for absent legs/neighbours (below any real value).
_ABSENT_RSRP = -140.0
_ABSENT_RSRQ = -25.0
_ABSENT_SINR = -15.0


@dataclass(frozen=True)
class LabeledDataset:
    """Features (flat or sequential) with aligned labels and times."""

    x: np.ndarray
    labels: list[HandoverType]
    times_s: np.ndarray

    def __post_init__(self) -> None:
        if self.x.shape[0] != len(self.labels) or self.x.shape[0] != len(self.times_s):
            raise ValueError("features, labels, times must align")

    @property
    def positives(self) -> int:
        return sum(1 for label in self.labels if label is not HandoverType.NONE)


def label_for_tick(log: DriveLog, time_s: float, window_s: float) -> HandoverType:
    """Handover type decided within (time_s, time_s + window_s], or NONE."""
    for record in log.handovers:
        if time_s < record.decision_time_s <= time_s + window_s:
            return record.ho_type
    return HandoverType.NONE


def _tick_radio_features(ticks: list[TickRecord], index: int, slope_ticks: int) -> list[float]:
    tick = ticks[index]
    lte = tick.lte_rrs
    nr = tick.nr_rrs

    def triple(sample):
        if sample is None:
            return [_ABSENT_RSRP, _ABSENT_RSRQ, _ABSENT_SINR]
        return [sample.rsrp_dbm, sample.rsrq_db, sample.sinr_db]

    features = triple(lte) + triple(nr)
    for neighbours in (tick.lte_neighbours, tick.nr_neighbours):
        top = [n.rrs.rsrp_dbm for n in neighbours[:2]]
        top += [_ABSENT_RSRP] * (2 - len(top))
        features.extend(top)
    # Differentials: strongest neighbour minus serving, per object.
    lte_best = tick.lte_neighbours[0].rrs.rsrp_dbm if tick.lte_neighbours else _ABSENT_RSRP
    nr_best = tick.nr_neighbours[0].rrs.rsrp_dbm if tick.nr_neighbours else _ABSENT_RSRP
    features.append(lte_best - (lte.rsrp_dbm if lte else _ABSENT_RSRP))
    features.append(nr_best - (nr.rsrp_dbm if nr else _ABSENT_RSRP))
    # Serving RSRP slopes over the recent past.
    past = ticks[max(index - slope_ticks, 0)]
    past_lte = past.lte_rrs.rsrp_dbm if past.lte_rrs else _ABSENT_RSRP
    past_nr = past.nr_rrs.rsrp_dbm if past.nr_rrs else _ABSENT_RSRP
    features.append((lte.rsrp_dbm if lte else _ABSENT_RSRP) - past_lte)
    features.append((nr.rsrp_dbm if nr else _ABSENT_RSRP) - past_nr)
    # Attachment indicator.
    features.append(1.0 if tick.nr_serving_gci is not None else 0.0)
    return features


def log_time_offsets(logs: list[DriveLog]) -> list[float]:
    """Global time offset per log when concatenating a dataset.

    The same convention is used by the Prognos replay driver, so tick
    times, labels, and handover events line up across methods.
    """
    offsets = []
    offset = 0.0
    for log in logs:
        offsets.append(offset)
        offset += log.duration_s + 1.0
    return offsets


def handover_events(logs: list[DriveLog]) -> list[tuple[float, HandoverType]]:
    """(global time, type) of every handover decision across the logs."""
    events: list[tuple[float, HandoverType]] = []
    for log, offset in zip(logs, log_time_offsets(logs)):
        for record in log.handovers:
            events.append((record.decision_time_s + offset, record.ho_type))
    events.sort(key=lambda item: item[0])
    return events


def build_radio_feature_dataset(
    logs: list[DriveLog],
    *,
    window_s: float = 1.0,
    stride: int = 5,
) -> LabeledDataset:
    """Flat radio-feature dataset for the GBC baseline.

    Args:
        window_s: prediction window for labelling.
        stride: keep every ``stride``-th tick (training tractability; the
            paper's logs are 20 Hz).
    """
    rows: list[list[float]] = []
    labels: list[HandoverType] = []
    times: list[float] = []
    for log, offset in zip(logs, log_time_offsets(logs)):
        slope_ticks = max(int(1.0 / max(log.tick_interval_s, 1e-3)), 1)
        for index in range(0, len(log.ticks), stride):
            tick = log.ticks[index]
            rows.append(_tick_radio_features(log.ticks, index, slope_ticks))
            labels.append(label_for_tick(log, tick.time_s, window_s))
            times.append(tick.time_s + offset)
    if not rows:
        raise ValueError("no ticks in the provided logs")
    return LabeledDataset(np.array(rows), labels, np.array(times))


def build_location_sequence_dataset(
    logs: list[DriveLog],
    *,
    window_s: float = 1.0,
    history_ticks: int = 20,
    stride: int = 5,
) -> LabeledDataset:
    """Location-sequence dataset for the stacked LSTM baseline."""
    sequences: list[np.ndarray] = []
    labels: list[HandoverType] = []
    times: list[float] = []
    for log, offset in zip(logs, log_time_offsets(logs)):
        track = np.array(
            [[t.x_m, t.y_m, t.speed_mps, t.arc_m] for t in log.ticks], dtype=float
        )
        for index in range(history_ticks, len(log.ticks), stride):
            window = track[index - history_ticks : index]
            sequences.append(window)
            tick = log.ticks[index]
            labels.append(label_for_tick(log, tick.time_s, window_s))
            times.append(tick.time_s + offset)
    if not sequences:
        raise ValueError("logs too short for the requested history window")
    return LabeledDataset(np.array(sequences), labels, np.array(times))


def train_test_split_by_time(
    dataset: LabeledDataset, train_fraction: float = 0.6
) -> tuple[LabeledDataset, LabeledDataset]:
    """Chronological split (the paper trains on the first 60%)."""
    if not 0.0 < train_fraction < 1.0:
        raise ValueError("train fraction must lie in (0, 1)")
    cut = int(dataset.x.shape[0] * train_fraction)
    if cut < 1 or cut >= dataset.x.shape[0]:
        raise ValueError("split leaves an empty side")
    return (
        LabeledDataset(dataset.x[:cut], dataset.labels[:cut], dataset.times_s[:cut]),
        LabeledDataset(dataset.x[cut:], dataset.labels[cut:], dataset.times_s[cut:]),
    )
