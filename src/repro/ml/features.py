"""Feature/label extraction from drive logs for the §7.3 baselines.

Ground-truth labelling matches the paper's prediction problem: at tick
time t, the label is the type of the handover whose *decision* falls in
the next prediction window (t, t + 1 s], or NONE. The two baselines see
different inputs:

* GBC (Mei et al.): lower-layer radio features of the serving and
  strongest neighbouring cells, plus short-horizon RSRP slopes.
* Stacked LSTM (Ozturk et al.): the location track (position, speed) as
  a sequence window.

Extraction is array-at-once: each log is converted to per-tick
primitive arrays in a single light pass, feature rows are assembled
with numpy indexing, and labels come from one ``np.searchsorted`` over
the log's handover decision times (:func:`labels_for_times`) instead of
a per-tick linear scan over ``log.handovers``. The scalar
:func:`label_for_tick` is retained as the labelling reference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rrc.taxonomy import HandoverType
from repro.simulate.records import DriveLog, TickRecord

#: Sentinel RRS values for absent legs/neighbours (below any real value).
_ABSENT_RSRP = -140.0
_ABSENT_RSRQ = -25.0
_ABSENT_SINR = -15.0


@dataclass(frozen=True)
class LabeledDataset:
    """Features (flat or sequential) with aligned labels and times."""

    x: np.ndarray
    labels: list[HandoverType]
    times_s: np.ndarray

    def __post_init__(self) -> None:
        if self.x.shape[0] != len(self.labels) or self.x.shape[0] != len(self.times_s):
            raise ValueError("features, labels, times must align")

    @property
    def positives(self) -> int:
        return sum(1 for label in self.labels if label is not HandoverType.NONE)


def label_for_tick(log: DriveLog, time_s: float, window_s: float) -> HandoverType:
    """Handover type decided within (time_s, time_s + window_s], or NONE.

    Scalar reference for :func:`labels_for_times` (one linear scan over
    ``log.handovers`` per call).
    """
    for record in log.handovers:
        if time_s < record.decision_time_s <= time_s + window_s:
            return record.ho_type
    return HandoverType.NONE


def labels_for_times(
    log: DriveLog, times_s: np.ndarray, window_s: float
) -> list[HandoverType]:
    """Vectorized :func:`label_for_tick` for an array of tick times.

    One ``np.searchsorted`` over the (sorted) handover decision times
    finds, per query time, the earliest decision strictly after it; the
    label is that handover's type when it falls inside the window.
    """
    times_s = np.asarray(times_s, dtype=float)
    if not log.handovers:
        return [HandoverType.NONE] * times_s.shape[0]
    decisions = np.array([h.decision_time_s for h in log.handovers])
    order = np.argsort(decisions, kind="stable")
    decisions = decisions[order]
    types = [log.handovers[i].ho_type for i in order]
    # Earliest decision with decision_time > t (window is (t, t+w]).
    first = np.searchsorted(decisions, times_s, side="right")
    in_window = (first < decisions.size) & (
        decisions[np.minimum(first, decisions.size - 1)] <= times_s + window_s
    )
    return [
        types[first[i]] if in_window[i] else HandoverType.NONE
        for i in range(times_s.shape[0])
    ]


def _tick_radio_features(ticks: list[TickRecord], index: int, slope_ticks: int) -> list[float]:
    """Scalar per-tick feature extraction — reference for the array path."""
    tick = ticks[index]
    lte = tick.lte_rrs
    nr = tick.nr_rrs

    def triple(sample):
        if sample is None:
            return [_ABSENT_RSRP, _ABSENT_RSRQ, _ABSENT_SINR]
        return [sample.rsrp_dbm, sample.rsrq_db, sample.sinr_db]

    features = triple(lte) + triple(nr)
    for neighbours in (tick.lte_neighbours, tick.nr_neighbours):
        top = [n.rrs.rsrp_dbm for n in neighbours[:2]]
        top += [_ABSENT_RSRP] * (2 - len(top))
        features.extend(top)
    # Differentials: strongest neighbour minus serving, per object.
    lte_best = tick.lte_neighbours[0].rrs.rsrp_dbm if tick.lte_neighbours else _ABSENT_RSRP
    nr_best = tick.nr_neighbours[0].rrs.rsrp_dbm if tick.nr_neighbours else _ABSENT_RSRP
    features.append(lte_best - (lte.rsrp_dbm if lte else _ABSENT_RSRP))
    features.append(nr_best - (nr.rsrp_dbm if nr else _ABSENT_RSRP))
    # Serving RSRP slopes over the recent past.
    past = ticks[max(index - slope_ticks, 0)]
    past_lte = past.lte_rrs.rsrp_dbm if past.lte_rrs else _ABSENT_RSRP
    past_nr = past.nr_rrs.rsrp_dbm if past.nr_rrs else _ABSENT_RSRP
    features.append((lte.rsrp_dbm if lte else _ABSENT_RSRP) - past_lte)
    features.append((nr.rsrp_dbm if nr else _ABSENT_RSRP) - past_nr)
    # Attachment indicator.
    features.append(1.0 if tick.nr_serving_gci is not None else 0.0)
    return features


def _tick_primitives(log: DriveLog) -> np.ndarray:
    """(n_ticks, 11) primitive columns extracted in one light pass.

    Columns: lte rsrp/rsrq/sinr, nr rsrp/rsrq/sinr, lte top-2 neighbour
    rsrp, nr top-2 neighbour rsrp, nr-attached flag.

    Memoized per log (read-only array): the dataset builders and any
    analysis consuming radio primitives share one extraction pass.
    """
    cached = log.__dict__.get("_tick_primitives")
    if cached is not None:
        return cached

    def triple(sample):
        if sample is None:
            return (_ABSENT_RSRP, _ABSENT_RSRQ, _ABSENT_SINR)
        return (sample.rsrp_dbm, sample.rsrq_db, sample.sinr_db)

    def top2(neighbours):
        if not neighbours:
            return (_ABSENT_RSRP, _ABSENT_RSRP)
        if len(neighbours) == 1:
            return (neighbours[0].rrs.rsrp_dbm, _ABSENT_RSRP)
        return (neighbours[0].rrs.rsrp_dbm, neighbours[1].rrs.rsrp_dbm)

    primitives = np.array(
        [
            (
                *triple(t.lte_rrs),
                *triple(t.nr_rrs),
                *top2(t.lte_neighbours),
                *top2(t.nr_neighbours),
                1.0 if t.nr_serving_gci is not None else 0.0,
            )
            for t in log.ticks
        ],
        dtype=float,
    )
    primitives.setflags(write=False)
    log.__dict__["_tick_primitives"] = primitives
    return primitives


def _assemble_radio_rows(
    primitives: np.ndarray, indices: np.ndarray, slope_ticks: int
) -> np.ndarray:
    """Feature rows for ``indices`` from the primitive columns.

    Column layout matches :func:`_tick_radio_features` exactly.
    """
    now = primitives[indices]
    past = primitives[np.maximum(indices - slope_ticks, 0)]
    rows = np.empty((indices.size, 15))
    rows[:, 0:6] = now[:, 0:6]  # serving triples
    rows[:, 6:8] = now[:, 6:8]  # lte top-2 neighbours
    rows[:, 8:10] = now[:, 8:10]  # nr top-2 neighbours
    rows[:, 10] = now[:, 6] - now[:, 0]  # lte best-neighbour differential
    rows[:, 11] = now[:, 8] - now[:, 3]  # nr best-neighbour differential
    rows[:, 12] = now[:, 0] - past[:, 0]  # lte serving slope
    rows[:, 13] = now[:, 3] - past[:, 3]  # nr serving slope
    rows[:, 14] = now[:, 10]  # attachment indicator
    return rows


def log_time_offsets(logs: list[DriveLog]) -> list[float]:
    """Global time offset per log when concatenating a dataset.

    The same convention is used by the Prognos replay driver, so tick
    times, labels, and handover events line up across methods.
    """
    offsets = []
    offset = 0.0
    for log in logs:
        offsets.append(offset)
        offset += log.duration_s + 1.0
    return offsets


def handover_events(logs: list[DriveLog]) -> list[tuple[float, HandoverType]]:
    """(global time, type) of every handover decision across the logs."""
    events: list[tuple[float, HandoverType]] = []
    for log, offset in zip(logs, log_time_offsets(logs)):
        for record in log.handovers:
            events.append((record.decision_time_s + offset, record.ho_type))
    events.sort(key=lambda item: item[0])
    return events


def build_radio_feature_dataset(
    logs: list[DriveLog],
    *,
    window_s: float = 1.0,
    stride: int = 5,
) -> LabeledDataset:
    """Flat radio-feature dataset for the GBC baseline.

    Args:
        window_s: prediction window for labelling.
        stride: keep every ``stride``-th tick (training tractability; the
            paper's logs are 20 Hz).
    """
    blocks: list[np.ndarray] = []
    labels: list[HandoverType] = []
    time_blocks: list[np.ndarray] = []
    for log, offset in zip(logs, log_time_offsets(logs)):
        if not log.ticks:
            continue
        slope_ticks = max(int(1.0 / max(log.tick_interval_s, 1e-3)), 1)
        indices = np.arange(0, len(log.ticks), stride)
        primitives = _tick_primitives(log)
        blocks.append(_assemble_radio_rows(primitives, indices, slope_ticks))
        tick_times = np.array([log.ticks[i].time_s for i in indices])
        labels.extend(labels_for_times(log, tick_times, window_s))
        time_blocks.append(tick_times + offset)
    if not blocks:
        raise ValueError("no ticks in the provided logs")
    return LabeledDataset(np.vstack(blocks), labels, np.concatenate(time_blocks))


def build_location_sequence_dataset(
    logs: list[DriveLog],
    *,
    window_s: float = 1.0,
    history_ticks: int = 20,
    stride: int = 5,
) -> LabeledDataset:
    """Location-sequence dataset for the stacked LSTM baseline."""
    blocks: list[np.ndarray] = []
    labels: list[HandoverType] = []
    time_blocks: list[np.ndarray] = []
    for log, offset in zip(logs, log_time_offsets(logs)):
        if len(log.ticks) <= history_ticks:
            continue
        track = np.array(
            [[t.x_m, t.y_m, t.speed_mps, t.arc_m] for t in log.ticks], dtype=float
        )
        indices = np.arange(history_ticks, len(log.ticks), stride)
        # windows[s] is track[s : s + history_ticks]; the window ending
        # just before tick i starts at i - history_ticks.
        windows = np.lib.stride_tricks.sliding_window_view(
            track, history_ticks, axis=0
        )
        blocks.append(
            np.ascontiguousarray(
                windows[indices - history_ticks].transpose(0, 2, 1), dtype=float
            )
        )
        tick_times = np.array([log.ticks[i].time_s for i in indices])
        labels.extend(labels_for_times(log, tick_times, window_s))
        time_blocks.append(tick_times + offset)
    if not blocks:
        raise ValueError("logs too short for the requested history window")
    return LabeledDataset(np.vstack(blocks), labels, np.concatenate(time_blocks))


def upsample_positives(
    x: np.ndarray, labels: list[HandoverType], target_share: float = 0.08
) -> tuple[np.ndarray, list[HandoverType]]:
    """Replicate handover rows so each class reaches ~target_share.

    Classes are visited in deterministic ``Enum.name`` order (sorting by
    ``repr`` would couple the resampled row order — and therefore
    training results — to the enum's repr format).
    """
    labels_arr = np.array([l.name for l in labels])
    negatives = int(np.sum(labels_arr == HandoverType.NONE.name))
    rows = [x]
    out_labels = list(labels)
    for cls in sorted(set(labels), key=lambda c: c.name):
        if cls is HandoverType.NONE:
            continue
        mask = labels_arr == cls.name
        count = int(np.sum(mask))
        if count == 0:
            continue
        want = max(int(negatives * target_share), count)
        repeats = want // count
        if repeats > 1:
            extra = np.tile(x[mask], (repeats - 1, 1))
            rows.append(extra)
            out_labels.extend([cls] * extra.shape[0])
    return np.vstack(rows), out_labels


def train_test_split_by_time(
    dataset: LabeledDataset, train_fraction: float = 0.6
) -> tuple[LabeledDataset, LabeledDataset]:
    """Chronological split (the paper trains on the first 60%)."""
    if not 0.0 < train_fraction < 1.0:
        raise ValueError("train fraction must lie in (0, 1)")
    cut = int(dataset.x.shape[0] * train_fraction)
    if cut < 1 or cut >= dataset.x.shape[0]:
        raise ValueError("split leaves an empty side")
    return (
        LabeledDataset(dataset.x[:cut], dataset.labels[:cut], dataset.times_s[:cut]),
        LabeledDataset(dataset.x[cut:], dataset.labels[cut:], dataset.times_s[cut:]),
    )
