"""From-scratch machine learning used by the prediction study (§7.3).

The paper compares Prognos against two offline-trained baselines: a
gradient boosting classifier over lower-layer radio features (Mei et
al.) and a stacked LSTM over device location (Ozturk et al.). Neither
sklearn nor a deep-learning framework is available offline, so this
package implements everything needed on numpy: OLS linear regression
(also used by Prognos's RRS predictor), CART regression trees, softmax
gradient boosting, a stacked LSTM trained with Adam, and the evaluation
metrics (precision / recall / F1 / accuracy) the paper reports.
"""

from repro.ml.linreg import LinearRegressor
from repro.ml.tree import RegressionTree
from repro.ml.gbc import GradientBoostingClassifier
from repro.ml.lstm import StackedLstmClassifier
from repro.ml.metrics import (
    ClassificationReport,
    classification_report,
    confusion_matrix,
)
from repro.ml.features import (
    LabeledDataset,
    build_radio_feature_dataset,
    build_location_sequence_dataset,
)

__all__ = [
    "ClassificationReport",
    "GradientBoostingClassifier",
    "LabeledDataset",
    "LinearRegressor",
    "RegressionTree",
    "StackedLstmClassifier",
    "build_location_sequence_dataset",
    "build_radio_feature_dataset",
    "classification_report",
    "confusion_matrix",
]
