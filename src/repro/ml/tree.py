"""CART regression trees — the weak learners inside gradient boosting.

Standard variance-reduction splitting with depth / minimum-samples
stopping. Split search is vectorised per feature (sort once, scan
prefix sums), which keeps boosting dozens of trees over ~10^4 samples
tractable in pure numpy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(slots=True)
class _Node:
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    value: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class RegressionTree:
    """A CART regression tree fit by variance reduction."""

    def __init__(
        self,
        max_depth: int = 3,
        min_samples_leaf: int = 5,
        min_samples_split: int = 10,
    ):
        if max_depth < 1:
            raise ValueError("max depth must be at least 1")
        if min_samples_leaf < 1 or min_samples_split < 2:
            raise ValueError("invalid minimum sample counts")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.min_samples_split = min_samples_split
        self._root: _Node | None = None

    def fit(
        self, x: np.ndarray, y: np.ndarray, sample_weight: np.ndarray | None = None
    ) -> "RegressionTree":
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.ndim != 2:
            raise ValueError("x must be 2-D (n, d)")
        if x.shape[0] != y.shape[0]:
            raise ValueError("x and y row counts differ")
        self._root = self._build(x, y, depth=0)
        return self

    def _build(self, x: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(value=float(np.mean(y)))
        n = y.size
        if depth >= self.max_depth or n < self.min_samples_split or np.ptp(y) == 0.0:
            return node
        best_gain = 0.0
        best: tuple[int, float, np.ndarray] | None = None
        parent_sse = float(np.sum((y - np.mean(y)) ** 2))
        for feature in range(x.shape[1]):
            column = x[:, feature]
            order = np.argsort(column, kind="stable")
            sorted_x = column[order]
            sorted_y = y[order]
            # Candidate split points: between distinct consecutive values.
            prefix = np.cumsum(sorted_y)
            prefix_sq = np.cumsum(sorted_y**2)
            total = prefix[-1]
            total_sq = prefix_sq[-1]
            counts = np.arange(1, n)
            left_sum = prefix[:-1]
            left_sq = prefix_sq[:-1]
            right_sum = total - left_sum
            right_sq = total_sq - left_sq
            left_sse = left_sq - left_sum**2 / counts
            right_counts = n - counts
            right_sse = right_sq - right_sum**2 / right_counts
            gains = parent_sse - (left_sse + right_sse)
            valid = (
                (sorted_x[1:] > sorted_x[:-1])
                & (counts >= self.min_samples_leaf)
                & (right_counts >= self.min_samples_leaf)
            )
            if not np.any(valid):
                continue
            gains = np.where(valid, gains, -np.inf)
            idx = int(np.argmax(gains))
            if gains[idx] > best_gain + 1e-12:
                best_gain = float(gains[idx])
                threshold = (sorted_x[idx] + sorted_x[idx + 1]) / 2.0
                best = (feature, threshold, column <= threshold)
        if best is None:
            return node
        feature, threshold, mask = best
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(x[mask], y[mask], depth + 1)
        node.right = self._build(x[~mask], y[~mask], depth + 1)
        return node

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("tree is not fitted")
        x = np.asarray(x, dtype=float)
        if x.ndim == 1:
            x = x[None, :]
        out = np.empty(x.shape[0])
        for i, row in enumerate(x):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
                assert node is not None
            out[i] = node.value
        return out

    def apply_leaf_values(self, transform) -> None:
        """Apply ``transform(node_value) -> new_value`` to every leaf.

        Gradient boosting replaces leaf means with Newton-step values;
        exposing this avoids re-walking training rows per leaf.
        """
        if self._root is None:
            raise RuntimeError("tree is not fitted")
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                node.value = transform(node.value)
            else:
                stack.extend([node.left, node.right])
