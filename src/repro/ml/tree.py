"""CART regression trees — the weak learners inside gradient boosting.

Standard variance-reduction splitting with depth / minimum-samples
stopping. Split search is sort-based: feature columns are argsorted
once (stable) and candidate splits scored with cumulative sums over the
pre-sorted columns for *all* features in one array pass. The sorted
orders are filtered down the recursion — a stable sort restricted to a
subset is the subset's stable sort — so no node below the root ever
argsorts, and :class:`~repro.ml.gbc.GradientBoostingClassifier` shares
one global column sort across every boosting round. A per-row scalar
reference (:func:`best_split_reference`) is retained for the
equivalence suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(slots=True)
class _Node:
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    value: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def presort_columns(x: np.ndarray) -> np.ndarray:
    """Stable per-column argsort of ``x`` — shareable across trees.

    Returns an ``(n, d)`` int array whose column ``j`` sorts
    ``x[:, j]``. Gradient boosting computes this once and passes it to
    every round's trees (the feature matrix never changes, only the
    residual targets do).
    """
    return np.argsort(x, axis=0, kind="stable")


def best_split(
    x: np.ndarray,
    y: np.ndarray,
    order: np.ndarray,
    min_samples_leaf: int,
) -> tuple[int, float, float] | None:
    """Best (feature, threshold, gain) by variance reduction, or None.

    ``order`` is the per-column sorted order of ``x`` (see
    :func:`presort_columns`). All features are scored in one cumulative
    sum pass; the final comparison walks features in index order with
    the same strict ``> best + 1e-12`` rule as the scalar reference, so
    tie-breaking is identical.
    """
    n, d = x.shape
    if n < 2:
        return None
    sorted_x = np.take_along_axis(x, order, axis=0)
    sorted_y = y[order]
    parent_sse = float(np.sum((y - np.mean(y)) ** 2))
    prefix = np.cumsum(sorted_y, axis=0)
    prefix_sq = np.cumsum(sorted_y**2, axis=0)
    total = prefix[-1]
    total_sq = prefix_sq[-1]
    counts = np.arange(1, n, dtype=float)[:, None]
    left_sum = prefix[:-1]
    left_sq = prefix_sq[:-1]
    right_sum = total - left_sum
    right_sq = total_sq - left_sq
    left_sse = left_sq - left_sum**2 / counts
    right_counts = n - counts
    right_sse = right_sq - right_sum**2 / right_counts
    gains = parent_sse - (left_sse + right_sse)
    valid = (
        (sorted_x[1:] > sorted_x[:-1])
        & (counts >= min_samples_leaf)
        & (right_counts >= min_samples_leaf)
    )
    gains = np.where(valid, gains, -np.inf)
    best_gain = 0.0
    best: tuple[int, float, float] | None = None
    # argmax per column, then the scalar reference's sequential
    # first-feature-wins comparison across features (d is small).
    idx_per_feature = np.argmax(gains, axis=0)
    gain_per_feature = gains[idx_per_feature, np.arange(d)]
    for feature in range(d):
        gain = gain_per_feature[feature]
        if gain > best_gain + 1e-12:
            best_gain = float(gain)
            idx = int(idx_per_feature[feature])
            threshold = (sorted_x[idx, feature] + sorted_x[idx + 1, feature]) / 2.0
            best = (feature, threshold, best_gain)
    return best


def best_split_reference(
    x: np.ndarray,
    y: np.ndarray,
    min_samples_leaf: int,
) -> tuple[int, float, float] | None:
    """Scalar per-row split search — ground truth for :func:`best_split`.

    Walks every (feature, candidate threshold) pair with Python loops.
    O(d * n^2); only for the equivalence suite and small fixtures.
    """
    n, d = x.shape
    parent_sse = float(np.sum((y - np.mean(y)) ** 2))
    best_gain = 0.0
    best: tuple[int, float, float] | None = None
    for feature in range(d):
        order = np.argsort(x[:, feature], kind="stable")
        sorted_x = x[order, feature]
        sorted_y = y[order]
        for split in range(1, n):
            if sorted_x[split] <= sorted_x[split - 1]:
                continue
            if split < min_samples_leaf or n - split < min_samples_leaf:
                continue
            left = sorted_y[:split]
            right = sorted_y[split:]
            sse = float(np.sum((left - left.mean()) ** 2)) + float(
                np.sum((right - right.mean()) ** 2)
            )
            gain = parent_sse - sse
            if gain > best_gain + 1e-12:
                best_gain = gain
                best = (feature, (sorted_x[split - 1] + sorted_x[split]) / 2.0, gain)
    return best


class RegressionTree:
    """A CART regression tree fit by variance reduction."""

    def __init__(
        self,
        max_depth: int = 3,
        min_samples_leaf: int = 5,
        min_samples_split: int = 10,
    ):
        if max_depth < 1:
            raise ValueError("max depth must be at least 1")
        if min_samples_leaf < 1 or min_samples_split < 2:
            raise ValueError("invalid minimum sample counts")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.min_samples_split = min_samples_split
        self._root: _Node | None = None

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        sample_weight: np.ndarray | None = None,
        *,
        presorted: np.ndarray | None = None,
    ) -> "RegressionTree":
        """Fit on ``(x, y)``.

        ``presorted`` is an optional per-column sorted order of ``x``
        (:func:`presort_columns`); passing it skips the fit's own
        argsort — gradient boosting shares one across all rounds.
        """
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.ndim != 2:
            raise ValueError("x must be 2-D (n, d)")
        if x.shape[0] != y.shape[0]:
            raise ValueError("x and y row counts differ")
        if presorted is None:
            presorted = presort_columns(x)
        elif presorted.shape != x.shape:
            raise ValueError("presorted orders must match x's shape")
        self._root = self._build(x, y, presorted, depth=0)
        return self

    def _build(self, x: np.ndarray, y: np.ndarray, order: np.ndarray, depth: int) -> _Node:
        node = _Node(value=float(np.mean(y)))
        n = y.size
        if depth >= self.max_depth or n < self.min_samples_split or np.ptp(y) == 0.0:
            return node
        found = best_split(x, y, order, self.min_samples_leaf)
        if found is None:
            return node
        feature, threshold, _ = found
        mask = x[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        # Filter the sorted orders instead of re-sorting: select each
        # column's surviving rows (same count in every column) and remap
        # the old row ids onto the children's compacted row numbering.
        remap = np.cumsum(mask) - 1
        remap_right = np.cumsum(~mask) - 1
        keep = mask[order]
        left_order = remap[order.T[keep.T].reshape(x.shape[1], -1).T]
        right_order = remap_right[order.T[~keep.T].reshape(x.shape[1], -1).T]
        node.left = self._build(x[mask], y[mask], left_order, depth + 1)
        node.right = self._build(x[~mask], y[~mask], right_order, depth + 1)
        return node

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("tree is not fitted")
        x = np.asarray(x, dtype=float)
        if x.ndim == 1:
            x = x[None, :]
        out = np.empty(x.shape[0])
        # Route index blocks down the tree: O(nodes) array ops instead
        # of a Python loop per row.
        stack: list[tuple[_Node, np.ndarray]] = [(self._root, np.arange(x.shape[0]))]
        while stack:
            node, idx = stack.pop()
            if node.is_leaf:
                out[idx] = node.value
                continue
            left = x[idx, node.feature] <= node.threshold
            assert node.left is not None and node.right is not None
            stack.append((node.left, idx[left]))
            stack.append((node.right, idx[~left]))
        return out

    def apply_leaf_values(self, transform) -> None:
        """Apply ``transform(node_value) -> new_value`` to every leaf.

        Gradient boosting replaces leaf means with Newton-step values;
        exposing this avoids re-walking training rows per leaf.
        """
        if self._root is None:
            raise RuntimeError("tree is not fitted")
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                node.value = transform(node.value)
            else:
                stack.extend([node.left, node.right])
