"""Prognos: the paper's holistic 4G/5G handover prediction system (§7).

Prognos decouples handover prediction into two learned stages — that is
the paper's central design claim (§7.2):

1. a *report predictor* that forecasts which measurement reports the UE
   will send, by extrapolating smoothed RRS with linear regression and
   replaying the 3GPP event trigger logic on the forecast
   (:mod:`repro.core.report_predictor`), and
2. a *decision learner* that mines the carrier's black-box HO logic as
   sequential patterns "MR sequence → HO type" in an online fashion
   (:mod:`repro.core.decision_learner`), with support counting,
   freshness-based eviction, and bootstrapping.

The *handover predictor* (:mod:`repro.core.predictor`) matches the
predicted report stream against the learned patterns and emits the HO
type plus ``ho_score`` — the expected throughput-change ratio
applications use to correct their bandwidth predictions (§7.4).
"""

from repro.core.smoothing import TriangularKernelSmoother
from repro.core.rrs_predictor import RRSPredictor, CellHistory
from repro.core.report_predictor import ReportPredictor, PredictedReport
from repro.core.patterns import Phase, Pattern, PatternStats
from repro.core.decision_learner import DecisionLearner, LearnerStats
from repro.core.ho_score import DEFAULT_HO_SCORES, ho_score_for
from repro.core.predictor import HandoverPredictor, HandoverPrediction
from repro.core.prognos import Prognos, PrognosConfig
from repro.core.bootstrap import frequent_patterns_from_logs

__all__ = [
    "CellHistory",
    "DEFAULT_HO_SCORES",
    "DecisionLearner",
    "HandoverPrediction",
    "HandoverPredictor",
    "LearnerStats",
    "Pattern",
    "PatternStats",
    "Phase",
    "PredictedReport",
    "Prognos",
    "PrognosConfig",
    "RRSPredictor",
    "ReportPredictor",
    "TriangularKernelSmoother",
    "frequent_patterns_from_logs",
    "ho_score_for",
]
