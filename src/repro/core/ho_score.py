"""ho_score: the expected throughput-change ratio per handover (§7.2).

``ho_score`` lives in (0, inf): 0.4 means "expect a 60% throughput
drop", 1.0 means "no change / no handover", and values above 1 signal
improvement (an SCG Addition bringing the NR leg up). The paper derives
the table empirically as the median post/pre throughput ratio per
procedure from its Fig. 16 measurements; we do the same from simulated
drives via :func:`repro.analysis.bandwidth.ho_score_table`, and ship
these defaults (derived from the mmWave walk workload) for users
without their own logs.
"""

from __future__ import annotations

from repro.rrc.taxonomy import HandoverType

#: Default scores: medians of post/pre capacity per procedure, matching
#: the paper's Fig. 16 shape — SCGA up ~17x, SCGR down ~7x, SCGM up
#: ~1.4x, SCGC slightly *down* (the §6.2 inefficiency), LTEH slightly
#: down, MNBH mildly down (interrupts both radios), MCGH neutral-plus.
DEFAULT_HO_SCORES: dict[HandoverType, float] = {
    HandoverType.SCGA: 17.0,
    HandoverType.SCGR: 0.14,
    HandoverType.SCGM: 1.43,
    HandoverType.SCGC: 0.86,
    HandoverType.MNBH: 0.80,
    HandoverType.LTEH: 0.96,
    HandoverType.MCGH: 1.05,
    HandoverType.NONE: 1.0,
}


def ho_score_for(
    ho_type: HandoverType,
    table: dict[HandoverType, float] | None = None,
) -> float:
    """Score for a predicted handover type (1.0 for unknown/none)."""
    scores = table if table is not None else DEFAULT_HO_SCORES
    score = scores.get(ho_type, 1.0)
    if score <= 0:
        raise ValueError(f"ho_score must be positive, got {score} for {ho_type}")
    return score
