"""Online handover decision-logic learning (§7.2's "Decision Learner").

Consumes the RRC stream phase by phase (MRs, then a handover command)
and maintains the set of live patterns with their support counts. The
paper's design points, all implemented here:

* online prefixSpan-style mining — at each phase end either increment
  the support of known (sub)sequences or admit new ones;
* freshness-based eviction — patterns unseen for a configurable number
  of phases are dropped, keeping the pattern set small and current
  (the paper measures ~9.1 patterns/hour learned, ~8.3/hour evicted on
  D1/D2, with prediction accuracy stable);
* bootstrapping — the learner can be seeded with frequent patterns
  mined offline (Fig. 15 shows this lifts the cold-start F1 to 0.8
  within 1.5 minutes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.patterns import (
    Pattern,
    PatternStats,
    Phase,
    dedup_labels,
    subsequences_for_phase,
)
from repro.rrc.taxonomy import HandoverType


@dataclass(frozen=True, slots=True)
class LearnerStats:
    """Counters for the §7.3 learning-dynamics analysis."""

    phases_processed: int
    live_patterns: int
    patterns_learned: int
    patterns_evicted: int
    learn_events_s: tuple[float, ...]
    evict_events_s: tuple[float, ...]


class DecisionLearner:
    """Online sequential-pattern miner over the RRC phase stream."""

    def __init__(
        self,
        *,
        freshness_horizon_phases: int = 120,
        max_patterns: int = 400,
    ):
        if freshness_horizon_phases < 1:
            raise ValueError("freshness horizon must be positive")
        if max_patterns < 8:
            raise ValueError("pattern capacity unreasonably small")
        self._horizon = freshness_horizon_phases
        self._max_patterns = max_patterns
        self._patterns: dict[Pattern, PatternStats] = {}
        self._phase_count = 0
        self._learned = 0
        self._evicted = 0
        self._learn_events: list[float] = []
        self._evict_events: list[float] = []
        self._pending_labels: list[str] = []

    # ------------------------------------------------------------------
    # Streaming interface.
    # ------------------------------------------------------------------

    def observe_report(self, label: str) -> None:
        """Feed one measurement report (in arrival order)."""
        self._pending_labels.append(label)

    def observe_handover(self, ho_type: HandoverType, time_s: float) -> Phase:
        """Feed a handover command: closes and mines the current phase."""
        labels = dedup_labels(self._pending_labels) or ("<none>",)
        self._pending_labels = []
        phase = Phase(labels=labels, ho_type=ho_type, command_time_s=time_s)
        self._mine(phase, time_s)
        return phase

    @property
    def current_phase_labels(self) -> tuple[str, ...]:
        """Deduped labels of the phase currently being assembled."""
        return dedup_labels(self._pending_labels)

    # ------------------------------------------------------------------
    # Mining.
    # ------------------------------------------------------------------

    def _mine(self, phase: Phase, time_s: float) -> None:
        self._phase_count += 1
        for labels in subsequences_for_phase(phase.labels):
            pattern = Pattern(labels=labels, ho_type=phase.ho_type)
            stats = self._patterns.get(pattern)
            if stats is None:
                self._patterns[pattern] = PatternStats(
                    support=1,
                    first_seen_phase=self._phase_count,
                    last_seen_phase=self._phase_count,
                )
                self._learned += 1
                self._learn_events.append(time_s)
            else:
                stats.support += 1
                stats.last_seen_phase = self._phase_count
        self._evict(time_s)

    def _evict(self, time_s: float) -> None:
        stale = [
            pattern
            for pattern, stats in self._patterns.items()
            if self._phase_count - stats.last_seen_phase > self._horizon
        ]
        for pattern in stale:
            del self._patterns[pattern]
        self._evicted += len(stale)
        self._evict_events.extend([time_s] * len(stale))
        # Capacity guard: drop the least fresh patterns beyond the cap.
        overflow = len(self._patterns) - self._max_patterns
        if overflow > 0:
            by_staleness = sorted(
                self._patterns.items(), key=lambda item: item[1].last_seen_phase
            )
            for pattern, _ in by_staleness[:overflow]:
                del self._patterns[pattern]
            self._evicted += overflow
            self._evict_events.extend([time_s] * overflow)

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    def bootstrap(self, patterns: dict[Pattern, int]) -> None:
        """Seed with offline-mined patterns (support counts given)."""
        for pattern, support in patterns.items():
            if support < 1:
                raise ValueError("bootstrap support must be positive")
            stats = self._patterns.get(pattern)
            if stats is None:
                self._patterns[pattern] = PatternStats(
                    support=support,
                    first_seen_phase=self._phase_count,
                    last_seen_phase=self._phase_count,
                )
            else:
                stats.support += support

    def live_patterns(self) -> dict[Pattern, PatternStats]:
        return dict(self._patterns)

    @property
    def phase_count(self) -> int:
        return self._phase_count

    def stats(self) -> LearnerStats:
        return LearnerStats(
            phases_processed=self._phase_count,
            live_patterns=len(self._patterns),
            patterns_learned=self._learned,
            patterns_evicted=self._evicted,
            learn_events_s=tuple(self._learn_events),
            evict_events_s=tuple(self._evict_events),
        )
