"""Phases and sequential patterns (§7.2's decision-logic representation).

A *phase* is the stream segment "measurement report(s) followed by one
handover command". A *pattern* is a unique MR-label sequence that
repeatedly precedes a specific handover type — e.g. the paper's example
``[A2, A5] -> inter-frequency LTE HO``. Patterns carry a support count
(how often observed) and a freshness stamp (when last observed), both
of which feed the predictor's similarity score and the learner's
eviction policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.rrc.taxonomy import HandoverType

#: Longest MR sequence kept per pattern (prefixSpan projection cap).
MAX_PATTERN_LENGTH = 4


def dedup_labels(labels: list[str]) -> tuple[str, ...]:
    """Collapse consecutive duplicate MR labels (periodic re-reports)."""
    out: list[str] = []
    for label in labels:
        if not out or out[-1] != label:
            out.append(label)
    return tuple(out)


@dataclass(frozen=True, slots=True)
class Phase:
    """One mined phase: the MRs that preceded one handover command."""

    labels: tuple[str, ...]
    ho_type: HandoverType
    command_time_s: float

    def __post_init__(self) -> None:
        if self.ho_type is HandoverType.NONE:
            raise ValueError("a phase must end in an actual handover")


@dataclass(frozen=True, slots=True)
class Pattern:
    """A candidate rule: this MR sequence triggers this handover type."""

    labels: tuple[str, ...]
    ho_type: HandoverType

    def __post_init__(self) -> None:
        if not self.labels:
            raise ValueError("pattern needs at least one label")
        if len(self.labels) > MAX_PATTERN_LENGTH:
            raise ValueError(f"pattern longer than {MAX_PATTERN_LENGTH}")

    def matches_suffix(self, observed: tuple[str, ...]) -> bool:
        """True if ``observed`` ends with this pattern's label sequence."""
        if len(observed) < len(self.labels):
            return False
        return observed[-len(self.labels) :] == self.labels


@dataclass(slots=True)
class PatternStats:
    """Bookkeeping attached to one learned pattern."""

    support: int = 0
    first_seen_phase: int = 0
    last_seen_phase: int = 0

    def freshness(self, current_phase: int, horizon_phases: int) -> float:
        """1.0 when just seen, decaying linearly to 0 at the horizon."""
        if horizon_phases <= 0:
            raise ValueError("freshness horizon must be positive")
        age = current_phase - self.last_seen_phase
        return max(0.0, 1.0 - age / horizon_phases)


def subsequences_for_phase(labels: tuple[str, ...]) -> list[tuple[str, ...]]:
    """The suffixes of a phase's (deduped) label sequence, shortest first.

    PrefixSpan grows patterns by prefix projection; for the HO problem
    the discriminative part of a phase is its *tail* (the reports
    closest to the command), so the online variant mines every suffix up
    to :data:`MAX_PATTERN_LENGTH`.
    """
    tail = labels[-MAX_PATTERN_LENGTH:]
    return [tail[len(tail) - k :] for k in range(1, len(tail) + 1)]
