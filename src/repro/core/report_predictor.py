"""Measurement-report forecasting (§7.2's "Report Predictor").

Waiting for a real measurement report leaves ~70 ms (median) before the
handover command lands — far too little for an application to react.
The report predictor instead replays the carrier's event trigger logic
(Table 4 conditions with time-to-trigger) on *predicted* RRS, declaring
a future report whenever a trigger condition is forecast to hold for
TTT within the prediction window. That buys Prognos ~931 ms of lead
time at ~1.2% accuracy cost (Fig. 18).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.rrs_predictor import RRSPredictor
from repro.rrc.events import EventConfig, EventType, MeasurementObject


@dataclass(frozen=True, slots=True)
class PredictedReport:
    """A measurement report forecast to fire within the window."""

    label: str
    fire_in_s: float
    cell: object | None


class ReportPredictor:
    """Forecasts event triggers from predicted RRS series."""

    def __init__(
        self,
        configs: list[EventConfig],
        predictor: RRSPredictor | None = None,
        *,
        prediction_window_s: float = 1.0,
        steps: int = 4,
        margin_db: float = 0.0,
    ):
        if not configs:
            raise ValueError("need at least one event config")
        if prediction_window_s <= 0:
            raise ValueError("prediction window must be positive")
        self._configs = list(configs)
        self.rrs = predictor or RRSPredictor()
        self._window_s = prediction_window_s
        self._steps = steps
        self._margin_db = margin_db
        # Static per-config facts, hoisted out of the per-tick batched
        # path: (config, event, needs_neighbour, scoped?).
        self._config_meta = [
            (
                config,
                config.event,
                config.event.needs_neighbour,
                config.intra_node_only or config.intra_frequency_only,
            )
            for config in self._configs
        ]

    def observe(self, time_s: float, rsrp_by_cell: dict[object, float]) -> None:
        """Feed one tick of raw RSRP measurements."""
        self.rrs.observe(time_s, rsrp_by_cell)

    def predict_reports(
        self,
        serving: dict[MeasurementObject, object | None],
        neighbours: dict[MeasurementObject, list[object]],
        scoped_neighbours: dict[MeasurementObject, list[object]] | None = None,
    ) -> list[PredictedReport]:
        """Forecast reports for the next prediction window.

        Args:
            serving: serving cell per measurement object (None = no leg).
            neighbours: candidate neighbour cells per object.
            scoped_neighbours: candidates for ``intra_node_only`` events
                (the measurement-object neighbour list the network
                configured); None treats every neighbour as in scope.
        """
        step_s = self._window_s / self._steps
        predictions: dict[object, np.ndarray] = {}

        def series(cell: object | None) -> np.ndarray | None:
            if cell is None:
                return None
            if cell not in predictions:
                forecast = self.rrs.predict(cell, self._window_s, self._steps)
                if forecast is None:
                    return None
                predictions[cell] = forecast
            return predictions[cell]

        reports: list[PredictedReport] = []
        for config in self._configs:
            serving_cell = serving.get(config.measurement)
            # Mirror the UE-side configuration gating (events.py).
            if (config.needs_serving and serving_cell is None) or (
                config.only_when_detached and serving_cell is not None
            ):
                continue
            serving_series = series(serving_cell)
            if config.event.needs_neighbour:
                scoping = config.intra_node_only or config.intra_frequency_only
                if scoping and scoped_neighbours is not None:
                    candidates = scoped_neighbours.get(config.measurement, [])
                else:
                    candidates = neighbours.get(config.measurement, [])
                for cell in candidates:
                    neighbour_series = series(cell)
                    if neighbour_series is None:
                        continue
                    fire = self._first_sustained_trigger(
                        config, serving_series, neighbour_series, step_s
                    )
                    if fire is not None:
                        reports.append(PredictedReport(config.label, fire, cell))
            else:
                if serving_series is None:
                    continue
                fire = self._first_sustained_trigger(config, serving_series, None, step_s)
                if fire is not None:
                    reports.append(PredictedReport(config.label, fire, None))
        reports.sort(key=lambda r: r.fire_in_s)
        return reports

    def predict_reports_batched(
        self,
        serving: dict[MeasurementObject, object | None],
        neighbours: dict[MeasurementObject, list[object]],
        scoped_neighbours: dict[MeasurementObject, list[object]] | None = None,
    ) -> list[PredictedReport]:
        """Batched :meth:`predict_reports`: identical reports, same order.

        One :meth:`RRSPredictor.predict_many` fan-out covers every cell
        any config needs, then each neighbour event evaluates its
        trigger condition over a candidate matrix. Condition arithmetic
        keeps the scalar op order (comparisons are exact, so identical
        floats give identical booleans) and the sustained-run scan fires
        at the same step, so the report list is bitwise-identical.
        """
        step_s = self._window_s / self._steps
        steps = self._steps

        # Pass 1: configuration gating + the union of cells to forecast.
        active: list[tuple[EventConfig, EventType, bool, object | None, list[object]]] = []
        cells: list[object] = []
        seen: set[object] = set()
        for config, event, needs_neighbour, scoping in self._config_meta:
            serving_cell = serving.get(config.measurement)
            if (config.needs_serving and serving_cell is None) or (
                config.only_when_detached and serving_cell is not None
            ):
                continue
            if needs_neighbour:
                if scoping and scoped_neighbours is not None:
                    candidates = scoped_neighbours.get(config.measurement, [])
                else:
                    candidates = neighbours.get(config.measurement, [])
            else:
                candidates = []
            active.append((config, event, needs_neighbour, serving_cell, candidates))
            if serving_cell is not None and serving_cell not in seen:
                seen.add(serving_cell)
                cells.append(serving_cell)
            for cell in candidates:
                if cell not in seen:
                    seen.add(cell)
                    cells.append(cell)
        if not active:
            return []
        forecasts = self.rrs.predict_many(cells, self._window_s, steps)

        neg_inf: np.ndarray | None = None
        margin = self._margin_db
        reports: list[PredictedReport] = []
        for config, event, needs_neighbour, serving_cell, candidates in active:
            serving_series = (
                forecasts.get(serving_cell) if serving_cell is not None else None
            )
            if needs_neighbour:
                cand_cells = [c for c in candidates if forecasts.get(c) is not None]
                if not cand_cells:
                    continue
                hys = config.hysteresis_db + margin
                if event not in (
                    EventType.A3,
                    EventType.A4,
                    EventType.B1,
                    EventType.A5,
                ):
                    # Unexpected neighbour event: scalar fallback.
                    for cell in cand_cells:
                        fire = self._first_sustained_trigger(
                            config, serving_series, forecasts[cell], step_s
                        )
                        if fire is not None:
                            reports.append(PredictedReport(config.label, fire, cell))
                    continue
                needed = int(np.ceil(config.time_to_trigger_s / step_s))
                if needed < 1:
                    needed = 1
                if needed > steps:
                    # The condition can never hold long enough inside
                    # the window (the scalar scan never fires either).
                    continue
                matrix = np.vstack([forecasts[c] for c in cand_cells])
                if serving_series is None:
                    if neg_inf is None:
                        neg_inf = np.full(steps, float("-inf"))
                    s = neg_inf
                else:
                    s = serving_series
                if event is EventType.A3:
                    # serving + offset + hys, left to right as _condition.
                    thresh = (s + config.offset_db) + hys
                    cond = matrix > thresh[None, :]
                elif event is EventType.A5:
                    serving_ok = (s + hys) < config.threshold_dbm
                    cond = serving_ok[None, :] & ((matrix - hys) > config.threshold2_dbm)
                else:  # A4 / B1
                    cond = (matrix - hys) > config.threshold_dbm
                # ok[:, j] == "condition held over steps j..j+needed-1",
                # so the first True column is the scalar scan's first
                # sustained trigger; it fires at step j+needed.
                if needed == 1:
                    ok = cond
                else:
                    ok = cond[:, needed - 1 :].copy()
                    for d in range(1, needed):
                        ok &= cond[:, needed - 1 - d : steps - d]
                hit = ok.any(axis=1)
                if hit.any():
                    first = ok.argmax(axis=1)
                    for idx, cell in enumerate(cand_cells):
                        if hit[idx]:
                            reports.append(
                                PredictedReport(
                                    config.label,
                                    (int(first[idx]) + needed) * step_s,
                                    cell,
                                )
                            )
            else:
                if serving_series is None:
                    continue
                fire = self._first_sustained_trigger(config, serving_series, None, step_s)
                if fire is not None:
                    reports.append(PredictedReport(config.label, fire, None))
        reports.sort(key=lambda r: r.fire_in_s)
        return reports

    def _first_sustained_trigger(
        self,
        config: EventConfig,
        serving_series: np.ndarray | None,
        neighbour_series: np.ndarray | None,
        step_s: float,
    ) -> float | None:
        """First forecast time at which the condition has held for TTT."""
        steps = (
            neighbour_series.size
            if neighbour_series is not None
            else (serving_series.size if serving_series is not None else 0)
        )
        if steps == 0:
            return None
        held_from: int | None = None
        needed_steps = int(np.ceil(config.time_to_trigger_s / step_s))
        for i in range(steps):
            serving_value = (
                serving_series[i] if serving_series is not None else float("-inf")
            )
            neighbour_value = (
                neighbour_series[i] if neighbour_series is not None else float("-inf")
            )
            if self._condition(config, serving_value, neighbour_value, self._margin_db):
                if held_from is None:
                    held_from = i
                if i - held_from + 1 >= max(needed_steps, 1):
                    return (i + 1) * step_s
            else:
                held_from = None
        return None

    @staticmethod
    def _condition(
        config: EventConfig,
        serving_dbm: float,
        neighbour_dbm: float,
        margin_db: float = 0.0,
    ) -> bool:
        hys = config.hysteresis_db + margin_db
        event = config.event
        if event is EventType.A1:
            return serving_dbm - hys > config.threshold_dbm
        if event is EventType.A2:
            return serving_dbm + hys < config.threshold_dbm
        if event is EventType.A3:
            return neighbour_dbm > serving_dbm + config.offset_db + hys
        if event in (EventType.A4, EventType.B1):
            return neighbour_dbm - hys > config.threshold_dbm
        if event is EventType.A5:
            return (
                serving_dbm + hys < config.threshold_dbm
                and neighbour_dbm - hys > config.threshold2_dbm
            )
        if event is EventType.PERIODIC:
            return True
        raise ValueError(f"unhandled event {event}")
