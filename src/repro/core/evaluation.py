"""Evaluation drivers for the §7.3 prediction study.

Replays drive logs through Prognos (streaming, online learning) and the
two offline baselines (GBC, stacked LSTM), producing the paper's
Table 3 metrics, the Fig. 18 lead-time distributions, and the Fig. 15
bootstrap/F1-over-time curves.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.bootstrap import frequent_patterns_from_logs
from repro.core.patterns import Pattern
from repro.core.prognos import Prognos, PrognosConfig
from repro.ml.features import (
    LabeledDataset,
    build_location_sequence_dataset,
    build_radio_feature_dataset,
    handover_events,
    label_for_tick,
    log_time_offsets,
    train_test_split_by_time,
)
from repro.ml.gbc import GradientBoostingClassifier
from repro.ml.lstm import StackedLstmClassifier
from repro.ml.metrics import (
    ClassificationReport,
    classification_report,
    event_level_report,
)
from repro.radio.bands import BandClass
from repro.ran.carrier import CarrierProfile
from repro.rrc.events import EventConfig, MeasurementObject
from repro.rrc.taxonomy import HandoverType
from repro.simulate.records import DriveLog, TickRecord


def configs_for_log(
    carrier: CarrierProfile, band_classes: tuple[BandClass, ...], standalone: bool = False
) -> list[EventConfig]:
    """Event configuration the UE would hold across the log's coverage."""
    configs: list[EventConfig] = []
    if not standalone:
        configs.extend(carrier.lte_event_configs())
    seen: set[tuple] = set()
    for band_class in band_classes:
        for config in carrier.nr_event_configs(band_class):
            key = (config.event, config.measurement, config.threshold_dbm, config.offset_db)
            if key not in seen:
                seen.add(key)
                configs.append(config)
    return configs


@dataclass
class PrognosRunResult:
    """Everything one streaming replay produced."""

    times_s: np.ndarray
    predictions: list[HandoverType]
    truths: list[HandoverType]
    events: list[tuple[float, HandoverType]]
    lead_times_s: list[float]
    learner_stats: object

    def report(
        self, *, test_after_s: float | None = None
    ) -> ClassificationReport:
        """Event-level metrics after ``test_after_s`` (None = everything)."""
        if test_after_s is None:
            mask = np.ones(len(self.times_s), dtype=bool)
        else:
            mask = self.times_s >= test_after_s
        preds = [p for p, m in zip(self.predictions, mask) if m]
        truth = [t for t, m in zip(self.truths, mask) if m]
        times = self.times_s[mask]
        cutoff = test_after_s if test_after_s is not None else float("-inf")
        events = [(t, c) for t, c in self.events if t >= cutoff]
        return event_level_report(
            times, preds, truth, events, negative_class=HandoverType.NONE
        )

    def f1_over_time(self, window_s: float = 120.0) -> tuple[np.ndarray, np.ndarray]:
        """(window centres, F1 within each window) — the Fig. 15 curve."""
        if len(self.times_s) == 0:
            raise ValueError("empty run")
        start, end = float(self.times_s[0]), float(self.times_s[-1])
        centres, scores = [], []
        t = start + window_s / 2
        while t <= end - window_s / 2 + 1e-9:
            mask = (self.times_s >= t - window_s / 2) & (self.times_s < t + window_s / 2)
            truth = [x for x, m in zip(self.truths, mask) if m]
            preds = [x for x, m in zip(self.predictions, mask) if m]
            if truth and any(x is not HandoverType.NONE for x in truth):
                window_times = self.times_s[mask]
                events = [
                    (e, c)
                    for e, c in self.events
                    if t - window_s / 2 <= e < t + window_s / 2
                ]
                scores.append(
                    event_level_report(
                        window_times,
                        preds,
                        truth,
                        events,
                        negative_class=HandoverType.NONE,
                    ).f1
                )
                centres.append(t)
            t += window_s / 2
        return np.array(centres), np.array(scores)


def _tick_inputs(tick: TickRecord):
    rsrp: dict[object, float] = {}
    serving: dict[MeasurementObject, object | None] = {
        MeasurementObject.LTE: tick.lte_serving_gci,
        MeasurementObject.NR: tick.nr_serving_gci,
    }
    neighbours: dict[MeasurementObject, list[object]] = {
        MeasurementObject.LTE: [],
        MeasurementObject.NR: [],
    }
    scoped: dict[MeasurementObject, list[object]] = {
        MeasurementObject.LTE: [],
        MeasurementObject.NR: [],
    }
    if tick.lte_serving_gci is not None and tick.lte_rrs is not None:
        rsrp[tick.lte_serving_gci] = tick.lte_rrs.rsrp_dbm
    if tick.nr_serving_gci is not None and tick.nr_rrs is not None:
        rsrp[tick.nr_serving_gci] = tick.nr_rrs.rsrp_dbm
    for obs in tick.lte_neighbours:
        rsrp[obs.gci] = obs.rrs.rsrp_dbm
        neighbours[MeasurementObject.LTE].append(obs.gci)
        if obs.in_a3_scope:
            scoped[MeasurementObject.LTE].append(obs.gci)
    for obs in tick.nr_neighbours:
        rsrp[obs.gci] = obs.rrs.rsrp_dbm
        neighbours[MeasurementObject.NR].append(obs.gci)
        if obs.in_a3_scope:
            scoped[MeasurementObject.NR].append(obs.gci)
    return rsrp, serving, neighbours, scoped


def run_prognos_over_logs(
    logs: list[DriveLog],
    event_configs: list[EventConfig],
    *,
    config: PrognosConfig | None = None,
    bootstrap: dict[Pattern, int] | None = None,
    window_s: float = 1.0,
    stride: int = 1,
    standalone: bool = False,
    ho_scores: dict[HandoverType, float] | None = None,
) -> PrognosRunResult:
    """Stream the logs through one Prognos instance, in order.

    Time is re-based so consecutive logs form one continuous session
    (the learner persists across traces of the same dataset, exactly as
    a phone replaying the same walk would accumulate patterns).
    """
    prognos = Prognos(event_configs, config, ho_scores)
    if bootstrap:
        prognos.bootstrap(bootstrap)

    times: list[float] = []
    predictions: list[HandoverType] = []
    truths: list[HandoverType] = []
    lead_times: list[float] = []
    offset = 0.0

    for log in logs:
        reports = sorted(log.reports, key=lambda r: r.time_s)
        commands = sorted(log.handovers, key=lambda h: h.exec_start_s)
        r_idx = c_idx = 0
        # Track, per upcoming handover, when a correct-type prediction
        # run started (for Fig. 18 lead times).
        run_start: float | None = None
        run_type: HandoverType | None = None
        for index, tick in enumerate(log.ticks):
            now = tick.time_s
            while r_idx < len(reports) and reports[r_idx].time_s <= now:
                prognos.observe_report(reports[r_idx].label, reports[r_idx].time_s)
                r_idx += 1
            while c_idx < len(commands) and commands[c_idx].exec_start_s <= now:
                command = commands[c_idx]
                if run_type is command.ho_type and run_start is not None:
                    lead_times.append(command.exec_start_s - run_start)
                run_start = None
                run_type = None
                prognos.observe_command(command.ho_type, command.exec_start_s)
                c_idx += 1
            if index % stride:
                continue
            rsrp, serving, neighbours, scoped = _tick_inputs(tick)
            prediction = prognos.step(
                now,
                rsrp,
                serving,
                neighbours,
                standalone=standalone,
                scoped_neighbours=scoped,
            )
            if prediction.predicts_handover:
                if run_type is not prediction.ho_type:
                    run_type = prediction.ho_type
                    run_start = now
            else:
                run_type = None
                run_start = None
            times.append(now + offset)
            predictions.append(prediction.ho_type)
            truths.append(label_for_tick(log, now, window_s))
        offset += log.duration_s + 1.0
    return PrognosRunResult(
        times_s=np.array(times),
        predictions=predictions,
        truths=truths,
        events=handover_events(logs),
        lead_times_s=lead_times,
        learner_stats=prognos.stats(),
    )


@dataclass(frozen=True)
class Table3Row:
    """One (dataset, method) row of Table 3."""

    dataset: str
    method: str
    f1: float
    precision: float
    recall: float
    accuracy: float


def evaluate_gbc(
    logs: list[DriveLog], *, train_fraction: float = 0.6, stride: int = 5
) -> ClassificationReport:
    """Offline-trained GBC baseline (Mei et al.), 60/40 split."""
    dataset = build_radio_feature_dataset(logs, stride=stride)
    train, test = train_test_split_by_time(dataset, train_fraction)
    # Handovers are ~0.4% of ticks; without upsampling the booster
    # collapses to the majority class (exactly the "blind ML" failure
    # mode the paper highlights — we give the baseline its best shot).
    x_train, y_train = _upsample_positives(train.x, train.labels)
    model = GradientBoostingClassifier(n_estimators=30, max_depth=3)
    model.fit(x_train, y_train)
    predictions = model.predict(test.x)
    events = [(t, c) for t, c in handover_events(logs) if t >= test.times_s[0]]
    return event_level_report(
        test.times_s,
        predictions,
        test.labels,
        events,
        negative_class=HandoverType.NONE,
    )


def _upsample_positives(
    x: np.ndarray, labels: list[HandoverType], target_share: float = 0.08
) -> tuple[np.ndarray, list[HandoverType]]:
    """Replicate handover rows so each class reaches ~target_share."""
    labels_arr = np.array([l.name for l in labels])
    negatives = int(np.sum(labels_arr == HandoverType.NONE.name))
    rows = [x]
    out_labels = list(labels)
    for cls in sorted(set(labels), key=repr):
        if cls is HandoverType.NONE:
            continue
        mask = labels_arr == cls.name
        count = int(np.sum(mask))
        if count == 0:
            continue
        want = max(int(negatives * target_share), count)
        repeats = want // count
        if repeats > 1:
            extra = np.tile(x[mask], (repeats - 1, 1))
            rows.append(extra)
            out_labels.extend([cls] * extra.shape[0])
    return np.vstack(rows), out_labels


def evaluate_lstm(
    logs: list[DriveLog],
    *,
    train_fraction: float = 0.6,
    stride: int = 10,
    epochs: int = 4,
    max_train_sequences: int = 4000,
) -> ClassificationReport:
    """Offline-trained stacked-LSTM baseline (Ozturk et al.)."""
    dataset = build_location_sequence_dataset(logs, stride=stride)
    train, test = train_test_split_by_time(dataset, train_fraction)
    x_train, y_train = train.x, train.labels
    if x_train.shape[0] > max_train_sequences:
        keep = np.linspace(0, x_train.shape[0] - 1, max_train_sequences).astype(int)
        x_train = x_train[keep]
        y_train = [y_train[i] for i in keep]
    model = StackedLstmClassifier(hidden_dim=24, epochs=epochs)
    model.fit(x_train, y_train)
    predictions = model.predict(test.x)
    events = [(t, c) for t, c in handover_events(logs) if t >= test.times_s[0]]
    return event_level_report(
        test.times_s,
        predictions,
        test.labels,
        events,
        negative_class=HandoverType.NONE,
    )


def evaluate_prognos(
    logs: list[DriveLog],
    carrier: CarrierProfile,
    band_classes: tuple[BandClass, ...],
    *,
    train_fraction: float = 0.6,
    stride: int = 2,
    config: PrognosConfig | None = None,
) -> tuple[ClassificationReport, PrognosRunResult]:
    """Prognos over the same corpus; metrics on the last 40% only.

    Prognos needs no offline training, but for comparability the paper
    scores every method on the same held-out 40%.
    """
    configs = configs_for_log(carrier, band_classes)
    result = run_prognos_over_logs(logs, configs, config=config, stride=stride)
    total = float(result.times_s[-1] - result.times_s[0])
    cutoff = float(result.times_s[0]) + train_fraction * total
    return result.report(test_after_s=cutoff), result


def table3(
    datasets: dict[str, list[DriveLog]],
    carrier: CarrierProfile,
    band_classes_by_dataset: dict[str, tuple[BandClass, ...]],
) -> list[Table3Row]:
    """Assemble Table 3: three methods over each dataset."""
    rows: list[Table3Row] = []
    for name, logs in datasets.items():
        bands = band_classes_by_dataset[name]
        gbc = evaluate_gbc(logs)
        rows.append(Table3Row(name, "GBC", gbc.f1, gbc.precision, gbc.recall, gbc.accuracy))
        lstm = evaluate_lstm(logs)
        rows.append(
            Table3Row(name, "Stacked LSTM", lstm.f1, lstm.precision, lstm.recall, lstm.accuracy)
        )
        prognos, _ = evaluate_prognos(logs, carrier, bands)
        rows.append(
            Table3Row(
                name, "Prognos", prognos.f1, prognos.precision, prognos.recall, prognos.accuracy
            )
        )
    return rows
