"""Evaluation drivers for the §7.3 prediction study.

Replays drive logs through Prognos (streaming, online learning) and the
two offline baselines (GBC, stacked LSTM), producing the paper's
Table 3 metrics, the Fig. 18 lead-time distributions, and the Fig. 15
bootstrap/F1-over-time curves.

The replay is split into a *plan* stage and a *stream* stage: per log,
all per-tick work that does not touch learner state (ground-truth
labels via one ``np.searchsorted``, RRC event scheduling, per-tick
radio inputs) is precomputed into arrays/lists up front — fanned out
over a ``run_drives``-style process pool when ``workers`` > 1 — and the
sequential stream stage only advances the Prognos learner. Offline
baselines resolve through the on-disk trained-model cache
(:mod:`repro.ml.model_cache`), so warm bench runs skip retraining; the
independent (dataset, method) cells of Table 3 evaluate in parallel.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.bootstrap import frequent_patterns_from_logs
from repro.core.patterns import Pattern
from repro.core.prognos import Prognos, PrognosConfig
from repro.core.report_predictor import ReportPredictor
from repro.core.rrs_predictor import RRSPredictor
from repro.ml.features import (
    LabeledDataset,
    build_location_sequence_dataset,
    build_radio_feature_dataset,
    handover_events,
    label_for_tick,
    labels_for_times,
    log_time_offsets,
    train_test_split_by_time,
    upsample_positives,
)
from repro.ml.dataset_cache import DatasetCache, build_cached
from repro.ml.gbc import GradientBoostingClassifier
from repro.ml.lstm import StackedLstmClassifier
from repro.ml.model_cache import ModelCache, fit_cached
from repro.ml.metrics import (
    ClassificationReport,
    classification_report,
    event_level_report,
)
from repro.radio.bands import BandClass
from repro.ran.carrier import CarrierProfile
from repro.rrc.events import EventConfig, MeasurementObject
from repro.rrc.taxonomy import HandoverType
from repro.simulate import fanout
from repro.simulate.corpus import CorpusView, resolve_log
from repro.simulate.records import DriveLog, TickRecord
from repro.simulate.runner import default_workers


def configs_for_log(
    carrier: CarrierProfile, band_classes: tuple[BandClass, ...], standalone: bool = False
) -> list[EventConfig]:
    """Event configuration the UE would hold across the log's coverage."""
    configs: list[EventConfig] = []
    if not standalone:
        configs.extend(carrier.lte_event_configs())
    seen: set[tuple] = set()
    for band_class in band_classes:
        for config in carrier.nr_event_configs(band_class):
            key = (config.event, config.measurement, config.threshold_dbm, config.offset_db)
            if key not in seen:
                seen.add(key)
                configs.append(config)
    return configs


@dataclass
class PrognosRunResult:
    """Everything one streaming replay produced."""

    times_s: np.ndarray
    predictions: list[HandoverType]
    truths: list[HandoverType]
    events: list[tuple[float, HandoverType]]
    lead_times_s: list[float]
    learner_stats: object

    def report(
        self, *, test_after_s: float | None = None
    ) -> ClassificationReport:
        """Event-level metrics after ``test_after_s`` (None = everything)."""
        if test_after_s is None:
            mask = np.ones(len(self.times_s), dtype=bool)
        else:
            mask = self.times_s >= test_after_s
        preds = [p for p, m in zip(self.predictions, mask) if m]
        truth = [t for t, m in zip(self.truths, mask) if m]
        times = self.times_s[mask]
        cutoff = test_after_s if test_after_s is not None else float("-inf")
        events = [(t, c) for t, c in self.events if t >= cutoff]
        return event_level_report(
            times, preds, truth, events, negative_class=HandoverType.NONE
        )

    def f1_over_time(self, window_s: float = 120.0) -> tuple[np.ndarray, np.ndarray]:
        """(window centres, F1 within each window) — the Fig. 15 curve."""
        if len(self.times_s) == 0:
            raise ValueError("empty run")
        start, end = float(self.times_s[0]), float(self.times_s[-1])
        centres, scores = [], []
        t = start + window_s / 2
        while t <= end - window_s / 2 + 1e-9:
            mask = (self.times_s >= t - window_s / 2) & (self.times_s < t + window_s / 2)
            truth = [x for x, m in zip(self.truths, mask) if m]
            preds = [x for x, m in zip(self.predictions, mask) if m]
            if truth and any(x is not HandoverType.NONE for x in truth):
                window_times = self.times_s[mask]
                events = [
                    (e, c)
                    for e, c in self.events
                    if t - window_s / 2 <= e < t + window_s / 2
                ]
                scores.append(
                    event_level_report(
                        window_times,
                        preds,
                        truth,
                        events,
                        negative_class=HandoverType.NONE,
                    ).f1
                )
                centres.append(t)
            t += window_s / 2
        return np.array(centres), np.array(scores)


def _tick_inputs(tick: TickRecord):
    rsrp: dict[object, float] = {}
    serving: dict[MeasurementObject, object | None] = {
        MeasurementObject.LTE: tick.lte_serving_gci,
        MeasurementObject.NR: tick.nr_serving_gci,
    }
    neighbours: dict[MeasurementObject, list[object]] = {
        MeasurementObject.LTE: [],
        MeasurementObject.NR: [],
    }
    scoped: dict[MeasurementObject, list[object]] = {
        MeasurementObject.LTE: [],
        MeasurementObject.NR: [],
    }
    if tick.lte_serving_gci is not None and tick.lte_rrs is not None:
        rsrp[tick.lte_serving_gci] = tick.lte_rrs.rsrp_dbm
    if tick.nr_serving_gci is not None and tick.nr_rrs is not None:
        rsrp[tick.nr_serving_gci] = tick.nr_rrs.rsrp_dbm
    for obs in tick.lte_neighbours:
        rsrp[obs.gci] = obs.rrs.rsrp_dbm
        neighbours[MeasurementObject.LTE].append(obs.gci)
        if obs.in_a3_scope:
            scoped[MeasurementObject.LTE].append(obs.gci)
    for obs in tick.nr_neighbours:
        rsrp[obs.gci] = obs.rrs.rsrp_dbm
        neighbours[MeasurementObject.NR].append(obs.gci)
        if obs.in_a3_scope:
            scoped[MeasurementObject.NR].append(obs.gci)
    return rsrp, serving, neighbours, scoped


@dataclass
class _ReplayPlan:
    """Everything one log's replay needs, precomputed into arrays.

    ``events`` merges measurement reports and handover commands in the
    exact order the tick-by-tick reference drained them: each event is
    assigned the first tick index whose timestamp covers it, reports
    sort before commands within a tick, and ties within a kind keep
    time order. ``kind`` is 0 for a report ``(label, time_s)`` and 1
    for a command ``(ho_type, exec_start_s)``.
    """

    events: list[tuple[int, int, object, float]]
    step_times: np.ndarray
    step_inputs: list[tuple]
    step_labels: list[HandoverType]
    duration_s: float


def _replay_plan(log: DriveLog, window_s: float, stride: int) -> _ReplayPlan:
    """Precompute the non-learner per-tick work for one log."""
    tick_times = np.array([t.time_s for t in log.ticks])
    reports = sorted(log.reports, key=lambda r: r.time_s)
    commands = sorted(log.handovers, key=lambda h: h.exec_start_s)
    events: list[tuple[int, int, object, float]] = []
    if reports:
        due = np.searchsorted(tick_times, [r.time_s for r in reports], side="left")
        events.extend(
            (int(tick), 0, r.label, r.time_s) for tick, r in zip(due, reports)
        )
    if commands:
        due = np.searchsorted(tick_times, [c.exec_start_s for c in commands], side="left")
        events.extend(
            (int(tick), 1, c.ho_type, c.exec_start_s) for tick, c in zip(due, commands)
        )
    # Stable: within a tick reports precede commands, each in time order.
    events.sort(key=lambda e: (e[0], e[1]))
    step_indices = np.arange(0, len(log.ticks), stride)
    step_times = tick_times[step_indices] if len(log.ticks) else np.empty(0)
    step_inputs = [_tick_inputs(log.ticks[i]) for i in step_indices]
    step_labels = labels_for_times(log, step_times, window_s)
    # Events due after the final tick are never drained (as in the
    # tick-by-tick reference); mark them unreachable.
    events = [e for e in events if e[0] < len(log.ticks)]
    return _ReplayPlan(events, step_times, step_inputs, step_labels, log.duration_s)


def _replay_plan_star(args: tuple) -> _ReplayPlan:
    # Module-level so ProcessPoolExecutor can pickle it by reference.
    return _replay_plan(*args)


def _forecast_steps(
    plan: _ReplayPlan,
    event_configs: list[EventConfig],
    config: PrognosConfig | None,
) -> list[list[tuple[str, float]]]:
    """Per-step predicted reports for one log's replay plan.

    The report-predictor stage of :meth:`Prognos.step` is a pure
    function of the log's RSRP stream (the learner never feeds back
    into it), so it can run per log, batched, and in parallel across
    logs. A fresh RRS/report predictor per log reproduces exactly what
    the streaming instance holds after its per-log :meth:`start_log`
    reset.
    """
    config = config or PrognosConfig()
    if not config.use_report_predictor:
        return [[] for _ in plan.step_inputs]
    rrs = RRSPredictor(
        history_window_ticks=config.history_window_ticks,
        smoother_window=config.smoother_window,
    )
    predictor = ReportPredictor(
        event_configs,
        rrs,
        prediction_window_s=config.prediction_window_s,
    )
    forecasts: list[list[tuple[str, float]]] = []
    for now, inputs in zip(plan.step_times, plan.step_inputs):
        rsrp, serving, neighbours, scoped = inputs
        predictor.observe(now, rsrp)
        forecasts.append(
            [
                (report.label, report.fire_in_s)
                for report in predictor.predict_reports_batched(
                    serving, neighbours, scoped
                )
            ]
        )
    return forecasts


def _plan_and_forecast_star(
    args: tuple,
) -> tuple[_ReplayPlan, list[list[tuple[str, float]]]]:
    # Module-level so ProcessPoolExecutor can pickle it by reference.
    # The log slot may be a corpus DriveRef — a (store_path, drive_id)
    # pointer resolved here, in whichever process runs the job, so the
    # spawn fallback ships bytes, not corpora.
    log, window_s, stride, event_configs, config = args
    plan = _replay_plan(resolve_log(log), window_s, stride)
    return plan, _forecast_steps(plan, event_configs, config)


def _plan_and_forecast_indexed(
    job: tuple[int, int],
) -> tuple[_ReplayPlan, list[list[tuple[str, float]]]]:
    # Fork-inherited fan-out worker: the corpus and replay parameters
    # arrive via shared memory, only (token, index) is shipped. With a
    # corpus store the parked list holds DriveRefs, so the inherited
    # payload is pointers and each worker maps its own slice lazily.
    token, index = job
    logs, window_s, stride, event_configs, config = fanout.payload(token)
    plan = _replay_plan(resolve_log(logs[index]), window_s, stride)
    return plan, _forecast_steps(plan, event_configs, config)


def run_prognos_over_logs(
    logs: list[DriveLog],
    event_configs: list[EventConfig],
    *,
    config: PrognosConfig | None = None,
    bootstrap: dict[Pattern, int] | None = None,
    window_s: float = 1.0,
    stride: int = 1,
    standalone: bool = False,
    ho_scores: dict[HandoverType, float] | None = None,
    workers: int | None = None,
) -> PrognosRunResult:
    """Stream the logs through one Prognos instance, in order.

    Time is re-based so consecutive logs form one continuous session
    (the learner persists across traces of the same dataset, exactly as
    a phone replaying the same walk would accumulate patterns); the
    radio-layer RRS history resets at each log boundary
    (:meth:`Prognos.start_log`) since consecutive logs are unrelated
    drives. The learner's continuity is why the *stream* stage stays
    sequential; the per-log *plan + report-forecast* stages carry no
    learner state, so ``workers`` > 1 fans them out over a process pool
    (results are identical for any worker count, and bit-identical to
    :func:`run_prognos_over_logs_reference`). The pool ships no logs:
    the corpus is fork-inherited via :mod:`repro.simulate.fanout` and
    each job carries only an index. The pass is supervised
    (:mod:`repro.robust`): crashed or hung workers are retried under
    ``REPRO_JOB_TIMEOUT_S``/``REPRO_JOB_RETRIES`` and the pool
    degrades to serial execution rather than losing the run.

    ``logs`` may be a :class:`~repro.simulate.corpus.CorpusView`:
    the plan stage then parks (store, drive_id) pointers instead of
    materialised logs — each plan job (serial, forked, or spawned)
    opens its drive's memory-mapped slice lazily and releases it when
    the plan is built, so the whole corpus is never resident at once —
    and the final event index is computed as a column scan over the
    shards.
    """
    if workers is None:
        workers = 1
    is_view = isinstance(logs, CorpusView)
    handles = logs.refs() if is_view else list(logs)
    tasks = [(h, window_s, stride, event_configs, config) for h in handles]
    if workers > 1 and len(logs) > 1:
        staged = fanout.fanout_map(
            _plan_and_forecast_indexed,
            (handles, window_s, stride, event_configs, config),
            len(handles),
            workers,
            fallback_fn=_plan_and_forecast_star,
            fallback_jobs=tasks,
        )
    else:
        staged = [_plan_and_forecast_star(task) for task in tasks]

    prognos = Prognos(event_configs, config, ho_scores)
    if bootstrap:
        prognos.bootstrap(bootstrap)

    times: list[float] = []
    predictions: list[HandoverType] = []
    truths: list[HandoverType] = []
    lead_times: list[float] = []
    offset = 0.0

    for plan, forecasts in staged:
        prognos.start_log()
        e_idx = 0
        events = plan.events
        # Track, per upcoming handover, when a correct-type prediction
        # run started (for Fig. 18 lead times).
        run_start: float | None = None
        run_type: HandoverType | None = None
        for pos, now in enumerate(plan.step_times):
            tick_index = pos * stride
            while e_idx < len(events) and events[e_idx][0] <= tick_index:
                _, kind, payload, event_time = events[e_idx]
                if kind == 0:
                    prognos.observe_report(payload, event_time)
                else:
                    if run_type is payload and run_start is not None:
                        lead_times.append(event_time - run_start)
                    run_start = None
                    run_type = None
                    prognos.observe_command(payload, event_time)
                e_idx += 1
            _, serving, _, _ = plan.step_inputs[pos]
            prediction = prognos.step_with_forecast(
                now,
                serving,
                forecasts[pos],
                standalone=standalone,
            )
            if prediction.predicts_handover:
                if run_type is not prediction.ho_type:
                    run_type = prediction.ho_type
                    run_start = now
            else:
                run_type = None
                run_start = None
            times.append(now + offset)
            predictions.append(prediction.ho_type)
        # Events due after the final strided step still reach the
        # learner (the tick-by-tick reference visited every raw tick).
        while e_idx < len(events):
            _, kind, payload, event_time = events[e_idx]
            if kind == 0:
                prognos.observe_report(payload, event_time)
            else:
                if run_type is payload and run_start is not None:
                    lead_times.append(event_time - run_start)
                run_start = None
                run_type = None
                prognos.observe_command(payload, event_time)
            e_idx += 1
        truths.extend(plan.step_labels)
        offset += plan.duration_s + 1.0
    return PrognosRunResult(
        times_s=np.array(times),
        predictions=predictions,
        truths=truths,
        events=logs.handover_events() if is_view else handover_events(logs),
        lead_times_s=lead_times,
        learner_stats=prognos.stats(),
    )


def run_prognos_over_logs_reference(
    logs: list[DriveLog],
    event_configs: list[EventConfig],
    *,
    config: PrognosConfig | None = None,
    bootstrap: dict[Pattern, int] | None = None,
    window_s: float = 1.0,
    stride: int = 1,
    standalone: bool = False,
    ho_scores: dict[HandoverType, float] | None = None,
) -> PrognosRunResult:
    """Tick-at-a-time reference for :func:`run_prognos_over_logs`.

    Drives :meth:`Prognos.step` per step, recomputing the report
    forecast inline; the staged runner must reproduce it bit for bit
    (tests/test_dataplane_equivalence.py pins that).
    """
    plans = [_replay_plan(log, window_s, stride) for log in logs]

    prognos = Prognos(event_configs, config, ho_scores)
    if bootstrap:
        prognos.bootstrap(bootstrap)

    times: list[float] = []
    predictions: list[HandoverType] = []
    truths: list[HandoverType] = []
    lead_times: list[float] = []
    offset = 0.0

    for plan in plans:
        prognos.start_log()
        e_idx = 0
        events = plan.events
        run_start: float | None = None
        run_type: HandoverType | None = None
        for pos, now in enumerate(plan.step_times):
            tick_index = pos * stride
            while e_idx < len(events) and events[e_idx][0] <= tick_index:
                _, kind, payload, event_time = events[e_idx]
                if kind == 0:
                    prognos.observe_report(payload, event_time)
                else:
                    if run_type is payload and run_start is not None:
                        lead_times.append(event_time - run_start)
                    run_start = None
                    run_type = None
                    prognos.observe_command(payload, event_time)
                e_idx += 1
            rsrp, serving, neighbours, scoped = plan.step_inputs[pos]
            prediction = prognos.step(
                now,
                rsrp,
                serving,
                neighbours,
                standalone=standalone,
                scoped_neighbours=scoped,
            )
            if prediction.predicts_handover:
                if run_type is not prediction.ho_type:
                    run_type = prediction.ho_type
                    run_start = now
            else:
                run_type = None
                run_start = None
            times.append(now + offset)
            predictions.append(prediction.ho_type)
        while e_idx < len(events):
            _, kind, payload, event_time = events[e_idx]
            if kind == 0:
                prognos.observe_report(payload, event_time)
            else:
                if run_type is payload and run_start is not None:
                    lead_times.append(event_time - run_start)
                run_start = None
                run_type = None
                prognos.observe_command(payload, event_time)
            e_idx += 1
        truths.extend(plan.step_labels)
        offset += plan.duration_s + 1.0
    return PrognosRunResult(
        times_s=np.array(times),
        predictions=predictions,
        truths=truths,
        events=handover_events(logs),
        lead_times_s=lead_times,
        learner_stats=prognos.stats(),
    )


@dataclass(frozen=True)
class Table3Row:
    """One (dataset, method) row of Table 3."""

    dataset: str
    method: str
    f1: float
    precision: float
    recall: float
    accuracy: float


def evaluate_gbc(
    logs: list[DriveLog],
    *,
    train_fraction: float = 0.6,
    stride: int = 5,
    model_cache: ModelCache | None = None,
    dataset_cache: DatasetCache | None = None,
) -> ClassificationReport:
    """Offline-trained GBC baseline (Mei et al.), 60/40 split.

    The feature matrix resolves through the derived-dataset cache and
    the fitted booster through the trained-model cache — repeated bench
    runs over an unchanged corpus skip both extraction and retraining.
    """
    dataset = build_cached(
        "radio",
        lambda: build_radio_feature_dataset(logs, stride=stride),
        logs,
        {"stride": stride},
        cache=dataset_cache,
    )
    train, test = train_test_split_by_time(dataset, train_fraction)
    # Handovers are ~0.4% of ticks; without upsampling the booster
    # collapses to the majority class (exactly the "blind ML" failure
    # mode the paper highlights — we give the baseline its best shot).
    x_train, y_train = upsample_positives(train.x, train.labels)
    model = fit_cached(
        "gbc",
        lambda: GradientBoostingClassifier(n_estimators=30, max_depth=3),
        x_train,
        y_train,
        {"n_estimators": 30, "max_depth": 3},
        cache=model_cache,
    )
    predictions = model.predict(test.x)
    events = [(t, c) for t, c in handover_events(logs) if t >= test.times_s[0]]
    return event_level_report(
        test.times_s,
        predictions,
        test.labels,
        events,
        negative_class=HandoverType.NONE,
    )


def evaluate_lstm(
    logs: list[DriveLog],
    *,
    train_fraction: float = 0.6,
    stride: int = 10,
    epochs: int = 4,
    max_train_sequences: int = 4000,
    model_cache: ModelCache | None = None,
    dataset_cache: DatasetCache | None = None,
) -> ClassificationReport:
    """Offline-trained stacked-LSTM baseline (Ozturk et al.)."""
    dataset = build_cached(
        "location-seq",
        lambda: build_location_sequence_dataset(logs, stride=stride),
        logs,
        {"stride": stride},
        cache=dataset_cache,
    )
    train, test = train_test_split_by_time(dataset, train_fraction)
    x_train, y_train = train.x, train.labels
    if x_train.shape[0] > max_train_sequences:
        keep = np.linspace(0, x_train.shape[0] - 1, max_train_sequences).astype(int)
        x_train = x_train[keep]
        y_train = [y_train[i] for i in keep]
    model = fit_cached(
        "lstm",
        lambda: StackedLstmClassifier(hidden_dim=24, epochs=epochs),
        x_train,
        y_train,
        {"hidden_dim": 24, "epochs": epochs},
        cache=model_cache,
    )
    predictions = model.predict(test.x)
    events = [(t, c) for t, c in handover_events(logs) if t >= test.times_s[0]]
    return event_level_report(
        test.times_s,
        predictions,
        test.labels,
        events,
        negative_class=HandoverType.NONE,
    )


def evaluate_prognos(
    logs: list[DriveLog],
    carrier: CarrierProfile,
    band_classes: tuple[BandClass, ...],
    *,
    train_fraction: float = 0.6,
    stride: int = 2,
    config: PrognosConfig | None = None,
) -> tuple[ClassificationReport, PrognosRunResult]:
    """Prognos over the same corpus; metrics on the last 40% only.

    Prognos needs no offline training, but for comparability the paper
    scores every method on the same held-out 40%.
    """
    configs = configs_for_log(carrier, band_classes)
    result = run_prognos_over_logs(logs, configs, config=config, stride=stride)
    total = float(result.times_s[-1] - result.times_s[0])
    cutoff = float(result.times_s[0]) + train_fraction * total
    return result.report(test_after_s=cutoff), result


def _table3_cell(spec: tuple) -> Table3Row:
    """One (dataset, method) cell — module-level so pools can pickle it."""
    name, method, logs, carrier, bands = spec
    if method == "GBC":
        report = evaluate_gbc(logs)
    elif method == "Stacked LSTM":
        report = evaluate_lstm(logs)
    elif method == "Prognos":
        report, _ = evaluate_prognos(logs, carrier, bands)
    else:
        raise ValueError(f"unknown method {method!r}")
    return Table3Row(
        name, method, report.f1, report.precision, report.recall, report.accuracy
    )


def _table3_cell_indexed(job: tuple[int, int]) -> Table3Row:
    # Fork-inherited fan-out worker: resolve the cell spec by index so
    # the dataset corpora are never pickled per cell.
    token, index = job
    return _table3_cell(fanout.payload(token)[index])


def table3(
    datasets: dict[str, list[DriveLog]],
    carrier: CarrierProfile,
    band_classes_by_dataset: dict[str, tuple[BandClass, ...]],
    *,
    workers: int | None = None,
) -> list[Table3Row]:
    """Assemble Table 3: three methods over each dataset.

    The (dataset, method) cells are independent, so ``workers`` > 1
    fans them out over a supervised process pool (``run_drives``
    style; results are identical for any worker count, and a crashed
    or hung cell is retried rather than losing the table). ``None``
    reads ``REPRO_BENCH_WORKERS`` like the drive runner does.
    """
    if workers is None:
        workers = default_workers()
    specs = [
        (name, method, logs, carrier, band_classes_by_dataset[name])
        for name, logs in datasets.items()
        for method in ("GBC", "Stacked LSTM", "Prognos")
    ]
    if workers <= 1 or len(specs) == 1:
        return [_table3_cell(spec) for spec in specs]
    return fanout.fanout_map(
        _table3_cell_indexed,
        specs,
        len(specs),
        workers,
        fallback_fn=_table3_cell,
        fallback_jobs=specs,
    )
