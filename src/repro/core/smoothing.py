"""Triangular-kernel signal smoothing (§7.2, after Long & Sikdar).

Raw 20 Hz RRS carries small-scale fading and measurement noise that
would wreck a linear extrapolation. Prognos smooths each cell's series
with a trailing triangular kernel — weights rise linearly towards the
newest sample, so the smoother tracks trends with little lag while
averaging fading away.
"""

from __future__ import annotations

import numpy as np


class TriangularKernelSmoother:
    """Trailing triangular-kernel smoother over a fixed window."""

    def __init__(self, window: int = 10):
        if window < 1:
            raise ValueError("window must be at least 1")
        self.window = window
        # Weights for the newest `window` samples, oldest first: 1..window.
        self._weights = np.arange(1, window + 1, dtype=float)
        # Per-size (weight tail, norm) pairs, size 1..window. The norm is
        # the same float ``smooth_series`` recomputes per position, so
        # :meth:`smooth_series_fast` stays bitwise-identical.
        self._tails = [
            (self._weights[-size:], float(self._weights[-size:].sum()))
            for size in range(1, window + 1)
        ]

    def smooth_last(self, values: np.ndarray) -> float:
        """Smoothed value at the end of ``values`` (uses the trailing window)."""
        values = np.asarray(values, dtype=float)
        if values.size == 0:
            raise ValueError("cannot smooth an empty series")
        tail = values[-self.window :]
        weights = self._weights[-tail.size :]
        return float(np.dot(tail, weights) / weights.sum())

    def smooth_series(self, values: np.ndarray) -> np.ndarray:
        """Smoothed series (same length; early samples use short windows)."""
        values = np.asarray(values, dtype=float)
        if values.size == 0:
            raise ValueError("cannot smooth an empty series")
        out = np.empty_like(values)
        for i in range(values.size):
            start = max(0, i + 1 - self.window)
            tail = values[start : i + 1]
            weights = self._weights[-tail.size :]
            out[i] = np.dot(tail, weights) / weights.sum()
        return out

    def smooth_series_fast(self, values: np.ndarray) -> np.ndarray:
        """Bitwise-identical :meth:`smooth_series` on precomputed tails.

        Keeps the per-position ``np.dot`` kernel (a batched matmul sums
        in a different order and drifts by ulps) but hoists the weight
        slicing and norm out of the loop.
        """
        values = np.asarray(values, dtype=float)
        if values.size == 0:
            raise ValueError("cannot smooth an empty series")
        out = np.empty_like(values)
        window = self.window
        tails = self._tails
        for i in range(values.size):
            size = i + 1 if i < window else window
            weights, norm = tails[size - 1]
            out[i] = np.dot(values[i + 1 - size : i + 1], weights) / norm
        return out
