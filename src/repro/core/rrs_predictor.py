"""Per-cell RRS history and prediction (§7.2's "RRS Predictor").

For every cell the UE hears, keep the last history-window of RSRP
samples, smooth them with the triangular kernel, fit a linear
regression over time, and extrapolate the next prediction window. This
is deliberately light-weight — the paper picks linear regression so the
system can run on energy-constrained UEs in real time.

The fit uses closed-form rolling sums (O(1) per prediction after O(w)
updates), so streaming over hours of 20 Hz logs stays cheap.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.core.smoothing import TriangularKernelSmoother

#: Shared (horizon_s, steps) -> linspace grid cache: the future-time
#: grid is a pure function of its arguments, and the streaming loop
#: asks for the same one thousands of times.
_FUTURE_GRIDS: dict[tuple[float, int], np.ndarray] = {}


def _future_grid(horizon_s: float, steps: int) -> np.ndarray:
    key = (horizon_s, steps)
    grid = _FUTURE_GRIDS.get(key)
    if grid is None:
        grid = np.linspace(horizon_s / steps, horizon_s, steps)
        grid.setflags(write=False)
        _FUTURE_GRIDS[key] = grid
    return grid


@dataclass
class CellHistory:
    """Rolling RSRP history for one cell."""

    window: int
    times_s: deque = field(default_factory=deque)
    values_dbm: deque = field(default_factory=deque)

    def push(self, time_s: float, rsrp_dbm: float) -> None:
        self.times_s.append(time_s)
        self.values_dbm.append(rsrp_dbm)
        while len(self.times_s) > self.window:
            self.times_s.popleft()
            self.values_dbm.popleft()

    @property
    def full(self) -> bool:
        return len(self.times_s) >= self.window

    @property
    def last_time_s(self) -> float:
        return self.times_s[-1] if self.times_s else float("-inf")


class RRSPredictor:
    """Predicts near-future RSRP per cell from smoothed history."""

    def __init__(
        self,
        history_window_ticks: int = 20,
        smoother_window: int = 8,
        stale_after_s: float = 1.5,
        slope_shrinkage: float = 0.75,
    ):
        if history_window_ticks < 4:
            raise ValueError("history window too short for a regression")
        if not 0.0 < slope_shrinkage <= 1.0:
            raise ValueError("slope shrinkage must lie in (0, 1]")
        self._window = history_window_ticks
        self._smoother = TriangularKernelSmoother(smoother_window)
        self._stale_after_s = stale_after_s
        self._slope_shrinkage = slope_shrinkage
        self._cells: dict[object, CellHistory] = {}

    def observe(self, time_s: float, rsrp_by_cell: dict[object, float]) -> None:
        """Fold one tick of per-cell RSRP into the histories."""
        for cell, rsrp in rsrp_by_cell.items():
            history = self._cells.get(cell)
            if history is None:
                history = CellHistory(self._window)
                self._cells[cell] = history
            history.push(time_s, rsrp)
        # Forget cells we have not heard recently.
        stale = [
            cell
            for cell, history in self._cells.items()
            if time_s - history.last_time_s > self._stale_after_s
        ]
        for cell in stale:
            del self._cells[cell]

    def known_cells(self) -> list[object]:
        return list(self._cells)

    def predict(
        self, cell: object, horizon_s: float, steps: int = 4
    ) -> np.ndarray | None:
        """Predicted smoothed RSRP at ``steps`` evenly spaced times over
        the next ``horizon_s`` seconds; None if history is insufficient.
        """
        history = self._cells.get(cell)
        if history is None or len(history.values_dbm) < 4:
            return None
        times = np.array(history.times_s, dtype=float)
        values = self._smoother.smooth_series(np.array(history.values_dbm, dtype=float))
        t0 = times[-1]
        t_rel = times - t0
        # Closed-form OLS on (t_rel, values).
        n = t_rel.size
        sum_t = t_rel.sum()
        sum_tt = float(np.dot(t_rel, t_rel))
        sum_v = values.sum()
        sum_tv = float(np.dot(t_rel, values))
        denom = n * sum_tt - sum_t * sum_t
        if abs(denom) < 1e-12:
            slope = 0.0
            intercept = float(values.mean())
        else:
            slope = (n * sum_tv - sum_t * sum_v) / denom
            intercept = (sum_v - slope * sum_t) / n
        # Shrink the extrapolation slope: the OLS slope over a short
        # noisy window overshoots, and a 1-second extrapolation amplifies
        # that into false trigger forecasts (James-Stein-style damping).
        slope *= self._slope_shrinkage
        future = np.linspace(horizon_s / steps, horizon_s, steps)
        return intercept + slope * future

    def reset(self) -> None:
        """Drop all per-cell history (start of a new, unrelated log).

        The streaming evaluator replays logs back to back with
        log-local clocks; without an explicit reset the first ticks of
        a log would extrapolate from the previous log's cells (the
        stale-eviction clock restarts too, so it never fires).
        """
        self._cells.clear()

    def predict_many(
        self, cells: list[object], horizon_s: float, steps: int = 4
    ) -> dict[object, np.ndarray | None]:
        """Batched :meth:`predict` over ``cells`` (same floats per cell).

        Uses the smoother's precomputed-tail path and a shared
        future-time grid; every per-cell fit keeps the exact op order
        of :meth:`predict`, so results are bitwise-identical.
        """
        future = _future_grid(horizon_s, steps)
        out: dict[object, np.ndarray | None] = {}
        smooth = self._smoother.smooth_series_fast
        shrink = self._slope_shrinkage
        for cell in cells:
            history = self._cells.get(cell)
            if history is None or len(history.values_dbm) < 4:
                out[cell] = None
                continue
            times = np.array(history.times_s, dtype=float)
            values = smooth(np.array(history.values_dbm, dtype=float))
            t_rel = times - times[-1]
            n = t_rel.size
            sum_t = t_rel.sum()
            sum_tt = float(np.dot(t_rel, t_rel))
            sum_v = values.sum()
            sum_tv = float(np.dot(t_rel, values))
            denom = n * sum_tt - sum_t * sum_t
            if abs(denom) < 1e-12:
                slope = 0.0
                intercept = float(values.mean())
            else:
                slope = (n * sum_tv - sum_t * sum_v) / denom
                intercept = (sum_v - slope * sum_t) / n
            slope *= shrink
            out[cell] = intercept + slope * future
        return out
