"""Handover prediction from patterns + predicted reports (§7.2).

The handover predictor concatenates the current phase's actual MR
labels with the report predictor's forecast labels, then searches the
learned patterns for the best suffix match. Matching is filtered by
*sanity checks* derived from the radio context — the paper's example:
an SCGM prediction is impossible while the device has no 5G leg. The
winning pattern's type is emitted together with its ``ho_score``.

Similarity of a candidate pattern is a function of its support, length
and freshness (§7.2 verbatim).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.decision_learner import DecisionLearner
from repro.core.ho_score import ho_score_for
from repro.core.patterns import Pattern, dedup_labels
from repro.rrc.taxonomy import HandoverType


@dataclass(frozen=True, slots=True)
class RadioContext:
    """What the UE currently is, for sanity-checking predictions."""

    standalone: bool
    nr_attached: bool
    lte_attached: bool

    def allows(self, ho_type: HandoverType) -> bool:
        if self.standalone:
            return ho_type is HandoverType.MCGH
        if ho_type is HandoverType.MCGH:
            return False
        if ho_type in (HandoverType.SCGM, HandoverType.SCGR, HandoverType.SCGC):
            return self.nr_attached
        if ho_type is HandoverType.SCGA:
            return self.lte_attached and not self.nr_attached
        if ho_type is HandoverType.MNBH:
            return self.lte_attached and self.nr_attached
        if ho_type is HandoverType.LTEH:
            return self.lte_attached
        return False


@dataclass(frozen=True, slots=True)
class HandoverPrediction:
    """Prognos's output for one prediction window."""

    ho_type: HandoverType
    ho_score: float
    similarity: float
    matched_pattern: Pattern | None
    lead_time_s: float | None

    @property
    def predicts_handover(self) -> bool:
        return self.ho_type is not HandoverType.NONE


NO_HANDOVER = HandoverPrediction(
    ho_type=HandoverType.NONE,
    ho_score=1.0,
    similarity=0.0,
    matched_pattern=None,
    lead_time_s=None,
)


class HandoverPredictor:
    """Pattern matcher with similarity scoring and sanity checks."""

    def __init__(
        self,
        learner: DecisionLearner,
        *,
        support_weight: float = 1.0,
        length_weight: float = 0.5,
        freshness_weight: float = 1.0,
        freshness_horizon_phases: int = 120,
        min_similarity: float = 0.8,
        min_support: int = 1,
        ho_scores: dict[HandoverType, float] | None = None,
    ):
        self._learner = learner
        self._w_support = support_weight
        self._w_length = length_weight
        self._w_fresh = freshness_weight
        self._horizon = freshness_horizon_phases
        self._min_similarity = min_similarity
        self._min_support = min_support
        self._scores = ho_scores

    def set_ho_scores(self, scores: dict[HandoverType, float]) -> None:
        self._scores = dict(scores)

    #: An actual MR counts as "imminent" evidence this long after it
    #: arrives — roughly the network's preparation delay (T1).
    IMMINENT_ACTUAL_S = 0.6

    def predict(
        self,
        observed_labels: list[tuple[str, float]],
        predicted_labels: list[tuple[str, float]],
        context: RadioContext,
    ) -> HandoverPrediction:
        """Predict the handover for the next window.

        The HO command follows the phase-completing measurement report
        within tens of milliseconds (the preparation stage), so a
        prediction only fires when the label *completing* a learned
        pattern is imminent: it is forecast to fire inside the
        prediction window, or it actually arrived moments ago. Older
        phase labels contribute prefix context only — this is precisely
        why the report predictor exists (§7.2: a triggered MR leaves a
        ~70 ms median reaction window).

        Args:
            observed_labels: (label, age_s) of the current phase's actual
                reports, oldest first.
            predicted_labels: (label, fire_in_s) pairs from the report
                predictor, soonest first.
            context: current radio context for sanity checks.
        """
        actual = [label for label, _ in observed_labels]
        predicted = [label for label, _ in predicted_labels]
        sequence = dedup_labels(actual + predicted)
        if not sequence:
            return NO_HANDOVER
        imminent = {label for label, _ in predicted_labels}
        imminent.update(
            label
            for label, age_s in observed_labels
            if age_s <= self.IMMINENT_ACTUAL_S
        )
        if not imminent:
            return NO_HANDOVER
        first_predicted_at = predicted_labels[0][1] if predicted_labels else None

        best: tuple[float, Pattern] | None = None
        current_phase = self._learner.phase_count
        for pattern, stats in self._learner.live_patterns().items():
            if stats.support < self._min_support:
                continue
            if not context.allows(pattern.ho_type):
                continue
            if pattern.labels[-1] not in imminent:
                continue
            if not pattern.matches_suffix(sequence):
                continue
            similarity = (
                self._w_support * math.log1p(stats.support)
                + self._w_length * len(pattern.labels)
                + self._w_fresh * stats.freshness(current_phase, self._horizon)
            )
            if best is None or similarity > best[0]:
                best = (similarity, pattern)
        if best is None or best[0] < self._min_similarity:
            return NO_HANDOVER
        similarity, pattern = best
        return HandoverPrediction(
            ho_type=pattern.ho_type,
            ho_score=ho_score_for(pattern.ho_type, self._scores),
            similarity=similarity,
            matched_pattern=pattern,
            lead_time_s=first_predicted_at,
        )
