"""The Prognos facade: streaming prediction over the RRC/PHY feed.

Wires the three components together exactly as the paper's Fig. 17:
RRS values flow into the report predictor; actual measurement reports
and handover commands flow into the decision learner; each tick the
handover predictor matches (observed + predicted) reports against the
learned patterns and emits a typed prediction with its ``ho_score``.

Ablation flags (``use_report_predictor``, ``use_sanity_checks``,
``use_eviction``) let the benches quantify each design choice.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.decision_learner import DecisionLearner, LearnerStats
from repro.core.patterns import Pattern
from repro.core.predictor import (
    HandoverPrediction,
    HandoverPredictor,
    NO_HANDOVER,
    RadioContext,
)
from repro.core.report_predictor import ReportPredictor
from repro.core.rrs_predictor import RRSPredictor
from repro.rrc.events import EventConfig, MeasurementObject
from repro.rrc.taxonomy import HandoverType


@dataclass(frozen=True)
class PrognosConfig:
    """Tunables of one Prognos instance."""

    prediction_window_s: float = 1.0
    history_window_ticks: int = 20
    smoother_window: int = 16
    freshness_horizon_phases: int = 120
    max_patterns: int = 400
    min_similarity: float = 0.8
    min_support: int = 1
    #: Ablation switches (all on = the paper's system).
    use_report_predictor: bool = True
    use_sanity_checks: bool = True
    use_eviction: bool = True


class Prognos:
    """Streaming 4G/5G handover prediction (§7.2)."""

    def __init__(
        self,
        event_configs: list[EventConfig],
        config: PrognosConfig | None = None,
        ho_scores: dict[HandoverType, float] | None = None,
    ):
        self.config = config or PrognosConfig()
        horizon = (
            self.config.freshness_horizon_phases
            if self.config.use_eviction
            else 10**9  # effectively never evict
        )
        self.learner = DecisionLearner(
            freshness_horizon_phases=horizon,
            max_patterns=self.config.max_patterns if self.config.use_eviction else 10**6,
        )
        rrs = RRSPredictor(
            history_window_ticks=self.config.history_window_ticks,
            smoother_window=self.config.smoother_window,
        )
        self.report_predictor = ReportPredictor(
            event_configs,
            rrs,
            prediction_window_s=self.config.prediction_window_s,
        )
        self.handover_predictor = HandoverPredictor(
            self.learner,
            freshness_horizon_phases=self.config.freshness_horizon_phases,
            min_similarity=self.config.min_similarity,
            min_support=self.config.min_support,
            ho_scores=ho_scores,
        )
        self._phase_reports = []

    # ------------------------------------------------------------------
    # Streaming inputs.
    # ------------------------------------------------------------------

    _phase_reports: list[tuple[str, float]]

    def observe_report(self, label: str, time_s: float = 0.0) -> None:
        """An actual measurement report arrived on the RRC layer."""
        self.learner.observe_report(label)
        self._phase_reports.append((label, time_s))

    def observe_command(self, ho_type: HandoverType, time_s: float) -> None:
        """An actual handover command arrived — close the phase."""
        self.learner.observe_handover(ho_type, time_s)
        self._phase_reports = []

    def bootstrap(self, patterns: dict[Pattern, int]) -> None:
        """Warm-start the learner with offline-mined frequent patterns."""
        self.learner.bootstrap(patterns)

    def start_log(self) -> None:
        """Reset the radio-layer state at a log boundary.

        The evaluator streams unrelated drive logs back to back with
        log-local clocks, so without this the first ticks of a new log
        would extrapolate RRS from the previous log's cells (the
        stale-eviction clock restarts with the log, so it never fires
        across the seam). The learner deliberately persists — pattern
        knowledge transfers across drives; radio history does not.
        """
        self.report_predictor.rrs.reset()
        self._phase_reports = []

    def set_ho_scores(self, scores: dict[HandoverType, float]) -> None:
        self.handover_predictor.set_ho_scores(scores)

    # ------------------------------------------------------------------
    # Per-tick prediction.
    # ------------------------------------------------------------------

    def step(
        self,
        time_s: float,
        rsrp_by_cell: dict[object, float],
        serving: dict[MeasurementObject, object | None],
        neighbours: dict[MeasurementObject, list[object]],
        *,
        standalone: bool = False,
        scoped_neighbours: dict[MeasurementObject, list[object]] | None = None,
    ) -> HandoverPrediction:
        """Feed one tick of RRS and predict the next window's handover.

        Args:
            time_s: tick timestamp.
            rsrp_by_cell: raw RSRP of every audible cell this tick.
            serving: serving cell key per measurement object.
            neighbours: neighbour cell keys per measurement object.
            standalone: SA attachment flag (for sanity checks).
            scoped_neighbours: per object, the neighbours configured in
                intra-node measurement objects (A3 scope).
        """
        self.report_predictor.observe(time_s, rsrp_by_cell)
        predicted: list[tuple[str, float]] = []
        if self.config.use_report_predictor:
            predicted = [
                (report.label, report.fire_in_s)
                for report in self.report_predictor.predict_reports(
                    serving, neighbours, scoped_neighbours
                )
            ]
        nr_serving = serving.get(MeasurementObject.NR)
        lte_serving = serving.get(MeasurementObject.LTE)
        if self.config.use_sanity_checks:
            context = RadioContext(
                standalone=standalone,
                nr_attached=nr_serving is not None,
                lte_attached=lte_serving is not None,
            )
        else:
            context = _PERMISSIVE_CONTEXT
        observed = [(label, time_s - t) for label, t in self._phase_reports]
        return self.handover_predictor.predict(observed, predicted, context)

    def step_with_forecast(
        self,
        time_s: float,
        serving: dict[MeasurementObject, object | None],
        predicted: list[tuple[str, float]],
        *,
        standalone: bool = False,
    ) -> HandoverPrediction:
        """:meth:`step` with the report forecast precomputed.

        The report-predictor stage of :meth:`step` is a pure function of
        the RSRP stream, so the staged evaluator computes it per log in
        a batched (and parallelisable) pass and feeds the result here;
        only the learner-coupled tail runs in stream order. ``predicted``
        must be what :meth:`step` would have computed this tick (the
        empty list when ``use_report_predictor`` is off).
        """
        nr_serving = serving.get(MeasurementObject.NR)
        lte_serving = serving.get(MeasurementObject.LTE)
        if self.config.use_sanity_checks:
            context = RadioContext(
                standalone=standalone,
                nr_attached=nr_serving is not None,
                lte_attached=lte_serving is not None,
            )
        else:
            context = _PERMISSIVE_CONTEXT
        observed = [(label, time_s - t) for label, t in self._phase_reports]
        return self.handover_predictor.predict(observed, predicted, context)

    def stats(self) -> LearnerStats:
        return self.learner.stats()


class _AllowAll(RadioContext):
    def allows(self, ho_type: HandoverType) -> bool:  # noqa: D102
        return True


_PERMISSIVE_CONTEXT = _AllowAll(standalone=False, nr_attached=True, lte_attached=True)
