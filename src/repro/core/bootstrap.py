"""Pattern bootstrapping (§9 / Fig. 15).

Prognos learns online, so its cold-start predictions are weak until a
few phases have been mined. The paper's remedy: seed the learner with
the most frequent pattern per handover type, mined offline from an
existing corpus. This module mines those seeds from drive logs.
"""

from __future__ import annotations

from repro.core.patterns import Pattern, dedup_labels, subsequences_for_phase
from repro.rrc.taxonomy import HandoverType
from repro.simulate.records import DriveLog


def phases_from_log(log: DriveLog) -> list[tuple[tuple[str, ...], HandoverType]]:
    """Split a drive log's RRC stream into (MR labels, HO type) phases.

    A handover command is observed by the UE at the start of execution
    (the RRC reconfiguration message), so phases close at
    ``exec_start_s``.
    """
    phases: list[tuple[tuple[str, ...], HandoverType]] = []
    reports = sorted(log.reports, key=lambda r: r.time_s)
    commands = sorted(log.handovers, key=lambda h: h.exec_start_s)
    cursor = 0
    pending: list[str] = []
    for command in commands:
        while cursor < len(reports) and reports[cursor].time_s <= command.exec_start_s:
            pending.append(reports[cursor].label)
            cursor += 1
        labels = dedup_labels(pending) or ("<none>",)
        phases.append((labels, command.ho_type))
        pending = []
    return phases


def frequent_patterns_from_logs(
    logs: list[DriveLog],
    *,
    per_type: int = 1,
) -> dict[Pattern, int]:
    """The ``per_type`` most frequent patterns per handover type.

    Returns a mapping pattern -> support suitable for
    :meth:`repro.core.prognos.Prognos.bootstrap`.
    """
    if per_type < 1:
        raise ValueError("per_type must be at least 1")
    support: dict[Pattern, int] = {}
    for log in logs:
        for labels, ho_type in phases_from_log(log):
            for sub in subsequences_for_phase(labels):
                pattern = Pattern(labels=sub, ho_type=ho_type)
                support[pattern] = support.get(pattern, 0) + 1
    best: dict[Pattern, int] = {}
    by_type: dict[HandoverType, list[tuple[Pattern, int]]] = {}
    for pattern, count in support.items():
        by_type.setdefault(pattern.ho_type, []).append((pattern, count))
    for candidates in by_type.values():
        candidates.sort(key=lambda item: (-item[1], -len(item[0].labels)))
        for pattern, count in candidates[:per_type]:
            best[pattern] = count
    return best
