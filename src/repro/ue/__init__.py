"""User-equipment models: attachment state and handover energy.

The paper's UE fleet (Samsung S21U/S20U) contributes two things to the
study that we must model: the dual-connectivity attachment state machine
(master LTE leg + secondary NR leg under NSA, single NR leg under SA) and
the battery drain attributable to handovers, measured with a Monsoon
power monitor (§5.3).
"""

from repro.ue.state import UEState, RadioMode
from repro.ue.energy import EnergyModel, HandoverEnergy, BATTERY_VOLTAGE_V

__all__ = [
    "BATTERY_VOLTAGE_V",
    "EnergyModel",
    "HandoverEnergy",
    "RadioMode",
    "UEState",
]
