"""Handover energy model — calibrated to the Monsoon measurements of §5.3.

The paper's key energy findings, which this model is calibrated to
reproduce end-to-end (see ``benchmarks/bench_fig10_energy.py``):

* one hour at 130 km/h on NSA low-band ≈ 553 HOs ≈ 34.7 mAh;
  the same hour on NSA mmWave ≈ 998 HOs ≈ 81.7 mAh; 4G ≈ 3.4 mAh;
* per-HO *power*: NSA draws 1.2-2.3× LTE; a single mmWave HO runs at
  ~54% lower power than a low-band NSA HO (improved RACH) yet mmWave
  still loses per-km because its HOs are so frequent (1.9-2.4× low-band
  energy per km);
* energy is positively correlated with the number of HO-related
  signaling messages.

Energy per handover = power x active-signaling window, scaled by the
handover's signaling tally relative to its expected tally (that last
factor implements the observed signaling<->energy correlation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.radio.bands import BandClass
from repro.rrc.signaling import SignalingTally
from repro.rrc.taxonomy import HandoverType
from repro.ue.state import RadioMode

#: Nominal Li-ion cell voltage used for Joule <-> mAh conversion.
BATTERY_VOLTAGE_V = 3.85


def joules_to_mah(joules: float) -> float:
    """Convert energy in joules to battery charge in mAh."""
    return joules / BATTERY_VOLTAGE_V / 3.6


@dataclass(frozen=True, slots=True)
class _EnergyClass:
    """Calibrated (power, window, expected signaling) for one HO class."""

    power_w: float
    window_s: float
    expected_messages: int


# Calibration (see module docstring for the targets):
#   LTE:        0.62 W x 0.35 s = 0.217 J = 0.0157 mAh -> 217 HOs = 3.4 mAh
#   NSA sub-6:  1.40 W x 0.62 s = 0.868 J = 0.0626 mAh -> 553 HOs = 34.6 mAh
#   NSA mmWave: 0.64 W x 1.78 s = 1.139 J = 0.0822 mAh -> 998 HOs = 82.0 mAh
#   SA:         0.70 W x 0.50 s = 0.350 J (shorter procedures, single RAT)
_CLASSES: dict[tuple[RadioMode, BandClass | None], _EnergyClass] = {
    (RadioMode.LTE, None): _EnergyClass(0.62, 0.35, 31),
    (RadioMode.NSA, BandClass.LOW): _EnergyClass(1.40, 0.62, 12),
    (RadioMode.NSA, BandClass.MID): _EnergyClass(1.40, 0.62, 19),
    (RadioMode.NSA, BandClass.MMWAVE): _EnergyClass(0.64, 1.78, 70),
    (RadioMode.SA, BandClass.LOW): _EnergyClass(0.70, 0.50, 12),
    (RadioMode.SA, BandClass.MID): _EnergyClass(0.70, 0.50, 14),
}

#: Weight of the signaling-count correction (0 = ignore signaling).
_SIGNALING_WEIGHT = 0.3


@dataclass(frozen=True, slots=True)
class HandoverEnergy:
    """Energy attribution of one handover."""

    ho_type: HandoverType
    power_w: float
    window_s: float
    energy_j: float

    @property
    def energy_mah(self) -> float:
        return joules_to_mah(self.energy_j)


class EnergyModel:
    """Computes per-handover energy from mode, band, and signaling."""

    def __init__(self, rng: np.random.Generator, jitter: float = 0.08):
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter fraction must lie in [0, 1)")
        self._rng = rng
        self._jitter = jitter

    def for_handover(
        self,
        ho_type: HandoverType,
        mode: RadioMode,
        band_class: BandClass | None,
        signaling: SignalingTally | None = None,
    ) -> HandoverEnergy:
        """Energy drawn by one handover.

        Args:
            ho_type: procedure executed.
            mode: radio mode of the UE *during* the handover.
            band_class: band class of the NR leg involved (None for a
                pure-LTE handover).
            signaling: the handover's message tally; when given, energy
                scales with message count around the class mean.
        """
        if ho_type is HandoverType.NONE:
            raise ValueError("no energy for a non-handover")
        # An SCG procedure exercises the 5G radio even when the UE's mode
        # *before* the procedure was LTE (SCG Addition powers the NR
        # chain up) — it always bills at the NSA rate.
        if ho_type.is_scg_procedure and mode is RadioMode.LTE:
            mode = RadioMode.NSA
        key_band = None if mode is RadioMode.LTE else (band_class or BandClass.LOW)
        try:
            cls = _CLASSES[(mode, key_band)]
        except KeyError:
            raise ValueError(f"no energy class for mode={mode}, band={key_band}") from None

        scale = 1.0
        if signaling is not None and cls.expected_messages > 0:
            ratio = signaling.total / cls.expected_messages
            scale = (1.0 - _SIGNALING_WEIGHT) + _SIGNALING_WEIGHT * ratio
            # The correlation is real but bounded — a chatty handover
            # does not cost unboundedly more.
            scale = min(max(scale, 0.7), 1.4)
        noise = 1.0 + float(self._rng.uniform(-self._jitter, self._jitter))
        energy_j = cls.power_w * cls.window_s * scale * noise
        return HandoverEnergy(
            ho_type=ho_type,
            power_w=cls.power_w,
            window_s=cls.window_s,
            energy_j=energy_j,
        )

    @staticmethod
    def per_handover_mean_j(mode: RadioMode, band_class: BandClass | None) -> float:
        """Calibrated mean energy per handover (no jitter), in joules."""
        key_band = None if mode is RadioMode.LTE else (band_class or BandClass.LOW)
        cls = _CLASSES[(mode, key_band)]
        return cls.power_w * cls.window_s
