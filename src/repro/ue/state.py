"""UE attachment state: which cells carry the master and secondary legs."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.radio.bands import BandClass, RadioAccessTechnology
from repro.ran.cells import Cell


class RadioMode(enum.Enum):
    """Logged radio technology the UE reports (what 5G Tracker shows)."""

    LTE = "LTE"
    NSA = "5G-NSA"
    SA = "5G-SA"


@dataclass(slots=True)
class UEState:
    """Mutable attachment state of the measurement UE.

    Under NSA the master (MCG) leg is an LTE cell and the secondary (SCG)
    leg, when present, an NR cell. Under SA there is a single NR master
    leg and ``lte_serving`` stays None.
    """

    standalone: bool = False
    lte_serving: Cell | None = None
    nr_serving: Cell | None = None

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        if self.lte_serving is not None and self.lte_serving.rat is not RadioAccessTechnology.LTE:
            raise ValueError("LTE leg must be an LTE cell")
        if self.nr_serving is not None and self.nr_serving.rat is not RadioAccessTechnology.NR:
            raise ValueError("NR leg must be an NR cell")
        if self.standalone and self.lte_serving is not None:
            raise ValueError("SA attachment has no LTE leg")

    @property
    def mode(self) -> RadioMode:
        if self.standalone:
            return RadioMode.SA
        if self.nr_serving is not None:
            return RadioMode.NSA
        return RadioMode.LTE

    @property
    def nsa_attached(self) -> bool:
        return not self.standalone and self.lte_serving is not None and self.nr_serving is not None

    @property
    def nr_band_class(self) -> BandClass | None:
        return self.nr_serving.band_class if self.nr_serving is not None else None

    @property
    def serving_cells(self) -> list[Cell]:
        return [c for c in (self.lte_serving, self.nr_serving) if c is not None]

    def colocated_legs(self) -> bool | None:
        """True when both legs hang on the same tower (None if < 2 legs).

        The paper's §6.3 heuristic — same 4G and 5G PCI — is the
        *observable* proxy for this ground truth.
        """
        if self.lte_serving is None or self.nr_serving is None:
            return None
        return self.lte_serving.tower_id == self.nr_serving.tower_id

    def same_pci_legs(self) -> bool | None:
        """The paper's observable co-location heuristic: matching PCIs."""
        if self.lte_serving is None or self.nr_serving is None:
            return None
        return self.lte_serving.pci == self.nr_serving.pci
