"""Supervised execution: fault-tolerant worker pools and self-healing caches.

The corpus pipelines fan thousands of independent jobs over process
pools (:func:`repro.simulate.runner.run_drives`,
:func:`repro.core.evaluation.run_prognos_over_logs`,
:func:`repro.core.evaluation.table3`,
:func:`repro.apps.abr.player.play_many`) and persist results through
three content-addressed caches. At production scale — the paper's
6,200 km multi-carrier campaign re-drove failed log collections as a
matter of course — individual workers crash, hang, and run out of
disk, and none of that should lose a run.

This package supplies the two halves of that guarantee:

* :mod:`repro.robust.supervisor` — :func:`~supervisor.supervised_map`
  wraps every pool pass with per-job timeouts
  (``REPRO_JOB_TIMEOUT_S``), bounded retries with deterministic
  jittered backoff (``REPRO_JOB_RETRIES``), broken-pool recovery
  (rebuild, re-run only unfinished jobs, degrade to serial in-process
  execution after repeated pool deaths), and incremental result
  publication so completed jobs survive a later fault.
* :mod:`repro.robust.faults` — a deterministic fault-injection
  harness driven by the ``REPRO_FAULTS`` env spec, used by the test
  suite to prove every recovery path end-to-end.

With no faults injected the supervised pools produce bit-identical
results to the unsupervised reference path
(:func:`repro.simulate.fanout.fanout_map_unsupervised`).
"""

from repro.robust import faults
from repro.robust.supervisor import (
    RunStats,
    job_retries,
    job_timeout_s,
    last_run_stats,
    supervised_map,
)

__all__ = [
    "RunStats",
    "faults",
    "job_retries",
    "job_timeout_s",
    "last_run_stats",
    "supervised_map",
]
