"""Supervised process-pool mapping: timeouts, retries, pool recovery.

:func:`supervised_map` is the one engine behind every pool pass in the
repository (:func:`repro.simulate.fanout.fanout_map` delegates here).
It preserves the zero-copy fan-out semantics — fork-inherited payload,
``(token, index)`` jobs, results in input order, bit-identical output —
and adds the supervision a production corpus run needs:

* **Per-job timeouts** (``REPRO_JOB_TIMEOUT_S``, default off). Chunked
  submissions get ``timeout × len(chunk)``; once a pool has misbehaved
  the supervisor resubmits with chunk size 1, so a hung job is isolated
  and timed out individually.
* **Bounded retries** (``REPRO_JOB_RETRIES``, default 2) with
  deterministic jittered backoff between recovery rounds — reruns are
  reproducible, and two supervisors sharing a host don't retry in
  lockstep.
* **Broken-pool recovery.** A crashed worker breaks the whole
  ``ProcessPoolExecutor``; the supervisor rebuilds it and resubmits
  only the jobs without results. A wedged pool (job past its deadline)
  is killed — workers terminated best-effort — and treated the same
  way.
* **Degradation ladder.** chunked pool → chunk-1 pool rebuilds →
  serial in-process execution, entered after
  :data:`MAX_POOL_REBUILDS` pool deaths or per job once its retry
  budget is exhausted. Serial execution cannot be preempted, so it
  runs without a timeout; it also bypasses the worker fault hooks,
  which is what makes it the floor of the ladder.
* **Incremental publication.** ``on_result(index, result)`` fires in
  the parent the moment a job's chunk completes, so a caller caching
  results (``run_drives``) keeps every finished job even if the run
  dies later; each index is published exactly once. This hook is also
  what makes streamed corpus generation resumable:
  :func:`repro.simulate.runner.run_drives_to_store` appends each
  finished drive to the sharded
  :class:`~repro.simulate.corpus.CorpusStore` from here, committing
  shard indexes atomically, so a killed build restarts from the drives
  already on disk.

``REPRO_FORCE_SPAWN=1`` forces the spawn/pickle fallback path (the one
platforms without ``fork`` take), so Linux CI exercises it too.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import signal
import time
import warnings
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.robust import faults
from repro.simulate import fanout

#: Pool deaths (crash or wedge) tolerated before degrading to serial.
MAX_POOL_REBUILDS = 2

#: Base backoff unit between recovery rounds, seconds.
BACKOFF_BASE_S = 0.05


@dataclass
class RunStats:
    """What one :func:`supervised_map` call had to do to finish."""

    jobs: int = 0
    retried_jobs: int = 0
    timeouts: int = 0
    pool_rebuilds: int = 0
    serial_jobs: int = 0
    published: int = 0
    start_method: str = ""


_last_run_stats: RunStats | None = None


def last_run_stats() -> RunStats | None:
    """Stats of the most recent :func:`supervised_map` in this process."""
    return _last_run_stats


def _env_number(name: str, default: float, cast: Callable[[str], float]) -> float:
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    try:
        return cast(raw)
    except ValueError:
        warnings.warn(
            f"{name}={raw!r} is not a number; using the default {default}",
            RuntimeWarning,
            stacklevel=3,
        )
        return default


def job_timeout_s() -> float | None:
    """Per-job timeout from ``REPRO_JOB_TIMEOUT_S`` (<= 0 disables)."""
    value = _env_number("REPRO_JOB_TIMEOUT_S", 0.0, float)
    return value if value > 0 else None


def job_retries() -> int:
    """Retry budget per job from ``REPRO_JOB_RETRIES`` (default 2)."""
    return max(0, int(_env_number("REPRO_JOB_RETRIES", 2, int)))


def backoff_s(round_no: int, salt: object = "") -> float:
    """Deterministic jittered backoff before recovery round ``round_no``."""
    digest = hashlib.sha256(f"{round_no}|{salt}".encode()).digest()
    jitter = int.from_bytes(digest[:8], "big") / 2.0**64
    return BACKOFF_BASE_S * (2 ** min(round_no, 3)) * (0.5 + jitter)


def reap_process(
    pid: int,
    *,
    timeout_s: float = 10.0,
    term: bool = False,
    poll_s: float = 0.02,
) -> int:
    """Reap a direct child with a kill ladder; returns its exit code.

    Optionally SIGTERMs first (``term=True``), then polls ``waitpid``
    for up to ``timeout_s``; a child that has not exited by then is
    SIGKILLed and reaped unconditionally, so a wedged serving daemon or
    shard can never leave an orphan behind a crashed client
    (:func:`repro.serve.loadgen.stop_server` and the shard controller
    both sit on this ladder). An already-reaped pid returns 0.
    """
    try:
        if term:
            os.kill(pid, signal.SIGTERM)
        deadline = time.monotonic() + timeout_s
        while True:
            done, status = os.waitpid(pid, os.WNOHANG)
            if done == pid:
                return os.waitstatus_to_exitcode(status)
            if time.monotonic() >= deadline:
                os.kill(pid, signal.SIGKILL)
                _, status = os.waitpid(pid, 0)
                return os.waitstatus_to_exitcode(status)
            time.sleep(poll_s)
    except (ChildProcessError, ProcessLookupError):
        return 0


def _run_chunk(
    fn: Callable[[Any], Any], items: Sequence[tuple[int, Any]], attempt: int
) -> list[tuple[int, Any]]:
    # Worker-side: runs in the pool processes (fork or spawn). The
    # fault hook lives here — and only here — so injected crashes and
    # hangs never fire in the parent or on the serial path.
    out = []
    for key, arg in items:
        faults.maybe_fail_job(key, attempt)
        out.append((key, fn(arg)))
    return out


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Abandon a wedged/broken pool, terminating its workers."""
    # _processes is internal API, but it is the only handle on a worker
    # that will never drain its queue; guarded so a layout change
    # degrades to leaking the process, not crashing the supervisor.
    try:
        procs = list(getattr(pool, "_processes", {}).values())
    except Exception:
        procs = []
    pool.shutdown(wait=False, cancel_futures=True)
    for proc in procs:
        try:
            proc.terminate()
        except Exception:
            pass


def _pool_round(
    fn: Callable[[Any], Any],
    items: Sequence[tuple[int, Any]],
    workers: int,
    mp_ctx,
    chunk: int,
    timeout: float | None,
    results: dict[int, Any],
    publish: Callable[[int, Any], None],
    attempts: dict[int, int],
    stats: RunStats,
) -> tuple[set[int], bool]:
    """One pool pass over ``items``; returns (unfinished keys, died)."""
    chunks = [list(items[i : i + chunk]) for i in range(0, len(items), chunk)]
    pool = ProcessPoolExecutor(max_workers=workers, mp_context=mp_ctx)
    unfinished: set[int] = set()
    died = False
    try:
        start = time.monotonic()
        futures: dict[Future, tuple[list[tuple[int, Any]], float | None]] = {}
        for part in chunks:
            attempt = max(attempts[key] for key, _ in part)
            deadline = None if timeout is None else start + timeout * len(part)
            futures[pool.submit(_run_chunk, fn, part, attempt)] = (part, deadline)
        not_done: set[Future] = set(futures)
        while not_done:
            wait_s = None
            if timeout is not None:
                nearest = min(futures[f][1] for f in not_done)
                wait_s = max(0.0, nearest - time.monotonic()) + 0.02
            done, not_done = wait(not_done, timeout=wait_s, return_when=FIRST_COMPLETED)
            for future in done:
                part, _ = futures[future]
                try:
                    for key, value in future.result():
                        if key not in results:
                            results[key] = value
                            publish(key, value)
                except BrokenProcessPool:
                    died = True
                    for key, _ in part:
                        if key not in results:
                            attempts[key] += 1
                            unfinished.add(key)
                except Exception:
                    # The job itself raised in the worker; the pool is
                    # fine. Charge an attempt and requeue.
                    for key, _ in part:
                        if key not in results:
                            attempts[key] += 1
                            unfinished.add(key)
            if timeout is not None and not_done:
                now = time.monotonic()
                overdue = [f for f in not_done if now > futures[f][1]]
                if overdue:
                    # A job ran past its deadline: the pool is wedged.
                    # Kill it; overdue jobs are charged an attempt,
                    # other in-flight jobs are innocent victims and
                    # requeue for free.
                    died = True
                    stats.timeouts += len(overdue)
                    for future in not_done:
                        charged = future in overdue
                        for key, _ in futures[future][0]:
                            if key not in results:
                                if charged:
                                    attempts[key] += 1
                                unfinished.add(key)
                    not_done = set()
    finally:
        if died:
            _kill_pool(pool)
        else:
            pool.shutdown(wait=True)
    return unfinished, died


def _supervise(
    fn: Callable[[Any], Any],
    items: list[tuple[int, Any]],
    workers: int,
    mp_ctx,
    on_result: Callable[[int, Any], None] | None,
    timeout: float | None,
    retries: int,
    stats: RunStats,
) -> list[Any]:
    results: dict[int, Any] = {}
    attempts: dict[int, int] = {key: 0 for key, _ in items}

    def publish(key: int, value: Any) -> None:
        stats.published += 1
        if on_result is not None:
            on_result(key, value)

    def run_serial(batch: Sequence[tuple[int, Any]]) -> None:
        for key, arg in batch:
            value = fn(arg)
            results[key] = value
            stats.serial_jobs += 1
            publish(key, value)

    remaining = list(items)
    pool_deaths = 0
    while remaining:
        if workers <= 1 or len(remaining) == 1 or pool_deaths >= MAX_POOL_REBUILDS:
            run_serial(remaining)
            break
        # Jobs that exhausted their retry budget drop out of the pool
        # and run serially in-process — the bottom of the ladder.
        exhausted = [(k, a) for k, a in remaining if attempts[k] > retries]
        if exhausted:
            run_serial(exhausted)
            remaining = [(k, a) for k, a in remaining if attempts[k] <= retries]
            if not remaining:
                break
        chunk = (
            fanout.pool_chunksize(len(remaining), workers) if pool_deaths == 0 else 1
        )
        unfinished, pool_died = _pool_round(
            fn,
            remaining,
            min(workers, len(remaining)),
            mp_ctx,
            chunk,
            timeout,
            results,
            publish,
            attempts,
            stats,
        )
        if pool_died:
            pool_deaths += 1
            stats.pool_rebuilds += 1
        if unfinished:
            stats.retried_jobs += sum(1 for k in unfinished if attempts[k] > 0)
            arg_of = dict(remaining)
            remaining = [(k, arg_of[k]) for k, _ in remaining if k in unfinished]
            time.sleep(backoff_s(pool_deaths, salt=len(remaining)))
        else:
            remaining = []
    return [results[key] for key, _ in items]


def supervised_map(
    indexed_fn: Callable[[tuple[int, int]], Any],
    payload_value: Any,
    count: int,
    workers: int,
    *,
    fallback_fn: Callable[[Any], Any],
    fallback_jobs: Sequence[Any],
    on_result: Callable[[int, Any], None] | None = None,
    timeout_s: float | None | str = "env",
    retries: int | None = None,
) -> list[Any]:
    """Map ``count`` jobs over a supervised process pool.

    The signature extends :func:`repro.simulate.fanout.fanout_map`:
    same zero-copy fork-inherited payload and pickle fallback, same
    input-order results, plus supervision. ``on_result`` receives
    ``(index, result)`` in the parent as each job first completes.
    ``timeout_s``/``retries`` default to the ``REPRO_JOB_TIMEOUT_S`` /
    ``REPRO_JOB_RETRIES`` env knobs.
    """
    global _last_run_stats
    workers = max(1, min(workers, count))
    timeout = job_timeout_s() if timeout_s == "env" else timeout_s
    if retries is None:
        retries = job_retries()
    stats = RunStats(jobs=count)
    _last_run_stats = stats

    force_spawn = os.environ.get("REPRO_FORCE_SPAWN", "") == "1"
    ctx = None if force_spawn else fanout.fork_context()
    if ctx is not None:
        stats.start_method = "fork"
        with fanout.shared_payload(payload_value) as token:
            items = [(i, (token, i)) for i in range(count)]
            return _supervise(
                indexed_fn, items, workers, ctx, on_result, timeout, retries, stats
            )
    # No fork (or REPRO_FORCE_SPAWN=1): ship the jobs themselves over a
    # spawn pool — the path Windows/macOS always take.
    stats.start_method = "spawn"
    try:
        spawn_ctx = multiprocessing.get_context("spawn")
    except ValueError:  # pragma: no cover - every CPython has spawn
        spawn_ctx = None
    items = [(i, job) for i, job in enumerate(fallback_jobs)]
    return _supervise(
        fallback_fn, items, workers, spawn_ctx, on_result, timeout, retries, stats
    )
