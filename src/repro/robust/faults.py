"""Deterministic fault injection driven by the ``REPRO_FAULTS`` env spec.

The supervisor and the cache layer call the ``maybe_*`` hooks below at
their failure points; with ``REPRO_FAULTS`` unset every hook is a
no-op, so production runs pay one env lookup per pool pass. The test
suite (and the CI fault-injection smoke job) sets a spec and proves
the recovery paths end-to-end.

Spec grammar — comma-separated entries, each ``name[:key=value]*``::

    REPRO_FAULTS="worker_crash:p=0.2:seed=7,cache_write_oserror"

Fault names and where they fire:

* ``worker_crash`` — a pool worker calls ``os._exit(3)`` before
  running a job (the parent sees ``BrokenProcessPool``).
* ``worker_hang`` — a pool worker sleeps ``hang_s`` seconds before a
  job (the parent's per-job timeout fires, if set).
* ``cache_write_oserror`` — a cache ``put`` raises ``OSError`` at
  publish time (as a full disk or read-only cache dir would).
* ``cache_truncate`` — a published cache entry is truncated to half
  its bytes, so the next load hits the corrupt-entry branch.

Per-entry parameters (all optional):

* ``p`` — firing probability in ``[0, 1]`` (default 1). The draw is a
  pure function of ``(seed, name, key, attempt)``, so a given job on a
  given attempt either always fires or never does — runs reproduce
  exactly, and a retry re-draws.
* ``seed`` — varies the draw stream (default 0).
* ``key`` — restrict the fault to one job key / cache entry name.
* ``attempts`` — fire only while the job's attempt number is below
  this (e.g. ``attempts=1`` fails the first try, lets the retry pass).
* ``times`` — fire at most this many times per process (counted).
* ``hang_s`` — ``worker_hang`` sleep length (default 60 s).

Unknown names or malformed entries warn once and are ignored — a typo
in a fault spec must not itself take the run down.
"""

from __future__ import annotations

import hashlib
import os
import time
import warnings
from collections import Counter
from dataclasses import dataclass
from pathlib import Path

ENV_VAR = "REPRO_FAULTS"

KNOWN_FAULTS = frozenset(
    {"worker_crash", "worker_hang", "cache_write_oserror", "cache_truncate"}
)

#: Per-process count of fired faults, keyed by fault name (test hook).
fired_counts: Counter[str] = Counter()

#: Per-spec fired tally backing the ``times`` cap.
_spec_fired: Counter["FaultSpec"] = Counter()

_parsed: tuple[str, tuple["FaultSpec", ...]] | None = None


@dataclass(frozen=True)
class FaultSpec:
    """One parsed ``REPRO_FAULTS`` entry."""

    name: str
    p: float = 1.0
    seed: int = 0
    key: str | None = None
    attempts: int | None = None
    times: int | None = None
    hang_s: float = 60.0


def parse_spec(raw: str) -> tuple[FaultSpec, ...]:
    """Parse a ``REPRO_FAULTS`` string; malformed entries warn and drop."""
    specs: list[FaultSpec] = []
    for entry in filter(None, (part.strip() for part in raw.split(","))):
        name, _, tail = entry.partition(":")
        if name not in KNOWN_FAULTS:
            warnings.warn(
                f"{ENV_VAR}: unknown fault {name!r} in {entry!r} ignored "
                f"(known: {', '.join(sorted(KNOWN_FAULTS))})",
                RuntimeWarning,
                stacklevel=2,
            )
            continue
        params: dict[str, object] = {}
        bad = False
        for pair in filter(None, tail.split(":")):
            pkey, sep, value = pair.partition("=")
            try:
                if pkey in ("p", "hang_s"):
                    params[pkey] = float(value)
                elif pkey in ("seed", "attempts", "times"):
                    params[pkey] = int(value)
                elif pkey == "key" and sep:
                    params[pkey] = value
                else:
                    raise ValueError(pkey)
            except ValueError:
                warnings.warn(
                    f"{ENV_VAR}: bad parameter {pair!r} in {entry!r}; "
                    "entry ignored",
                    RuntimeWarning,
                    stacklevel=2,
                )
                bad = True
                break
        if not bad:
            specs.append(FaultSpec(name, **params))  # type: ignore[arg-type]
    return tuple(specs)


def active_faults() -> tuple[FaultSpec, ...]:
    """The specs parsed from ``REPRO_FAULTS`` (re-parsed when it changes)."""
    global _parsed
    raw = os.environ.get(ENV_VAR, "")
    if _parsed is None or _parsed[0] != raw:
        _parsed = (raw, parse_spec(raw) if raw else ())
    return _parsed[1]


def reset() -> None:
    """Clear parse cache and fired tallies (test isolation hook)."""
    global _parsed
    _parsed = None
    fired_counts.clear()
    _spec_fired.clear()


def _draw(spec: FaultSpec, key: object, attempt: int) -> float:
    payload = f"{spec.seed}|{spec.name}|{key}|{attempt}".encode()
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


def _fires(spec: FaultSpec, key: object, attempt: int) -> bool:
    if spec.key is not None and str(key) != spec.key:
        return False
    if spec.attempts is not None and attempt >= spec.attempts:
        return False
    if spec.times is not None and _spec_fired[spec] >= spec.times:
        return False
    if _draw(spec, key, attempt) >= spec.p:
        return False
    _spec_fired[spec] += 1
    fired_counts[spec.name] += 1
    return True


def maybe_fail_job(key: object, attempt: int = 0) -> None:
    """Worker-side hook: crash or hang before running job ``key``.

    Only the supervisor's in-pool chunk runner calls this, so the
    faults never fire in the parent process or on the serial
    degradation path — which is exactly what makes serial execution
    the recovery of last resort.
    """
    for spec in active_faults():
        if spec.name == "worker_crash" and _fires(spec, key, attempt):
            os._exit(3)
        elif spec.name == "worker_hang" and _fires(spec, key, attempt):
            time.sleep(spec.hang_s)


def maybe_raise_cache_write(key: object) -> None:
    """Cache-writer hook: raise ``OSError`` as a full disk would."""
    for spec in active_faults():
        if spec.name == "cache_write_oserror" and _fires(spec, key, 0):
            raise OSError(f"injected cache_write_oserror for {key}")


def maybe_truncate(path: Path) -> None:
    """Post-publish hook: corrupt ``path`` by dropping its second half."""
    for spec in active_faults():
        if spec.name == "cache_truncate" and _fires(spec, path.name, 0):
            data = path.read_bytes()
            path.write_bytes(data[: len(data) // 2])
