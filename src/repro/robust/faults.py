"""Deterministic fault injection driven by the ``REPRO_FAULTS`` env spec.

The supervisor and the cache layer call the ``maybe_*`` hooks below at
their failure points; with ``REPRO_FAULTS`` unset every hook is a
no-op, so production runs pay one env lookup per pool pass. The test
suite (and the CI fault-injection smoke job) sets a spec and proves
the recovery paths end-to-end.

Spec grammar — comma-separated entries, each ``name[:key=value]*``::

    REPRO_FAULTS="worker_crash:p=0.2:seed=7,cache_write_oserror"

Fault names and where they fire:

* ``worker_crash`` — a pool worker calls ``os._exit(3)`` before
  running a job (the parent sees ``BrokenProcessPool``).
* ``worker_hang`` — a pool worker sleeps ``hang_s`` seconds before a
  job (the parent's per-job timeout fires, if set).
* ``cache_write_oserror`` — a cache ``put`` raises ``OSError`` at
  publish time (as a full disk or read-only cache dir would).
* ``cache_truncate`` — a published cache entry is truncated to half
  its bytes, so the next load hits the corrupt-entry branch.

Network family — fired client-side by the serving load generator
(:mod:`repro.serve.loadgen`) against a live Prognos server, keyed by
``session@step`` with the reconnect count as the attempt, so a step
that faulted once re-draws after the resume instead of looping:

* ``conn_reset`` — hard-close the client socket mid-drive (the server
  sees a reset and parks the session for resumption).
* ``frame_truncate`` — send only a prefix of the next frame, then
  hard-close (the server's framer never completes the frame).
* ``byte_corrupt`` — flip the frame's tag byte before sending (the
  server rejects the frame and drops the connection; payload bytes are
  left alone so a resumed stream stays bit-comparable to the oracle).
* ``stall_s`` — go silent for ``hang_s`` seconds mid-drive (long
  stalls trip the server's dead-peer eviction; the client resumes).
* ``reconnect_storm`` — drop and immediately resume several times in a
  row before sending the step.

Per-entry parameters (all optional):

* ``p`` — firing probability in ``[0, 1]`` (default 1). The draw is a
  pure function of ``(seed, name, key, attempt)``, so a given job on a
  given attempt either always fires or never does — runs reproduce
  exactly, and a retry re-draws.
* ``seed`` — varies the draw stream (default 0).
* ``key`` — restrict the fault to one job key / cache entry name.
* ``attempts`` — fire only while the job's attempt number is below
  this (e.g. ``attempts=1`` fails the first try, lets the retry pass).
* ``times`` — fire at most this many times per process (counted).
* ``hang_s`` — ``worker_hang`` / ``stall_s`` sleep length (default
  60 s / 0.5 s).

Unknown names or malformed entries earn one :class:`RuntimeWarning`
per (entry, reason) per process and are skipped, keeping the valid
clauses — a typo in a fault spec must not itself take the run down,
and a daemon that re-reads the spec must not spam the log.
"""

from __future__ import annotations

import hashlib
import os
import time
import warnings
from collections import Counter
from dataclasses import dataclass
from pathlib import Path

ENV_VAR = "REPRO_FAULTS"

#: Client-side network faults fired by the serving load generator.
NETWORK_FAULTS = frozenset(
    {"conn_reset", "frame_truncate", "byte_corrupt", "stall_s", "reconnect_storm"}
)

KNOWN_FAULTS = (
    frozenset(
        {"worker_crash", "worker_hang", "cache_write_oserror", "cache_truncate"}
    )
    | NETWORK_FAULTS
)

#: Per-process count of fired faults, keyed by fault name (test hook).
fired_counts: Counter[str] = Counter()

#: Per-spec fired tally backing the ``times`` cap.
_spec_fired: Counter["FaultSpec"] = Counter()

_parsed: tuple[str, tuple["FaultSpec", ...]] | None = None

#: (entry, reason) pairs already warned about in this process — the
#: ``serve.env`` warn-once pattern, so re-parsing the same broken spec
#: (a daemon re-reads it per session) does not spam the log.
_warned: set[tuple[str, str]] = set()


def _warn_once(entry: str, why: str) -> None:
    key = (entry, why)
    if key in _warned:
        return
    _warned.add(key)
    warnings.warn(
        f"{ENV_VAR}: {why} in {entry!r}; entry ignored",
        RuntimeWarning,
        stacklevel=4,
    )


@dataclass(frozen=True)
class FaultSpec:
    """One parsed ``REPRO_FAULTS`` entry."""

    name: str
    p: float = 1.0
    seed: int = 0
    key: str | None = None
    attempts: int | None = None
    times: int | None = None
    hang_s: float = 60.0


def parse_spec(raw: str) -> tuple[FaultSpec, ...]:
    """Parse a ``REPRO_FAULTS`` string.

    Malformed entries warn once per (entry, reason) and are skipped;
    the valid clauses survive.
    """
    specs: list[FaultSpec] = []
    for entry in filter(None, (part.strip() for part in raw.split(","))):
        name, _, tail = entry.partition(":")
        if name not in KNOWN_FAULTS:
            _warn_once(
                entry,
                f"unknown fault {name!r} "
                f"(known: {', '.join(sorted(KNOWN_FAULTS))})",
            )
            continue
        params: dict[str, object] = {}
        bad = False
        for pair in filter(None, tail.split(":")):
            pkey, sep, value = pair.partition("=")
            try:
                if pkey in ("p", "hang_s"):
                    params[pkey] = float(value)
                elif pkey in ("seed", "attempts", "times"):
                    params[pkey] = int(value)
                elif pkey == "key" and sep:
                    params[pkey] = value
                else:
                    raise ValueError(pkey)
            except ValueError:
                _warn_once(entry, f"bad parameter {pair!r}")
                bad = True
                break
        if bad:
            continue
        p = params.get("p", 1.0)
        if not 0.0 <= p <= 1.0:  # type: ignore[operator]
            _warn_once(entry, f"p={p!r} outside [0, 1]")
            continue
        hang = params.get("hang_s")
        if hang is not None and not hang >= 0.0:  # type: ignore[operator]
            _warn_once(entry, f"hang_s={hang!r} is negative")
            continue
        if name == "stall_s" and hang is None:
            params["hang_s"] = 0.5
        specs.append(FaultSpec(name, **params))  # type: ignore[arg-type]
    return tuple(specs)


def active_faults() -> tuple[FaultSpec, ...]:
    """The specs parsed from ``REPRO_FAULTS`` (re-parsed when it changes)."""
    global _parsed
    raw = os.environ.get(ENV_VAR, "")
    if _parsed is None or _parsed[0] != raw:
        _parsed = (raw, parse_spec(raw) if raw else ())
    return _parsed[1]


def reset() -> None:
    """Clear parse cache, warn dedup, and fired tallies (test hook)."""
    global _parsed
    _parsed = None
    fired_counts.clear()
    _spec_fired.clear()
    _warned.clear()


def _draw(spec: FaultSpec, key: object, attempt: int) -> float:
    payload = f"{spec.seed}|{spec.name}|{key}|{attempt}".encode()
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


def _fires(spec: FaultSpec, key: object, attempt: int) -> bool:
    if spec.key is not None and str(key) != spec.key:
        return False
    if spec.attempts is not None and attempt >= spec.attempts:
        return False
    if spec.times is not None and _spec_fired[spec] >= spec.times:
        return False
    if _draw(spec, key, attempt) >= spec.p:
        return False
    _spec_fired[spec] += 1
    fired_counts[spec.name] += 1
    return True


def maybe_fail_job(key: object, attempt: int = 0) -> None:
    """Worker-side hook: crash or hang before running job ``key``.

    Only the supervisor's in-pool chunk runner calls this, so the
    faults never fire in the parent process or on the serial
    degradation path — which is exactly what makes serial execution
    the recovery of last resort.
    """
    for spec in active_faults():
        if spec.name == "worker_crash" and _fires(spec, key, attempt):
            os._exit(3)
        elif spec.name == "worker_hang" and _fires(spec, key, attempt):
            time.sleep(spec.hang_s)


def maybe_raise_cache_write(key: object) -> None:
    """Cache-writer hook: raise ``OSError`` as a full disk would."""
    for spec in active_faults():
        if spec.name == "cache_write_oserror" and _fires(spec, key, 0):
            raise OSError(f"injected cache_write_oserror for {key}")


def maybe_network_fault(key: object, attempt: int = 0) -> FaultSpec | None:
    """Loadgen-side hook: the first network fault firing for ``key``.

    Returns the fired :class:`FaultSpec` (its ``name`` picks the
    client-side action, ``hang_s`` the stall length) or ``None``. The
    caller passes its reconnect count as ``attempt`` so a step that
    faulted before the disconnect re-draws after the resume.
    """
    for spec in active_faults():
        if spec.name in NETWORK_FAULTS and _fires(spec, key, attempt):
            return spec
    return None


def maybe_truncate(path: Path) -> None:
    """Post-publish hook: corrupt ``path`` by dropping its second half."""
    for spec in active_faults():
        if spec.name == "cache_truncate" and _fires(spec, path.name, 0):
            data = path.read_bytes()
            path.write_bytes(data[: len(data) // 2])
