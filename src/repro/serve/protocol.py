"""Wire protocol for the serving layer: length-prefixed binary frames.

Every frame is a 4-byte big-endian length followed by the payload. The
first frame a client sends is a JSON handshake (``{"type": "hello",
...}``); after the server's JSON ``welcome`` the stream switches to
compact binary frames whose first payload byte is the kind tag:

======  ==========  ====================================================
tag     direction   payload
======  ==========  ====================================================
``T``   c → s       one measurement tick (header + per-cell entries)
``R``   c → s       an actual measurement report (time + label)
``C``   c → s       a handover command (time + HandoverType index)
``S``   c → s       log boundary — reset the session's radio state
``B``   c → s       clean goodbye (server replies with a JSON ``bye``)
``P``   s → c       prediction (HO type/score/lead + MPC level)
``H``   both        heartbeat ping/echo (liveness probe, no body)
``{``   both        JSON control frame (hello/resume/welcome/error/
                    busy/bye)
======  ==========  ====================================================

Protocol version 2 adds **sequence numbers** for session resumption:
every ``T``/``R``/``C``/``S`` frame carries a client-assigned monotonic
u64 right after the tag (1-based, no gaps; the server skips duplicates
after a resume instead of re-applying them), and every ``P`` frame
carries the server's monotonic prediction sequence. The welcome hands
the client a resume token; after a disconnect the client reconnects
with ``{"type": "resume", "session": ..., "token": ..., "seq":
last_received}`` and the server replays the journalled prediction tail
byte-identically before new traffic resumes.

The tick payload encodes exactly the ``(rsrp, serving, neighbours,
scoped)`` tuple :func:`repro.core.evaluation._tick_inputs` builds from a
:class:`~repro.simulate.records.TickRecord`: cells ride in rsrp-dict
insertion order and carry membership flags, so decoding rebuilds the
dicts with identical iteration order — the forecaster's arithmetic (and
therefore its bitwise output) depends on that order. The encoder raises
on aliasing (a serving cell doubling as a neighbour, or one cell in two
neighbour lists) so the reconstruction is provably faithful.

Enum indices on the wire follow Python member order
(:class:`~repro.rrc.taxonomy.HandoverType`), matching the columnar
store's in-file name tables in spirit but fixed per protocol version.
"""

from __future__ import annotations

import json
import math
import struct

from repro.rrc.events import EventConfig, EventType, MeasurementObject
from repro.rrc.taxonomy import HandoverType

#: Hard per-frame ceiling. A tick for even a dense urban cell sweep is
#: a few hundred bytes; anything near this is a corrupt or hostile
#: length prefix and the connection is dropped.
MAX_FRAME = 1 << 20

PROTOCOL_VERSION = 2

_LEN = struct.Struct(">I")
#: Monotonic per-session sequence number (u64) right after the tag on
#: every ``T``/``R``/``C``/``S`` frame.
_SEQ = struct.Struct("<Q")
#: Client-to-server tags that carry a sequence number.
SEQUENCED_TAGS = (b"T", b"R", b"C", b"S")
#: time_s, flags, lte serving gci, nr serving gci, observed_mbps,
#: buffer_s, last_level, n_cells.
_TICK_HEAD = struct.Struct("<dBqqddiH")
#: gci, rsrp_dbm, membership flags.
_CELL = struct.Struct("<qdB")
#: time_s, report label (utf-8 tail).
_REPORT_HEAD = struct.Struct("<d")
#: time_s, HandoverType index.
_COMMAND = struct.Struct("<dB")
#: time_s, HandoverType index, ho_score, similarity, lead_time_s
#: (NaN = None), level (-1 = no ABR decision), dropped counter,
#: server-assigned prediction sequence number.
_PRED = struct.Struct("<dBdddiIQ")

#: Tick flags.
TICK_WANTS_ABR = 0x01

#: Per-cell membership flags.
_LTE_NEIGHBOUR = 0x01
_NR_NEIGHBOUR = 0x02
_LTE_SCOPED = 0x04
_NR_SCOPED = 0x08

_HO_TYPES: tuple[HandoverType, ...] = tuple(HandoverType)
_HO_INDEX = {t: i for i, t in enumerate(_HO_TYPES)}


class FrameError(Exception):
    """A malformed, oversized, or out-of-protocol frame."""


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------


def frame(payload: bytes) -> bytes:
    """Length-prefix ``payload`` for the wire."""
    if len(payload) > MAX_FRAME:
        raise FrameError(f"frame of {len(payload)} bytes exceeds MAX_FRAME")
    return _LEN.pack(len(payload)) + payload


class FrameDecoder:
    """Incremental frame splitter for a byte stream.

    Synchronous on purpose: the load generator's selector clients and
    the protocol tests feed it arbitrary chunk boundaries (including
    mid-prefix and mid-payload splits) and it yields exactly the frames
    the stream carries.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[bytes]:
        """Absorb ``data``; return every frame completed by it."""
        self._buffer.extend(data)
        frames: list[bytes] = []
        buffer = self._buffer
        while True:
            if len(buffer) < _LEN.size:
                break
            (length,) = _LEN.unpack_from(buffer)
            if length > MAX_FRAME:
                raise FrameError(f"frame length {length} exceeds MAX_FRAME")
            end = _LEN.size + length
            if len(buffer) < end:
                break
            frames.append(bytes(buffer[_LEN.size : end]))
            del buffer[:end]
        return frames

    @property
    def pending_bytes(self) -> int:
        return len(self._buffer)


async def read_frame_sock(loop, sock) -> bytes | None:
    """Read exactly one frame off a non-blocking socket; None on EOF.

    Used by the shard controller to pull the handshake frame — and not
    one byte more — before handing the connection fd to a shard. An
    asyncio ``StreamReader`` buffers greedily, so a pipelining client's
    tick frames would be stranded in the controller; ``loop.sock_recv``
    is capped at the bytes still owed, so everything after the hello
    stays in the kernel buffer and travels with the fd.
    """
    buf = bytearray()
    while len(buf) < _LEN.size:
        chunk = await loop.sock_recv(sock, _LEN.size - len(buf))
        if not chunk:
            return None
        buf += chunk
    (length,) = _LEN.unpack(bytes(buf))
    if length > MAX_FRAME:
        raise FrameError(f"frame length {length} exceeds MAX_FRAME")
    payload = bytearray()
    while len(payload) < length:
        chunk = await loop.sock_recv(sock, length - len(payload))
        if not chunk:
            return None
        payload += chunk
    return bytes(payload)


async def read_frame(reader) -> bytes | None:
    """Read one frame from an asyncio stream; None on clean EOF."""
    try:
        prefix = await reader.readexactly(_LEN.size)
    except Exception:
        return None
    (length,) = _LEN.unpack(prefix)
    if length > MAX_FRAME:
        raise FrameError(f"frame length {length} exceeds MAX_FRAME")
    try:
        return await reader.readexactly(length)
    except Exception:
        return None


# ----------------------------------------------------------------------
# JSON control frames
# ----------------------------------------------------------------------


def encode_json(message: dict) -> bytes:
    payload = json.dumps(message, separators=(",", ":")).encode()
    if not payload.startswith(b"{"):
        raise FrameError("JSON control frames must encode objects")
    return payload


def decode_json(payload: bytes) -> dict:
    try:
        message = json.loads(payload.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"undecodable JSON control frame: {exc}") from exc
    if not isinstance(message, dict):
        raise FrameError("JSON control frame is not an object")
    return message


# ----------------------------------------------------------------------
# Tick frames
# ----------------------------------------------------------------------


def encode_tick(
    time_s: float,
    rsrp: dict,
    serving: dict,
    neighbours: dict,
    scoped: dict,
    *,
    wants_abr: bool = False,
    observed_mbps: float = 0.0,
    buffer_s: float = 0.0,
    last_level: int = 0,
    seq: int = 0,
) -> bytes:
    """Pack one ``_tick_inputs``-shaped tuple into a ``T`` frame.

    Raises :class:`FrameError` when the dicts alias (the decode side
    could not tell the memberships apart), when a neighbour lacks an
    rsrp entry, or when a scoped cell is not in its neighbour list —
    none of which :func:`_tick_inputs` ever produces.
    """
    lte_serving = serving.get(MeasurementObject.LTE)
    nr_serving = serving.get(MeasurementObject.NR)
    lte_nb = neighbours.get(MeasurementObject.LTE, [])
    nr_nb = neighbours.get(MeasurementObject.NR, [])
    lte_scoped = set(scoped.get(MeasurementObject.LTE, []))
    nr_scoped = set(scoped.get(MeasurementObject.NR, []))
    lte_set, nr_set = set(lte_nb), set(nr_nb)
    if len(lte_set) != len(lte_nb) or len(nr_set) != len(nr_nb):
        raise FrameError("duplicate gci within a neighbour list")
    if lte_set & nr_set:
        raise FrameError("gci present in both neighbour lists")
    for cell in (lte_serving, nr_serving):
        if cell is not None and (cell in lte_set or cell in nr_set):
            raise FrameError("serving cell aliases a neighbour entry")
    if not (lte_scoped <= lte_set and nr_scoped <= nr_set):
        raise FrameError("scoped cell missing from its neighbour list")

    parts = [b"T", _SEQ.pack(seq)]
    cells = []
    for gci, value in rsrp.items():
        flags = 0
        if gci in lte_set:
            flags |= _LTE_NEIGHBOUR
            if gci in lte_scoped:
                flags |= _LTE_SCOPED
        elif gci in nr_set:
            flags |= _NR_NEIGHBOUR
            if gci in nr_scoped:
                flags |= _NR_SCOPED
        elif gci != lte_serving and gci != nr_serving:
            raise FrameError(f"rsrp entry {gci!r} is neither serving nor neighbour")
        cells.append((int(gci), float(value), flags))
    if len(cells) != len(lte_set) + len(nr_set) + sum(
        1
        for cell in (lte_serving, nr_serving)
        if cell is not None and cell in rsrp
    ):
        raise FrameError("neighbour entries missing from the rsrp dict")

    tick_flags = TICK_WANTS_ABR if wants_abr else 0
    parts.append(
        _TICK_HEAD.pack(
            float(time_s),
            tick_flags,
            -1 if lte_serving is None else int(lte_serving),
            -1 if nr_serving is None else int(nr_serving),
            float(observed_mbps),
            float(buffer_s),
            int(last_level),
            len(cells),
        )
    )
    for gci, value, flags in cells:
        parts.append(_CELL.pack(gci, value, flags))
    return b"".join(parts)


def decode_tick(payload: bytes):
    """Unpack a ``T`` frame (after the kind byte has been checked).

    Returns ``(time_s, rsrp, serving, neighbours, scoped, wants_abr,
    observed_mbps, buffer_s, last_level)`` with the dicts laid out
    exactly as :func:`repro.core.evaluation._tick_inputs` builds them.
    """
    try:
        (
            time_s,
            tick_flags,
            lte_raw,
            nr_raw,
            observed_mbps,
            buffer_s,
            last_level,
            n_cells,
        ) = _TICK_HEAD.unpack_from(payload, 1 + _SEQ.size)
    except struct.error as exc:
        raise FrameError(f"truncated tick header: {exc}") from exc
    expected = 1 + _SEQ.size + _TICK_HEAD.size + n_cells * _CELL.size
    if len(payload) != expected:
        raise FrameError(
            f"tick frame of {len(payload)} bytes, expected {expected}"
        )
    rsrp: dict = {}
    serving = {
        MeasurementObject.LTE: None if lte_raw == -1 else lte_raw,
        MeasurementObject.NR: None if nr_raw == -1 else nr_raw,
    }
    neighbours: dict = {MeasurementObject.LTE: [], MeasurementObject.NR: []}
    scoped: dict = {MeasurementObject.LTE: [], MeasurementObject.NR: []}
    cells_at = 1 + _SEQ.size + _TICK_HEAD.size
    for gci, value, flags in _CELL.iter_unpack(payload[cells_at:]):
        rsrp[gci] = value
        if flags & _LTE_NEIGHBOUR:
            neighbours[MeasurementObject.LTE].append(gci)
            if flags & _LTE_SCOPED:
                scoped[MeasurementObject.LTE].append(gci)
        elif flags & _NR_NEIGHBOUR:
            neighbours[MeasurementObject.NR].append(gci)
            if flags & _NR_SCOPED:
                scoped[MeasurementObject.NR].append(gci)
    return (
        time_s,
        rsrp,
        serving,
        neighbours,
        scoped,
        bool(tick_flags & TICK_WANTS_ABR),
        observed_mbps,
        buffer_s,
        last_level,
    )


#: Byte offsets (within a complete *frame*, prefix included) of the ABR
#: fields the load generator patches per send on pre-encoded ticks:
#: observed_mbps, buffer_s (f64) and last_level (i32) inside _TICK_HEAD.
ABR_PATCH = struct.Struct("<ddi")
ABR_PATCH_OFFSET = _LEN.size + 1 + _SEQ.size + struct.calcsize("<dBqq")


def frame_seq(payload: bytes) -> int:
    """The sequence number of a ``T``/``R``/``C``/``S`` frame."""
    try:
        (seq,) = _SEQ.unpack_from(payload, 1)
    except struct.error as exc:
        raise FrameError(f"frame too short for a sequence number: {exc}") from exc
    return seq


def encode_boundary(seq: int = 0) -> bytes:
    """An ``S`` frame: reset the session's radio state at a log boundary."""
    return b"S" + _SEQ.pack(seq)


# ----------------------------------------------------------------------
# Report / command / prediction frames
# ----------------------------------------------------------------------


def encode_report(label: str, time_s: float, seq: int = 0) -> bytes:
    return b"R" + _SEQ.pack(seq) + _REPORT_HEAD.pack(float(time_s)) + label.encode()


def decode_report(payload: bytes) -> tuple[str, float]:
    try:
        (time_s,) = _REPORT_HEAD.unpack_from(payload, 1 + _SEQ.size)
    except struct.error as exc:
        raise FrameError(f"truncated report frame: {exc}") from exc
    try:
        label = payload[1 + _SEQ.size + _REPORT_HEAD.size :].decode()
    except UnicodeDecodeError as exc:
        raise FrameError(f"undecodable report label: {exc}") from exc
    return label, time_s


def encode_command(ho_type: HandoverType, time_s: float, seq: int = 0) -> bytes:
    return b"C" + _SEQ.pack(seq) + _COMMAND.pack(float(time_s), _HO_INDEX[ho_type])


def decode_command(payload: bytes) -> tuple[HandoverType, float]:
    try:
        time_s, index = _COMMAND.unpack_from(payload, 1 + _SEQ.size)
    except struct.error as exc:
        raise FrameError(f"truncated command frame: {exc}") from exc
    if index >= len(_HO_TYPES):
        raise FrameError(f"unknown handover type index {index}")
    return _HO_TYPES[index], time_s


def encode_prediction(
    time_s: float,
    ho_type: HandoverType,
    ho_score: float,
    similarity: float,
    lead_time_s: float | None,
    level: int,
    dropped: int,
    seq: int = 0,
) -> bytes:
    return b"P" + _PRED.pack(
        float(time_s),
        _HO_INDEX[ho_type],
        float(ho_score),
        float(similarity),
        float("nan") if lead_time_s is None else float(lead_time_s),
        int(level),
        int(dropped),
        int(seq),
    )


def encode_event_configs(configs: list[EventConfig]) -> list[dict]:
    """Event configuration as a JSON-able handshake field."""
    return [
        {
            "event": c.event.name,
            "measurement": c.measurement.name,
            "threshold_dbm": c.threshold_dbm,
            "threshold2_dbm": c.threshold2_dbm,
            "offset_db": c.offset_db,
            "hysteresis_db": c.hysteresis_db,
            "time_to_trigger_s": c.time_to_trigger_s,
            "intra_node_only": c.intra_node_only,
            "intra_frequency_only": c.intra_frequency_only,
            "only_when_detached": c.only_when_detached,
        }
        for c in configs
    ]


def decode_event_configs(spec: list) -> list[EventConfig]:
    """Rebuild the handshake's event configuration; FrameError on junk."""
    if not isinstance(spec, list) or not spec:
        raise FrameError("hello carries no event configuration")
    configs: list[EventConfig] = []
    for entry in spec:
        if not isinstance(entry, dict):
            raise FrameError("event config entries must be objects")
        try:
            configs.append(
                EventConfig(
                    event=EventType[entry["event"]],
                    measurement=MeasurementObject[entry["measurement"]],
                    threshold_dbm=float(entry.get("threshold_dbm", 0.0)),
                    threshold2_dbm=float(entry.get("threshold2_dbm", 0.0)),
                    offset_db=float(entry.get("offset_db", 0.0)),
                    hysteresis_db=float(entry.get("hysteresis_db", 0.0)),
                    time_to_trigger_s=float(entry.get("time_to_trigger_s", 0.0)),
                    intra_node_only=bool(entry.get("intra_node_only", False)),
                    intra_frequency_only=bool(entry.get("intra_frequency_only", False)),
                    only_when_detached=bool(entry.get("only_when_detached", False)),
                )
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise FrameError(f"bad event config entry: {exc}") from exc
    return configs


def decode_prediction(payload: bytes):
    """Returns (time_s, ho_type, ho_score, similarity, lead, level,
    dropped, seq) — ``seq`` rides last so index-based consumers of the
    v1 tuple keep working."""
    try:
        (
            time_s,
            index,
            score,
            similarity,
            lead,
            level,
            dropped,
            seq,
        ) = _PRED.unpack_from(payload, 1)
    except struct.error as exc:
        raise FrameError(f"truncated prediction frame: {exc}") from exc
    if index >= len(_HO_TYPES):
        raise FrameError(f"unknown handover type index {index}")
    return (
        time_s,
        _HO_TYPES[index],
        score,
        similarity,
        None if math.isnan(lead) else lead,
        level,
        dropped,
        seq,
    )
