"""Warm-loading shared serving models through the trained-model cache.

The server bootstraps every new session's learner from one shared
pattern dictionary mined offline (§9 / Fig. 15 — the paper's remedy for
cold-start predictions). Mining walks every phase of every drive, so a
restarted server over an unchanged corpus should not pay it twice:
:func:`cached_bootstrap_patterns` resolves the mined dictionary through
:class:`repro.ml.model_cache.ModelCache`, keyed by the corpus's
columnar content digests — the same content addressing the GBC/LSTM
baselines use for their fitted models.
"""

from __future__ import annotations

import hashlib

from repro.core.bootstrap import frequent_patterns_from_logs
from repro.core.patterns import Pattern
from repro.ml.model_cache import ModelCache
from repro.simulate.columnar import ColumnarLog, as_columnar
from repro.simulate.corpus import CorpusView, DriveRef

_KIND = "serve-bootstrap"


def cached_bootstrap_patterns(
    logs,
    *,
    per_type: int = 1,
    cache: ModelCache | None = None,
) -> dict[Pattern, int]:
    """Offline-mined bootstrap patterns, warm-loaded when unchanged.

    ``logs`` may be a list of :class:`~repro.simulate.records.DriveLog`
    / :class:`~repro.simulate.columnar.ColumnarLog` objects or a
    memmap-backed :class:`~repro.simulate.corpus.CorpusView`; the cache
    key digests each drive's packed columns, so any corpus edit (or a
    different ``per_type``) misses and re-mines.
    """
    cache = cache if cache is not None else ModelCache()
    handles = logs.refs() if isinstance(logs, CorpusView) else list(logs)
    digest = hashlib.sha256(b"serve-bootstrap\0")
    resolved = []
    for handle in handles:
        # A corpus ref stays a memmap slice; logs digest via their
        # (memoised) columnar form either way.
        log = handle.columnar() if isinstance(handle, DriveRef) else handle
        digest.update(as_columnar(log).content_digest().encode())
        digest.update(b"\0")
        resolved.append(log)
    key = ModelCache.key_for(_KIND, digest.hexdigest(), {"per_type": per_type})
    patterns = cache.get(_KIND, key)
    if patterns is not None:
        return patterns
    mined = frequent_patterns_from_logs(
        [
            log.to_drive_log() if isinstance(log, ColumnarLog) else log
            for log in resolved
        ],
        per_type=per_type,
    )
    cache.put(_KIND, key, mined)
    return mined
