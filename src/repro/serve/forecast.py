"""Cross-session streaming forecast engine — the serving perf core.

The offline batched pipeline (:meth:`RRSPredictor.predict_many` +
:meth:`ReportPredictor.predict_reports_batched`) is per-session: every
tick it converts each cell's history deque to fresh arrays, re-smooths
the whole window, runs one OLS per cell, and evaluates each event's
trigger matrix for that one session. This module restructures the same
arithmetic around the micro-batcher so the per-tick cost is shared
across sessions, while keeping the scalar op *order* — and therefore
bitwise-identical reports:

* **Incremental smoothing** — each cell's history lives in a ring
  (:class:`_CellRing`) that caches smoothed values keyed by the exact
  window slice that produced them. The triangular kernel at position
  ``j`` is ``dot(values[lo:j+1], tail)/norm`` with ``lo = max(start,
  j+1-K)``; entries whose window no longer starts at their cached
  ``lo`` recompute, the rest are reused. Full-window entries
  (``j+1-K >= start``) stay valid forever, so the steady state does 16
  dots per cell-tick instead of 20 — and never converts a deque.
* **Length-grouped OLS** — cells from *all* ready sessions with the
  same history length fit in one pass: the relative-time subtraction
  and the ``sum_t``/``sum_v`` reductions vectorise over a (cells, n)
  matrix (row sums of a C-contiguous matrix use the same pairwise
  reduction as the 1-D sums — pinned by test), the ``sum_tt``/
  ``sum_tv`` inner products stay per-row ``np.dot`` (BLAS ``ddot``
  sums in its own order; batching *those* would drift by ulps), and the
  forecast matrix is one broadcast.
* **Cohort trigger engine** — sessions sharing an event-config list
  form a cohort; each A3/A4/A5/B1 config evaluates its condition over
  one candidate matrix spanning every session in the batch, and the
  serving-only events (A1/A2/periodic) batch the same way. The
  sustained-trigger window-AND and first-hit ``argmax`` are the
  reference's own column ops, so the fire times match bit for bit.

``tests/test_serve_forecast.py`` pins the whole stack against
``predict_reports_batched`` tick-for-tick over full drives.
"""

from __future__ import annotations

import numpy as np

from repro.core.prognos import PrognosConfig
from repro.core.report_predictor import ReportPredictor
from repro.core.rrs_predictor import _future_grid
from repro.core.smoothing import TriangularKernelSmoother
from repro.rrc.events import EventConfig, EventType

#: Constants mirroring the RRSPredictor defaults the offline replay
#: uses (``_forecast_steps`` constructs it with these implicit values).
STALE_AFTER_S = 1.5
SLOPE_SHRINKAGE = 0.75
FORECAST_STEPS = 4

#: Shared smoother instances per window — the tails are immutable and
#: every session with the same smoother_window can share them.
_SMOOTHERS: dict[int, TriangularKernelSmoother] = {}


def _smoother_for(window: int) -> TriangularKernelSmoother:
    smoother = _SMOOTHERS.get(window)
    if smoother is None:
        smoother = TriangularKernelSmoother(window)
        _SMOOTHERS[window] = smoother
    return smoother


class _CellRing:
    """One cell's history window with a smoothed-value cache.

    ``times``/``values`` are rings of capacity ``2 * window``; the live
    window is ``[start, end)``. ``cache[j]`` holds the smoothed value
    computed at absolute slot ``j``; ``sm_start``/``sm_end`` record the
    window :meth:`smoothed` last saw, which determines validity by
    region instead of per-slot keys: a slot's value depends only on its
    clamp point ``lo = max(j + 1 - K, start)``, so slots past the
    clamped prefix (``j >= start + K - 1``) stay valid across window
    slides, while the prefix re-clamps against the new ``start`` and
    must be recomputed wholesale.
    """

    __slots__ = ("times", "values", "cache", "start", "end", "window", "K", "tails", "sm_start", "sm_end")

    def __init__(self, window: int, K: int, tails: list) -> None:
        capacity = 2 * window
        self.times = np.empty(capacity, dtype=float)
        self.values = np.empty(capacity, dtype=float)
        self.cache = np.empty(capacity, dtype=float)
        self.start = 0
        self.end = 0
        self.window = window
        self.K = K
        self.tails = tails
        self.sm_start = -1
        self.sm_end = -1

    @property
    def count(self) -> int:
        return self.end - self.start

    def push(self, time_s: float, value: float) -> None:
        end = self.end
        if end == self.times.size:
            # Compact: slide the live window to the front; the cache
            # region slides with it, validity intact.
            start = self.start
            count = end - start
            self.times[:count] = self.times[start:end]
            self.values[:count] = self.values[start:end]
            self.cache[:count] = self.cache[start:end]
            if self.sm_start >= 0:
                self.sm_start = max(self.sm_start - start, 0)
                self.sm_end = max(self.sm_end - start, 0)
            self.start = 0
            self.end = end = count
        self.times[end] = time_s
        self.values[end] = value
        self.end = end + 1
        if self.end - self.start > self.window:
            self.start += 1

    def last_time(self) -> float:
        return float(self.times[self.end - 1])

    def times_window(self) -> np.ndarray:
        return self.times[self.start : self.end]

    def smoothed(self, out: np.ndarray | None = None) -> np.ndarray:
        """Smoothed live window, bit-identical to ``smooth_series_fast``
        over a fresh copy of the same values (same slices, same dots).
        ``out`` lets the length-grouped fit write straight into its row
        of the (cells, n) matrix instead of allocating per cell.
        """
        start, end = self.start, self.end
        values = self.values
        cache = self.cache
        K = self.K
        tails = self.tails
        if out is None:
            out = np.empty(end - start)
        # ndarray.dot is the same C routine as np.dot minus the
        # __array_function__ dispatcher — measurably cheaper at these
        # sizes, bit-identical by construction.
        dot = np.ndarray.dot
        sm_start, sm_end = self.sm_start, self.sm_end
        if sm_start == start:
            # Window start unchanged: every previously smoothed slot is
            # still clamped the same way; only appended slots are new.
            done = sm_end
        elif sm_start >= 0:
            # The window slid: the clamped prefix (lo pinned at start)
            # re-clamps against the new start — recompute it, then copy
            # the stable full-tail region straight out of the cache.
            boundary = start + K - 1
            if boundary > end:
                boundary = end
            for j in range(start, boundary):
                weights, norm = tails[j - start]
                out[j - start] = cache[j] = (
                    dot(values[start : j + 1], weights) / norm
                )
            done = sm_end if sm_end > boundary else boundary
        else:
            done = start  # fresh ring: nothing cached
        if done > end:
            done = end
        copy_from = start + K - 1 if 0 <= sm_start < start else start
        if done > copy_from:
            out[copy_from - start : done - start] = cache[copy_from:done]
        for j in range(done, end):
            lo = j + 1 - K
            if lo < start:
                lo = start
            weights, norm = tails[j - lo]
            out[j - start] = cache[j] = dot(values[lo : j + 1], weights) / norm
        self.sm_start = start
        self.sm_end = end
        return out


class TickPlan:
    """One session's gated configs + forecast cells for the tick."""

    __slots__ = ("active", "cells")

    def __init__(self, active: list, cells: list) -> None:
        self.active = active
        self.cells = cells


class StreamingForecaster:
    """Per-session replacement for the RRS + report predictor pair.

    Holds the same observable state (per-cell histories with stale
    eviction, reset at log boundaries) but defers the per-tick forecast
    and trigger work to :func:`forecast_batch`, which amortises it
    across every session ready in the same micro-batch.
    """

    def __init__(
        self,
        event_configs: list[EventConfig],
        *,
        config: PrognosConfig | None = None,
    ) -> None:
        if not event_configs:
            raise ValueError("need at least one event config")
        config = config or PrognosConfig()
        if config.history_window_ticks < 4:
            raise ValueError("history window too short for a regression")
        #: Identity of this list keys the trigger cohort — the server
        #: interns equal config lists so sessions share one object.
        self.configs = event_configs
        self.config_meta = [
            (
                c,
                c.event,
                c.event.needs_neighbour,
                c.intra_node_only or c.intra_frequency_only,
                c.measurement,
                c.needs_serving,
                c.only_when_detached,
            )
            for c in event_configs
        ]
        self.window = config.history_window_ticks
        self.window_s = config.prediction_window_s
        self.steps = FORECAST_STEPS
        smoother = _smoother_for(config.smoother_window)
        self._K = smoother.window
        self._tails = smoother._tails
        self._cells: dict[object, _CellRing] = {}

    def observe(self, time_s: float, rsrp_by_cell: dict) -> None:
        """Mirror of :meth:`RRSPredictor.observe` (push + stale sweep)."""
        cells = self._cells
        for cell, rsrp in rsrp_by_cell.items():
            ring = cells.get(cell)
            if ring is None:
                ring = _CellRing(self.window, self._K, self._tails)
                cells[cell] = ring
            ring.push(time_s, rsrp)
        if len(cells) == len(rsrp_by_cell):
            # Every tracked cell was just pushed; nothing can be stale.
            return
        stale = [
            cell
            for cell, ring in cells.items()
            if time_s - ring.last_time() > STALE_AFTER_S
        ]
        for cell in stale:
            del cells[cell]

    def reset(self) -> None:
        """Log boundary: drop all radio history (``Prognos.start_log``)."""
        self._cells.clear()

    def prepare(self, serving: dict, neighbours: dict, scoped_neighbours: dict | None) -> TickPlan:
        """Pass-1 gating, identical to ``predict_reports_batched``."""
        active: list = []
        cells: list = []
        seen: set = set()
        for (
            config,
            event,
            needs_neighbour,
            scoping,
            measurement,
            needs_serving,
            only_when_detached,
        ) in self.config_meta:
            serving_cell = serving.get(measurement)
            if (needs_serving and serving_cell is None) or (
                only_when_detached and serving_cell is not None
            ):
                continue
            if needs_neighbour:
                if scoping and scoped_neighbours is not None:
                    candidates = scoped_neighbours.get(measurement, [])
                else:
                    candidates = neighbours.get(measurement, [])
            else:
                candidates = []
            active.append((config, event, needs_neighbour, serving_cell, candidates))
            if serving_cell is not None and serving_cell not in seen:
                seen.add(serving_cell)
                cells.append(serving_cell)
            for cell in candidates:
                if cell not in seen:
                    seen.add(cell)
                    cells.append(cell)
        return TickPlan(active, cells)


# ----------------------------------------------------------------------
# Batched forecast + trigger evaluation
# ----------------------------------------------------------------------


def _fit_group(entries: list, n: int, window_s: float, steps: int) -> None:
    """One OLS pass over every cell (any session) with history length n.

    ``entries`` holds ``(ring, fdict, cell)`` sinks; each gets its
    forecast row written into its session's forecast dict.
    """
    count = len(entries)
    future = _future_grid(window_s, steps)
    T = np.empty((count, n))
    V = np.empty((count, n))
    for r, (ring, _fdict, _cell) in enumerate(entries):
        T[r] = ring.times_window()
        ring.smoothed(out=V[r])
    T_rel = T - T[:, -1][:, None]
    sum_t = T_rel.sum(axis=1)
    sum_v = V.sum(axis=1)
    sum_tt = np.empty(count)
    sum_tv = np.empty(count)
    for r in range(count):
        row = T_rel[r]
        sum_tt[r] = row.dot(row)
        sum_tv[r] = row.dot(V[r])
    denom = n * sum_tt - sum_t * sum_t
    degenerate = np.abs(denom) < 1e-12
    with np.errstate(divide="ignore", invalid="ignore"):
        slope = (n * sum_tv - sum_t * sum_v) / denom
        intercept = (sum_v - slope * sum_t) / n
    if degenerate.any():
        slope[degenerate] = 0.0
        intercept[degenerate] = V[degenerate].mean(axis=1)
    slope *= SLOPE_SHRINKAGE
    out = intercept[:, None] + slope[:, None] * future[None, :]
    for r, (_ring, fdict, cell) in enumerate(entries):
        fdict[cell] = out[r]


def _first_sustained(
    config: EventConfig,
    serving_series: np.ndarray | None,
    neighbour_series: np.ndarray | None,
    step_s: float,
) -> float | None:
    """Scalar fallback, copied from ``_first_sustained_trigger``."""
    steps = (
        neighbour_series.size
        if neighbour_series is not None
        else (serving_series.size if serving_series is not None else 0)
    )
    if steps == 0:
        return None
    held_from: int | None = None
    needed_steps = int(np.ceil(config.time_to_trigger_s / step_s))
    condition = ReportPredictor._condition
    for i in range(steps):
        serving_value = serving_series[i] if serving_series is not None else float("-inf")
        neighbour_value = (
            neighbour_series[i] if neighbour_series is not None else float("-inf")
        )
        if condition(config, serving_value, neighbour_value, 0.0):
            if held_from is None:
                held_from = i
            if i - held_from + 1 >= max(needed_steps, 1):
                return (i + 1) * step_s
        else:
            held_from = None
    return None


def _stack(rows: list[np.ndarray]) -> np.ndarray:
    """Row-copy stack; avoids ``np.vstack``'s atleast_2d/concatenate
    overhead on the hot path. Pure copies — bitwise-neutral."""
    out = np.empty((len(rows), rows[0].shape[0]))
    for r, row in enumerate(rows):
        out[r] = row
    return out


def _sustained_ok(cond: np.ndarray, needed: int, steps: int) -> np.ndarray:
    """ok[:, j] == condition held over steps j..j+needed-1 (reference op)."""
    if needed == 1:
        return cond
    ok = cond[:, needed - 1 :].copy()
    for d in range(1, needed):
        ok &= cond[:, needed - 1 - d : steps - d]
    return ok


def _run_cohort(
    configs: list[EventConfig],
    job_ids: list[int],
    jobs: list,
    fdicts: list[dict],
    results: list[list],
) -> None:
    """Evaluate every config across the cohort's ready sessions."""
    forecaster = jobs[job_ids[0]][0]
    steps = forecaster.steps
    step_s = forecaster.window_s / steps
    neg_inf: np.ndarray | None = None
    cursors = [0] * len(job_ids)
    for config in configs:
        participants: list[tuple[int, tuple]] = []
        for pos, ji in enumerate(job_ids):
            plan = jobs[ji][1]
            cursor = cursors[pos]
            active = plan.active
            if cursor < len(active) and active[cursor][0] is config:
                participants.append((ji, active[cursor]))
                cursors[pos] = cursor + 1
        if not participants:
            continue
        event = config.event
        hys = config.hysteresis_db
        label = config.label
        if event.needs_neighbour:
            batched = event in (
                EventType.A3,
                EventType.A4,
                EventType.B1,
                EventType.A5,
            )
            if not batched:
                # Unexpected neighbour event: the reference's scalar
                # fallback, per session.
                for ji, (_c, _e, _nn, serving_cell, candidates) in participants:
                    fdict = fdicts[ji]
                    serving_series = (
                        fdict.get(serving_cell) if serving_cell is not None else None
                    )
                    for cell in candidates:
                        series = fdict.get(cell)
                        if series is None:
                            continue
                        fire = _first_sustained(config, serving_series, series, step_s)
                        if fire is not None:
                            results[ji].append((label, fire, cell))
                continue
            needed = int(np.ceil(config.time_to_trigger_s / step_s))
            if needed < 1:
                needed = 1
            if needed > steps:
                continue
            rows: list[np.ndarray] = []
            row_meta: list[tuple[int, object]] = []
            serving_rows: list[np.ndarray] = []
            counts: list[int] = []
            for ji, (_c, _e, _nn, serving_cell, candidates) in participants:
                fdict = fdicts[ji]
                cand = [
                    (cell, fdict.get(cell))
                    for cell in candidates
                ]
                cand = [(cell, series) for cell, series in cand if series is not None]
                if not cand:
                    continue
                for cell, series in cand:
                    rows.append(series)
                    row_meta.append((ji, cell))
                serving_series = (
                    fdict.get(serving_cell) if serving_cell is not None else None
                )
                if serving_series is None:
                    if neg_inf is None:
                        neg_inf = np.full(steps, float("-inf"))
                    serving_series = neg_inf
                serving_rows.append(serving_series)
                counts.append(len(cand))
            if not rows:
                continue
            matrix = _stack(rows)
            if event is EventType.A3:
                # Scalar adds broadcast elementwise in the same order as
                # the per-row expression, so stacking first is bitwise
                # neutral.
                thresh = (_stack(serving_rows) + config.offset_db) + hys
                cond = matrix > np.repeat(thresh, counts, axis=0)
            elif event is EventType.A5:
                serving_ok = (_stack(serving_rows) + hys) < config.threshold_dbm
                cond = np.repeat(serving_ok, counts, axis=0) & (
                    (matrix - hys) > config.threshold2_dbm
                )
            else:  # A4 / B1
                cond = (matrix - hys) > config.threshold_dbm
            ok = _sustained_ok(cond, needed, steps)
            hit = ok.any(axis=1)
            if hit.any():
                first = ok.argmax(axis=1)
                for r, (ji, cell) in enumerate(row_meta):
                    if hit[r]:
                        results[ji].append(
                            (label, (int(first[r]) + needed) * step_s, cell)
                        )
        else:
            # Serving-only events (A1/A2/periodic), batched across the
            # cohort; equivalent to the reference's scalar scan.
            needed = max(int(np.ceil(config.time_to_trigger_s / step_s)), 1)
            if needed > steps:
                continue
            rows = []
            row_jis: list[int] = []
            for ji, (_c, _e, _nn, serving_cell, _cands) in participants:
                serving_series = (
                    fdicts[ji].get(serving_cell) if serving_cell is not None else None
                )
                if serving_series is None:
                    continue
                rows.append(serving_series)
                row_jis.append(ji)
            if not rows:
                continue
            S = _stack(rows)
            if event is EventType.A1:
                cond = (S - hys) > config.threshold_dbm
            elif event is EventType.A2:
                cond = (S + hys) < config.threshold_dbm
            elif event is EventType.PERIODIC:
                cond = np.ones(S.shape, dtype=bool)
            else:
                # No standard serving-only event beyond these; fall back
                # to the scalar condition per session for exactness.
                for ji, s in zip(row_jis, rows):
                    fire = _first_sustained(config, s, None, step_s)
                    if fire is not None:
                        results[ji].append((label, fire, None))
                continue
            ok = _sustained_ok(cond, needed, steps)
            hit = ok.any(axis=1)
            if hit.any():
                first = ok.argmax(axis=1)
                for r, ji in enumerate(row_jis):
                    if hit[r]:
                        results[ji].append(
                            (label, (int(first[r]) + needed) * step_s, None)
                        )


def forecast_batch(jobs: list[tuple[StreamingForecaster, TickPlan]]) -> list[list[tuple[str, float]]]:
    """Forecast + trigger evaluation for one micro-batch of ready ticks.

    ``jobs`` holds one (forecaster, plan) pair per ready session — the
    session must already have :meth:`StreamingForecaster.observe`-d the
    tick. Returns, aligned with ``jobs``, the ``(label, fire_in_s)``
    lists ``predict_reports_batched`` would have produced, in the same
    (fire-time sorted, stable) order — bit-identical.
    """
    results: list[list] = [[] for _ in jobs]
    fdicts: list[dict] = [{} for _ in jobs]
    groups: dict[tuple, list] = {}
    for ji, (forecaster, plan) in enumerate(jobs):
        if not plan.active:
            continue
        rings = forecaster._cells
        fdict = fdicts[ji]
        for cell in plan.cells:
            ring = rings.get(cell)
            if ring is None or ring.count < 4:
                fdict[cell] = None
            else:
                key = (ring.count, forecaster.window_s, forecaster.steps)
                groups.setdefault(key, []).append((ring, fdict, cell))
    for (n, window_s, steps), entries in groups.items():
        _fit_group(entries, n, window_s, steps)

    cohorts: dict[int, list[int]] = {}
    for ji, (forecaster, plan) in enumerate(jobs):
        if not plan.active:
            continue
        cohorts.setdefault(id(forecaster.configs), []).append(ji)
    for job_ids in cohorts.values():
        _run_cohort(jobs[job_ids[0]][0].configs, job_ids, jobs, fdicts, results)

    out: list[list[tuple[str, float]]] = []
    for reports in results:
        reports.sort(key=lambda item: item[1])
        out.append([(label, fire) for label, fire, _cell in reports])
    return out
