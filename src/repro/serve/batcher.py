"""Adaptive micro-batch collection for the serving engine loop.

The naive shape — an ``asyncio.Queue`` the readers put ticks into and
the engine ``get``s from — costs more than it saves: every put/get is a
future allocation plus a scheduler hop, and at one tick per frame the
collector overhead exceeded the sequential baseline in measurement. The
collector here is a plain list the readers append to, with a single
:class:`asyncio.Event` wake: the engine wakes once per burst, optionally
sleeps ``max_wait_us`` to let straggler sessions join the batch, then
swaps the whole list out at once. Backpressure is per-session and lives
in the server (bounded inboxes/outboxes); the collector itself never
blocks a reader.

Knobs (read once at server construction):

* ``REPRO_SERVE_BATCH`` — max sessions coalesced per engine pass
  (default 64).
* ``REPRO_SERVE_BATCH_WAIT_US`` — cap on how long a non-full batch may
  coalesce stragglers before running (default 0: adaptive batching
  only — ticks accumulate naturally while the engine is busy with the
  previous batch, and waiting beyond that trades engine utilisation
  for batch size, a strict loss when the engine shares cores with the
  readers). When set, coalescing is zero-sleep event-loop passes that
  only continue while they actually grow the batch, so the cap binds
  only under pathological arrival patterns.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

from repro.serve.env import env_int


@dataclass(frozen=True)
class BatchTuning:
    """Micro-batcher knobs (``REPRO_SERVE_BATCH*``).

    Malformed or negative values warn once and fall back to the
    defaults (:mod:`repro.serve.env`) instead of raising inside the
    server.
    """

    max_batch: int = 64
    max_wait_us: int = 0

    @classmethod
    def from_env(cls) -> "BatchTuning":
        return cls(
            max_batch=env_int("REPRO_SERVE_BATCH", 64, minimum=1),
            max_wait_us=env_int("REPRO_SERVE_BATCH_WAIT_US", 0, minimum=0),
        )


class BatchCollector:
    """List-append collector with one event wake per burst."""

    def __init__(self, tuning: BatchTuning) -> None:
        self._tuning = tuning
        self._ready: list = []
        self._event = asyncio.Event()

    def put(self, item) -> None:
        """Mark a session ready (reader side; never blocks)."""
        self._ready.append(item)
        if not self._event.is_set():
            self._event.set()

    def __len__(self) -> int:
        return len(self._ready)

    async def collect(self) -> list:
        """Wait for work, coalesce the in-flight burst, take a batch.

        Returns at most ``max_batch`` items; anything beyond stays
        queued for the next pass (and keeps the event set so the engine
        re-runs immediately).
        """
        while not self._ready:
            self._event.clear()
            await self._event.wait()
        tuning = self._tuning
        if len(self._ready) < tuning.max_batch and tuning.max_wait_us:
            # Coalesce whatever is already in flight: yield whole event
            # loop passes (each one polls the selector and runs every
            # ready reader) for as long as they keep adding sessions.
            # A timed sleep here would trade engine time for sessions
            # that are still thinking client-side — on a busy loop the
            # zero-sleep passes harvest the burst at microsecond cost,
            # so ``max_wait_us`` only caps pathological growth.
            loop = asyncio.get_running_loop()
            deadline = loop.time() + tuning.max_wait_us / 1e6
            grown = 0
            while (
                len(self._ready) > grown
                and len(self._ready) < tuning.max_batch
                and loop.time() < deadline
            ):
                grown = len(self._ready)
                await asyncio.sleep(0)
        ready = self._ready
        if len(ready) <= tuning.max_batch:
            self._ready = []
            batch = ready
        else:
            batch = ready[: tuning.max_batch]
            self._ready = ready[tuning.max_batch :]
        return batch
