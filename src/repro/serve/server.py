"""The Prognos serving daemon: asyncio TCP, micro-batched inference.

One process serves many concurrent UE sessions. Readers do protocol
work only (decode, order-preserving per-session inboxes); all model
work happens on one engine task that drains the
:class:`~repro.serve.batcher.BatchCollector`, runs the cross-session
:func:`~repro.serve.forecast.forecast_batch` and one
:func:`~repro.apps.abr.algorithms.mpc_select_many` call per batch, and
hands encoded predictions to per-session outboxes. A server built with
``batched=False`` short-circuits everything in the reader with the
scalar per-session pipeline — that is the bench's baseline mode, not a
degraded afterthought.

Backpressure, per session and never global:

* **inbound** — a session may have at most ``inbox_limit`` unanswered
  ticks; past that its reader stops reading, which pushes back through
  TCP to the client. Other sessions are unaffected.
* **outbound** — predictions queue in a per-session outbox flushed by a
  small writer task that respects the transport's write buffer. A slow
  consumer fills its outbox; policy ``"drop"`` (default) then evicts
  the oldest prediction and counts it (the ``dropped`` field of every
  later prediction frame carries the running count), policy
  ``"disconnect"`` aborts the connection. The engine never blocks on
  either.

Failure ladder for the engine (see DESIGN.md): an engine crash loses at
most the in-flight batch — the supervisor resyncs every session's
accounting (lost ticks are counted, never silently swallowed), restarts
the engine, and after ``engine_restarts`` strikes degrades the server
to inline sequential serving (each session taking a forced log
boundary) rather than going dark.
"""

from __future__ import annotations

import asyncio
import contextlib
import socket
from collections import deque
from dataclasses import dataclass, field

from repro.apps.abr.algorithms import mpc_select_many
from repro.core.patterns import Pattern
from repro.core.prognos import PrognosConfig
from repro.serve import protocol
from repro.serve.batcher import BatchCollector, BatchTuning
from repro.serve.protocol import FrameError, frame, read_frame
from repro.serve.forecast import forecast_batch
from repro.serve.session import ServingSession

_POLICIES = ("drop", "disconnect")


@dataclass
class ServerConfig:
    """Tunables of one serving daemon."""

    host: str = "127.0.0.1"
    port: int = 0
    #: Micro-batched engine vs inline per-session sequential serving.
    batched: bool = True
    tuning: BatchTuning = field(default_factory=BatchTuning.from_env)
    #: Max unanswered ticks per session before its reader stops reading.
    inbox_limit: int = 64
    #: Max queued predictions per slow session before the policy bites.
    outbox_limit: int = 256
    #: Transport write-buffer high water (bytes) the flusher respects.
    write_high_water: int = 256 * 1024
    #: Engine crash budget before the server degrades to sequential.
    engine_restarts: int = 2
    #: Engine worker processes. ``None`` reads ``REPRO_SERVE_SHARDS``
    #: (default ``cpu_count() - 1``); a resolved count > 1 makes
    #: ``spawn_server`` run the multi-process
    #: :class:`~repro.serve.shard.ShardedPrognosServer` instead of one
    #: :class:`PrognosServer`. Direct ``PrognosServer`` construction
    #: always serves single-process and ignores this field.
    shards: int | None = None
    #: Session→shard routing: ``"auto"`` picks kernel ``SO_REUSEPORT``
    #: listeners where available, else the user-level consistent-hash
    #: fd handoff; ``"reuseport"`` / ``"handoff"`` force a mode.
    routing: str = "auto"
    #: Shard process crash budget before a shard is respawned degraded
    #: (inline-sequential). Per shard, on top of the per-process engine
    #: ladder above.
    shard_restarts: int = 2
    prognos_config: PrognosConfig | None = None
    #: Offline-mined patterns every new session warm-starts from.
    bootstrap: dict[Pattern, int] | None = None


class _Connection:
    """Connection plumbing around one :class:`ServingSession`."""

    __slots__ = (
        "session",
        "reader",
        "writer",
        "policy",
        "inbox",
        "outbox",
        "outbox_limit",
        "pending",
        "dropped",
        "lost",
        "ticks_in",
        "drain",
        "out_event",
        "closed",
        "flusher",
    )

    def __init__(self, session, reader, writer, policy, outbox_limit) -> None:
        self.session = session
        self.reader = reader
        self.writer = writer
        self.policy = policy
        self.inbox: deque = deque()
        self.outbox: deque = (
            deque(maxlen=outbox_limit) if policy == "drop" else deque()
        )
        self.outbox_limit = outbox_limit
        self.pending = 0
        self.dropped = 0
        self.lost = 0
        self.ticks_in = 0
        self.drain = asyncio.Event()
        self.out_event = asyncio.Event()
        self.closed = False
        self.flusher: asyncio.Task | None = None

    def deliver(self, data: bytes) -> None:
        """Queue an encoded frame for the flusher; never blocks."""
        if self.closed:
            return
        if self.policy == "disconnect":
            if len(self.outbox) >= self.outbox_limit:
                self.kill()
                return
        elif len(self.outbox) == self.outbox.maxlen:
            self.dropped += 1  # the append below evicts the oldest
        self.outbox.append(data)
        self.out_event.set()

    def kill(self) -> None:
        """Abort the transport (policy violation or shutdown)."""
        if self.closed:
            return
        self.closed = True
        self.drain.set()
        self.out_event.set()
        with contextlib.suppress(Exception):
            self.writer.transport.abort()


class PrognosServer:
    """Long-lived serving daemon; see the module docstring."""

    def __init__(
        self,
        config: ServerConfig | None = None,
        *,
        shard_id: int | None = None,
        generation: int = 0,
    ) -> None:
        self.config = config or ServerConfig()
        #: Which shard of a sharded daemon this engine is (None when it
        #: is the whole daemon) and how many times the controller has
        #: respawned it; both surface in stats and every bye frame.
        self.shard_id = shard_id
        self.generation = generation
        self._sessions: dict[str, _Connection] = {}
        #: Sessions with equal event-config lists must share one list
        #: object — the forecast engine keys trigger cohorts by id().
        self._config_intern: dict[tuple, list] = {}
        self._collector: BatchCollector | None = None
        self._server: asyncio.Server | None = None
        self._engine_task: asyncio.Task | None = None
        self._adopted: set[asyncio.Task] = set()
        self._running = False
        self._degraded = False
        self.engine_restarts = 0
        self.batches = 0
        self.batch_ticks = 0
        self.sessions_total = 0
        self.dropped_total = 0
        self.lost_total = 0
        #: Test hook: an exception instance raised at the top of the
        #: next engine pass (exercises the supervision ladder).
        self._inject_engine_fault: BaseException | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def port(self) -> int:
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    async def start_engine(self) -> None:
        """Arm the engine without a TCP listener (fd-handoff shards)."""
        self._running = True
        self._collector = BatchCollector(self.config.tuning)
        if self.config.batched:
            self._engine_task = asyncio.create_task(self._engine_supervisor())

    async def start(self, *, sock: socket.socket | None = None) -> None:
        """Start the engine and listen — on ``sock`` when given (a
        pre-bound ``SO_REUSEPORT`` shard listener), else on the
        configured host/port."""
        await self.start_engine()
        if sock is not None:
            self._server = await asyncio.start_server(self._handle_client, sock=sock)
        else:
            self._server = await asyncio.start_server(
                self._handle_client, self.config.host, self.config.port
            )

    def adopt(self, sock: socket.socket, first_payload: bytes) -> asyncio.Task:
        """Serve a connection handed over by the shard controller.

        ``first_payload`` is the handshake frame the controller already
        consumed for routing; everything after it is still in the
        socket and is read here, so tick frames never transit the
        controller.
        """

        async def _serve() -> None:
            try:
                reader, writer = await asyncio.open_connection(sock=sock)
            except OSError:
                with contextlib.suppress(OSError):
                    sock.close()
                return
            await self._handle_client(reader, writer, first_payload=first_payload)

        task = asyncio.create_task(_serve())
        self._adopted.add(task)
        task.add_done_callback(self._adopted.discard)
        return task

    async def shutdown(self) -> None:
        """Stop accepting, stop the engine, drop every connection."""
        self._running = False
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._engine_task is not None:
            self._engine_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._engine_task
            self._engine_task = None
        for task in list(self._adopted):
            task.cancel()
        for conn in list(self._sessions.values()):
            if conn.flusher is not None:
                conn.flusher.cancel()
            conn.kill()
        self._sessions.clear()

    async def __aenter__(self) -> "PrognosServer":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.shutdown()

    def stats(self) -> dict:
        live = list(self._sessions.values())
        stats = {
            "sessions": len(live),
            "sessions_total": self.sessions_total,
            "batched": self.config.batched,
            "degraded": self._degraded,
            "engine_restarts": self.engine_restarts,
            "batches": self.batches,
            "batch_ticks": self.batch_ticks,
            #: Queue depths right now: unanswered ticks and undelivered
            #: predictions, summed across live sessions.
            "inbox_depth": sum(c.pending for c in live),
            "outbox_depth": sum(len(c.outbox) for c in live),
            "dropped": self.dropped_total + sum(c.dropped for c in live),
            "lost": self.lost_total + sum(c.lost for c in live),
        }
        if self.shard_id is not None:
            stats["shard"] = self.shard_id
            stats["shard_restarts"] = self.generation
        return stats

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    def _intern_configs(self, spec: list) -> list:
        configs = protocol.decode_event_configs(spec)
        return self._config_intern.setdefault(tuple(configs), configs)

    async def _handle_client(self, reader, writer, first_payload=None) -> None:
        conn: _Connection | None = None
        session_id: str | None = None
        try:
            sock = writer.get_extra_info("socket")
            if sock is not None:
                # Predictions are latency-sensitive single small frames;
                # never let them sit behind Nagle waiting for an ACK.
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            conn = await self._handshake(reader, writer, first_payload)
            if conn is None:
                return
            session_id = conn.session.session_id
            writer.transport.set_write_buffer_limits(
                high=self.config.write_high_water
            )
            if self.config.batched:
                conn.flusher = asyncio.create_task(self._flush_loop(conn))
            await self._read_loop(conn)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except FrameError as exc:
            await self._send_error(writer, str(exc))
        finally:
            if session_id is not None and self._sessions.get(session_id) is conn:
                del self._sessions[session_id]
            if conn is not None:
                self.dropped_total += conn.dropped
                self.lost_total += conn.lost
                if conn.flusher is not None:
                    conn.flusher.cancel()
                conn.kill()
            else:
                with contextlib.suppress(Exception):
                    writer.close()

    async def _handshake(
        self, reader, writer, first_payload: bytes | None = None
    ) -> _Connection | None:
        payload = (
            first_payload if first_payload is not None else await read_frame(reader)
        )
        if payload is None:
            with contextlib.suppress(Exception):
                writer.close()
            return None
        hello = protocol.decode_json(payload)
        if hello.get("type") != "hello":
            raise FrameError("first frame must be a hello")
        if hello.get("version") != protocol.PROTOCOL_VERSION:
            raise FrameError(f"unsupported protocol version {hello.get('version')!r}")
        session_id = hello.get("session")
        if not isinstance(session_id, str) or not session_id:
            raise FrameError("hello carries no session id")
        if session_id in self._sessions:
            raise FrameError(f"duplicate session id {session_id!r}")
        policy = hello.get("policy", "drop")
        if policy not in _POLICIES:
            raise FrameError(f"unknown backpressure policy {policy!r}")
        configs = self._intern_configs(hello.get("events"))
        abr = hello.get("abr") or {}
        levels = abr.get("levels_mbps")
        session = ServingSession(
            session_id,
            configs,
            prognos_config=self.config.prognos_config,
            standalone=bool(hello.get("standalone", False)),
            bootstrap=self.config.bootstrap,
            levels_mbps=levels,
            chunk_s=float(abr.get("chunk_s", 4.0)),
            batched=self.config.batched,
        )
        conn = _Connection(
            session, reader, writer, policy, self.config.outbox_limit
        )
        self._sessions[session_id] = conn
        self.sessions_total += 1
        welcome = {
            "type": "welcome",
            "version": protocol.PROTOCOL_VERSION,
            "session": session_id,
            "batched": self.config.batched,
        }
        if self.shard_id is not None:
            welcome["shard"] = self.shard_id
        writer.write(frame(protocol.encode_json(welcome)))
        await writer.drain()
        return conn

    async def _send_error(self, writer, message: str) -> None:
        with contextlib.suppress(Exception):
            writer.write(
                frame(protocol.encode_json({"type": "error", "error": message}))
            )
            await writer.drain()
            writer.close()

    async def _read_loop(self, conn: _Connection) -> None:
        inline = not self.config.batched
        limit = self.config.inbox_limit
        while not conn.closed:
            payload = await read_frame(conn.reader)
            if payload is None:
                return  # disconnect (clean EOF or reset)
            tag = payload[:1]
            if tag == b"T":
                tick = protocol.decode_tick(payload)
                conn.ticks_in += 1
                if inline or self._degraded:
                    conn.writer.write(self._serve_tick_inline(conn, tick))
                    await conn.writer.drain()
                    continue
                conn.inbox.append(("T", tick))
                conn.pending += 1
                self._collector.put(conn)
                while conn.pending >= limit and not conn.closed:
                    conn.drain.clear()
                    if conn.pending >= limit:
                        await conn.drain.wait()
            elif tag == b"R":
                label, time_s = protocol.decode_report(payload)
                if inline or self._degraded:
                    conn.session.observe_report(label, time_s)
                else:
                    conn.inbox.append(("R", label, time_s))
            elif tag == b"C":
                ho_type, time_s = protocol.decode_command(payload)
                if inline or self._degraded:
                    conn.session.observe_command(ho_type, time_s)
                else:
                    conn.inbox.append(("C", ho_type, time_s))
            elif tag == b"S":
                if inline or self._degraded:
                    conn.session.start_log()
                else:
                    conn.inbox.append(("S",))
            elif tag == b"B":
                while conn.pending > 0 and not conn.closed:
                    conn.drain.clear()
                    if conn.pending > 0:
                        await conn.drain.wait()
                # Let the flusher empty the outbox before the goodbye.
                while conn.outbox and not conn.closed:
                    await asyncio.sleep(0)
                bye = {
                    "type": "bye",
                    "session": conn.session.session_id,
                    "ticks": conn.ticks_in,
                    "answered": conn.session.ticks,
                    "dropped": conn.dropped,
                    "lost": conn.lost,
                }
                if self.shard_id is not None:
                    bye["shard"] = self.shard_id
                    bye["shard_restarts"] = self.generation
                conn.writer.write(frame(protocol.encode_json(bye)))
                await conn.writer.drain()
                return
            elif tag == b"{":
                raise FrameError("unexpected control frame mid-stream")
            else:
                raise FrameError(f"unknown frame tag {tag!r}")

    def _serve_tick_inline(self, conn: _Connection, tick) -> bytes:
        """The scalar per-session pipeline (baseline + degraded mode)."""
        (
            time_s,
            rsrp,
            serving,
            neighbours,
            scoped,
            wants_abr,
            observed_mbps,
            buffer_s,
            last_level,
        ) = tick
        session = conn.session
        prediction = session.step_sequential(time_s, rsrp, serving, neighbours, scoped)
        level = -1
        if wants_abr:
            entry = session.abr_entry(observed_mbps, buffer_s, last_level)
            if entry is not None:
                algo, levels, buf, last, predicted, chunk_s = entry
                level = algo.select(levels, buf, last, predicted, chunk_s)
        return frame(
            protocol.encode_prediction(
                time_s,
                prediction.ho_type,
                prediction.ho_score,
                prediction.similarity,
                prediction.lead_time_s,
                level,
                conn.dropped,
            )
        )

    # ------------------------------------------------------------------
    # Outbound flusher
    # ------------------------------------------------------------------

    async def _flush_loop(self, conn: _Connection) -> None:
        transport = conn.writer.transport
        high = self.config.write_high_water
        try:
            while not conn.closed:
                await conn.out_event.wait()
                conn.out_event.clear()
                while conn.outbox and not conn.closed:
                    conn.writer.write(conn.outbox.popleft())
                    if transport.get_write_buffer_size() > high:
                        # The consumer is behind; wait here, not in the
                        # engine. The outbox keeps absorbing (and, under
                        # the drop policy, evicting) meanwhile.
                        await conn.writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass

    # ------------------------------------------------------------------
    # Engine
    # ------------------------------------------------------------------

    async def _engine_supervisor(self) -> None:
        """Restart a crashed engine; degrade after the crash budget."""
        while self._running:
            try:
                await self._engine_loop()
                return
            except asyncio.CancelledError:
                raise
            except Exception:
                self.engine_restarts += 1
                self._resync_after_crash()
                if self.engine_restarts > self.config.engine_restarts:
                    self._degrade()
                    return

    def _resync_after_crash(self) -> None:
        """Recount every session's in-flight ticks after an engine loss.

        Ticks the dead engine consumed but never answered are gone —
        counted in ``lost``, surfaced in the bye frame. Ticks still in
        the inbox are re-advertised to the new engine.
        """
        for conn in self._sessions.values():
            remaining = sum(1 for item in conn.inbox if item[0] == "T")
            missing = conn.pending - remaining
            if missing > 0:
                conn.lost += missing
            conn.pending = remaining
            for _ in range(remaining):
                self._collector.put(conn)
            conn.drain.set()

    def _degrade(self) -> None:
        """Last rung: serve inline-sequential instead of going dark.

        Each session takes a forced log boundary (its radio history
        lived in the batched forecaster, which is no longer trusted) and
        every queued inbox item is served inline before readers take
        over.
        """
        self._degraded = True
        for conn in self._sessions.values():
            conn.session.start_log()
            while conn.inbox:
                item = conn.inbox.popleft()
                kind = item[0]
                if kind == "R":
                    conn.session.observe_report(item[1], item[2])
                elif kind == "C":
                    conn.session.observe_command(item[1], item[2])
                elif kind == "S":
                    conn.session.start_log()
                else:
                    conn.deliver(self._serve_tick_inline(conn, item[1]))
            conn.pending = 0
            conn.drain.set()

    async def _engine_loop(self) -> None:
        collector = self._collector
        while self._running:
            batch = await collector.collect()
            if self._inject_engine_fault is not None:
                fault, self._inject_engine_fault = self._inject_engine_fault, None
                raise fault
            jobs: list = []
            meta: list = []
            taken: set[int] = set()
            requeue: list = []
            for conn in batch:
                if conn.closed:
                    continue
                if id(conn) in taken:
                    # A pipelining client may have several ticks queued.
                    # One per batch: tick i+1's ring observation must not
                    # land before tick i's forecast is fitted, or the
                    # prediction stream diverges from the offline replay.
                    requeue.append(conn)
                    continue
                taken.add(id(conn))
                session = conn.session
                tick = None
                inbox = conn.inbox
                while inbox:
                    item = inbox.popleft()
                    kind = item[0]
                    if kind == "R":
                        session.observe_report(item[1], item[2])
                    elif kind == "C":
                        session.observe_command(item[1], item[2])
                    elif kind == "S":
                        session.start_log()
                    else:
                        tick = item[1]
                        break
                if tick is None:
                    continue
                plan = session.begin_tick(tick[0], tick[1], tick[2], tick[3], tick[4])
                jobs.append((session.forecaster, plan))
                meta.append((conn, tick))
            for conn in requeue:
                collector.put(conn)
            if not jobs:
                continue
            self.batches += 1
            self.batch_ticks += len(jobs)
            forecasts = forecast_batch(jobs)
            outputs: list = []
            abr_rows: list = []
            abr_idx: list[int] = []
            for k, (conn, tick) in enumerate(meta):
                time_s, _rsrp, serving = tick[0], tick[1], tick[2]
                wants_abr, observed_mbps, buffer_s, last_level = tick[5:9]
                prediction = conn.session.finish_tick(time_s, serving, forecasts[k])
                if wants_abr:
                    entry = conn.session.abr_entry(
                        observed_mbps, buffer_s, last_level
                    )
                    if entry is not None:
                        abr_rows.append(entry)
                        abr_idx.append(k)
                outputs.append((conn, time_s, prediction))
            levels: dict[int, int] = {}
            if abr_rows:
                for k, level in zip(abr_idx, mpc_select_many(abr_rows)):
                    levels[k] = level
            for k, (conn, time_s, prediction) in enumerate(outputs):
                conn.deliver(
                    frame(
                        protocol.encode_prediction(
                            time_s,
                            prediction.ho_type,
                            prediction.ho_score,
                            prediction.similarity,
                            prediction.lead_time_s,
                            levels.get(k, -1),
                            conn.dropped,
                        )
                    )
                )
                conn.pending -= 1
                conn.drain.set()
