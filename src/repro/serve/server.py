"""The Prognos serving daemon: asyncio TCP, micro-batched inference.

One process serves many concurrent UE sessions. Readers do protocol
work only (decode, order-preserving per-session inboxes); all model
work happens on one engine task that drains the
:class:`~repro.serve.batcher.BatchCollector`, runs the cross-session
:func:`~repro.serve.forecast.forecast_batch` and one
:func:`~repro.apps.abr.algorithms.mpc_select_many` call per batch, and
hands encoded predictions to per-session outboxes. A server built with
``batched=False`` short-circuits everything in the reader with the
scalar per-session pipeline — that is the bench's baseline mode, not a
degraded afterthought.

Backpressure, per session and never global:

* **inbound** — a session may have at most ``inbox_limit`` unanswered
  ticks; past that its reader stops reading, which pushes back through
  TCP to the client. Other sessions are unaffected.
* **outbound** — predictions queue in a per-session outbox flushed by a
  small writer task that respects the transport's write buffer. A slow
  consumer fills its outbox; policy ``"drop"`` (default) then evicts
  the oldest prediction and counts it (the ``dropped`` field of every
  later prediction frame carries the running count), policy
  ``"disconnect"`` aborts the connection. The engine never blocks on
  either.

Resilience (see DESIGN.md §6d for the full ladder):

* **Resumable sessions** — session state lives in a
  :class:`~repro.serve.session.SessionState` that outlives the TCP
  connection. Every prediction is journalled (framed bytes, bounded by
  ``REPRO_SERVE_REPLAY``, counted overflow); an unclean disconnect
  parks the state instead of destroying it, and a client reconnecting
  with ``resume {token, last_seq}`` gets the missed tail replayed
  bit-identically. Under a shard controller, parked states are
  exported over the control channel and adopted by whichever shard the
  resume lands on.
* **Liveness** — a sweeper pings idle connections (``H`` frames) after
  ``REPRO_SERVE_HEARTBEAT_S``, evicts dead peers at twice that, and
  expires parked sessions at four times (reasons surfaced in the bye
  and in stats).
* **Admission control** — past ``REPRO_SERVE_MAX_SESSIONS`` (or a
  configured backlog ceiling) new hellos are shed with a JSON ``busy``
  carrying ``retry_after`` instead of degrading every session; resumes
  are exempt (their session is already accounted).
* **Graceful drain** — :meth:`PrognosServer.drain` stops accepting,
  lets in-flight ticks finish within ``REPRO_SERVE_DRAIN_S``, sends
  every client a bye carrying its resume token, then closes; parked
  state survives for the successor to adopt.

Failure ladder for the engine: an engine crash loses at most the
in-flight batch — the supervisor resyncs every session's accounting
(lost ticks are counted, never silently swallowed), restarts the
engine, and after ``engine_restarts`` strikes degrades the server to
inline sequential serving (each session taking a forced log boundary)
rather than going dark.
"""

from __future__ import annotations

import asyncio
import contextlib
import hmac
import pickle
import secrets
import socket
from collections import deque
from dataclasses import dataclass, field

from repro.apps.abr.algorithms import mpc_select_many
from repro.core.patterns import Pattern
from repro.core.prognos import PrognosConfig
from repro.serve import protocol
from repro.serve.batcher import BatchCollector, BatchTuning
from repro.serve.env import env_float, env_int
from repro.serve.protocol import FrameError, frame, read_frame
from repro.serve.forecast import forecast_batch
from repro.serve.session import ServingSession, SessionState

_POLICIES = ("drop", "disconnect")

#: Ceiling on one exported session blob (journal + learner state); a
#: session past this is not exported and its resume falls back to a
#: client-side restart.
MAX_EXPORT = 4 << 20

_HEARTBEAT = frame(b"H")


@dataclass
class ServerConfig:
    """Tunables of one serving daemon."""

    host: str = "127.0.0.1"
    port: int = 0
    #: Micro-batched engine vs inline per-session sequential serving.
    batched: bool = True
    tuning: BatchTuning = field(default_factory=BatchTuning.from_env)
    #: Max unanswered ticks per session before its reader stops reading.
    inbox_limit: int = 64
    #: Max queued predictions per slow session before the policy bites.
    outbox_limit: int = 256
    #: Transport write-buffer high water (bytes) the flusher respects.
    write_high_water: int = 256 * 1024
    #: Engine crash budget before the server degrades to sequential.
    engine_restarts: int = 2
    #: Engine worker processes. ``None`` reads ``REPRO_SERVE_SHARDS``
    #: (default ``cpu_count() - 1``); a resolved count > 1 makes
    #: ``spawn_server`` run the multi-process
    #: :class:`~repro.serve.shard.ShardedPrognosServer` instead of one
    #: :class:`PrognosServer`. Direct ``PrognosServer`` construction
    #: always serves single-process and ignores this field.
    shards: int | None = None
    #: Session→shard routing: ``"auto"`` picks kernel ``SO_REUSEPORT``
    #: listeners where available, else the user-level consistent-hash
    #: fd handoff; ``"reuseport"`` / ``"handoff"`` force a mode.
    routing: str = "auto"
    #: Shard process crash budget before a shard is respawned degraded
    #: (inline-sequential). Per shard, on top of the per-process engine
    #: ladder above.
    shard_restarts: int = 2
    #: Replay journal depth per session. ``None`` reads
    #: ``REPRO_SERVE_REPLAY`` (default 512); 0 disables resumption.
    replay: int | None = None
    #: Heartbeat interval. ``None`` reads ``REPRO_SERVE_HEARTBEAT_S``
    #: (default 30); 0 disables the liveness sweeper entirely.
    heartbeat_s: float | None = None
    #: Admission ceiling on concurrent sessions (live + parked).
    #: ``None`` reads ``REPRO_SERVE_MAX_SESSIONS`` (default 0 = off).
    max_sessions: int | None = None
    #: Shed new hellos when total unanswered ticks reach this (0 = off).
    shed_backlog: int = 0
    #: Drain deadline. ``None`` reads ``REPRO_SERVE_DRAIN_S``
    #: (default 5).
    drain_s: float | None = None
    prognos_config: PrognosConfig | None = None
    #: Offline-mined patterns every new session warm-starts from.
    bootstrap: dict[Pattern, int] | None = None


class _Connection:
    """Transport plumbing around one attached :class:`SessionState`."""

    __slots__ = (
        "state",
        "reader",
        "writer",
        "policy",
        "outbox",
        "outbox_limit",
        "drain",
        "out_event",
        "closed",
        "flusher",
        "last_in_at",
        "pinged",
    )

    def __init__(self, state, reader, writer, policy, outbox_limit) -> None:
        self.state = state
        self.reader = reader
        self.writer = writer
        self.policy = policy
        self.outbox: deque = (
            deque(maxlen=outbox_limit) if policy == "drop" else deque()
        )
        self.outbox_limit = outbox_limit
        self.drain = asyncio.Event()
        self.out_event = asyncio.Event()
        self.closed = False
        self.flusher: asyncio.Task | None = None
        self.last_in_at = 0.0
        self.pinged = False

    def deliver(self, data: bytes) -> None:
        """Queue an encoded frame for the flusher; never blocks."""
        if self.closed:
            return
        if self.policy == "disconnect":
            if len(self.outbox) >= self.outbox_limit:
                self.kill()
                return
        elif len(self.outbox) == self.outbox.maxlen:
            # The append below evicts the oldest live send; the journal
            # still holds it, so a resume can recover what a slow
            # consumer missed.
            self.state.dropped += 1
        self.outbox.append(data)
        self.out_event.set()

    def kill(self) -> None:
        """Abort the transport (policy violation or shutdown)."""
        if self.closed:
            return
        self.closed = True
        self.drain.set()
        self.out_event.set()
        with contextlib.suppress(Exception):
            self.writer.transport.abort()

    def close_graceful(self) -> None:
        """FIN instead of RST, so a final bye still flushes."""
        if self.closed:
            return
        self.closed = True
        self.drain.set()
        self.out_event.set()
        with contextlib.suppress(Exception):
            self.writer.close()


class PrognosServer:
    """Long-lived serving daemon; see the module docstring."""

    def __init__(
        self,
        config: ServerConfig | None = None,
        *,
        shard_id: int | None = None,
        generation: int = 0,
    ) -> None:
        self.config = config or ServerConfig()
        #: Which shard of a sharded daemon this engine is (None when it
        #: is the whole daemon) and how many times the controller has
        #: respawned it; both surface in stats and every bye frame.
        self.shard_id = shard_id
        self.generation = generation
        cfg = self.config
        self.replay_limit = (
            cfg.replay
            if cfg.replay is not None
            else env_int("REPRO_SERVE_REPLAY", 512, minimum=0)
        )
        self.heartbeat_s = (
            cfg.heartbeat_s
            if cfg.heartbeat_s is not None
            else env_float("REPRO_SERVE_HEARTBEAT_S", 30.0, minimum=0.0)
        )
        self.max_sessions = (
            cfg.max_sessions
            if cfg.max_sessions is not None
            else env_int("REPRO_SERVE_MAX_SESSIONS", 0, minimum=0)
        )
        self.drain_s = (
            cfg.drain_s
            if cfg.drain_s is not None
            else env_float("REPRO_SERVE_DRAIN_S", 5.0, minimum=0.0)
        )
        #: Live and parked sessions, keyed by session id. A state with
        #: ``conn is None`` is parked, awaiting resume or eviction.
        self._sessions: dict[str, SessionState] = {}
        #: Sessions with equal event-config lists must share one list
        #: object — the forecast engine keys trigger cohorts by id().
        self._config_intern: dict[tuple, list] = {}
        self._collector: BatchCollector | None = None
        self._server: asyncio.Server | None = None
        self._engine_task: asyncio.Task | None = None
        self._sweeper_task: asyncio.Task | None = None
        self._adopted: set[asyncio.Task] = set()
        self._running = False
        self._degraded = False
        self._draining = False
        self.engine_restarts = 0
        self.batches = 0
        self.batch_ticks = 0
        self.sessions_total = 0
        self.dropped_total = 0
        self.lost_total = 0
        self.overflow_total = 0
        self.shed = 0
        self.resumed = 0
        self.resume_misses = 0
        self.replayed = 0
        self.detached = 0
        self.evicted_idle = 0
        self.evicted_dead = 0
        self.exported = 0
        #: Shard-controller hooks (set by :mod:`repro.serve.shard`):
        #: export ships a pickled parked session to the orphan pool,
        #: claim fetches one back on a resume miss.
        self.export_state_cb = None
        self.claim_state_cb = None
        #: Test hook: an exception instance raised at the top of the
        #: next engine pass (exercises the supervision ladder).
        self._inject_engine_fault: BaseException | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def port(self) -> int:
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    async def start_engine(self) -> None:
        """Arm the engine without a TCP listener (fd-handoff shards)."""
        self._running = True
        self._collector = BatchCollector(self.config.tuning)
        if self.config.batched:
            self._engine_task = asyncio.create_task(self._engine_supervisor())
        if self.heartbeat_s > 0:
            self._sweeper_task = asyncio.create_task(self._sweep_loop())

    async def start(self, *, sock: socket.socket | None = None) -> None:
        """Start the engine and listen — on ``sock`` when given (a
        pre-bound ``SO_REUSEPORT`` shard listener), else on the
        configured host/port."""
        await self.start_engine()
        if sock is not None:
            self._server = await asyncio.start_server(self._handle_client, sock=sock)
        else:
            self._server = await asyncio.start_server(
                self._handle_client, self.config.host, self.config.port
            )

    def adopt(self, sock: socket.socket, first_payload: bytes) -> asyncio.Task:
        """Serve a connection handed over by the shard controller.

        ``first_payload`` is the handshake frame the controller already
        consumed for routing; everything after it is still in the
        socket and is read here, so tick frames never transit the
        controller.
        """

        async def _serve() -> None:
            try:
                reader, writer = await asyncio.open_connection(sock=sock)
            except OSError:
                with contextlib.suppress(OSError):
                    sock.close()
                return
            await self._handle_client(reader, writer, first_payload=first_payload)

        task = asyncio.create_task(_serve())
        self._adopted.add(task)
        task.add_done_callback(self._adopted.discard)
        return task

    async def drain(self, deadline_s: float | None = None) -> None:
        """Graceful drain: stop accepting, flush, bye with resume tokens.

        In-flight ticks get until the deadline (``REPRO_SERVE_DRAIN_S``
        unless overridden) to finish and flush; then every attached
        client receives a JSON bye with ``reason: "drain"`` and its
        resume token, and the connection is closed with a FIN. Parked
        states survive — :meth:`extract_states` hands them to the shard
        controller for a successor to adopt.
        """
        if self._draining:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            with contextlib.suppress(Exception):
                await self._server.wait_closed()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + (self.drain_s if deadline_s is None else deadline_s)
        while loop.time() < deadline:
            states = list(self._sessions.values())
            busy = any(s.pending for s in states) or any(
                s.conn is not None and not s.conn.closed and s.conn.outbox
                for s in states
            )
            if not busy:
                break
            await asyncio.sleep(0.005)
        for state in list(self._sessions.values()):
            conn = state.conn
            if conn is None or conn.closed:
                continue
            bye = {
                "type": "bye",
                "reason": "drain",
                "session": state.session_id,
                "resume": state.token,
                "seq": state.out_seq,
                "ticks": state.ticks_in,
                "answered": state.session.ticks,
                "dropped": state.dropped,
                "lost": state.lost,
            }
            if self.shard_id is not None:
                bye["shard"] = self.shard_id
                bye["shard_restarts"] = self.generation
            with contextlib.suppress(Exception):
                conn.writer.write(frame(protocol.encode_json(bye)))
                await asyncio.wait_for(
                    conn.writer.drain(),
                    timeout=max(0.05, deadline - loop.time()),
                )
            conn.close_graceful()

    def extract_states(self) -> list[SessionState]:
        """Pop every session for export after a drain (shard hand-off)."""
        states = []
        for session_id in list(self._sessions):
            state = self._sessions.pop(session_id)
            state.gone = True
            state.conn = None
            states.append(state)
        return states

    async def shutdown(self) -> None:
        """Stop accepting, stop the engine, drop every connection."""
        self._running = False
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in (self._engine_task, self._sweeper_task):
            if task is not None:
                task.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await task
        self._engine_task = None
        self._sweeper_task = None
        for task in list(self._adopted):
            task.cancel()
        for state in list(self._sessions.values()):
            conn = state.conn
            if conn is not None:
                if conn.flusher is not None:
                    conn.flusher.cancel()
                conn.kill()
        self._sessions.clear()

    async def __aenter__(self) -> "PrognosServer":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.shutdown()

    def stats(self) -> dict:
        states = list(self._sessions.values())
        attached = [s for s in states if s.conn is not None and not s.conn.closed]
        stats = {
            "sessions": len(attached),
            "detached": len(states) - len(attached),
            "sessions_total": self.sessions_total,
            "batched": self.config.batched,
            "degraded": self._degraded,
            "draining": self._draining,
            "engine_restarts": self.engine_restarts,
            "batches": self.batches,
            "batch_ticks": self.batch_ticks,
            #: Queue depths right now: unanswered ticks and undelivered
            #: predictions, summed across live sessions.
            "inbox_depth": sum(s.pending for s in states),
            "outbox_depth": sum(len(s.conn.outbox) for s in attached),
            "dropped": self.dropped_total + sum(s.dropped for s in states),
            "lost": self.lost_total + sum(s.lost for s in states),
            "shed": self.shed,
            "resumed": self.resumed,
            "resume_misses": self.resume_misses,
            "replayed": self.replayed,
            "replay_overflow": self.overflow_total
            + sum(s.overflow for s in states),
            "evicted_idle": self.evicted_idle,
            "evicted_dead": self.evicted_dead,
            "exported": self.exported,
        }
        if self.shard_id is not None:
            stats["shard"] = self.shard_id
            stats["shard_restarts"] = self.generation
        return stats

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    def _intern_configs(self, spec: list) -> list:
        configs = protocol.decode_event_configs(spec)
        return self._config_intern.setdefault(tuple(configs), configs)

    def _retire(self, state: SessionState) -> None:
        """Drop a state for good; fold its counters into the totals."""
        if self._sessions.get(state.session_id) is state:
            del self._sessions[state.session_id]
        state.gone = True
        self.dropped_total += state.dropped
        self.lost_total += state.lost
        self.overflow_total += state.overflow

    async def _handle_client(self, reader, writer, first_payload=None) -> None:
        conn: _Connection | None = None
        try:
            sock = writer.get_extra_info("socket")
            if sock is not None:
                # Predictions are latency-sensitive single small frames;
                # never let them sit behind Nagle waiting for an ACK.
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            conn = await self._handshake(reader, writer, first_payload)
            if conn is None:
                return
            writer.transport.set_write_buffer_limits(
                high=self.config.write_high_water
            )
            if self.config.batched and conn.flusher is None:
                conn.flusher = asyncio.create_task(self._flush_loop(conn))
            await self._read_loop(conn)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except FrameError as exc:
            await self._send_error(writer, str(exc))
        finally:
            if conn is not None:
                state = conn.state
                if conn.flusher is not None:
                    conn.flusher.cancel()
                conn.kill()
                if state.conn is conn:
                    state.conn = None
                if (
                    state.conn is None
                    and not state.finished
                    and not state.gone
                    and self._sessions.get(state.session_id) is state
                ):
                    # Unclean loss: park the session for resumption.
                    state.detached_at = asyncio.get_running_loop().time()
                    self.detached += 1
                    self._export_parked(state)
            else:
                with contextlib.suppress(Exception):
                    writer.close()

    def _admission_delay(self, *, replacing: bool = False) -> float | None:
        """Seconds for the client to back off, or None to admit."""
        limit = self.max_sessions
        count = len(self._sessions) - (1 if replacing else 0)
        if limit and count >= limit:
            return round(min(2.0, 0.05 * (count - limit + 1) + 0.05), 3)
        backlog = self.config.shed_backlog
        if backlog and sum(s.pending for s in self._sessions.values()) >= backlog:
            return 0.1
        return None

    async def _send_busy(self, writer, retry_after: float) -> None:
        self.shed += 1
        with contextlib.suppress(Exception):
            writer.write(
                frame(
                    protocol.encode_json(
                        {"type": "busy", "retry_after": retry_after}
                    )
                )
            )
            await writer.drain()
            writer.close()

    async def _refuse_resume(self, writer, session_id: str, code: str) -> None:
        self.resume_misses += 1
        with contextlib.suppress(Exception):
            writer.write(
                frame(
                    protocol.encode_json(
                        {
                            "type": "error",
                            "error": f"cannot resume session {session_id!r}",
                            "code": code,
                        }
                    )
                )
            )
            await writer.drain()
            writer.close()

    async def _handshake(
        self, reader, writer, first_payload: bytes | None = None
    ) -> _Connection | None:
        payload = (
            first_payload if first_payload is not None else await read_frame(reader)
        )
        if payload is None:
            with contextlib.suppress(Exception):
                writer.close()
            return None
        hello = protocol.decode_json(payload)
        kind = hello.get("type")
        if kind == "resume":
            return await self._resume(hello, reader, writer)
        if kind != "hello":
            raise FrameError("first frame must be a hello")
        if hello.get("version") != protocol.PROTOCOL_VERSION:
            raise FrameError(f"unsupported protocol version {hello.get('version')!r}")
        session_id = hello.get("session")
        if not isinstance(session_id, str) or not session_id:
            raise FrameError("hello carries no session id")
        existing = self._sessions.get(session_id)
        if existing is not None and existing.conn is not None:
            raise FrameError(f"duplicate session id {session_id!r}")
        policy = hello.get("policy", "drop")
        if policy not in _POLICIES:
            raise FrameError(f"unknown backpressure policy {policy!r}")
        if self._draining:
            await self._send_busy(writer, 0.5)
            return None
        retry_after = self._admission_delay(replacing=existing is not None)
        if retry_after is not None:
            await self._send_busy(writer, retry_after)
            return None
        if existing is not None:
            # A fresh hello for a parked session: the client restarted
            # the drive; the old journal is useless to it.
            self._retire(existing)
        configs = self._intern_configs(hello.get("events"))
        abr = hello.get("abr") or {}
        levels = abr.get("levels_mbps")
        session = ServingSession(
            session_id,
            configs,
            prognos_config=self.config.prognos_config,
            standalone=bool(hello.get("standalone", False)),
            bootstrap=self.config.bootstrap,
            levels_mbps=levels,
            chunk_s=float(abr.get("chunk_s", 4.0)),
            batched=self.config.batched,
        )
        state = SessionState(
            session_id,
            session,
            token=secrets.token_hex(16),
            policy=policy,
            replay_limit=self.replay_limit,
        )
        conn = _Connection(state, reader, writer, policy, self.config.outbox_limit)
        conn.last_in_at = asyncio.get_running_loop().time()
        state.conn = conn
        self._sessions[session_id] = state
        self.sessions_total += 1
        welcome = {
            "type": "welcome",
            "version": protocol.PROTOCOL_VERSION,
            "session": session_id,
            "batched": self.config.batched,
            "resume": state.token,
            "seq": 0,
        }
        if self.shard_id is not None:
            welcome["shard"] = self.shard_id
        writer.write(frame(protocol.encode_json(welcome)))
        await writer.drain()
        return conn

    async def _resume(self, hello, reader, writer) -> _Connection | None:
        if hello.get("version") != protocol.PROTOCOL_VERSION:
            raise FrameError(f"unsupported protocol version {hello.get('version')!r}")
        session_id = hello.get("session")
        token = hello.get("token")
        last_seq = hello.get("seq")
        if not isinstance(session_id, str) or not session_id:
            raise FrameError("resume carries no session id")
        if not isinstance(token, str) or not token:
            raise FrameError("resume carries no token")
        if not isinstance(last_seq, int) or last_seq < 0:
            raise FrameError("resume carries no last sequence")
        if self._draining:
            await self._send_busy(writer, 0.5)
            return None
        state = self._sessions.get(session_id)
        if state is None:
            state = await self._claim_state(session_id, token)
            if state is not None:
                self._adopt_state(state)
        if state is None or not hmac.compare_digest(state.token, str(token)):
            await self._refuse_resume(writer, session_id, "resume-miss")
            return None
        if state.conn is not None and not state.conn.closed:
            # The previous connection is a zombie the client already
            # abandoned — its reset may simply not have surfaced here
            # yet. The token proved ownership, so the newest connection
            # wins; killing the old one detaches it without parking
            # (its handler sees a foreign conn on the state and backs
            # off).
            stale = state.conn
            state.conn = None
            stale.kill()
        if last_seq > state.out_seq:
            raise FrameError(
                f"resume seq {last_seq} is ahead of the server ({state.out_seq})"
            )
        tail = state.replay_from(last_seq)
        if tail is None:
            # The journal aged past the client's cursor; a replayed
            # stream could not be bit-identical, so refuse and retire —
            # the client restarts the drive from scratch.
            self._retire(state)
            await self._refuse_resume(writer, session_id, "replay-overflow")
            return None
        conn = _Connection(
            state, reader, writer, state.policy, self.config.outbox_limit
        )
        conn.last_in_at = asyncio.get_running_loop().time()
        state.conn = conn
        state.detached_at = None
        state.resumes += 1
        self.resumed += 1
        self.replayed += len(tail)
        welcome = {
            "type": "welcome",
            "version": protocol.PROTOCOL_VERSION,
            "session": session_id,
            "batched": self.config.batched,
            "resumed": True,
            "resume": state.token,
            "seq": state.out_seq,
        }
        if self.shard_id is not None:
            welcome["shard"] = self.shard_id
        writer.write(frame(protocol.encode_json(welcome)))
        # Replay before the flusher starts, so journalled frames hit
        # the wire ahead of anything the engine delivers meanwhile.
        for payload in tail:
            writer.write(payload)
        await writer.drain()
        if self.config.batched:
            conn.flusher = asyncio.create_task(self._flush_loop(conn))
        return conn

    # ------------------------------------------------------------------
    # Export / adopt (shard controller hooks)
    # ------------------------------------------------------------------

    def _export_parked(self, state: SessionState) -> bool:
        """Ship a parked session to the controller's orphan pool."""
        cb = self.export_state_cb
        if cb is None:
            return False
        try:
            blob = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            return False
        if len(blob) > MAX_EXPORT:
            return False
        try:
            cb(state.session_id, state.token, blob)
        except Exception:
            return False
        if self._sessions.get(state.session_id) is state:
            del self._sessions[state.session_id]
        state.gone = True
        self.exported += 1
        return True

    def yank_state(self, session_id: str, token) -> bytes | None:
        """Surrender one session for a sibling shard's resume.

        The controller yanks when a resume landed on another shard
        before this one noticed the disconnect. The token proves the
        claimant owns the session, so a still-attached connection is a
        zombie the client already abandoned — kill it and export. The
        engine holds no hidden in-flight work: its batch body is
        synchronous, so ``pending`` always equals the queued ticks.
        """
        state = self._sessions.get(session_id)
        if state is None or state.finished or not isinstance(token, str):
            return None
        if not hmac.compare_digest(state.token, token):
            return None
        conn = state.conn
        if conn is not None:
            state.conn = None
            if conn.flusher is not None:
                conn.flusher.cancel()
            conn.kill()
        try:
            blob = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            return None
        if len(blob) > MAX_EXPORT:
            return None
        del self._sessions[session_id]
        state.gone = True
        self.exported += 1
        return blob

    async def _claim_state(self, session_id: str, token) -> SessionState | None:
        """Fetch a session another shard exported (resume miss path)."""
        cb = self.claim_state_cb
        if cb is None or not isinstance(token, str):
            return None
        try:
            blob = await cb(session_id, token)
        except Exception:
            return None
        if not blob:
            return None
        try:
            state = pickle.loads(blob)
        except Exception:
            return None
        if not isinstance(state, SessionState):
            return None
        return state

    def _adopt_state(self, state: SessionState) -> None:
        """Wire an imported session into this server's engine."""
        state.gone = False
        state.conn = None
        state.detached_at = None
        self._sessions[state.session_id] = state
        if self.config.batched and not self._degraded:
            state.pending = sum(1 for item in state.inbox if item[0] == "T")
            for _ in range(state.pending):
                self._collector.put(state)
        else:
            self._drain_inbox_inline(state)

    async def _send_error(self, writer, message: str) -> None:
        with contextlib.suppress(Exception):
            writer.write(
                frame(protocol.encode_json({"type": "error", "error": message}))
            )
            await writer.drain()
            writer.close()

    async def _read_loop(self, conn: _Connection) -> None:
        state = conn.state
        session = state.session
        inline = not self.config.batched
        limit = self.config.inbox_limit
        loop = asyncio.get_running_loop()
        while not conn.closed:
            payload = await read_frame(conn.reader)
            if payload is None:
                return  # disconnect (clean EOF or reset)
            conn.last_in_at = loop.time()
            conn.pinged = False
            tag = payload[:1]
            if tag in protocol.SEQUENCED_TAGS:
                seq = protocol.frame_seq(payload)
                if seq <= state.in_seq:
                    continue  # duplicate resend after a resume
                if seq != state.in_seq + 1:
                    raise FrameError(
                        f"sequence gap: got {seq}, expected {state.in_seq + 1}"
                    )
                state.in_seq = seq
            if tag == b"T":
                tick = protocol.decode_tick(payload)
                state.ticks_in += 1
                if inline or self._degraded:
                    conn.writer.write(self._serve_tick_inline(state, tick))
                    await conn.writer.drain()
                    continue
                state.inbox.append(("T", tick))
                state.pending += 1
                self._collector.put(state)
                while state.pending >= limit and not conn.closed:
                    conn.drain.clear()
                    if state.pending >= limit:
                        await conn.drain.wait()
            elif tag == b"R":
                label, time_s = protocol.decode_report(payload)
                if inline or self._degraded:
                    session.observe_report(label, time_s)
                else:
                    state.inbox.append(("R", label, time_s))
            elif tag == b"C":
                ho_type, time_s = protocol.decode_command(payload)
                if inline or self._degraded:
                    session.observe_command(ho_type, time_s)
                else:
                    state.inbox.append(("C", ho_type, time_s))
            elif tag == b"S":
                if inline or self._degraded:
                    session.start_log()
                else:
                    state.inbox.append(("S",))
            elif tag == b"H":
                continue  # heartbeat echo; last_in_at already refreshed
            elif tag == b"B":
                while state.pending > 0 and not conn.closed:
                    conn.drain.clear()
                    if state.pending > 0:
                        await conn.drain.wait()
                # Let the flusher empty the outbox before the goodbye.
                while conn.outbox and not conn.closed:
                    await asyncio.sleep(0)
                bye = {
                    "type": "bye",
                    "session": state.session_id,
                    "ticks": state.ticks_in,
                    "answered": session.ticks,
                    "dropped": state.dropped,
                    "lost": state.lost,
                    "resumes": state.resumes,
                    "seq": state.out_seq,
                }
                if self.shard_id is not None:
                    bye["shard"] = self.shard_id
                    bye["shard_restarts"] = self.generation
                conn.writer.write(frame(protocol.encode_json(bye)))
                await conn.writer.drain()
                state.finished = True
                self._retire(state)
                return
            elif tag == b"{":
                raise FrameError("unexpected control frame mid-stream")
            else:
                raise FrameError(f"unknown frame tag {tag!r}")

    def _serve_tick_inline(self, state: SessionState, tick) -> bytes:
        """The scalar per-session pipeline (baseline + degraded mode)."""
        (
            time_s,
            rsrp,
            serving,
            neighbours,
            scoped,
            wants_abr,
            observed_mbps,
            buffer_s,
            last_level,
        ) = tick
        session = state.session
        prediction = session.step_sequential(time_s, rsrp, serving, neighbours, scoped)
        level = -1
        if wants_abr:
            entry = session.abr_entry(observed_mbps, buffer_s, last_level)
            if entry is not None:
                algo, levels, buf, last, predicted, chunk_s = entry
                level = algo.select(levels, buf, last, predicted, chunk_s)
        payload = frame(
            protocol.encode_prediction(
                time_s,
                prediction.ho_type,
                prediction.ho_score,
                prediction.similarity,
                prediction.lead_time_s,
                level,
                state.dropped,
                state.out_seq + 1,
            )
        )
        state.record(payload)
        return payload

    def _drain_inbox_inline(self, state: SessionState) -> None:
        """Serve a session's queued inbox with the scalar pipeline."""
        session = state.session
        while state.inbox:
            item = state.inbox.popleft()
            kind = item[0]
            if kind == "R":
                session.observe_report(item[1], item[2])
            elif kind == "C":
                session.observe_command(item[1], item[2])
            elif kind == "S":
                session.start_log()
            else:
                payload = self._serve_tick_inline(state, item[1])
                if state.conn is not None:
                    state.conn.deliver(payload)
        state.pending = 0
        if state.conn is not None:
            state.conn.drain.set()

    # ------------------------------------------------------------------
    # Liveness sweeper
    # ------------------------------------------------------------------

    async def _sweep_loop(self) -> None:
        """Ping idle peers, evict dead ones, expire parked sessions."""
        hb = self.heartbeat_s
        loop = asyncio.get_running_loop()
        while self._running:
            await asyncio.sleep(min(hb / 2, 1.0))
            now = loop.time()
            for state in list(self._sessions.values()):
                conn = state.conn
                if conn is not None and not conn.closed:
                    idle = now - conn.last_in_at
                    if idle >= 2 * hb:
                        self.evicted_dead += 1
                        await self._evict(conn, state, "dead_peer")
                    elif idle >= hb and not conn.pinged:
                        conn.pinged = True
                        if conn.flusher is not None:
                            conn.deliver(_HEARTBEAT)
                        else:
                            with contextlib.suppress(Exception):
                                conn.writer.write(_HEARTBEAT)
                elif state.detached_at is not None:
                    if now - state.detached_at >= 4 * hb:
                        self.evicted_idle += 1
                        self._retire(state)

    async def _evict(self, conn: _Connection, state: SessionState, reason: str) -> None:
        """Close a connection server-side, naming the reason in a bye.

        The session stays parked (the peer may only be stalled, and a
        resume must still work); only the idle-eviction sweep above
        retires parked state for good.
        """
        bye = {
            "type": "bye",
            "reason": reason,
            "session": state.session_id,
            "resume": state.token,
            "seq": state.out_seq,
        }
        if self.shard_id is not None:
            bye["shard"] = self.shard_id
        with contextlib.suppress(Exception):
            conn.writer.write(frame(protocol.encode_json(bye)))
        conn.close_graceful()

    # ------------------------------------------------------------------
    # Outbound flusher
    # ------------------------------------------------------------------

    async def _flush_loop(self, conn: _Connection) -> None:
        transport = conn.writer.transport
        high = self.config.write_high_water
        try:
            while not conn.closed:
                await conn.out_event.wait()
                conn.out_event.clear()
                while conn.outbox and not conn.closed:
                    conn.writer.write(conn.outbox.popleft())
                    if transport.get_write_buffer_size() > high:
                        # The consumer is behind; wait here, not in the
                        # engine. The outbox keeps absorbing (and, under
                        # the drop policy, evicting) meanwhile.
                        await conn.writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass

    # ------------------------------------------------------------------
    # Engine
    # ------------------------------------------------------------------

    async def _engine_supervisor(self) -> None:
        """Restart a crashed engine; degrade after the crash budget."""
        while self._running:
            try:
                await self._engine_loop()
                return
            except asyncio.CancelledError:
                raise
            except Exception:
                self.engine_restarts += 1
                self._resync_after_crash()
                if self.engine_restarts > self.config.engine_restarts:
                    self._degrade()
                    return

    def _resync_after_crash(self) -> None:
        """Recount every session's in-flight ticks after an engine loss.

        Ticks the dead engine consumed but never answered are gone —
        counted in ``lost``, surfaced in the bye frame. Ticks still in
        the inbox are re-advertised to the new engine.
        """
        for state in self._sessions.values():
            remaining = sum(1 for item in state.inbox if item[0] == "T")
            missing = state.pending - remaining
            if missing > 0:
                state.lost += missing
            state.pending = remaining
            for _ in range(remaining):
                self._collector.put(state)
            if state.conn is not None:
                state.conn.drain.set()

    def _degrade(self) -> None:
        """Last rung: serve inline-sequential instead of going dark.

        Each session takes a forced log boundary (its radio history
        lived in the batched forecaster, which is no longer trusted) and
        every queued inbox item is served inline before readers take
        over.
        """
        self._degraded = True
        for state in self._sessions.values():
            state.session.start_log()
            self._drain_inbox_inline(state)

    def _deliver_prediction(self, state, time_s, prediction, level) -> None:
        payload = frame(
            protocol.encode_prediction(
                time_s,
                prediction.ho_type,
                prediction.ho_score,
                prediction.similarity,
                prediction.lead_time_s,
                level,
                state.dropped,
                state.out_seq + 1,
            )
        )
        state.record(payload)
        conn = state.conn
        if conn is not None:
            conn.deliver(payload)
        state.pending -= 1
        if conn is not None:
            conn.drain.set()

    async def _engine_loop(self) -> None:
        collector = self._collector
        while self._running:
            batch = await collector.collect()
            if self._inject_engine_fault is not None:
                fault, self._inject_engine_fault = self._inject_engine_fault, None
                raise fault
            jobs: list = []
            meta: list = []
            taken: set[int] = set()
            requeue: list = []
            for state in batch:
                # A detached (parked) session still gets served — its
                # predictions land in the journal for the resume replay.
                if state.gone or state.finished:
                    continue
                if id(state) in taken:
                    # A pipelining client may have several ticks queued.
                    # One per batch: tick i+1's ring observation must not
                    # land before tick i's forecast is fitted, or the
                    # prediction stream diverges from the offline replay.
                    requeue.append(state)
                    continue
                taken.add(id(state))
                session = state.session
                tick = None
                inbox = state.inbox
                while inbox:
                    item = inbox.popleft()
                    kind = item[0]
                    if kind == "R":
                        session.observe_report(item[1], item[2])
                    elif kind == "C":
                        session.observe_command(item[1], item[2])
                    elif kind == "S":
                        session.start_log()
                    else:
                        tick = item[1]
                        break
                if tick is None:
                    continue
                plan = session.begin_tick(tick[0], tick[1], tick[2], tick[3], tick[4])
                jobs.append((session.forecaster, plan))
                meta.append((state, tick))
            for state in requeue:
                collector.put(state)
            if not jobs:
                continue
            self.batches += 1
            self.batch_ticks += len(jobs)
            forecasts = forecast_batch(jobs)
            outputs: list = []
            abr_rows: list = []
            abr_idx: list[int] = []
            for k, (state, tick) in enumerate(meta):
                time_s, _rsrp, serving = tick[0], tick[1], tick[2]
                wants_abr, observed_mbps, buffer_s, last_level = tick[5:9]
                prediction = state.session.finish_tick(time_s, serving, forecasts[k])
                if wants_abr:
                    entry = state.session.abr_entry(
                        observed_mbps, buffer_s, last_level
                    )
                    if entry is not None:
                        abr_rows.append(entry)
                        abr_idx.append(k)
                outputs.append((state, time_s, prediction))
            levels: dict[int, int] = {}
            if abr_rows:
                for k, level in zip(abr_idx, mpc_select_many(abr_rows)):
                    levels[k] = level
            for k, (state, time_s, prediction) in enumerate(outputs):
                self._deliver_prediction(state, time_s, prediction, levels.get(k, -1))
